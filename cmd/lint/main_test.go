package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTinyModule lays down a one-file module with nothing to report.
func writeTinyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tiny\n\ngo 1.22\n")
	write("tiny.go", `package tiny

// Add returns a+b.
func Add(a, b int) int { return a + b }
`)
	return dir
}

// TestTimingFlag pins the -timing contract: one "lint: timing" line
// per selected check on stderr, stdout untouched, exit status still
// driven by the findings alone.
func TestTimingFlag(t *testing.T) {
	dir := writeTinyModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-timing", "-checks", "floatcmp,determinism"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %q", stdout.String())
	}
	var timingLines int
	for _, line := range strings.Split(strings.TrimRight(stderr.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "lint: timing ") {
			t.Errorf("unexpected stderr line %q", line)
			continue
		}
		timingLines++
	}
	if timingLines != 2 {
		t.Errorf("got %d timing lines, want 2 (one per selected check); stderr: %s", timingLines, stderr.String())
	}
	for _, name := range []string{"floatcmp", "determinism"} {
		if !strings.Contains(stderr.String(), "lint: timing "+name) {
			t.Errorf("no timing line for %s; stderr: %s", name, stderr.String())
		}
	}

	// Without the flag the same run keeps stderr silent.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-checks", "floatcmp,determinism"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run without -timing = %d, want 0", code)
	}
	if stderr.Len() != 0 {
		t.Errorf("run without -timing wrote to stderr: %q", stderr.String())
	}
}

// TestExitCodes pins the CLI contract run() inherited from main:
// 0 clean, 2 on usage errors.
func TestExitCodes(t *testing.T) {
	dir := writeTinyModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown check: run = %d, want 2", code)
	}
	if code := run([]string{"-bogusflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: run = %d, want 2", code)
	}
	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Errorf("-list: run = %d, want 0", code)
	} else if !strings.Contains(stdout.String(), "alloccheck") {
		t.Errorf("-list output lacks alloccheck:\n%s", stdout.String())
	}
}
