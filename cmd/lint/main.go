// Command lint runs the project's static-analysis suite (package
// internal/analysis) over the module rooted at -C (default ".").
//
// Usage:
//
//	lint [-C dir] [-checks determinism,floatcmp,...] [-json] [-list]
//	     [-baseline findings.json] [-write-baseline findings.json]
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// loading or usage error. Findings can be silenced in source with
// `//lint:ignore <check> <reason>` on or directly above the line.
//
// A baseline tolerates a recorded set of findings so new checks can be
// adopted incrementally: -write-baseline captures the current findings
// (and exits 0), -baseline reports and fails only on findings beyond
// the recorded set.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"prospector/internal/analysis"
)

func main() {
	root := flag.String("C", ".", "module root to analyze (directory containing go.mod)")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	list := flag.Bool("list", false, "list the available checks and exit")
	baselinePath := flag.String("baseline", "", "tolerate the findings recorded in this JSON file; fail only on new ones")
	writeBaseline := flag.String("write-baseline", "", "record the current findings to this JSON file and exit 0")
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		// Sorted by name with the registry's one-line doc, so the
		// listing doubles as the quick-reference the README table links.
		sorted := append([]*analysis.Check(nil), suite...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, c := range sorted {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintln(os.Stderr, "lint: -baseline and -write-baseline are mutually exclusive")
		os.Exit(2)
	}
	var names []string
	if *checksFlag != "" {
		names = strings.Split(*checksFlag, ",")
	}
	checks, err := analysis.SelectChecks(suite, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadDir(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, checks)

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		err = analysis.WriteBaseline(f, analysis.NewBaseline(*root, diags))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("lint: recorded %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		base, err := analysis.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		diags = base.Filter(*root, diags)
	}

	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, diags)
	} else {
		err = analysis.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
