// Command lint runs the project's static-analysis suite (package
// internal/analysis) over the module rooted at -C (default ".").
//
// Usage:
//
//	lint [-C dir] [-checks determinism,floatcmp,...] [-json] [-list]
//	     [-timing] [-baseline findings.json] [-write-baseline findings.json]
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// loading or usage error. Findings can be silenced in source with
// `//lint:ignore <check> <reason>` on or directly above the line.
//
// A baseline tolerates a recorded set of findings so new checks can be
// adopted incrementally: -write-baseline captures the current findings
// (and exits 0), -baseline reports and fails only on findings beyond
// the recorded set.
//
// -timing prints each check's accumulated wall time to stderr, slowest
// first, so a check that regresses the suite's latency is visible
// without a profiler. Lazily built shared state (call graph, the
// interprocedural worlds) is attributed to whichever check touches it
// first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"prospector/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	list := fs.Bool("list", false, "list the available checks and exit")
	timing := fs.Bool("timing", false, "print per-check wall time to stderr, slowest first")
	baselinePath := fs.String("baseline", "", "tolerate the findings recorded in this JSON file; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "record the current findings to this JSON file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Suite()
	if *list {
		// Sorted by name with the registry's one-line doc, so the
		// listing doubles as the quick-reference the README table links.
		sorted := append([]*analysis.Check(nil), suite...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, c := range sorted {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fmt.Fprintln(stderr, "lint: -baseline and -write-baseline are mutually exclusive")
		return 2
	}
	var names []string
	if *checksFlag != "" {
		names = strings.Split(*checksFlag, ",")
	}
	checks, err := analysis.SelectChecks(suite, names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := analysis.LoadDir(*root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, timings := analysis.RunWorkersTimed(pkgs, checks, 0)
	if *timing {
		for _, ct := range timings {
			fmt.Fprintf(stderr, "lint: timing %-14s %12v\n", ct.Name, ct.Elapsed)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		err = analysis.WriteBaseline(f, analysis.NewBaseline(*root, diags))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "lint: recorded %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		base, err := analysis.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = base.Filter(*root, diags)
	}

	if *jsonOut {
		err = analysis.WriteJSON(stdout, diags)
	} else {
		err = analysis.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
