// Command lint runs the project's static-analysis suite (package
// internal/analysis) over the module rooted at -C (default ".").
//
// Usage:
//
//	lint [-C dir] [-checks determinism,floatcmp,...] [-json] [-list]
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// loading or usage error. Findings can be silenced in source with
// `//lint:ignore <check> <reason>` on or directly above the line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prospector/internal/analysis"
)

func main() {
	root := flag.String("C", ".", "module root to analyze (directory containing go.mod)")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, c := range suite {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	var names []string
	if *checksFlag != "" {
		names = strings.Split(*checksFlag, ",")
	}
	checks, err := analysis.SelectChecks(suite, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadDir(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, checks)
	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, diags)
	} else {
		err = analysis.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
