// Command prospector demonstrates the full planning pipeline on one
// synthetic sensor network: it builds a random deployment, collects
// samples, plans a top-k query with the chosen PROSPECTOR algorithm
// under an energy budget, executes the plan on fresh epochs, and
// reports cost and accuracy against the NAIVE-k baseline.
//
// Usage:
//
//	prospector [-nodes N] [-k K] [-samples S] [-budget-frac F]
//	           [-planner greedy|lp-lf|lp+lf|proof|exact|naive] [-seed SEED] [-epochs E]
//	           [-describe] [-dot FILE] [-sim] [-loss P]
//	           [-metrics FILE] [-trace FILE] [-listen ADDR] [-pprof ADDR|DIR] [-manifest FILE]
//	           [-flight FILE] [-flight-rules FILE] [-hold DURATION]
//	           [-serve] [-serve-for D] [-serve-queue N] [-serve-workers N] [-serve-batch N]
//
// -sim executes through the discrete-event mote simulator (reporting
// latency and per-node energy) instead of the analytic executor;
// -loss adds a uniform per-link loss probability to the simulation.
//
// Observability: -metrics writes the run's metric exposition at exit
// ("-" for stdout); -trace streams deterministic JSON-lines events —
// the run is wrapped in a root "query" span so tracetool can rebuild
// the full tree (query → plan/solve → epochs → per-node rounds);
// -listen serves the live registry at ADDR (/metrics in Prometheus
// text format, /snapshot.json, plus the telemetry surfaces /healthz,
// /readyz, and /debug/telemetry) while the run executes; -pprof either
// serves net/http/pprof (value with a ":") or writes cpu.prof/heap.prof
// into a directory; -manifest writes the run ledger ("-" for stdout) —
// flags, environment, final metrics, and trace-derived aggregates when
// -trace names a file — after the run completes successfully.
//
// Live telemetry: whenever a registry exists, a telemetry collector
// windows its series — epoch-driven (now = epoch index) during the
// run, interval-driven (wall seconds, plus the go.* runtime bridge)
// under -listen. -flight keeps a bounded ring of recent trace records
// and dumps them to FILE when a rule from -flight-rules (the regress
// JSON grammar, judged against the live windowed series) breaches;
// read the dump with tracetool flight. -hold keeps the -listen
// endpoints up for a grace period after the run completes, so probes
// and scrapes can observe a short run's final state.
//
// Serving: -serve turns the process into a long-lived plan service
// (internal/serve) instead of a one-shot run. The planning state is
// frozen into snapshots at startup, and /plan answers concurrent
// budget queries from a pool of warm-chain planner workers with
// budget-sorted batching, request coalescing, and admission control
// (see internal/serve). Requires -listen; -planner picks the default
// kind (greedy, lp-lf, lp+lf, or proof — exact and naive are not
// servable) and /plan?planner= overrides it per request. -serve-for
// bounds the service lifetime (0: until SIGINT/SIGTERM); -serve-queue,
// -serve-workers, and -serve-batch tune admission and dispatch. With
// -flight but no -flight-rules, the serving tier's stock rules
// (queue saturation, any shed, p99 solve latency) arm the recorder.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/ledger"
	"prospector/internal/lp"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/obs/telemetry"
	"prospector/internal/plan"
	"prospector/internal/regress"
	"prospector/internal/sample"
	"prospector/internal/serve"
	"prospector/internal/sim"
	"prospector/internal/workload"
)

// telemetryWindow is how many ticks each windowed series retains;
// flightCapacity bounds the flight recorder's record ring. Both are
// sized for a default run (tens of epochs, a few hundred spans per
// epoch) with headroom for -listen interval sampling.
const (
	telemetryWindow = 256
	flightCapacity  = 4096
)

// epochMSBounds buckets the wall-clock milliseconds an epoch took.
// This is a wall-clock family: internal/ledger quarantines it (and its
// derived quantiles) into the manifest's environment block.
var epochMSBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}

// liveObs carries the per-epoch telemetry hooks through the reporting
// loops: the wall-clock epoch-duration histogram and the monitor tick
// that refreshes the windows and judges the flight rules.
type liveObs struct {
	mon     *telemetry.Monitor
	epochMS *obs.Histogram
	prev    time.Time
}

func newLiveObs(reg *obs.Registry, mon *telemetry.Monitor) *liveObs {
	return &liveObs{mon: mon,
		epochMS: reg.Histogram("exec.epoch_ms", epochMSBounds), prev: time.Now()}
}

// epoch observes one finished epoch — wall milliseconds since the
// previous epoch boundary — and samples the monitor on the epoch-index
// clock, so windowed series like exec.epoch_mj.p99 advance once per
// epoch during the run.
func (lv *liveObs) epoch(e int) error {
	if lv == nil {
		return nil
	}
	now := time.Now()
	lv.epochMS.Observe(float64(now.Sub(lv.prev).Microseconds()) / 1000)
	lv.prev = now
	return lv.mon.Sample(float64(e))
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prospector:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		nodes      = flag.Int("nodes", 60, "network size including the root")
		k          = flag.Int("k", 10, "top-k rank bound")
		nSamples   = flag.Int("samples", 15, "past samples used for planning")
		budgetFrac = flag.Float64("budget-frac", 0.3, "energy budget as a fraction of NAIVE-k's cost")
		planner    = flag.String("planner", "lp+lf", "greedy, lp-lf, lp+lf, proof, exact, or naive (the NAIVE-k baseline)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		epochs     = flag.Int("epochs", 10, "evaluation epochs")
		describe   = flag.Bool("describe", false, "print the per-node plan table")
		dotFile    = flag.String("dot", "", "write the network+plan as Graphviz DOT to this file")
		useSim     = flag.Bool("sim", false, "execute through the discrete-event mote simulator")
		lossProb   = flag.Float64("loss", 0, "uniform per-link loss probability for -sim")
		metrics    = flag.String("metrics", "", "write the metric exposition here at exit ('-' for stdout)")
		traceOut   = flag.String("trace", "", "stream JSON-lines trace events to this file ('-' for stdout)")
		listen     = flag.String("listen", "", "serve live /metrics and /snapshot.json at this address for the run's lifetime")
		pprofArg   = flag.String("pprof", "", "serve net/http/pprof at ADDR (contains ':') or write cpu/heap profiles into DIR")
		manifest   = flag.String("manifest", "", "write the run manifest (JSON) here at exit ('-' for stdout)")
		flight     = flag.String("flight", "", "dump the last retained trace records here when a live telemetry rule breaches")
		flightRls  = flag.String("flight-rules", "", "JSON rules (regress grammar) judged against live windowed series")
		hold       = flag.Duration("hold", 0, "keep the -listen endpoints up this long after the run completes")

		serveMode    = flag.Bool("serve", false, "run as a long-lived plan service on -listen instead of a one-shot run")
		serveFor     = flag.Duration("serve-for", 0, "shut the plan service down after this long (0: until SIGINT/SIGTERM)")
		serveQueue   = flag.Int("serve-queue", 64, "plan service admission bound: max queued requests before shedding")
		serveWorkers = flag.Int("serve-workers", 1, "plan service workers (warm chains) per planner key")
		serveBatch   = flag.Int("serve-batch", 16, "max requests one worker dispatch serves as a single sorted sweep")
	)
	flag.Parse()
	if *serveMode && *listen == "" {
		return fmt.Errorf("-serve requires -listen")
	}
	startUnix := time.Now().Unix()
	startWall := time.Now()

	ocli, err := obs.StartCLI(*metrics, *traceOut, *pprofArg)
	if err != nil {
		return err
	}
	// A manifest without metrics would be an empty ledger, and the live
	// telemetry surfaces need series to window; give the run a registry
	// whenever any consumer of one is enabled.
	reg := ocli.Registry()
	if reg == nil && (*manifest != "" || *listen != "" || *flight != "" || *flightRls != "") {
		reg = ocli.EnsureRegistry()
	}
	// Registered before the Close defer so it runs after it (LIFO): the
	// manifest parses the trace file, which Close flushes.
	defer func() {
		if err != nil || *manifest == "" {
			return
		}
		env := ledger.HostEnvironment(startUnix)
		env.WallSeconds = map[string]float64{"run": time.Since(startWall).Seconds()}
		m := ledger.New("prospector", map[string]string{
			"planner": *planner, "nodes": fmt.Sprint(*nodes), "k": fmt.Sprint(*k),
			"samples": fmt.Sprint(*nSamples), "budget-frac": fmt.Sprint(*budgetFrac),
			"seed": fmt.Sprint(*seed), "epochs": fmt.Sprint(*epochs),
			"sim": fmt.Sprint(*useSim), "loss": fmt.Sprint(*lossProb),
		}, reg.Snapshot(), env)
		if *traceOut != "" && *traceOut != "-" {
			if aerr := m.AttachTraceFile(*traceOut); aerr != nil {
				err = aerr
				return
			}
		}
		if werr := ledger.WriteFile(*manifest, m); werr != nil {
			err = werr
			return
		}
		if *manifest != "-" {
			fmt.Printf("wrote %s\n", *manifest)
		}
	}()
	defer func() {
		if cerr := ocli.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "prospector:", cerr)
		}
	}()
	// Live telemetry rides along whenever a registry exists: the
	// collector windows every registered series, and -flight taps the
	// tracer (creating one if -trace is off) so the recent record ring
	// is on hand for a breach dump.
	var mon *telemetry.Monitor
	if reg != nil {
		var fl *telemetry.Flight
		if *flight != "" {
			fl = telemetry.NewFlight(flightCapacity)
			ocli.EnsureTracer(fl)
		}
		var rules []regress.Rule
		if *flightRls != "" {
			if rules, err = telemetry.LoadRules(*flightRls); err != nil {
				return err
			}
		} else if *serveMode && *flight != "" {
			// A serving process with a flight recorder but no explicit
			// rules gets the serving tier's stock set.
			rules = serve.DefaultFlightRules(*serveQueue)
		}
		mon = telemetry.NewMonitor(telemetry.NewCollector(reg, telemetryWindow), fl, rules, *flight)
	}
	lv := newLiveObs(reg, mon)
	// In serve mode the HTTP surface is mounted by serveLoop once the
	// planning state exists — serve.Endpoints owns /healthz, /readyz,
	// and /debug/telemetry there, so mounting telemetry.Endpoints here
	// too would register duplicate mux patterns.
	if *listen != "" && !*serveMode {
		bound, err := ocli.Serve(*listen, telemetry.Endpoints(mon.Collector())...)
		if err != nil {
			return err
		}
		fmt.Printf("serving /metrics, /snapshot.json, /healthz, /readyz, and /debug/telemetry on %s\n", bound)
		// Interval sampling keeps the windows (and the go.* runtime
		// gauges) moving while serving, even between epochs; the epoch
		// loop ticks the same collector on the epoch-index clock.
		stopTicker := telemetry.StartTicker(mon, telemetry.NewRuntimeBridge(reg), time.Second)
		defer stopTicker()
		if *hold > 0 {
			defer func() {
				fmt.Printf("holding endpoints for %s\n", *hold)
				time.Sleep(*hold)
			}()
		}
	}
	// The root span makes the whole run one tree for tracetool; its End
	// is deferred after Close's defer, so it lands before the flush.
	var root *obs.Span
	if tr := ocli.Tracer(); tr != nil {
		root = tr.StartSpan(nil, "query",
			0, obs.F("planner", *planner), obs.F("nodes", *nodes), obs.F("k", *k))
		defer root.End(0)
	}

	rng := rand.New(rand.NewSource(*seed))
	net, err := network.Build(network.DefaultBuildConfig(*nodes), rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %v\n", net)

	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(*nodes), rng)
	if err != nil {
		return err
	}
	set, err := sample.NewSet(*nodes, *k, 0)
	if err != nil {
		return err
	}
	if err := set.AddAll(workload.Draw(src, *nSamples)); err != nil {
		return err
	}
	model := energy.DefaultModel()
	costs := plan.NewCosts(net, model)
	// The LP solver never reads the wall clock itself (determinism
	// analyzer); the CLI injects one so lp.solve_seconds gets real data.
	cfg := core.Config{Net: net, Costs: costs, Samples: set, K: *k, Obs: reg,
		Trace: ocli.Tracer(), Span: root, LP: lp.Options{Now: time.Now}}
	env := exec.Env{Net: net, Costs: costs, Obs: reg, Trace: ocli.Tracer(), Span: root}

	if *serveMode {
		return serveLoop(ocli, mon, cfg, serveSettings{
			listen: *listen, kind: *planner, seed: *seed, nodes: *nodes, k: *k,
			queue: *serveQueue, workers: *serveWorkers, batch: *serveBatch, dur: *serveFor,
		})
	}

	naivePlan, err := core.NaiveKPlan(net, *k)
	if err != nil {
		return err
	}
	naiveCost := naivePlan.CollectionCost(net, costs) + naivePlan.TriggerCost(net, costs)
	budget := *budgetFrac * naiveCost
	fmt.Printf("NAIVE-%d collection cost: %.1f mJ; budget: %.1f mJ (%.0f%%)\n",
		*k, naiveCost, budget, 100**budgetFrac)

	truth := workload.Draw(src, *epochs)
	switch *planner {
	case "exact":
		ex, err := core.NewExact(cfg)
		if err != nil {
			return err
		}
		if min := ex.MinPhase1Budget(); budget < min {
			fmt.Printf("raising budget to the proof minimum %.1f mJ\n", min*1.05)
			budget = min * 1.05
		}
		p, err := ex.Planner().Plan(budget)
		if err != nil {
			return err
		}
		for e, vals := range truth {
			res, err := ex.RunWithPlan(env, p, vals)
			if err != nil {
				return err
			}
			fmt.Printf("epoch %2d: phase1=%.1f mJ phase2=%.1f mJ proven=%d/%d mopped=%v top=%v\n",
				e, res.Phase1.Total(), res.Phase2.Total(), res.ProvenPhase1, *k,
				res.MoppedUp, heads(res.Answer, 3))
			if err := lv.epoch(e); err != nil {
				return err
			}
		}
		return nil
	case "proof":
		pp, err := core.NewProofPlanner(cfg)
		if err != nil {
			return err
		}
		if min := pp.MinBudget(); budget < min {
			fmt.Printf("raising budget to the proof minimum %.1f mJ\n", min*1.05)
			budget = min * 1.05
		}
		p, err := pp.Plan(budget)
		if err != nil {
			return err
		}
		return report(env, p, truth, *k, lv)
	case "naive":
		// The NAIVE-k baseline plan, runnable through -sim and tracing
		// like any other filtering plan (the budget does not apply).
		fmt.Printf("NAIVE-%d plan: %v\n", *k, naivePlan)
		return finish(naivePlan, env, net, truth, *k, *describe, *dotFile,
			*useSim, *lossProb, rng, reg, ocli, root, lv)
	default:
		var pl core.Planner
		switch *planner {
		case "greedy":
			pl, err = core.NewGreedy(cfg)
		case "lp-lf":
			pl, err = core.NewLPNoFilter(cfg)
		case "lp+lf":
			pl, err = core.NewLPFilter(cfg)
		default:
			return fmt.Errorf("unknown planner %q", *planner)
		}
		if err != nil {
			return err
		}
		p, err := pl.Plan(budget)
		if err != nil {
			return err
		}
		fmt.Printf("%s plan: %v\n", pl.Name(), p)
		return finish(p, env, net, truth, *k, *describe, *dotFile,
			*useSim, *lossProb, rng, reg, ocli, root, lv)
	}
}

// serveSettings carries the -serve* flags into serveLoop.
type serveSettings struct {
	listen, kind          string
	seed                  int64
	nodes, k              int
	queue, workers, batch int
	dur                   time.Duration
}

// serveLoop runs the process as a plan service: freeze the planning
// state into snapshots, stand up the worker pool, mount the serving
// surface on -listen, and drain cleanly on SIGINT/SIGTERM or after
// -serve-for elapses.
func serveLoop(ocli *obs.CLI, mon *telemetry.Monitor, cfg core.Config, st serveSettings) error {
	base := serve.Key{
		Network: fmt.Sprintf("seed%d-n%d", st.seed, st.nodes),
		Gen:     cfg.Samples.Gen(),
		Planner: st.kind,
		K:       st.k,
	}
	// One snapshot per planner kind, built lazily and shared by every
	// worker of that kind's pool key.
	var mu sync.Mutex
	snaps := make(map[string]*core.Snapshot)
	getSnap := func(kind string) (*core.Snapshot, error) {
		mu.Lock()
		defer mu.Unlock()
		if s, ok := snaps[kind]; ok {
			return s, nil
		}
		s, err := core.NewSnapshot(cfg, kind)
		if err != nil {
			return nil, err
		}
		snaps[kind] = s
		return s, nil
	}
	// Fail fast: the default kind must freeze cleanly before listening.
	if _, err := getSnap(st.kind); err != nil {
		return err
	}
	provider := func(key serve.Key) (serve.PlannerSource, error) {
		if key.Network != base.Network || key.Gen != base.Gen {
			return nil, fmt.Errorf("this process serves %s/gen%d only", base.Network, base.Gen)
		}
		if key.K != base.K {
			return nil, fmt.Errorf("this process serves k=%d only", base.K)
		}
		return getSnap(key.Planner)
	}
	svc, err := serve.New(serve.Options{
		QueueDepth: st.queue, WorkersPerKey: st.workers, BatchMax: st.batch,
		Now: time.Now, Obs: cfg.Obs,
	}, provider)
	if err != nil {
		return err
	}
	bound, err := ocli.Serve(st.listen, serve.Endpoints(svc, base, mon.Collector())...)
	if err != nil {
		svc.Close()
		return err
	}
	fmt.Printf("plan service on %s: /plan (default planner %s, k=%d), /metrics, /snapshot.json, /healthz, /readyz, /debug/telemetry\n",
		bound, st.kind, st.k)
	stopTicker := telemetry.StartTicker(mon, telemetry.NewRuntimeBridge(cfg.Obs), time.Second)
	defer stopTicker()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	var timeout <-chan time.Time
	if st.dur > 0 {
		tm := time.NewTimer(st.dur)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case s := <-sig:
		fmt.Printf("received %v; draining the plan queue\n", s)
	case <-timeout:
		fmt.Printf("served for %s; draining the plan queue\n", st.dur)
	}
	svc.Close()
	return nil
}

// finish runs the shared tail of every non-exact planner mode:
// optional plan table / DOT dump, then execution through the simulator
// or the analytic executor.
func finish(p *plan.Plan, env exec.Env, net *network.Network, truth [][]float64,
	k int, describe bool, dotFile string, useSim bool, loss float64,
	rng *rand.Rand, reg *obs.Registry, ocli *obs.CLI, root *obs.Span, lv *liveObs) error {
	if describe {
		fmt.Print(p.Describe(net))
	}
	if dotFile != "" {
		if err := writeDOT(net, p, dotFile); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotFile)
	}
	if useSim {
		return simReport(net, p, truth, k, loss, rng, reg, ocli, root, lv)
	}
	return report(env, p, truth, k, lv)
}

func writeDOT(net *network.Network, p *plan.Plan, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := net.WriteDOT(f, "prospector", p.Bandwidth); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// simReport executes the plan through the discrete-event simulator,
// reporting latency, retransmissions, and the hottest radios.
func simReport(net *network.Network, p *plan.Plan, truth [][]float64, k int, loss float64, rng *rand.Rand, reg *obs.Registry, ocli *obs.CLI, root *obs.Span, lv *liveObs) error {
	if p.Kind == plan.Selection {
		return fmt.Errorf("-sim supports filtering/proof plans (use -planner lp+lf or proof)")
	}
	cfg := sim.DefaultConfig(net)
	cfg.Obs = reg
	cfg.Trace = ocli.Tracer()
	cfg.Span = root
	if loss > 0 {
		probs := make([]float64, net.Size())
		for i := 1; i < net.Size(); i++ {
			probs[i] = loss
		}
		cfg.LossProb = probs
		cfg.Rng = rng
	}
	nodeEnergy := make([]float64, net.Size())
	totalAcc, totalCost, totalLat := 0.0, 0.0, 0.0
	retrans := 0
	for e, vals := range truth {
		res, err := sim.Run(cfg, p, vals)
		if err != nil {
			return err
		}
		acc := exec.Accuracy(res.Returned, vals, k)
		totalAcc += acc
		totalCost += res.Ledger.Total()
		totalLat += res.Latency
		retrans += res.Retransmissions
		for i, en := range res.NodeEnergy {
			nodeEnergy[i] += en
		}
		fmt.Printf("epoch %2d: cost=%.1f mJ latency=%.2fs accuracy=%.0f%% retrans=%d dropped=%d\n",
			e, res.Ledger.Total(), res.Latency, 100*acc, res.Retransmissions, res.Dropped)
		if err := lv.epoch(e); err != nil {
			return err
		}
	}
	n := float64(len(truth))
	fmt.Printf("mean: cost=%.1f mJ latency=%.2fs accuracy=%.1f%% (%d retransmissions total)\n",
		totalCost/n, totalLat/n, 100*totalAcc/n, retrans)
	// The three hottest radios: the lifetime bottlenecks.
	type hot struct {
		id network.NodeID
		mj float64
	}
	var hs []hot
	for i, mj := range nodeEnergy {
		hs = append(hs, hot{network.NodeID(i), mj})
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a].mj > hs[b].mj })
	fmt.Print("hottest radios:")
	for i := 0; i < 3 && i < len(hs); i++ {
		fmt.Printf(" node %d (%.1f mJ, depth %d)", hs[i].id, hs[i].mj, net.Depth(hs[i].id))
	}
	fmt.Println()
	return nil
}

func report(env exec.Env, p *plan.Plan, truth [][]float64, k int, lv *liveObs) error {
	totalAcc, totalCost := 0.0, 0.0
	for e, vals := range truth {
		res, err := exec.Run(env, p, vals)
		if err != nil {
			return err
		}
		acc := res.Accuracy(vals, k)
		totalAcc += acc
		totalCost += res.Ledger.Total()
		fmt.Printf("epoch %2d: cost=%.1f mJ accuracy=%.0f%% proven=%d top=%v\n",
			e, res.Ledger.Total(), 100*acc, res.Proven, heads(res.Returned, 3))
		if err := lv.epoch(e); err != nil {
			return err
		}
	}
	n := float64(len(truth))
	fmt.Printf("mean: cost=%.1f mJ accuracy=%.1f%%\n", totalCost/n, 100*totalAcc/n)
	return nil
}

func heads(vs []exec.ValueAt, n int) []string {
	var out []string
	for i := 0; i < n && i < len(vs); i++ {
		out = append(out, fmt.Sprintf("n%d=%.1f", vs[i].Node, vs[i].Val))
	}
	return out
}
