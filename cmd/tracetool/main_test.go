package main

import (
	"os"
	"path/filepath"
	"testing"

	"prospector/internal/obs"
)

// writeTrace emits a tiny trace with n top-level "epoch" spans.
func writeTrace(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(f)
	for i := 0; i < n; i++ {
		s := tr.StartSpan(nil, "epoch", float64(i), obs.F("energy_mj", 2.5))
		s.End(float64(i) + 0.5)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiffExitCodes pins the gate semantics: identical traces exit 0,
// differing traces exit 1, -exit-zero suppresses the failure, and load
// or usage problems exit 2.
func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	same := filepath.Join(dir, "same.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeTrace(t, a, 2)
	writeTrace(t, same, 2)
	writeTrace(t, b, 3)

	cases := []struct {
		name    string
		args    []string
		code    int
		wantErr bool
	}{
		{"identical", []string{"diff", a, same}, 0, false},
		{"different", []string{"diff", a, b}, 1, false},
		{"different exit-zero", []string{"diff", "-exit-zero", a, b}, 0, false},
		{"missing file", []string{"diff", a, filepath.Join(dir, "nope.jsonl")}, 2, true},
		{"missing operand", []string{"diff", a}, 2, true},
		{"unknown subcommand", []string{"explode", a}, 2, true},
		{"no args", nil, 2, true},
		{"summary ok", []string{"summary", a}, 0, false},
	}
	for _, c := range cases {
		code, err := run(c.args)
		if code != c.code || (err != nil) != c.wantErr {
			t.Errorf("%s: run(%v) = %d, %v; want %d, err=%v", c.name, c.args, code, err, c.code, c.wantErr)
		}
	}
}
