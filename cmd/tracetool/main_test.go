package main

import (
	"os"
	"path/filepath"
	"testing"

	"prospector/internal/obs"
)

// writeTrace emits a tiny trace with n top-level "epoch" spans.
func writeTrace(t *testing.T, path string, n int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(f)
	for i := 0; i < n; i++ {
		s := tr.StartSpan(nil, "epoch", float64(i), obs.F("energy_mj", 2.5))
		s.End(float64(i) + 0.5)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiffExitCodes pins the gate semantics: identical traces exit 0,
// differing traces exit 1, -exit-zero suppresses the failure, and load
// or usage problems exit 2.
func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	same := filepath.Join(dir, "same.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	writeTrace(t, a, 2)
	writeTrace(t, same, 2)
	writeTrace(t, b, 3)

	cases := []struct {
		name    string
		args    []string
		code    int
		wantErr bool
	}{
		{"identical", []string{"diff", a, same}, 0, false},
		{"different", []string{"diff", a, b}, 1, false},
		{"different exit-zero", []string{"diff", "-exit-zero", a, b}, 0, false},
		{"missing file", []string{"diff", a, filepath.Join(dir, "nope.jsonl")}, 2, true},
		{"missing operand", []string{"diff", a}, 2, true},
		{"unknown subcommand", []string{"explode", a}, 2, true},
		{"no args", nil, 2, true},
		{"summary ok", []string{"summary", a}, 0, false},
	}
	for _, c := range cases {
		code, err := run(c.args)
		if code != c.code || (err != nil) != c.wantErr {
			t.Errorf("%s: run(%v) = %d, %v; want %d, err=%v", c.name, c.args, code, err, c.code, c.wantErr)
		}
	}
}

// TestEmptyTraceExitsTwo pins the empty-input diagnostic: a trace (or
// flight dump) with no records must exit 2 with an error, never print
// a zero-filled report.
func TestEmptyTraceExitsTwo(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Header-only flight dump: valid header line, zero trace records.
	headerOnly := filepath.Join(dir, "header-only.jsonl")
	hdr := `{"flight":"prospector/flight/v1","series":"x","kind":"exact","got":1,"want":"exactly 0","tick":3,"now":3,"records":0,"dropped":0}` + "\n"
	if err := os.WriteFile(headerOnly, []byte(hdr), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"summary", "tree", "critpath", "attribute"} {
		code, err := run([]string{sub, empty})
		if code != 2 || err == nil {
			t.Errorf("%s on empty trace = %d, %v; want 2 with error", sub, code, err)
		}
	}
	if code, err := run([]string{"diff", empty, empty}); code != 2 || err == nil {
		t.Errorf("diff on empty traces = %d, %v; want 2 with error", code, err)
	}
	if code, err := run([]string{"flight", empty}); code != 2 || err == nil {
		t.Errorf("flight on empty file = %d, %v; want 2 with error", code, err)
	}
	if code, err := run([]string{"flight", headerOnly}); code != 2 || err == nil {
		t.Errorf("flight on header-only dump = %d, %v; want 2 with error", code, err)
	}
	// A plain trace is not a flight dump: no header, exit 2.
	plain := filepath.Join(dir, "plain.jsonl")
	writeTrace(t, plain, 1)
	if code, err := run([]string{"flight", plain}); code != 2 || err == nil {
		t.Errorf("flight on plain trace = %d, %v; want 2 with error", code, err)
	}
}

// TestFlightReportsBreach runs the flight analysis end to end on a
// synthetic dump and checks the report carries the breach facts.
func TestFlightReportsBreach(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.jsonl")
	writeTrace(t, trace, 2)
	recs, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	dump := filepath.Join(dir, "flight.jsonl")
	hdr := `{"flight":"prospector/flight/v1","series":"exec.messages.delta","kind":"abs<=","got":7,"want":"within ±0 of 0","tick":4,"now":4,"records":2,"dropped":1,"note":"injected"}` + "\n"
	if err := os.WriteFile(dump, append([]byte(hdr), recs...), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, err := run([]string{"flight", dump}); code != 0 || err != nil {
		t.Fatalf("flight = %d, %v; want 0", code, err)
	}
}
