// Command tracetool analyzes the JSON-lines traces written by
// prospector -trace / experiments -trace.
//
// Usage:
//
//	tracetool summary   trace.jsonl         per-phase totals
//	tracetool tree      trace.jsonl         indented span tree
//	tracetool critpath  trace.jsonl         longest latency chain per round
//	tracetool attribute trace.jsonl         per-node energy / message shares
//	tracetool diff [-exit-zero] a.jsonl b.jsonl   per-phase deltas, A = baseline
//	tracetool flight    flight.jsonl        breach report over a flight-recorder dump
//
// All output is deterministic: the same trace bytes produce the same
// report bytes.
//
// Exit codes: 0 when the report is clean (for diff: the traces agree),
// 1 when diff finds any difference, 2 on usage or load errors —
// including an empty or record-free input, which exits 2 with a
// one-line diagnostic instead of printing a zero-filled report.
// -exit-zero makes diff informational: differences still print but the
// exit code stays 0.
package main

import (
	"flag"
	"fmt"
	"os"

	"prospector/internal/traceanalysis"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
	}
	os.Exit(code)
}

// run executes one subcommand and returns the process exit code: 0
// clean, 1 differences found (diff), 2 usage or load errors.
func run(args []string) (int, error) {
	if len(args) < 1 {
		return 2, fmt.Errorf("usage: tracetool <summary|tree|critpath|attribute|diff|flight> <trace.jsonl> [trace2.jsonl]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary", "tree", "critpath", "attribute":
		if len(rest) != 1 {
			return 2, fmt.Errorf("usage: tracetool %s <trace.jsonl>", cmd)
		}
		t, err := load(rest[0])
		if err != nil {
			return 2, err
		}
		switch cmd {
		case "summary":
			fmt.Print(traceanalysis.Summarize(t).Render())
		case "tree":
			fmt.Print(t.RenderTree())
		case "critpath":
			fmt.Print(traceanalysis.RenderCritPaths(traceanalysis.CritPaths(t)))
		case "attribute":
			fmt.Print(traceanalysis.Attribute(t).Render())
		}
		return 0, nil
	case "diff":
		fs := flag.NewFlagSet("tracetool diff", flag.ContinueOnError)
		exitZero := fs.Bool("exit-zero", false, "always exit 0, even when the traces differ")
		if err := fs.Parse(rest); err != nil {
			return 2, nil // FlagSet already printed the error
		}
		if fs.NArg() != 2 {
			return 2, fmt.Errorf("usage: tracetool diff [-exit-zero] <a.jsonl> <b.jsonl>")
		}
		a, err := load(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		b, err := load(fs.Arg(1))
		if err != nil {
			return 2, err
		}
		fmt.Printf("A = %s\nB = %s\n", fs.Arg(0), fs.Arg(1))
		d := traceanalysis.Diff(traceanalysis.Summarize(a), traceanalysis.Summarize(b))
		fmt.Print(d.Render())
		if d.HasDifferences() && !*exitZero {
			return 1, nil
		}
		return 0, nil
	case "flight":
		if len(rest) != 1 {
			return 2, fmt.Errorf("usage: tracetool flight <flight.jsonl>")
		}
		f, err := os.Open(rest[0])
		if err != nil {
			return 2, err
		}
		defer f.Close()
		d, err := traceanalysis.ParseFlight(f)
		if err != nil {
			return 2, fmt.Errorf("%s: %w", rest[0], err)
		}
		if len(d.Trace.Records) == 0 {
			return 2, fmt.Errorf("%s: flight dump has a header but no trace records", rest[0])
		}
		fmt.Print(d.Render())
		return 0, nil
	default:
		return 2, fmt.Errorf("unknown subcommand %q (want summary, tree, critpath, attribute, diff, or flight)", cmd)
	}
}

func load(path string) (*traceanalysis.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := traceanalysis.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// An empty (or record-free) trace would render as a zero-filled
	// report; fail loudly instead so scripts notice the missing data.
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("%s: trace contains no records", path)
	}
	return t, nil
}
