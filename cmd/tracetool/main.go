// Command tracetool analyzes the JSON-lines traces written by
// prospector -trace / experiments -trace.
//
// Usage:
//
//	tracetool summary   trace.jsonl         per-phase totals
//	tracetool tree      trace.jsonl         indented span tree
//	tracetool critpath  trace.jsonl         longest latency chain per round
//	tracetool attribute trace.jsonl         per-node energy / message shares
//	tracetool diff      a.jsonl b.jsonl     per-phase deltas, A = baseline
//
// All output is deterministic: the same trace bytes produce the same
// report bytes.
package main

import (
	"fmt"
	"os"

	"prospector/internal/traceanalysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: tracetool <summary|tree|critpath|attribute|diff> <trace.jsonl> [trace2.jsonl]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary", "tree", "critpath", "attribute":
		if len(rest) != 1 {
			return fmt.Errorf("usage: tracetool %s <trace.jsonl>", cmd)
		}
		t, err := load(rest[0])
		if err != nil {
			return err
		}
		switch cmd {
		case "summary":
			fmt.Print(traceanalysis.Summarize(t).Render())
		case "tree":
			fmt.Print(t.RenderTree())
		case "critpath":
			fmt.Print(traceanalysis.RenderCritPaths(traceanalysis.CritPaths(t)))
		case "attribute":
			fmt.Print(traceanalysis.Attribute(t).Render())
		}
		return nil
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("usage: tracetool diff <a.jsonl> <b.jsonl>")
		}
		a, err := load(rest[0])
		if err != nil {
			return err
		}
		b, err := load(rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("A = %s\nB = %s\n", rest[0], rest[1])
		fmt.Print(traceanalysis.Diff(traceanalysis.Summarize(a), traceanalysis.Summarize(b)).Render())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want summary, tree, critpath, attribute, or diff)", cmd)
	}
}

func load(path string) (*traceanalysis.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := traceanalysis.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
