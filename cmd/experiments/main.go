// Command experiments regenerates the paper's figures and in-text
// studies, printing each as a text table and optionally writing CSV
// files for plotting.
//
// Usage:
//
//	experiments [-fig all|3|4|5|7|8|9|samplesize|installcost|spatial|lossymedium|naivetradeoff] [-csv DIR] [-quick] [-plot]
//	            [-metrics FILE] [-trace FILE] [-listen ADDR] [-pprof ADDR|DIR] [-manifest FILE]
//	            [-flight FILE] [-flight-rules FILE] [-hold DURATION]
//
// -quick shrinks every experiment to a smoke-test scale (seconds
// instead of minutes).
//
// Each figure prints a per-phase cost breakdown (collection, trigger,
// request energy plus traffic and LP solver totals) under its table.
// -metrics additionally writes the whole run's metric exposition at
// exit ("-" for stdout); -trace streams JSON-lines trace events, one
// span per figure so tracetool can attribute work per experiment;
// -listen serves the live registry (/metrics in Prometheus text
// format, /snapshot.json, plus the telemetry surfaces /healthz,
// /readyz, and /debug/telemetry) while the sweep runs — the main use
// case for watching long sweeps; -pprof serves net/http/pprof (value
// with ":") or writes cpu.prof/heap.prof into a directory; -manifest
// writes the run ledger ("-" for stdout) — one JSON document with the
// run's flags, environment, final metrics, per-figure wall time, and
// (when -trace names a file) the trace-derived aggregates — the
// artifact `regress check` gates on.
//
// Live telemetry: a collector windows the registry's series, sampled
// once per finished figure (now = figure index) and, under -listen,
// once per second (wall clock, plus the go.* runtime bridge). -flight
// keeps a bounded ring of recent trace records and dumps them to FILE
// when a rule from -flight-rules (the regress JSON grammar, judged
// against the live windowed series) breaches; -hold keeps the -listen
// endpoints up for a grace period after the sweep completes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prospector/internal/experiments"
	"prospector/internal/ledger"
	"prospector/internal/obs"
	"prospector/internal/obs/telemetry"
	"prospector/internal/regress"
)

// telemetryWindow is how many ticks each windowed series retains;
// flightCapacity bounds the flight recorder's record ring. A full
// sweep samples once per figure plus once per second under -listen.
const (
	telemetryWindow = 256
	flightCapacity  = 4096
)

func main() {
	fig := flag.String("fig", "all", "which experiment to run: all, 3, 4, 5, 7, 8, 9, samplesize, installcost, spatial, lossymedium, naivetradeoff")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files into")
	quick := flag.Bool("quick", false, "shrink experiments to smoke-test scale")
	plot := flag.Bool("plot", false, "render an ASCII chart under each table")
	metrics := flag.String("metrics", "", "write the run's metric exposition here at exit ('-' for stdout)")
	traceOut := flag.String("trace", "", "stream JSON-lines trace events to this file ('-' for stdout)")
	listen := flag.String("listen", "", "serve live /metrics and /snapshot.json at this address for the run's lifetime")
	pprofArg := flag.String("pprof", "", "serve net/http/pprof at ADDR (contains ':') or write cpu/heap profiles into DIR")
	manifest := flag.String("manifest", "", "write the run manifest (JSON) here at exit ('-' for stdout)")
	flight := flag.String("flight", "", "dump the last retained trace records here when a live telemetry rule breaches")
	flightRls := flag.String("flight-rules", "", "JSON rules (regress grammar) judged against live windowed series")
	hold := flag.Duration("hold", 0, "keep the -listen endpoints up this long after the sweep completes")
	flag.Parse()
	startUnix := time.Now().Unix()

	ocli, err := obs.StartCLI(*metrics, *traceOut, *pprofArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Close exactly once: the manifest wants the tracer flushed before
	// it parses the trace file, but the deferred close must still cover
	// early exits.
	obsClosed := false
	closeObs := func() {
		if obsClosed {
			return
		}
		obsClosed = true
		if cerr := ocli.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
		}
	}
	defer closeObs()
	// The breakdown tables want a registry even when -metrics is off;
	// EnsureRegistry keeps every surface (exposition, manifest, live
	// telemetry) observing the same one.
	reg := ocli.EnsureRegistry()
	// Live telemetry: the collector windows the registry's series; the
	// flight ring taps the tracer (creating one if -trace is off) so a
	// breach can dump the recent records.
	var fl *telemetry.Flight
	if *flight != "" {
		fl = telemetry.NewFlight(flightCapacity)
		ocli.EnsureTracer(fl)
	}
	var rules []regress.Rule
	if *flightRls != "" {
		var err error
		if rules, err = telemetry.LoadRules(*flightRls); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	mon := telemetry.NewMonitor(telemetry.NewCollector(reg, telemetryWindow), fl, rules, *flight)
	if *listen != "" {
		bound, err := ocli.Serve(*listen, telemetry.Endpoints(mon.Collector())...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("serving /metrics, /snapshot.json, /healthz, /readyz, and /debug/telemetry on %s\n", bound)
		stopTicker := telemetry.StartTicker(mon, telemetry.NewRuntimeBridge(reg), time.Second)
		defer stopTicker()
	}
	experiments.SetObs(reg, ocli.Tracer())

	runs := map[string]func() (*experiments.Result, error){
		"3": func() (*experiments.Result, error) {
			cfg := experiments.DefaultFigure3Config()
			if *quick {
				// Shared with the CI regress gate and the manifest
				// determinism tests, so all three run the same workload.
				cfg = experiments.QuickFigure3Config()
			}
			return experiments.Figure3(cfg)
		},
		"4": func() (*experiments.Result, error) {
			cfg := experiments.DefaultFigure4Config()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, cfg.Trials = 24, 5, 8, 4, 1
				cfg.StdDevs = []float64{0.25, 2, 6, 12}
			}
			return experiments.Figure4(cfg)
		},
		"5": func() (*experiments.Result, error) {
			cfg := experiments.DefaultZonesConfig()
			if *quick {
				cfg.Zones, cfg.K, cfg.Background, cfg.Samples, cfg.Eval, cfg.Trials = 3, 5, 10, 8, 5, 1
				cfg.BudgetFracs = []float64{0.15, 0.3, 0.5}
			}
			return experiments.Figure5(cfg)
		},
		"7": func() (*experiments.Result, error) {
			cfg := experiments.DefaultZonesConfig()
			if *quick {
				cfg.K, cfg.Background, cfg.Samples, cfg.Eval, cfg.Trials = 4, 8, 6, 4, 1
			}
			return experiments.Figure7(cfg)
		},
		"8": func() (*experiments.Result, error) {
			cfg := experiments.DefaultFigure8Config()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, cfg.Trials = 18, 4, 5, 4, 1
				cfg.BudgetMults = []float64{1.05, 1.3, 1.6}
			}
			return experiments.Figure8(cfg)
		},
		"9": func() (*experiments.Result, error) {
			cfg := experiments.DefaultFigure9Config()
			if *quick {
				cfg.Trials = 1
				cfg.Lab.Epochs = 60
				cfg.SampleEpochs, cfg.SampleWindow, cfg.Eval = 20, 10, 10
				cfg.BudgetFracs = []float64{0.1, 0.3, 0.5}
			}
			return experiments.Figure9(cfg)
		},
		"samplesize": func() (*experiments.Result, error) {
			cfg := experiments.DefaultSampleSizeConfig()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Eval, cfg.Trials = 24, 5, 4, 1
				cfg.SampleCounts = []int{1, 5, 15, 30}
			}
			return experiments.SampleSizeStudy(cfg)
		},
		"installcost": func() (*experiments.Result, error) {
			cfg := experiments.DefaultInstallCostConfig()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Samples, cfg.Trials = 24, 5, 8, 1
			}
			return experiments.InstallCostStudy(cfg)
		},
		"spatial": func() (*experiments.Result, error) {
			cfg := experiments.DefaultSpatialStudyConfig()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, cfg.Trials = 24, 5, 8, 4, 1
				cfg.LengthScales = []float64{0, 20}
			}
			return experiments.SpatialStudy(cfg)
		},
		"naivetradeoff": func() (*experiments.Result, error) {
			cfg := experiments.DefaultNaiveTradeoffConfig()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Eval, cfg.Trials = 25, 5, 3, 1
				cfg.Batches = []int{1, 2, 5}
			}
			return experiments.NaiveTradeoffStudy(cfg)
		},
		"lossymedium": func() (*experiments.Result, error) {
			cfg := experiments.DefaultLossyMediumConfig()
			if *quick {
				cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, cfg.Trials = 20, 4, 6, 3, 1
				cfg.LossProbs = []float64{0, 0.3}
			}
			return experiments.LossyMediumStudy(cfg)
		},
	}
	order := []string{"3", "4", "5", "7", "8", "9", "samplesize", "installcost", "spatial", "lossymedium", "naivetradeoff"}

	var selected []string
	switch strings.ToLower(*fig) {
	case "all":
		selected = order
	default:
		if _, ok := runs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: all %s\n", *fig, strings.Join(order, " "))
			os.Exit(2)
		}
		selected = []string{*fig}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	wallSeconds := map[string]float64{}
	for i, id := range selected {
		start := time.Now()
		before := reg.Snapshot()
		// One span per figure on an index clock, so tracetool groups and
		// attributes the work per experiment.
		var fspan *obs.Span
		if tr := ocli.Tracer(); tr != nil {
			fspan = tr.StartSpan(nil, "experiment", float64(i), obs.F("fig", id))
			experiments.SetSpan(fspan)
		}
		res, err := runs[id]()
		if fspan != nil {
			experiments.SetSpan(nil)
			fspan.End(float64(i + 1))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *plot {
			fmt.Println(res.Plot(72, 20))
		}
		fmt.Println(experiments.Breakdown(before, reg.Snapshot()))
		wallSeconds[res.ID] = time.Since(start).Seconds()
		fmt.Printf("(%s took %.1fs)\n\n", res.ID, wallSeconds[res.ID])
		// One telemetry tick per finished figure: windowed deltas read
		// as per-figure costs, and the flight rules get judged between
		// figures rather than mid-sweep.
		if err := mon.Sample(float64(i)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, res.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := res.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if *hold > 0 && *listen != "" {
		fmt.Printf("holding endpoints for %s\n", *hold)
		time.Sleep(*hold)
	}

	if *manifest != "" {
		snap := reg.Snapshot()
		env := ledger.HostEnvironment(startUnix)
		env.WallSeconds = wallSeconds
		m := ledger.New("experiments", map[string]string{
			"fig":   *fig,
			"quick": fmt.Sprint(*quick),
			"trace": *traceOut,
		}, snap, env)
		// The tracer must flush before the trace file is parsed back.
		closeObs()
		if *traceOut != "" && *traceOut != "-" {
			if err := m.AttachTraceFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := ledger.WriteFile(*manifest, m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *manifest != "-" {
			fmt.Printf("wrote %s\n", *manifest)
		}
	}
}
