// Command query runs declarative top-k / selection queries against a
// simulated sensor network, either one-shot (-q) or as a small REPL on
// stdin. It demonstrates the TAG-style front end over the PROSPECTOR
// planners.
//
//	query -q "SELECT TOP 8 FROM sensors BUDGET 30% USING LP+LF"
//	query -q "SELECT MEDIAN(value) FROM sensors"
//	echo "SELECT TOP 5 FROM sensors EXACT" | query
//
// The network and workload are synthetic (seeded Gaussian field); use
// -nodes / -seed to vary them. Each query plans against the observation
// window and executes on a fresh epoch. -manifest writes the session's
// run ledger (engine + planner metrics) at exit for `regress check`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/ledger"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/query"
	"prospector/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		nodes    = flag.Int("nodes", 40, "network size")
		seed     = flag.Int64("seed", 1, "workload seed")
		warmup   = flag.Int("warmup", 15, "observation epochs before querying")
		oneShot  = flag.String("q", "", "run a single query and exit")
		manifest = flag.String("manifest", "", "write the run manifest (JSON) here at exit ('-' for stdout)")
	)
	flag.Parse()
	startUnix := time.Now().Unix()
	startWall := time.Now()

	rng := rand.New(rand.NewSource(*seed))
	net, err := network.Build(network.DefaultBuildConfig(*nodes), rng)
	if err != nil {
		return err
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(*nodes), rng)
	if err != nil {
		return err
	}
	eng, err := query.NewEngine(net, energy.DefaultModel(), 25)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *manifest != "" {
		reg = obs.NewRegistry()
		eng.SetObs(reg, nil)
		defer func() {
			if err != nil {
				return
			}
			env := ledger.HostEnvironment(startUnix)
			env.WallSeconds = map[string]float64{"run": time.Since(startWall).Seconds()}
			m := ledger.New("query", map[string]string{
				"nodes": fmt.Sprint(*nodes), "seed": fmt.Sprint(*seed),
				"warmup": fmt.Sprint(*warmup), "q": *oneShot,
			}, reg.Snapshot(), env)
			err = ledger.WriteFile(*manifest, m)
		}()
	}
	for e := 0; e < *warmup; e++ {
		if err := eng.Observe(src.Next()); err != nil {
			return err
		}
	}
	fmt.Printf("network %v; %d epochs observed\n", net, eng.Observations())

	execute := func(text string) {
		q, err := query.Parse(text)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		truth := src.Next()
		ans, err := eng.Run(q, truth)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		// Keep observing so standing queries adapt.
		if err := eng.Observe(truth); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		tag := "approximate"
		if ans.Exact {
			tag = "exact"
		}
		fmt.Printf("%s answer (%s; %s; %.1f mJ):\n", q.String(), tag, ans.Plan, ans.Ledger.Total())
		for i, v := range ans.Values {
			fmt.Printf("  #%-2d node %-3d = %.2f\n", i+1, v.Node, v.Val)
		}
		if q.Kind == query.TopK {
			fmt.Printf("  (ground-truth accuracy %.0f%%)\n", 100*exec.Accuracy(ans.Values, truth, q.K))
		}
	}

	if *oneShot != "" {
		execute(*oneShot)
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			fmt.Print("> ")
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			break
		}
		execute(line)
		fmt.Print("> ")
	}
	return sc.Err()
}
