package main

import (
	"os"
	"path/filepath"
	"testing"

	"prospector/internal/ledger"
	"prospector/internal/obs"
	"prospector/internal/regress"
)

// writeManifest stores a manifest whose gauges hold the given series.
func writeManifest(t *testing.T, path string, values map[string]float64) {
	t.Helper()
	reg := obs.NewRegistry()
	snap := reg.Snapshot()
	for k, v := range values {
		snap.Gauges[k] = v
	}
	m := ledger.New("test", nil, snap, ledger.Environment{})
	if err := ledger.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
}

func writeBaseline(t *testing.T, path string, b *regress.Baseline) {
	t.Helper()
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestExitCodes pins the CLI contract across record, check, and diff:
// 0 clean, 1 violations or differences, 2 usage and load errors.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	drifted := filepath.Join(dir, "drifted.json")
	sameAsGood := filepath.Join(dir, "same.json")
	writeManifest(t, good, map[string]float64{"energy": 100})
	writeManifest(t, sameAsGood, map[string]float64{"energy": 100})
	writeManifest(t, drifted, map[string]float64{"energy": 120})

	base := filepath.Join(dir, "base.json")
	writeBaseline(t, base, &regress.Baseline{
		Name:  "gate",
		Rules: []regress.Rule{{Series: "energy", Kind: "rel<=", Value: 100, Tolerance: 0.05}},
	})
	malformed := filepath.Join(dir, "malformed.json")
	if err := os.WriteFile(malformed, []byte(`{"name":"x","rules":[{"series":"s","kind":"bogus"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		args    []string
		code    int
		wantErr bool
	}{
		{"check pass", []string{"check", "-baseline", base, good}, 0, false},
		{"check violation", []string{"check", "-baseline", base, drifted}, 1, false},
		{"check violation exit-zero", []string{"check", "-baseline", base, "-exit-zero", drifted}, 0, false},
		{"check malformed baseline", []string{"check", "-baseline", malformed, good}, 2, true},
		{"check missing manifest", []string{"check", "-baseline", base, filepath.Join(dir, "nope.json")}, 2, true},
		{"check no baseline flag", []string{"check", good}, 2, true},
		{"diff identical", []string{"diff", good, sameAsGood}, 0, false},
		{"diff different", []string{"diff", good, drifted}, 1, false},
		{"diff different exit-zero", []string{"diff", "-exit-zero", good, drifted}, 0, false},
		{"diff missing operand", []string{"diff", good}, 2, true},
		{"unknown subcommand", []string{"bogus"}, 2, true},
		{"no args", nil, 2, true},
	}
	for _, c := range cases {
		code, err := run(c.args)
		if code != c.code || (err != nil) != c.wantErr {
			t.Errorf("%s: run(%v) = %d, %v; want %d, err=%v", c.name, c.args, code, err, c.code, c.wantErr)
		}
	}
}

// TestRecordRoundTrip drives record through the CLI: after recording
// from the drifted manifest, check against it passes.
func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	drifted := filepath.Join(dir, "drifted.json")
	writeManifest(t, drifted, map[string]float64{"energy": 120})
	base := filepath.Join(dir, "base.json")
	writeBaseline(t, base, &regress.Baseline{
		Name:  "gate",
		Rules: []regress.Rule{{Series: "energy", Kind: "rel<=", Value: 100, Tolerance: 0.05}},
	})

	if code, err := run([]string{"record", "-baseline", base, drifted}); code != 0 || err != nil {
		t.Fatalf("record = %d, %v", code, err)
	}
	if code, err := run([]string{"check", "-baseline", base, drifted}); code != 0 || err != nil {
		t.Fatalf("check after record = %d, %v", code, err)
	}
	b, err := regress.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rules[0].Value != 120 {
		t.Errorf("recorded value = %g, want 120", b.Rules[0].Value)
	}
	// Recording a series the manifest lacks is a load-level error.
	writeBaseline(t, base, &regress.Baseline{
		Name:  "gate",
		Rules: []regress.Rule{{Series: "ghost", Kind: "exact"}},
	})
	if code, err := run([]string{"record", "-baseline", base, drifted}); code != 2 || err == nil {
		t.Errorf("record of missing series = %d, %v; want 2 and an error", code, err)
	}
}
