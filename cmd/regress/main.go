// Command regress is the baseline regression gate over run manifests
// (the artifacts cmd/experiments and friends write with -manifest).
//
// Usage:
//
//	regress record -baseline B.json manifest.json    refresh B's expected values from a known-good run
//	regress check  -baseline B.json [-exit-zero] manifest.json   evaluate every rule; report violations
//	regress diff   [-exit-zero] a.json b.json        series-by-series manifest comparison
//
// check and diff exit 0 when clean, 1 on any violation or difference,
// and 2 on usage or load errors; -exit-zero keeps the report but
// forces a 0 exit (for informational CI steps). record rewrites the
// baseline file in place, preserving rule kinds, tolerances, and
// notes — only the recorded expectations move.
package main

import (
	"flag"
	"fmt"
	"os"

	"prospector/internal/ledger"
	"prospector/internal/regress"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
	}
	os.Exit(code)
}

// run executes one subcommand and returns the process exit code: 0
// clean, 1 violations or differences, 2 usage or load errors.
func run(args []string) (int, error) {
	if len(args) < 1 {
		return 2, fmt.Errorf("usage: regress <record|check|diff> ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "record":
		fs := flag.NewFlagSet("regress record", flag.ContinueOnError)
		basePath := fs.String("baseline", "", "baseline file to refresh (required)")
		if err := fs.Parse(rest); err != nil {
			return 2, nil // FlagSet already printed the error
		}
		if *basePath == "" || fs.NArg() != 1 {
			return 2, fmt.Errorf("usage: regress record -baseline B.json manifest.json")
		}
		base, m, err := loadPair(*basePath, fs.Arg(0))
		if err != nil {
			return 2, err
		}
		if err := regress.Record(base, m); err != nil {
			return 2, err
		}
		if err := base.WriteFile(*basePath); err != nil {
			return 2, err
		}
		fmt.Printf("regress: recorded %d rule(s) into %s\n", len(base.Rules), *basePath)
		return 0, nil
	case "check":
		fs := flag.NewFlagSet("regress check", flag.ContinueOnError)
		basePath := fs.String("baseline", "", "baseline file to check against (required)")
		exitZero := fs.Bool("exit-zero", false, "always exit 0, even on violations")
		if err := fs.Parse(rest); err != nil {
			return 2, nil // FlagSet already printed the error
		}
		if *basePath == "" || fs.NArg() != 1 {
			return 2, fmt.Errorf("usage: regress check -baseline B.json [-exit-zero] manifest.json")
		}
		base, m, err := loadPair(*basePath, fs.Arg(0))
		if err != nil {
			return 2, err
		}
		rep := regress.Check(base, m)
		fmt.Print(rep.Render())
		if !rep.OK() && !*exitZero {
			return 1, nil
		}
		return 0, nil
	case "diff":
		fs := flag.NewFlagSet("regress diff", flag.ContinueOnError)
		exitZero := fs.Bool("exit-zero", false, "always exit 0, even when the manifests differ")
		if err := fs.Parse(rest); err != nil {
			return 2, nil // FlagSet already printed the error
		}
		if fs.NArg() != 2 {
			return 2, fmt.Errorf("usage: regress diff [-exit-zero] a.json b.json")
		}
		a, err := ledger.ReadFile(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		b, err := ledger.ReadFile(fs.Arg(1))
		if err != nil {
			return 2, err
		}
		fmt.Printf("A = %s\nB = %s\n", fs.Arg(0), fs.Arg(1))
		d := regress.DiffManifests(a, b)
		fmt.Print(d.Render())
		if d.HasDifferences() && !*exitZero {
			return 1, nil
		}
		return 0, nil
	default:
		return 2, fmt.Errorf("unknown subcommand %q (want record, check, or diff)", cmd)
	}
}

// loadPair reads a baseline and a manifest together, the shared prelude
// of record and check.
func loadPair(basePath, manifestPath string) (*regress.Baseline, *ledger.Manifest, error) {
	base, err := regress.ReadFile(basePath)
	if err != nil {
		return nil, nil, err
	}
	m, err := ledger.ReadFile(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	return base, m, nil
}
