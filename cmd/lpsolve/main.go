// Command lpsolve solves a linear program described as JSON or MPS on
// stdin (or a file argument) using the internal revised-simplex solver,
// and prints the solution as JSON. It exists so the LP substrate can be
// exercised and debugged independently of the planners, and so models
// can be cross-checked against CPLEX-class solvers via MPS.
//
// Usage:
//
//	lpsolve [-mps] [-dump-mps out.mps] [-manifest FILE] [file]
//
// -manifest writes the run ledger (solver metrics: lp.* counters,
// pivot and timing histograms with derived quantiles) at exit.
//
// JSON input format:
//
//	{
//	  "maximize": true,
//	  "vars": [
//	    {"name": "x", "lo": 0, "hi": 4, "obj": 3},
//	    {"name": "y", "lo": 0, "obj": 5}          // hi omitted => +inf
//	  ],
//	  "constraints": [
//	    {"terms": [{"var": "y", "coef": 2}], "sense": "<=", "rhs": 12},
//	    {"terms": [{"var": "x", "coef": 3}, {"var": "y", "coef": 2}], "sense": "<=", "rhs": 18}
//	  ]
//	}
//
// Output:
//
//	{"status":"optimal","objective":36,"x":{"x":2,"y":6},"iterations":...}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"prospector/internal/ledger"
	"prospector/internal/lp"
	"prospector/internal/obs"
)

type inputVar struct {
	Name string   `json:"name"`
	Lo   *float64 `json:"lo"`
	Hi   *float64 `json:"hi"`
	Obj  float64  `json:"obj"`
}

type inputTerm struct {
	Var  string  `json:"var"`
	Coef float64 `json:"coef"`
}

type inputConstr struct {
	Terms []inputTerm `json:"terms"`
	Sense string      `json:"sense"`
	RHS   float64     `json:"rhs"`
}

type input struct {
	Maximize    bool          `json:"maximize"`
	Vars        []inputVar    `json:"vars"`
	Constraints []inputConstr `json:"constraints"`
}

type output struct {
	Status     string             `json:"status"`
	Objective  float64            `json:"objective"`
	X          map[string]float64 `json:"x,omitempty"`
	Iterations int                `json:"iterations"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lpsolve:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	mps := flag.Bool("mps", false, "read MPS instead of JSON")
	dumpMPS := flag.String("dump-mps", "", "also write the model as MPS to this path")
	manifest := flag.String("manifest", "", "write the run manifest (JSON) here at exit ('-' for stdout)")
	flag.Parse()
	startUnix := time.Now().Unix()
	startWall := time.Now()
	// The solver itself never reads clocks; the CLI injects one so
	// lp.solve_seconds gets real data (the manifest quarantines it).
	opts := lp.Options{}
	if *manifest != "" {
		opts.Obs = obs.NewRegistry()
		opts.Now = time.Now
		defer func() {
			if err != nil {
				return
			}
			env := ledger.HostEnvironment(startUnix)
			env.WallSeconds = map[string]float64{"run": time.Since(startWall).Seconds()}
			m := ledger.New("lpsolve", map[string]string{
				"mps": fmt.Sprint(*mps), "file": flag.Arg(0),
			}, opts.Obs.Snapshot(), env)
			err = ledger.WriteFile(*manifest, m)
		}()
	}
	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if *mps {
		m, err := lp.ReadMPS(r)
		if err != nil {
			return err
		}
		names := make(map[string]lp.VarID, m.NumVars())
		for j := 0; j < m.NumVars(); j++ {
			names[m.Name(lp.VarID(j))] = lp.VarID(j)
		}
		return solveAndPrint(m, names, *dumpMPS, opts)
	}
	var in input
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("parsing input: %w", err)
	}
	if len(in.Vars) == 0 {
		return fmt.Errorf("no variables")
	}

	m := lp.NewModel()
	if in.Maximize {
		m.Maximize()
	}
	ids := make(map[string]lp.VarID, len(in.Vars))
	for _, v := range in.Vars {
		if v.Name == "" {
			return fmt.Errorf("variable without a name")
		}
		if _, dup := ids[v.Name]; dup {
			return fmt.Errorf("duplicate variable %q", v.Name)
		}
		lo, hi := 0.0, lp.Inf
		if v.Lo != nil {
			lo = *v.Lo
		}
		if v.Hi != nil {
			hi = *v.Hi
		}
		id, err := m.AddVar(lo, hi, v.Obj, v.Name)
		if err != nil {
			return err
		}
		ids[v.Name] = id
	}
	for i, c := range in.Constraints {
		var sense lp.Sense
		switch c.Sense {
		case "<=", "le", "LE":
			sense = lp.LE
		case ">=", "ge", "GE":
			sense = lp.GE
		case "==", "=", "eq", "EQ":
			sense = lp.EQ
		default:
			return fmt.Errorf("constraint %d: unknown sense %q", i, c.Sense)
		}
		terms := make([]lp.Term, 0, len(c.Terms))
		for _, t := range c.Terms {
			id, ok := ids[t.Var]
			if !ok {
				return fmt.Errorf("constraint %d references unknown variable %q", i, t.Var)
			}
			terms = append(terms, lp.Term{Var: id, Coef: t.Coef})
		}
		if err := m.AddConstr(terms, sense, c.RHS); err != nil {
			return fmt.Errorf("constraint %d: %w", i, err)
		}
	}
	return solveAndPrint(m, ids, *dumpMPS, opts)
}

func solveAndPrint(m *lp.Model, ids map[string]lp.VarID, dumpMPS string, opts lp.Options) error {
	if dumpMPS != "" {
		f, err := os.Create(dumpMPS)
		if err != nil {
			return err
		}
		if err := lp.WriteMPS(f, m, "lpsolve"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	sol, err := m.Solve(opts)
	if err != nil {
		return err
	}
	out := output{Status: sol.Status.String(), Iterations: sol.Iterations}
	if sol.Status == lp.Optimal {
		out.Objective = sol.Objective
		out.X = make(map[string]float64, len(ids))
		for name, id := range ids {
			x := sol.X[id]
			if math.Abs(x) < 1e-11 {
				x = 0
			}
			out.X[name] = x
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
