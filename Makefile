# Developer entry points. `make check` is the full pre-commit gate.

GOFILES := $(shell find . -name '*.go' -not -path './.git/*')

.PHONY: check fmt vet build test race bench lint alloc

check: fmt vet build race lint

# gofmt -l prints nonconforming files; any output fails the target.
fmt:
	@out=$$(gofmt -l $(GOFILES)); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Project analyzer suite (internal/analysis): determinism, obsnilsafe,
# floatcmp, errchecklite, unitcheck, planfreeze, budgetflow, confine,
# lockcheck, goleak, alloccheck, suppress. `go run ./cmd/lint -list`
# describes each; also enforced by lint_test.go inside `go test ./...`.
lint:
	go run ./cmd/lint

# Runtime half of the //alloc:none contracts: every AllocsPerRun test
# pairing a static zero-alloc claim with measured behavior.
alloc:
	go test -run 'AllocFree|ZeroAlloc' -count=1 -v ./internal/obs/ ./internal/obs/telemetry/ ./internal/lp/ ./internal/sim/ ./internal/exec/ ./internal/core/

bench:
	go test -run xxx -bench 'ObsOverhead|SolveObs|ObsRegistry|SpanEmit|LabeledHandles|Manifest' -benchtime 0.3s ./internal/exec/ ./internal/lp/ ./internal/obs/ ./internal/ledger/
	go test -run xxx -bench 'TelemetryTick|FlightAppend' -benchmem -benchtime 0.3s ./internal/obs/telemetry/
	go test -run xxx -bench 'BenchmarkConfine|BenchmarkLockcheck|BenchmarkAlloccheck' -benchtime 0.3s .
