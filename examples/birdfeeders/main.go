// Birdfeeders reproduces the paper's motivating scenario: ornithologists
// place instrumented bird feeders in a forest and ask for the k feeders
// with the most bird landings. Territorial birds make feeder popularity
// negatively correlated inside each "contention zone" — a few feeders in
// a zone are busy while the rest sit idle, and which ones are busy
// changes day to day.
//
// The example shows why local filtering matters: PROSPECTOR LP+LF
// visits whole zones and filters each down to its winners, while
// PROSPECTOR LP-LF must gamble on specific feeders.
//
//	go run ./examples/birdfeeders
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

func main() {
	const (
		zones      = 6
		k          = 8  // feeders wanted; also feeders per zone
		background = 23 // relay feeders outside the contention zones
	)
	rng := rand.New(rand.NewSource(7))
	nodes := 1 + background + zones*k

	// Feeders cluster around the forest perimeter; the field station
	// (root) sits in the middle.
	bcfg := network.DefaultBuildConfig(nodes)
	pos, zoneOf := network.ZonePlacement(bcfg, zones, k, rng)
	net, err := network.FromPositions(pos, bcfg.Range*1.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest: %v, %d zones of %d feeders\n", net, zones, k)

	// Territorial landings: each day exactly one or two feeders per
	// zone attract almost all the birds.
	zcfg := workload.DefaultZoneConfig(nodes, zones, k, zoneOf)
	zcfg.Territorial = true
	src, err := workload.NewZoneField(zcfg, rng)
	if err != nil {
		log.Fatal(err)
	}

	samples := sample.MustNewSet(nodes, k, 0)
	if err := samples.AddAll(workload.Draw(src, 15)); err != nil {
		log.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := core.Config{Net: net, Costs: costs, Samples: samples, K: k}
	env := exec.Env{Net: net, Costs: costs}

	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		log.Fatal(err)
	}
	budget := 0.55 * naive.CollectionCost(net, costs)
	fmt.Printf("energy budget: %.1f mJ (55%% of NAIVE-%d)\n\n", budget, k)

	withLF, err := core.NewLPFilter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	withoutLF, err := core.NewLPNoFilter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	days := workload.Draw(src, 12)
	for _, planner := range []core.Planner{withLF, withoutLF} {
		p, err := planner.Plan(budget)
		if err != nil {
			log.Fatal(err)
		}
		acc, cost := 0.0, 0.0
		for _, day := range days {
			res, err := exec.Run(env, p, day)
			if err != nil {
				log.Fatal(err)
			}
			acc += res.Accuracy(day, k)
			cost += res.Ledger.Total()
		}
		n := float64(len(days))
		fmt.Printf("%-6s found %.0f%% of the busiest feeders for %.1f mJ/day (%d feeders visited)\n",
			planner.Name(), 100*acc/n, cost/n, p.Participants()-1)
	}
	fmt.Println("\nlocal filtering visits whole zones cheaply and forwards only each zone's winners")
}
