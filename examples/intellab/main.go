// Intellab replays the paper's Intel Berkeley Research Lab experiment
// on the synthetic reconstruction of that dataset: 54 motes on a lab
// floor plan reporting temperatures, radio range shortened to force a
// deep spanning tree, the first epochs kept as planning samples, and
// top-k queries run over the following epochs.
//
// It demonstrates the streaming workflow: the exploration/exploitation
// Collector decides when to pay for a full-network sample, the planner
// is re-run when the window changes enough, and PROSPECTOR EXACT spot-
// checks the approximate results (the paper's re-sampling policy).
//
//	go run ./examples/intellab
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

func main() {
	const k = 10
	rng := rand.New(rand.NewSource(11))

	labCfg := workload.DefaultIntelLabConfig()
	labCfg.Epochs = 120
	lab, err := workload.NewIntelLab(labCfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	net, err := lab.Network()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lab deployment: %v (radio range %.0f m)\n", net, labCfg.RadioRange)

	model := energy.DefaultModel()
	costs := plan.NewCosts(net, model)
	env := exec.Env{Net: net, Costs: costs}

	// Seed the sample window from the first 30 epochs, keeping 15.
	samples := sample.MustNewSet(lab.Size(), k, 15)
	collector, err := sample.NewCollector(samples, net, model, 0.5, rng)
	if err != nil {
		log.Fatal(err)
	}
	for e := 0; e < 30; e++ {
		if _, err := collector.Observe(lab.Epoch(e)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collected %d samples for %.0f mJ during warm-up\n",
		samples.Len(), collector.EnergySpent())

	cfg := core.Config{Net: net, Costs: costs, Samples: samples, K: k}
	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		log.Fatal(err)
	}
	naiveCost := naive.CollectionCost(net, costs)
	budget := 0.25 * naiveCost

	planner, err := core.NewLPNoFilter(cfg) // LP+LF adds nothing here (Figure 9)
	if err != nil {
		log.Fatal(err)
	}
	p, err := planner.Plan(budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %v under %.1f mJ (NAIVE-%d costs %.1f mJ)\n\n", p, budget, k, naiveCost)

	spent, acc := 0.0, 0.0
	queries := 0
	for e := 30; e < 90; e++ {
		truth := lab.Epoch(e)
		res, err := exec.Run(env, p, truth)
		if err != nil {
			log.Fatal(err)
		}
		spent += res.Ledger.Total()
		acc += res.Accuracy(truth, k)
		queries++
		if e%30 == 10 {
			// Periodic spot check with the exact two-phase algorithm,
			// implementing the paper's re-sampling trigger. The PROOF
			// linear program grows with samples x nodes x depth, so the
			// check plans over a trimmed window — knowledge quality
			// only affects its cost, never its correctness.
			spotSamples := sample.MustNewSet(lab.Size(), k, 4)
			for j := samples.Len() - 4; j < samples.Len(); j++ {
				if j >= 0 {
					if err := spotSamples.Add(samples.Values(j)); err != nil {
						log.Fatal(err)
					}
				}
			}
			spotCfg := cfg
			spotCfg.Samples = spotSamples
			ex, err := core.NewExact(spotCfg)
			if err != nil {
				log.Fatal(err)
			}
			ep, err := ex.Planner().Plan(ex.MinPhase1Budget() * 1.1)
			if err != nil {
				log.Fatal(err)
			}
			chk, err := ex.RunWithPlan(env, ep, truth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %2d: exact spot check proved %d/%d in phase 1 (%.0f mJ total)\n",
				e, chk.ProvenPhase1, k, chk.Total())
			if chk.ProvenPhase1 < k/2 {
				if err := collector.SetRate(0.8); err != nil {
					log.Fatal(err)
				}
				fmt.Println("          accuracy low; raising sampling rate")
			}
		}
	}
	fmt.Printf("\nover %d epochs: mean %.1f mJ per query, %.1f%% accuracy (NAIVE-%d would spend %.1f mJ each)\n",
		queries, spent/float64(queries), 100*acc/float64(queries), k, naiveCost)
}
