// Budgetsweep shows the energy-accuracy dial the linear-programming
// framework provides: the same network and samples planned under a
// range of energy budgets, for all three approximate PROSPECTORs, with
// the exact algorithms' costs for reference. It also demonstrates
// planning under transient link failures (Section 4.4): per-edge
// failure statistics inflate edge costs before optimization, and the
// execution simulates the reroutes.
//
//	go run ./examples/budgetsweep
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

func main() {
	const (
		nodes = 60
		k     = 10
	)
	rng := rand.New(rand.NewSource(5))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	samples := sample.MustNewSet(nodes, k, 0)
	if err := samples.AddAll(workload.Draw(src, 15)); err != nil {
		log.Fatal(err)
	}

	// Transient failures: every edge fails 5-15% of the time and a
	// reroute costs 60% extra. Planning sees the inflated costs.
	failProb := make([]float64, nodes)
	for i := 1; i < nodes; i++ {
		failProb[i] = 0.05 + 0.10*rng.Float64()
	}
	const reroute = 0.6
	model := energy.DefaultModel()
	costs := plan.NewCosts(net, model)
	if err := costs.InflateForFailures(failProb, reroute); err != nil {
		log.Fatal(err)
	}
	env := exec.Env{
		Net:   net,
		Costs: plan.NewCosts(net, model), // execution charges base costs...
		Failures: &exec.FailureModel{ // ...plus simulated reroutes
			Prob: failProb, RerouteFactor: reroute, Rng: rng,
		},
	}

	cfg := core.Config{Net: net, Costs: costs, Samples: samples, K: k}
	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		log.Fatal(err)
	}
	naiveCost := naive.CollectionCost(net, costs)
	truth := workload.Draw(src, 10)

	planners := []core.Planner{}
	if g, err := core.NewGreedy(cfg); err == nil {
		planners = append(planners, g)
	}
	if l, err := core.NewLPNoFilter(cfg); err == nil {
		planners = append(planners, l)
	}
	if f, err := core.NewLPFilter(cfg); err == nil {
		planners = append(planners, f)
	}

	fmt.Printf("%-8s", "budget")
	for _, pl := range planners {
		fmt.Printf(" %16s", pl.Name())
	}
	fmt.Println()
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.45, 0.65} {
		budget := frac * naiveCost
		fmt.Printf("%6.0f%% ", 100*frac)
		for _, pl := range planners {
			p, err := pl.Plan(budget)
			if err != nil {
				log.Fatal(err)
			}
			cost, acc := 0.0, 0.0
			for _, vals := range truth {
				res, err := exec.Run(env, p, vals)
				if err != nil {
					log.Fatal(err)
				}
				cost += res.Ledger.Total()
				acc += res.Accuracy(vals, k)
			}
			n := float64(len(truth))
			fmt.Printf("  %5.1fmJ/%4.0f%%", cost/n, 100*acc/n)
		}
		fmt.Println()
	}
	fmt.Printf("\nexact baselines: NAIVE-%d %.1f mJ", k, naiveCost)
	res, err := exec.NaiveOne(env, truth[0], k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("; NAIVE-1 %.1f mJ in %d messages\n", res.Ledger.Total(), res.Ledger.Messages)
}
