// Aggregates demonstrates the TAG-style in-network aggregation layer
// the paper builds on: MAX/AVG/COUNT computed with one fixed-size
// message per node, and MEDIAN via mergeable q-digest summaries
// (Shrivastava et al., the paper's reference [14]) — contrasted with
// what a top-k query over the same network costs.
//
//	go run ./examples/aggregates
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"prospector/internal/aggregate"
	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

func main() {
	const (
		nodes = 120
		k     = 10
	)
	rng := rand.New(rand.NewSource(21))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	truth := src.Next()
	env := exec.Env{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel())}
	fmt.Printf("network: %v\n\n", net)

	for _, kind := range []aggregate.Kind{aggregate.Max, aggregate.Avg, aggregate.Count, aggregate.Median} {
		// A higher q-digest compression tightens the median's rank
		// bound (logU*n/k) at the price of larger summaries.
		res, err := aggregate.Collect(env, kind, truth, aggregate.Options{Compression: 40})
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if kind == aggregate.Median {
			sorted := append([]float64(nil), truth...)
			sort.Float64s(sorted)
			note = fmt.Sprintf("  (true %.2f; q-digest rank error <= %d, %d entries at root)",
				sorted[len(sorted)/2], res.RankErrorBound, res.DigestSize)
		}
		fmt.Printf("%-6s = %8.2f   for %6.1f mJ in %d messages%s\n",
			kind, res.Value, res.Ledger.Total(), res.Ledger.Messages, note)
	}

	// For contrast: what the sampled top-k machinery pays on the same
	// epoch.
	samples := sample.MustNewSet(nodes, k, 0)
	if err := samples.AddAll(workload.Draw(src, 12)); err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{Net: net, Costs: env.Costs, Samples: samples, K: k}
	lf, err := core.NewLPFilter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		log.Fatal(err)
	}
	p, err := lf.Plan(0.3 * naive.CollectionCost(net, env.Costs))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exec.Run(env, p, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTOP-%d (LP+LF @30%% budget) = %.0f%% accurate for %.1f mJ in %d messages\n",
		k, 100*res.Accuracy(truth, k), res.Ledger.Total(), res.Ledger.Messages)
	fmt.Printf("NAIVE-%d exact top-k would cost %.1f mJ\n", k, naive.CollectionCost(net, env.Costs))
	fmt.Println("\naggregates must visit every node but compress in-network to one bounded message each;")
	fmt.Println("top-k answers live at specific nodes, which is what makes budgeted planning pay")
}
