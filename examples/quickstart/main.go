// Quickstart: plan and execute an approximate top-k query over a
// simulated sensor network in ~40 lines of code.
//
// It walks the canonical pipeline: build a network, collect samples of
// past readings, plan with PROSPECTOR LP+LF under an energy budget,
// execute the plan on a fresh epoch, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

func main() {
	const (
		nodes = 50
		k     = 8
	)
	rng := rand.New(rand.NewSource(42))

	// 1. Deploy: 50 motes in a 100x100 m field, min-hop spanning tree.
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", net)

	// 2. Observe: readings come from per-node Gaussian distributions;
	//    keep 15 full-network samples for planning.
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	samples := sample.MustNewSet(nodes, k, 0)
	if err := samples.AddAll(workload.Draw(src, 15)); err != nil {
		log.Fatal(err)
	}

	// 3. Plan: PROSPECTOR LP+LF with a budget of 30% of what the exact
	//    NAIVE-k algorithm would spend.
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := core.Config{Net: net, Costs: costs, Samples: samples, K: k}
	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		log.Fatal(err)
	}
	budget := 0.3 * naive.CollectionCost(net, costs)
	planner, err := core.NewLPFilter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p, err := planner.Plan(budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %v within %.1f mJ budget\n", p, budget)

	// 4. Execute on a fresh epoch and compare with the truth.
	truth := src.Next()
	res, err := exec.Run(exec.Env{Net: net, Costs: costs}, p, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spent %.1f mJ, accuracy %.0f%% of the true top %d\n",
		res.Ledger.Total(), 100*res.Accuracy(truth, k), k)
	for i, v := range res.Returned {
		if i == k {
			break
		}
		fmt.Printf("  #%d node %d = %.2f\n", i+1, v.Node, v.Val)
	}
}
