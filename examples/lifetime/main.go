// Lifetime uses the discrete-event mote simulator to answer the
// question the whole paper is about: how much longer does the network
// live under budgeted approximate plans than under the exact NAIVE-k
// baseline?
//
// Each node starts with the same battery budget. Every epoch the query
// runs through the simulator, which meters each radio individually
// (senders pay more than receivers, relays pay most of all). The
// network is "dead" when the first participating node's battery
// empties — the hot-relay problem every real deployment hits.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/sim"
	"prospector/internal/workload"
)

func main() {
	const (
		nodes     = 50
		k         = 8
		batteryMJ = 4000.0
	)
	rng := rand.New(rand.NewSource(3))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		log.Fatal(err)
	}
	samples := sample.MustNewSet(nodes, k, 0)
	if err := samples.AddAll(workload.Draw(src, 15)); err != nil {
		log.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := core.Config{Net: net, Costs: costs, Samples: samples, K: k}

	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := core.NewLPFilter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	budgeted, err := planner.Plan(0.3 * naive.CollectionCost(net, costs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %v, battery %.0f mJ per node\n\n", net, batteryMJ)
	for _, tc := range []struct {
		name string
		p    *plan.Plan
	}{
		{"NAIVE-k (exact)", naive},
		{"LP+LF @30% budget", budgeted},
	} {
		epochs, hotNode, acc := runUntilDead(net, tc.p, src, batteryMJ, k)
		fmt.Printf("%-18s lifetime %4d epochs; first dead node %2d (depth %d); mean accuracy %.0f%%\n",
			tc.name, epochs, hotNode, net.Depth(hotNode), 100*acc)
	}
	fmt.Println("\nthe budgeted plan trades some accuracy for a substantially longer lifetime,")
	fmt.Println("and the first battery to die sits at or next to the root, where traffic converges")
}

// runUntilDead replays epochs through the simulator until some node's
// cumulative energy exceeds the battery, returning the epoch count, the
// first dead node, and the mean accuracy.
func runUntilDead(net *network.Network, p *plan.Plan, src workload.Source, battery float64, k int) (int, network.NodeID, float64) {
	spent := make([]float64, net.Size())
	cfg := sim.DefaultConfig(net)
	accSum := 0.0
	for epoch := 1; ; epoch++ {
		truth := src.Next()
		res, err := sim.Run(cfg, p, truth)
		if err != nil {
			log.Fatal(err)
		}
		accSum += exec.Accuracy(res.Returned, truth, k)
		for i, e := range res.NodeEnergy {
			spent[i] += e
			if spent[i] >= battery {
				return epoch, network.NodeID(i), accSum / float64(epoch)
			}
		}
	}
}
