// Lint gate: running the analyzer suite inside `go test ./...` makes
// tier-1 the enforcement point — a determinism, obsnilsafe, floatcmp,
// errchecklite, or suppress finding anywhere in the tree fails the
// build, not just `make lint`.
package prospector

import (
	"strings"
	"testing"

	"prospector/internal/analysis"
)

func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lint type-checks the whole repository; skipped with -short")
	}
	pkgs, err := analysis.LoadDir(".")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags := analysis.Run(pkgs, analysis.Suite())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("reproduce with `go run ./cmd/lint`; silence a finding with `//lint:ignore <check> <reason>` plus justification")
	}
}

// TestLoadDirWorkersDeterministic pins the contract that worker count
// only changes wall-clock, never output: package order, check output,
// and positions are identical for serial and parallel loads.
func TestLoadDirWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole repository twice; skipped with -short")
	}
	serial, err := analysis.LoadDirWorkers(".", 1)
	if err != nil {
		t.Fatalf("serial load: %v", err)
	}
	parallel, err := analysis.LoadDirWorkers(".", 8)
	if err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial load found %d packages, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Path != parallel[i].Path {
			t.Errorf("package %d: serial %s, parallel %s", i, serial[i].Path, parallel[i].Path)
		}
	}
	sd := analysis.RunWorkers(serial, analysis.Suite(), 1)
	pd := analysis.RunWorkers(parallel, analysis.Suite(), 8)
	if len(sd) != len(pd) {
		t.Fatalf("serial run produced %d diagnostics, parallel %d", len(sd), len(pd))
	}
	for i := range sd {
		if sd[i] != pd[i] {
			t.Errorf("diagnostic %d differs: serial %s, parallel %s", i, sd[i], pd[i])
		}
	}
}

// BenchmarkLoadRepo measures the load stage (parse + type-check of the
// whole module, stdlib through the source importer) serial vs parallel.
func BenchmarkLoadRepo(b *testing.B) {
	for _, bm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.LoadDirWorkers(".", bm.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLintRepo measures the check stage alone: the repository is
// loaded once outside the timer, then the full suite runs over it with
// one worker vs the machine's worth.
func BenchmarkLintRepo(b *testing.B) {
	pkgs, err := analysis.LoadDir(".")
	if err != nil {
		b.Fatalf("loading repository: %v", err)
	}
	for _, bm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bm.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				analysis.RunWorkers(pkgs, analysis.Suite(), bm.workers)
			}
		})
	}
}

// benchmarkOneCheck times a single check end to end over the
// pre-loaded repository. Each iteration goes through RunWorkers with a
// fresh Program, so the cost includes rebuilding the check's
// interprocedural world (call graph included) — the price one
// incremental lint run actually pays.
func benchmarkOneCheck(b *testing.B, name string) {
	pkgs, err := analysis.LoadDir(".")
	if err != nil {
		b.Fatalf("loading repository: %v", err)
	}
	checks, err := analysis.SelectChecks(analysis.Suite(), []string{name})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.RunWorkers(pkgs, checks, 0)
	}
}

// BenchmarkConfine measures the goroutine-confinement analysis:
// directive scan, escape-site walk, and the leak-mask fixpoint.
func BenchmarkConfine(b *testing.B) { benchmarkOneCheck(b, "confine") }

// BenchmarkLockcheck measures the lock-discipline analysis: the
// per-function may/must dataflows plus the guarded-by call-site pass.
func BenchmarkLockcheck(b *testing.B) { benchmarkOneCheck(b, "lockcheck") }

// BenchmarkAlloccheck measures the allocation-discipline analysis:
// directive scan, per-function allocation-site classification with the
// escape approximation, and the BFS from every //alloc:none root.
func BenchmarkAlloccheck(b *testing.B) { benchmarkOneCheck(b, "alloccheck") }

// TestConcurrencyChecksRerunDeterministic pins byte determinism of the
// interprocedural checks specifically: independent runs (fresh
// interprocedural worlds each time) at different worker counts must
// render the identical diagnostic stream.
func TestConcurrencyChecksRerunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole repository; skipped with -short")
	}
	pkgs, err := analysis.LoadDir(".")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	checks, err := analysis.SelectChecks(analysis.Suite(), []string{"confine", "lockcheck", "goleak", "alloccheck"})
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		var buf strings.Builder
		if err := analysis.WriteText(&buf, analysis.RunWorkers(pkgs, checks, workers)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render(1)
	for run, workers := range []int{8, 1, 0} {
		if got := render(workers); got != first {
			t.Errorf("re-run %d (workers=%d) diverged:\n--- first\n%s\n--- got\n%s", run, workers, first, got)
		}
	}
}
