// Lint gate: running the analyzer suite inside `go test ./...` makes
// tier-1 the enforcement point — a determinism, obsnilsafe, floatcmp,
// errchecklite, or suppress finding anywhere in the tree fails the
// build, not just `make lint`.
package prospector

import (
	"testing"

	"prospector/internal/analysis"
)

func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lint type-checks the whole repository; skipped with -short")
	}
	pkgs, err := analysis.LoadDir(".")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags := analysis.Run(pkgs, analysis.Suite())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("reproduce with `go run ./cmd/lint`; silence a finding with `//lint:ignore <check> <reason>` plus justification")
	}
}
