// Cross-module integration tests: full pipelines from deployment
// through sampling, planning, execution, and verification, combining
// modules the way downstream users would.
package prospector

import (
	"math"
	"math/rand"
	"testing"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

// TestExactAgreesWithNaiveBaselines cross-checks three independent
// exact algorithms (PROSPECTOR EXACT, NAIVE-k, NAIVE-1) on the same
// epochs: all must return identical answers.
func TestExactAgreesWithNaiveBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		nodes := 25 + rng.Intn(20)
		k := 3 + rng.Intn(6)
		net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
		if err != nil {
			t.Fatal(err)
		}
		set := sample.MustNewSet(nodes, k, 0)
		if err := set.AddAll(workload.Draw(src, 6)); err != nil {
			t.Fatal(err)
		}
		costs := plan.NewCosts(net, energy.DefaultModel())
		cfg := core.Config{Net: net, Costs: costs, Samples: set, K: k}
		env := exec.Env{Net: net, Costs: costs}

		ex, err := core.NewExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		exPlan, err := ex.Planner().Plan(ex.MinPhase1Budget() * 1.3)
		if err != nil {
			t.Fatal(err)
		}
		nk, err := core.NaiveKPlan(net, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := src.Next()

		exRes, err := ex.RunWithPlan(env, exPlan, truth)
		if err != nil {
			t.Fatal(err)
		}
		nkRes, err := exec.Run(env, nk, truth)
		if err != nil {
			t.Fatal(err)
		}
		n1Res, err := exec.NaiveOne(env, truth, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			a := exRes.Answer[i].Node
			b := nkRes.Returned[i].Node
			c := n1Res.Returned[i].Node
			if a != b || b != c {
				t.Fatalf("trial %d rank %d: Exact=%d NaiveK=%d Naive1=%d", trial, i, a, b, c)
			}
		}
	}
}

// TestPipelineUnderFailures runs planning with failure-inflated costs
// and execution with simulated reroutes; results must stay exact for
// proof plans (reliable protocol) and the energy ledger must grow.
func TestPipelineUnderFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const (
		nodes = 30
		k     = 5
	)
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, 6)); err != nil {
		t.Fatal(err)
	}
	failProb := make([]float64, nodes)
	for i := 1; i < nodes; i++ {
		failProb[i] = 0.3
	}
	const reroute = 0.8
	model := energy.DefaultModel()
	planCosts := plan.NewCosts(net, model)
	if err := planCosts.InflateForFailures(failProb, reroute); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Net: net, Costs: planCosts, Samples: set, K: k}
	ex, err := core.NewExact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ex.Planner().Plan(ex.MinPhase1Budget() * 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cleanEnv := exec.Env{Net: net, Costs: plan.NewCosts(net, model)}
	faultyEnv := exec.Env{
		Net:   net,
		Costs: plan.NewCosts(net, model),
		Failures: &exec.FailureModel{
			Prob: failProb, RerouteFactor: reroute, Rng: rand.New(rand.NewSource(33)),
		},
	}
	truth := src.Next()
	clean, err := ex.RunWithPlan(cleanEnv, p, truth)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := ex.RunWithPlan(faultyEnv, p, truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Answer {
		if clean.Answer[i].Node != faulty.Answer[i].Node {
			t.Fatalf("failures changed the exact answer at rank %d", i)
		}
	}
	if faulty.Total() <= clean.Total() {
		t.Errorf("failure run cost %.1f not above clean %.1f", faulty.Total(), clean.Total())
	}
	// Planning saw inflated costs: the plan's static cost under the
	// inflated table exceeds its cost under the base table.
	if p.CollectionCost(net, planCosts) <= p.CollectionCost(net, cleanEnv.Costs) {
		t.Error("cost inflation had no effect")
	}
}

// TestCollectorDrivenPipeline feeds a stream through the
// exploration/exploitation collector and plans from whatever window it
// gathered — the deployment workflow of Section 3.
func TestCollectorDrivenPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const (
		nodes = 30
		k     = 6
	)
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	model := energy.DefaultModel()
	set := sample.MustNewSet(nodes, k, 10)
	col, err := sample.NewCollector(set, net, model, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 40; e++ {
		if _, err := col.Observe(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if set.Len() == 0 {
		t.Fatal("collector gathered nothing at rate 0.4 over 40 epochs")
	}
	if set.Len() > 10 {
		t.Fatalf("window overflow: %d", set.Len())
	}
	if col.EnergySpent() <= 0 {
		t.Error("sampling energy not accounted")
	}
	costs := plan.NewCosts(net, model)
	cfg := core.Config{Net: net, Costs: costs, Samples: set, K: k}
	lf, err := core.NewLPFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nk, err := core.NaiveKPlan(net, k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lf.Plan(0.4 * nk.CollectionCost(net, costs))
	if err != nil {
		t.Fatal(err)
	}
	env := exec.Env{Net: net, Costs: costs}
	acc := 0.0
	const epochs = 8
	for e := 0; e < epochs; e++ {
		truth := src.Next()
		res, err := exec.Run(env, p, truth)
		if err != nil {
			t.Fatal(err)
		}
		acc += res.Accuracy(truth, k)
	}
	if acc/epochs < 0.4 {
		t.Errorf("collector-driven plan accuracy %.2f", acc/epochs)
	}
}

// TestIntelLabEndToEnd replays the Figure 9 pipeline on the synthetic
// lab data at test scale and sanity-checks the paper's headline claim:
// approximate planning is several times cheaper than NAIVE-k at high
// accuracy.
func TestIntelLabEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	labCfg := workload.DefaultIntelLabConfig()
	labCfg.Epochs = 80
	lab, err := workload.NewIntelLab(labCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := lab.Network()
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	set := sample.MustNewSet(lab.Size(), k, 15)
	for e := 0; e < 30; e++ {
		if err := set.Add(lab.Epoch(e)); err != nil {
			t.Fatal(err)
		}
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := core.Config{Net: net, Costs: costs, Samples: set, K: k}
	env := exec.Env{Net: net, Costs: costs}
	nk, err := core.NaiveKPlan(net, k)
	if err != nil {
		t.Fatal(err)
	}
	naiveCost := nk.CollectionCost(net, costs)
	lp, err := core.NewLPNoFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lp.Plan(0.3 * naiveCost)
	if err != nil {
		t.Fatal(err)
	}
	acc, cost := 0.0, 0.0
	const epochs = 20
	for e := 30; e < 30+epochs; e++ {
		truth := lab.Epoch(e)
		res, err := exec.Run(env, p, truth)
		if err != nil {
			t.Fatal(err)
		}
		acc += res.Accuracy(truth, k)
		cost += res.Ledger.Total()
	}
	acc /= epochs
	cost /= epochs
	if acc < 0.7 {
		t.Errorf("lab accuracy %.2f below 0.7 at 30%% budget", acc)
	}
	if ratio := naiveCost / cost; ratio < 2 {
		t.Errorf("Naive-k only %.1fx the approximate cost", ratio)
	}
}

// TestDeterminism: identical seeds must give identical plans and
// executions across the whole pipeline.
func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		rng := rand.New(rand.NewSource(36))
		net, err := network.Build(network.DefaultBuildConfig(30), rng)
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(30), rng)
		if err != nil {
			t.Fatal(err)
		}
		set := sample.MustNewSet(30, 5, 0)
		if err := set.AddAll(workload.Draw(src, 8)); err != nil {
			t.Fatal(err)
		}
		costs := plan.NewCosts(net, energy.DefaultModel())
		cfg := core.Config{Net: net, Costs: costs, Samples: set, K: 5}
		lf, err := core.NewLPFilter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := lf.Plan(30)
		if err != nil {
			t.Fatal(err)
		}
		truth := src.Next()
		res, err := exec.Run(exec.Env{Net: net, Costs: costs}, p, truth)
		if err != nil {
			t.Fatal(err)
		}
		return res.Ledger.Total(), res.Accuracy(truth, 5)
	}
	c1, a1 := run()
	c2, a2 := run()
	if math.Abs(c1-c2) > 1e-12 || math.Abs(a1-a2) > 1e-12 {
		t.Errorf("non-deterministic pipeline: (%g,%g) vs (%g,%g)", c1, a1, c2, a2)
	}
}

// TestRepairAndReplan exercises the permanent-failure workflow of
// Section 4.4: nodes die, the tree is rebuilt without them, the sample
// window is projected onto the survivors, and planning resumes.
func TestRepairAndReplan(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	cfgNet := network.DefaultBuildConfig(40)
	net, err := network.Build(cfgNet, rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	set := sample.MustNewSet(40, k, 0)
	if err := set.AddAll(workload.Draw(src, 10)); err != nil {
		t.Fatal(err)
	}
	// Three nodes fail permanently.
	dead := []network.NodeID{5, 17, 29}
	repaired, mapping, err := network.Repair(net, dead, cfgNet.Range*1.6)
	if err != nil {
		t.Fatal(err)
	}
	projected, err := set.Project(mapping)
	if err != nil {
		t.Fatal(err)
	}
	costs := plan.NewCosts(repaired, energy.DefaultModel())
	cfg := core.Config{Net: repaired, Costs: costs, Samples: projected, K: k}
	lf, err := core.NewLPFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lf.Plan(40)
	if err != nil {
		t.Fatal(err)
	}
	// Execute on projected ground truth.
	env := exec.Env{Net: repaired, Costs: costs}
	truth := src.Next()
	proj := make([]float64, repaired.Size())
	for old, m := range mapping {
		if m >= 0 {
			proj[m] = truth[old]
		}
	}
	res, err := exec.Run(env, p, proj)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(proj, k); acc < 0.3 {
		t.Errorf("post-repair accuracy %.2f", acc)
	}
}
