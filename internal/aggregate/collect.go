package aggregate

import (
	"fmt"
	"math"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
)

// Kind selects the aggregate computed in-network.
type Kind int

// Supported aggregates. The first five use exact TAG partial-state
// records (constant size); Median and Quantile use q-digest summaries
// (bounded size, bounded rank error).
const (
	Max Kind = iota
	Min
	Sum
	Count
	Avg
	Median
)

func (k Kind) String() string {
	switch k {
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Median:
		return "MEDIAN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Options tunes approximate aggregates.
type Options struct {
	// Quantile overrides Median's phi (0.5) when in (0, 1).
	Quantile float64
	// Compression is the q-digest k; 0 means 8.
	Compression int
	// DomainBits is the q-digest domain size in bits; 0 means 10
	// (readings quantized into 1024 buckets between the observed min
	// and max, which the collection discovers in the same pass the way
	// TAG piggybacks auxiliary state).
	DomainBits uint
}

// Result reports one in-network aggregation.
type Result struct {
	// Value is the aggregate (for Avg, the mean; for Median/Quantile,
	// the estimated value after de-quantization).
	Value float64
	// Ledger accounts the collection's energy.
	Ledger energy.Ledger
	// DigestSize is the root digest's entry count (quantiles only).
	DigestSize int
	// RankErrorBound is the q-digest guarantee in ranks (quantiles only).
	RankErrorBound int64
}

// Collect computes the aggregate over one epoch of readings with a
// TAG-style single pass: postorder, one message per node, partial
// states merged on the way up.
func Collect(env exec.Env, kind Kind, values []float64, opts Options) (*Result, error) {
	if env.Net == nil || env.Costs == nil {
		return nil, fmt.Errorf("aggregate: environment needs a network and costs")
	}
	if len(values) != env.Net.Size() {
		return nil, fmt.Errorf("aggregate: %d readings for %d nodes", len(values), env.Net.Size())
	}
	switch kind {
	case Max, Min, Sum, Count, Avg:
		return collectExact(env, kind, values)
	case Median:
		return collectQuantile(env, values, opts)
	}
	return nil, fmt.Errorf("aggregate: unknown kind %v", kind)
}

// exactState is the TAG partial-state record for the closed-form
// aggregates: 24 bytes on the wire (sum, count, extremum).
type exactState struct {
	sum      float64
	count    int64
	extremum float64
}

const exactStateBytes = 24

func collectExact(env exec.Env, kind Kind, values []float64) (*Result, error) {
	res := &Result{}
	net := env.Net
	states := make([]exactState, net.Size())
	net.PostorderWalk(func(v network.NodeID) {
		st := exactState{sum: values[v], count: 1, extremum: values[v]}
		for _, c := range net.Children(v) {
			cs := states[c]
			st.sum += cs.sum
			st.count += cs.count
			switch kind {
			case Min:
				st.extremum = math.Min(st.extremum, cs.extremum)
			default:
				st.extremum = math.Max(st.extremum, cs.extremum)
			}
		}
		states[v] = st
		if v != network.Root {
			cost := env.Costs.Msg[v] + env.Costs.Model().PerByte*exactStateBytes
			res.Ledger.Collection += cost
			res.Ledger.Messages++
		}
	})
	root := states[network.Root]
	switch kind {
	case Max, Min:
		res.Value = root.extremum
	case Sum:
		res.Value = root.sum
	case Count:
		res.Value = float64(root.count)
	case Avg:
		res.Value = root.sum / float64(root.count)
	}
	return res, nil
}

func collectQuantile(env exec.Env, values []float64, opts Options) (*Result, error) {
	phi := 0.5
	if opts.Quantile > 0 && opts.Quantile < 1 {
		phi = opts.Quantile
	}
	k := opts.Compression
	if k == 0 {
		k = 8
	}
	bits := opts.DomainBits
	if bits == 0 {
		bits = 10
	}
	// Quantization domain from the epoch's range (TAG-style auxiliary
	// min/max travel with the digest at negligible extra cost, charged
	// below as part of the state record).
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	buckets := uint64(1) << bits
	quantize := func(x float64) uint64 {
		b := uint64(float64(buckets-1) * (x - lo) / span)
		if b >= buckets {
			b = buckets - 1
		}
		return b
	}
	res := &Result{}
	net := env.Net
	digests := make([]*QDigest, net.Size())
	var walkErr error
	net.PostorderWalk(func(v network.NodeID) {
		if walkErr != nil {
			return
		}
		d, err := NewQDigest(bits, k)
		if err != nil {
			walkErr = err
			return
		}
		if err := d.Add(quantize(values[v])); err != nil {
			walkErr = err
			return
		}
		for _, c := range net.Children(v) {
			if err := d.Merge(digests[c]); err != nil {
				walkErr = err
				return
			}
		}
		digests[v] = d
		if v != network.Root {
			bytes := d.Size()*EntryBytes + 16 // entries + min/max floats
			cost := env.Costs.Msg[v] + env.Costs.Model().PerByte*float64(bytes)
			res.Ledger.Collection += cost
			res.Ledger.Messages++
			res.Ledger.Values += d.Size()
		}
	})
	if walkErr != nil {
		return nil, walkErr
	}
	root := digests[network.Root]
	bucket, err := root.Quantile(phi)
	if err != nil {
		return nil, err
	}
	res.Value = lo + (float64(bucket)+0.5)*span/float64(buckets)
	res.DigestSize = root.Size()
	res.RankErrorBound = root.ErrorBound()
	return res, nil
}
