// Package aggregate implements TAG-style in-network aggregation, the
// substrate the paper builds on (Madden et al.'s TAG, the paper's [10])
// and contrasts against (q-digest quantile summaries, the paper's
// [14]). Each node merges its children's partial state with its own
// reading and forwards one bounded-size record, so a whole-network
// aggregate costs one message per node regardless of k.
package aggregate

import (
	"fmt"
	"math"
	"sort"
)

// QDigest is the quantile summary of Shrivastava et al. (SenSys 2004):
// a compressed histogram over the complete binary tree of value ranges
// [0, 2^logU). Its size stays O(compression * logU) under merging, and
// quantile queries err by at most (logU / compression) * n ranks.
type QDigest struct {
	logU        uint // domain is [0, 2^logU)
	compression int  // the paper's k
	count       int64
	// nodes maps tree positions (1-based heap numbering over the range
	// tree) to counts. Leaves are positions 2^logU .. 2^(logU+1)-1.
	nodes map[uint64]int64
}

// NewQDigest creates an empty digest over the integer domain
// [0, 2^logU) with the given compression factor (larger = bigger
// summaries, smaller rank error).
func NewQDigest(logU uint, compression int) (*QDigest, error) {
	if logU < 1 || logU > 32 {
		return nil, fmt.Errorf("aggregate: logU must be in [1,32], got %d", logU)
	}
	if compression < 1 {
		return nil, fmt.Errorf("aggregate: compression must be positive, got %d", compression)
	}
	return &QDigest{logU: logU, compression: compression, nodes: map[uint64]int64{}}, nil
}

// leafPos returns the tree position of value x's leaf.
func (q *QDigest) leafPos(x uint64) uint64 { return (uint64(1) << q.logU) + x }

// Add inserts one occurrence of the integer value x. Compression runs
// lazily, once the summary grows past its high-water mark.
func (q *QDigest) Add(x uint64) error {
	if x >= uint64(1)<<q.logU {
		return fmt.Errorf("aggregate: value %d outside domain [0,2^%d)", x, q.logU)
	}
	q.nodes[q.leafPos(x)]++
	q.count++
	q.compressIfLarge()
	return nil
}

// compressIfLarge defers the O(size log size) sweep until the summary
// exceeds a small multiple of its steady-state size.
func (q *QDigest) compressIfLarge() {
	if len(q.nodes) > 3*q.compression*int(q.logU)/2+8 {
		q.Compress()
	}
}

// Count returns the number of inserted values.
func (q *QDigest) Count() int64 { return q.count }

// Size returns the number of stored (position, count) entries — the
// message size driver.
func (q *QDigest) Size() int { return len(q.nodes) }

// Merge folds another digest (same domain and compression) into q.
func (q *QDigest) Merge(o *QDigest) error {
	if o.logU != q.logU || o.compression != q.compression {
		return fmt.Errorf("aggregate: merging incompatible digests (logU %d/%d, k %d/%d)",
			q.logU, o.logU, q.compression, o.compression)
	}
	for pos, c := range o.nodes {
		q.nodes[pos] += c
	}
	q.count += o.count
	q.Compress() // merges always compress: their result goes on the air
	return nil
}

// Compress restores the q-digest invariant: any non-root node whose
// count plus parent and sibling counts is below n/k gets folded into
// its parent. Bottom-up sweep, as in the paper.
func (q *QDigest) Compress() {
	if q.count == 0 {
		return
	}
	threshold := q.count / int64(q.compression)
	if threshold < 1 {
		threshold = 1
	}
	// Process deepest levels first: positions sorted descending.
	positions := make([]uint64, 0, len(q.nodes))
	for pos := range q.nodes {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] > positions[j] })
	for _, pos := range positions {
		if pos <= 1 {
			continue // root never folds
		}
		c, ok := q.nodes[pos]
		if !ok {
			continue // already folded this sweep
		}
		sibling := pos ^ 1
		parent := pos >> 1
		total := c + q.nodes[sibling] + q.nodes[parent]
		if total < threshold {
			q.nodes[parent] = total
			delete(q.nodes, pos)
			delete(q.nodes, sibling)
		}
	}
}

// Quantile returns an estimate of the phi-quantile (0 <= phi <= 1) of
// the inserted values. The estimate's rank error is bounded by
// (logU/compression) * Count().
func (q *QDigest) Quantile(phi float64) (uint64, error) {
	if q.count == 0 {
		return 0, fmt.Errorf("aggregate: quantile of an empty digest")
	}
	if phi < 0 || phi > 1 {
		return 0, fmt.Errorf("aggregate: phi must be in [0,1], got %g", phi)
	}
	target := int64(math.Ceil(phi * float64(q.count)))
	if target < 1 {
		target = 1
	}
	// Postorder over stored nodes ordered by their range upper bound
	// (then by size, smaller ranges first), accumulating counts.
	type entry struct {
		lo, hi uint64 // value range covered
		c      int64
	}
	entries := make([]entry, 0, len(q.nodes))
	for pos, c := range q.nodes {
		lo, hi := q.rangeOf(pos)
		entries = append(entries, entry{lo: lo, hi: hi, c: c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hi != entries[j].hi {
			return entries[i].hi < entries[j].hi
		}
		return entries[i].lo > entries[j].lo
	})
	run := int64(0)
	for _, e := range entries {
		run += e.c
		if run >= target {
			return e.hi, nil
		}
	}
	// Numeric slack: return the max.
	return entries[len(entries)-1].hi, nil
}

// rangeOf returns the value range [lo, hi] covered by tree position pos.
func (q *QDigest) rangeOf(pos uint64) (lo, hi uint64) {
	depth := uint(63 - leadingZeros(pos))
	span := q.logU - depth
	base := (pos - (uint64(1) << depth)) << span
	return base, base + (uint64(1) << span) - 1
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(uint64(1)<<uint(i)) != 0 {
			return 63 - i
		}
		n++
	}
	return 64
}

// ErrorBound returns the maximum rank error of Quantile answers.
func (q *QDigest) ErrorBound() int64 {
	return int64(q.logU) * q.count / int64(q.compression)
}

// Entries exports the digest's (position, count) pairs for
// serialization, compressing first — the exported form is what goes on
// the air. EntryBytes is the wire size of one pair.
func (q *QDigest) Entries() map[uint64]int64 {
	q.Compress()
	out := make(map[uint64]int64, len(q.nodes))
	for p, c := range q.nodes {
		out[p] = c
	}
	return out
}

// EntryBytes is the encoded size of one digest entry on the wire: a
// 2-byte tree position (domains up to 2^14) plus a 2-byte count
// (networks up to 65535 readings) — the compact encoding Shrivastava
// et al. assume for fixed-size summary messages.
const EntryBytes = 4

// FromEntries reconstructs a digest from exported entries.
func FromEntries(logU uint, compression int, entries map[uint64]int64) (*QDigest, error) {
	q, err := NewQDigest(logU, compression)
	if err != nil {
		return nil, err
	}
	for pos, c := range entries {
		if pos < 1 || pos >= uint64(1)<<(logU+1) {
			return nil, fmt.Errorf("aggregate: entry position %d out of range", pos)
		}
		if c < 0 {
			return nil, fmt.Errorf("aggregate: negative count %d", c)
		}
		q.nodes[pos] += c
		q.count += c
	}
	// No compression here: the wire form from Entries is already
	// compressed, and re-sweeping would change the structure (the
	// sweep is not idempotent — new parents can fold further).
	return q, nil
}
