package aggregate

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
)

func testEnv(net *network.Network) exec.Env {
	return exec.Env{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel())}
}

func randTree(rng *rand.Rand, n int) *network.Network {
	parent := make([]network.NodeID, n)
	for i := 1; i < n; i++ {
		parent[i] = network.NodeID(rng.Intn(i))
	}
	net, err := network.New(parent, nil)
	if err != nil {
		panic(err)
	}
	return net
}

func TestExactAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(60)
		net := randTree(rng, n)
		vals := make([]float64, n)
		sum := 0.0
		max, min := math.Inf(-1), math.Inf(1)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
			sum += vals[i]
			max = math.Max(max, vals[i])
			min = math.Min(min, vals[i])
		}
		env := testEnv(net)
		check := func(kind Kind, want float64) {
			res, err := Collect(env, kind, vals, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Value-want) > 1e-9 {
				t.Fatalf("trial %d: %v = %g, want %g", trial, kind, res.Value, want)
			}
			// TAG property: exactly one message per non-root node.
			if res.Ledger.Messages != n-1 {
				t.Fatalf("trial %d: %v used %d messages for %d nodes", trial, kind, res.Ledger.Messages, n)
			}
		}
		check(Max, max)
		check(Min, min)
		check(Sum, sum)
		check(Count, float64(n))
		check(Avg, sum/float64(n))
	}
}

func TestQDigestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		q, err := NewQDigest(10, 25)
		if err != nil {
			t.Fatal(err)
		}
		n := 500 + rng.Intn(1500)
		data := make([]uint64, n)
		for i := range data {
			data[i] = uint64(rng.Intn(1024))
			if err := q.Add(data[i]); err != nil {
				t.Fatal(err)
			}
		}
		sort.Slice(data, func(a, b int) bool { return data[a] < data[b] })
		bound := q.ErrorBound()
		for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			est, err := q.Quantile(phi)
			if err != nil {
				t.Fatal(err)
			}
			// Rank of the estimate: values <= est.
			rank := int64(sort.Search(len(data), func(i int) bool { return data[i] > est }))
			target := int64(math.Ceil(phi * float64(n)))
			diff := rank - target
			if diff < 0 {
				diff = -diff
			}
			if diff > bound {
				t.Errorf("trial %d phi=%.2f: rank error %d exceeds bound %d (n=%d size=%d)",
					trial, phi, diff, bound, n, q.Size())
			}
		}
		// The summary must actually be compressed.
		if q.Size() > 4*25*10 {
			t.Errorf("trial %d: digest holds %d entries", trial, q.Size())
		}
	}
}

func TestQDigestMergeEquivalence(t *testing.T) {
	// Merging two digests approximates digesting the union.
	rng := rand.New(rand.NewSource(3))
	a, _ := NewQDigest(8, 30)
	b, _ := NewQDigest(8, 30)
	var union []uint64
	for i := 0; i < 400; i++ {
		x := uint64(rng.Intn(256))
		union = append(union, x)
		if i%2 == 0 {
			if err := a.Add(x); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := b.Add(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 400 {
		t.Fatalf("merged count %d", a.Count())
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	med, err := a.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	trueMed := union[200]
	rank := int64(sort.Search(len(union), func(i int) bool { return union[i] > med }))
	diff := rank - 200
	if diff < 0 {
		diff = -diff
	}
	if diff > a.ErrorBound() {
		t.Errorf("merged median %d (rank err %d) exceeds bound %d; true %d", med, diff, a.ErrorBound(), trueMed)
	}
	// Incompatible merges rejected.
	c, _ := NewQDigest(9, 30)
	if err := a.Merge(c); err == nil {
		t.Error("merged incompatible domains")
	}
}

func TestQDigestEntriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q, _ := NewQDigest(10, 15)
	for i := 0; i < 300; i++ {
		if err := q.Add(uint64(rng.Intn(1024))); err != nil {
			t.Fatal(err)
		}
	}
	back, err := FromEntries(10, 15, q.Entries())
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != q.Count() {
		t.Fatalf("count %d vs %d", back.Count(), q.Count())
	}
	m1, _ := q.Quantile(0.5)
	m2, _ := back.Quantile(0.5)
	if m1 != m2 {
		t.Errorf("medians diverge: %d vs %d", m1, m2)
	}
	if _, err := FromEntries(10, 15, map[uint64]int64{0: 1}); err == nil {
		t.Error("accepted position 0")
	}
	if _, err := FromEntries(10, 15, map[uint64]int64{3: -1}); err == nil {
		t.Error("accepted negative count")
	}
}

func TestQDigestProperties(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := 5 + int(kRaw)%40
		q, err := NewQDigest(16, k)
		if err != nil {
			return false
		}
		for _, x := range raw {
			if err := q.Add(uint64(x)); err != nil {
				return false
			}
		}
		if q.Count() != int64(len(raw)) {
			return false
		}
		// Total mass is preserved by compression.
		total := int64(0)
		for _, c := range q.Entries() {
			total += c
		}
		if total != int64(len(raw)) {
			return false
		}
		// Quantile estimates are within the domain.
		med, err := q.Quantile(0.5)
		return err == nil && med < 1<<16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCollectMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(80)
		net := randTree(rng, n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 20 + rng.NormFloat64()*5
		}
		env := testEnv(net)
		res, err := Collect(env, Median, vals, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		trueMed := sorted[n/2]
		// The estimate must land within a modest value band: rank bound
		// plus quantization.
		spread := sorted[len(sorted)-1] - sorted[0]
		if math.Abs(res.Value-trueMed) > spread/2 {
			t.Errorf("trial %d: median estimate %.2f vs true %.2f (spread %.2f)",
				trial, res.Value, trueMed, spread)
		}
		if res.Ledger.Messages != n-1 {
			t.Errorf("trial %d: %d messages", trial, res.Ledger.Messages)
		}
		if res.DigestSize < 1 {
			t.Errorf("trial %d: empty digest", trial)
		}
	}
}

func TestMedianCheaperThanNaiveK(t *testing.T) {
	// The point of q-digest: on multihop networks with real depth, a
	// median costs far less than hauling every raw value to the root
	// (upper edges carry bounded summaries instead of whole subtrees).
	rng := rand.New(rand.NewSource(6))
	net := network.Line(150)
	vals := make([]float64, 150)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	env := testEnv(net)
	res, err := Collect(env, Median, vals, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Exact median needs everything at the root: the all-values cost.
	all := 0.0
	for v := 1; v < net.Size(); v++ {
		all += env.Costs.Msg[v] + env.Costs.Val[v]*float64(net.SubtreeSize(network.NodeID(v)))
	}
	if res.Ledger.Collection >= all {
		t.Errorf("q-digest median cost %.1f not below exact %.1f", res.Ledger.Collection, all)
	}
}

func TestCollectValidation(t *testing.T) {
	net := network.Line(3)
	env := testEnv(net)
	if _, err := Collect(env, Max, []float64{1}, Options{}); err == nil {
		t.Error("accepted short values")
	}
	if _, err := Collect(exec.Env{}, Max, []float64{1, 2, 3}, Options{}); err == nil {
		t.Error("accepted empty env")
	}
	if _, err := Collect(env, Kind(99), []float64{1, 2, 3}, Options{}); err == nil {
		t.Error("accepted unknown kind")
	}
	if _, err := NewQDigest(0, 5); err == nil {
		t.Error("accepted logU = 0")
	}
	if _, err := NewQDigest(8, 0); err == nil {
		t.Error("accepted compression = 0")
	}
	q, _ := NewQDigest(4, 5)
	if err := q.Add(16); err == nil {
		t.Error("accepted out-of-domain value")
	}
	if _, err := q.Quantile(0.5); err == nil {
		t.Error("quantile of empty digest")
	}
}
