package traceanalysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PhaseDelta compares one phase between two traces. Zero-valued sides
// mean the phase is absent from that trace.
type PhaseDelta struct {
	Name string
	A, B PhaseTotal
	InA  bool
	InB  bool
}

// DeltaEnergy returns B-A energy.
func (d PhaseDelta) DeltaEnergy() float64 { return d.B.EnergyMJ - d.A.EnergyMJ }

// DeltaMessages returns B-A message count.
func (d PhaseDelta) DeltaMessages() int64 { return d.B.Messages - d.A.Messages }

// DeltaDuration returns B-A duration.
func (d PhaseDelta) DeltaDuration() float64 { return d.B.Duration - d.A.Duration }

// EventDelta compares one event family between two traces.
type EventDelta struct {
	Name     string
	A, B     EventTotal
	InA, InB bool
}

// DiffResult is the phase-by-phase comparison `tracetool diff` prints.
type DiffResult struct {
	Phases []PhaseDelta // union of both traces' phases, sorted by name
	Events []EventDelta
}

// HasDifferences reports whether the two traces disagree anywhere the
// diff can see: a phase or event family present on only one side, or
// any nonzero delta in energy, messages, duration, span count, value
// count, or event count. Float deltas are tested via math.Abs(d) > 0,
// which is exactly "not identical" without a direct float equality.
func (d *DiffResult) HasDifferences() bool {
	for _, pd := range d.Phases {
		if !pd.InA || !pd.InB {
			return true
		}
		if math.Abs(pd.DeltaEnergy()) > 0 || math.Abs(pd.DeltaDuration()) > 0 {
			return true
		}
		if pd.DeltaMessages() != 0 || pd.B.Spans != pd.A.Spans ||
			pd.B.Open != pd.A.Open || pd.B.Values != pd.A.Values {
			return true
		}
	}
	for _, ed := range d.Events {
		if !ed.InA || !ed.InB {
			return true
		}
		if ed.B.Count != ed.A.Count || math.Abs(ed.B.EnergyMJ-ed.A.EnergyMJ) > 0 {
			return true
		}
	}
	return false
}

// Diff compares two summaries phase by phase. The A side is the
// baseline: positive deltas mean B spent more.
func Diff(a, b *Summary) *DiffResult {
	d := &DiffResult{}
	names := map[string]bool{}
	for _, p := range a.Phases {
		names[p.Name] = true
	}
	for _, p := range b.Phases {
		names[p.Name] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		pd := PhaseDelta{Name: n}
		pd.A, pd.InA = a.Phase(n)
		pd.B, pd.InB = b.Phase(n)
		d.Phases = append(d.Phases, pd)
	}
	names = map[string]bool{}
	for _, e := range a.Events {
		names[e.Name] = true
	}
	for _, e := range b.Events {
		names[e.Name] = true
	}
	ordered = ordered[:0]
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		ed := EventDelta{Name: n}
		for _, e := range a.Events {
			if e.Name == n {
				ed.A, ed.InA = e, true
			}
		}
		for _, e := range b.Events {
			if e.Name == n {
				ed.B, ed.InB = e, true
			}
		}
		d.Events = append(d.Events, ed)
	}
	return d
}

// Render formats the diff as the text table `tracetool diff` prints.
// Columns are A (baseline), B, and B-A; percentages are relative to A
// and omitted when A is (near-)zero.
func (d *DiffResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %9s\n", "phase", "A mJ", "B mJ", "delta mJ", "delta %")
	for _, pd := range d.Phases {
		name := pd.Name
		if !pd.InA {
			name += " (B only)"
		} else if !pd.InB {
			name += " (A only)"
		}
		fmt.Fprintf(&b, "%-14s %14.3f %14.3f %+14.3f %s\n",
			name, pd.A.EnergyMJ, pd.B.EnergyMJ, pd.DeltaEnergy(), pctString(pd.A.EnergyMJ, pd.DeltaEnergy()))
		if pd.A.Messages != 0 || pd.B.Messages != 0 {
			fmt.Fprintf(&b, "%-14s %14d %14d %+14d msgs\n", "", pd.A.Messages, pd.B.Messages, pd.DeltaMessages())
		}
		if dd := pd.DeltaDuration(); dd < 0 || dd > 0 || pd.A.Duration > 0 {
			fmt.Fprintf(&b, "%-14s %14.4f %14.4f %+14.4f dur\n", "", pd.A.Duration, pd.B.Duration, dd)
		}
	}
	if len(d.Events) > 0 {
		fmt.Fprintf(&b, "%-14s %14s %14s %14s\n", "event", "A count", "B count", "delta")
		for _, ed := range d.Events {
			fmt.Fprintf(&b, "%-14s %14d %14d %+14d\n", ed.Name, ed.A.Count, ed.B.Count, ed.B.Count-ed.A.Count)
		}
	}
	return b.String()
}

// pctString renders delta/base as a percentage, or "-" when the base
// is too small for the ratio to mean anything.
func pctString(base, delta float64) string {
	if base < 1e-12 && base > -1e-12 {
		return "        -"
	}
	return fmt.Sprintf("%+8.1f%%", 100*delta/base)
}
