package traceanalysis_test

import (
	"strings"
	"testing"

	"prospector/internal/traceanalysis"
)

const flightDoc = `{"flight":"prospector/flight/v1","series":"lat.p99","kind":"abs<=","got":9.5,"want":"within ±1 of 5","tick":6,"now":6,"records":3,"dropped":2,"note":"latency blew up"}
{"seq":5,"begin":"exec.epoch","id":5,"parent":0,"t":4}
{"seq":6,"ev":"exec.msg","parent":5,"t":4.5,"bytes":12}
{"seq":7,"end":5,"t":5}
`

func TestParseFlight(t *testing.T) {
	d, err := traceanalysis.ParseFlight(strings.NewReader(flightDoc))
	if err != nil {
		t.Fatal(err)
	}
	h := d.Header
	if h.Series != "lat.p99" || h.Kind != "abs<=" || h.Got != 9.5 ||
		h.Tick != 6 || h.Records != 3 || h.Dropped != 2 {
		t.Fatalf("header = %+v", h)
	}
	if len(d.Trace.Records) != 3 || d.Trace.SpanCount() != 1 {
		t.Fatalf("trace: %d records, %d spans", len(d.Trace.Records), d.Trace.SpanCount())
	}
	out := d.Render()
	for _, want := range []string{
		"lat.p99 abs<= got 9.5", "within ±1 of 5", "latency blew up",
		"tick:   6", "seq 5..7", "ev exec.msg", "begin exec.epoch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Deterministic: rendering twice yields identical bytes.
	if d.Render() != out {
		t.Fatal("Render is not deterministic")
	}
}

func TestParseFlightRejectsNonDumps(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"no header":     `{"seq":1,"begin":"query","id":1,"parent":0,"t":0}` + "\n",
		"wrong schema":  `{"flight":"other/v9","series":"x"}` + "\n",
		"not json":      "hello\n",
		"bad fragment":  `{"flight":"prospector/flight/v1","series":"x"}` + "\nnot json\n",
		"reordered seq": `{"flight":"prospector/flight/v1","series":"x"}` + "\n" + `{"seq":2,"ev":"a","t":0}` + "\n" + `{"seq":1,"ev":"b","t":0}` + "\n",
	}
	for name, doc := range cases {
		if _, err := traceanalysis.ParseFlight(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFlightHeaderOnly(t *testing.T) {
	doc := `{"flight":"prospector/flight/v1","series":"x","kind":"exact","records":0}` + "\n"
	d, err := traceanalysis.ParseFlight(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trace.Records) != 0 {
		t.Fatalf("records = %d, want 0", len(d.Trace.Records))
	}
	if !strings.Contains(d.Render(), "records: none") {
		t.Fatalf("header-only render:\n%s", d.Render())
	}
}
