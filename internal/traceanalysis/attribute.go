package traceanalysis

import (
	"fmt"
	"sort"
	"strings"
)

// NodeAttr is one node's share of the traced run.
type NodeAttr struct {
	Node int
	// EnergyMJ is the node's radio spend (TX + RX + trigger), rebuilt by
	// replaying the trace's per-record energy shares in sequence order.
	// Because the producer emits the exact floats it adds to its own
	// per-node accumulators, and each node's additions replay in the
	// same order, this sum is bitwise identical to the producer's.
	EnergyMJ float64
	// TxMJ / RxMJ / TriggerMJ split EnergyMJ by role. They are summed in
	// the same replay pass but as separate accumulators, so they need
	// not add bitwise to EnergyMJ.
	TxMJ, RxMJ, TriggerMJ float64
	// Messages counts data transmissions this node originated (transfer
	// sends during collection, bundle sends during installation).
	Messages int64
	// SubtreeMJ is EnergyMJ summed over the node and every descendant
	// reachable through observed transfer edges.
	SubtreeMJ float64
	// Parent is the node's parent in the observed collection tree, -1
	// when the trace shows no edge above the node.
	Parent int
}

// EpochAttr is one collection round's totals, taken from the epoch
// span's end fields.
type EpochAttr struct {
	SpanID   int64
	Name     string
	EnergyMJ float64
	Messages int64
	Values   int64
}

// Attribution is the per-node energy breakdown of a trace.
type Attribution struct {
	Nodes  []NodeAttr // sorted by node ID
	Epochs []EpochAttr
	// RequestMJ is energy spent on request messages (mop-up / naive
	// pulls). The producer keeps it off its per-node gauges — requests
	// travel the tree top-down with no single chargeable node — so the
	// replay keeps it separate too.
	RequestMJ float64
	Requests  int64
}

// Node returns the attribution row for a node ID and whether the trace
// mentioned it.
func (a *Attribution) Node(id int) (NodeAttr, bool) {
	i := sort.Search(len(a.Nodes), func(i int) bool { return a.Nodes[i].Node >= id })
	if i < len(a.Nodes) && a.Nodes[i].Node == id {
		return a.Nodes[i], true
	}
	return NodeAttr{}, false
}

// Attribute replays a trace's energy records into per-node totals.
//
// The replay applies, in record sequence order:
//
//	sim.xfer / exec.msg   tx_mj -> node (sender), rx_mj -> dst (parent)
//	sim.bundle            tx_mj -> dst (sending parent), rx_mj -> node
//	sim.trigger / exec.trigger   energy_mj -> node
//	sim.loss              tx_mj -> sender (wasted transmission)
//	exec.request          energy_mj -> RequestMJ only
//
// matching exactly where the producers add each share.
func Attribute(t *Trace) *Attribution {
	a := &Attribution{}
	nodes := map[int]*NodeAttr{}
	row := func(id int) *NodeAttr {
		n := nodes[id]
		if n == nil {
			n = &NodeAttr{Node: id, Parent: -1}
			nodes[id] = n
		}
		return n
	}
	for i := range t.Records {
		rec := &t.Records[i]
		switch rec.Name {
		case "sim.xfer", "exec.msg":
			node, dst := rec.Int("node", -1), rec.Int("dst", -1)
			tx, _ := rec.Num("tx_mj")
			rx, _ := rec.Num("rx_mj")
			s := row(node)
			s.EnergyMJ += tx
			s.TxMJ += tx
			s.Messages++
			s.Parent = dst
			d := row(dst)
			d.EnergyMJ += rx
			d.RxMJ += rx
		case "sim.bundle":
			// Installation reverses the roles: dst (the parent) transmits
			// the bundle, node receives it. The producer charges TX before
			// RX, so the replay does too.
			node, dst := rec.Int("node", -1), rec.Int("dst", -1)
			tx, _ := rec.Num("tx_mj")
			rx, _ := rec.Num("rx_mj")
			d := row(dst)
			d.EnergyMJ += tx
			d.TxMJ += tx
			d.Messages++
			s := row(node)
			s.EnergyMJ += rx
			s.RxMJ += rx
			s.Parent = dst
		case "sim.trigger", "exec.trigger":
			e, _ := rec.Num("energy_mj")
			n := row(rec.Int("node", -1))
			n.EnergyMJ += e
			n.TriggerMJ += e
		case "sim.loss":
			tx, _ := rec.Num("tx_mj")
			n := row(rec.Int("sender", -1))
			n.EnergyMJ += tx
			n.TxMJ += tx
		case "exec.request":
			e, _ := rec.Num("energy_mj")
			a.RequestMJ += e
			a.Requests++
		}
	}
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	a.Nodes = make([]NodeAttr, len(ids))
	for i, id := range ids {
		a.Nodes[i] = *nodes[id]
	}
	// Subtree rollup: push each node's own energy up its observed parent
	// chain. The hop cap guards against a malformed trace whose edges
	// form a cycle.
	index := map[int]int{}
	for i := range a.Nodes {
		index[a.Nodes[i].Node] = i
	}
	for i := range a.Nodes {
		e := a.Nodes[i].EnergyMJ
		at := i
		for hops := 0; hops <= len(a.Nodes); hops++ {
			a.Nodes[at].SubtreeMJ += e
			p, ok := index[a.Nodes[at].Parent]
			if !ok || p == at {
				break
			}
			at = p
		}
	}
	for _, name := range []string{"sim.install", "sim.epoch", "exec.epoch"} {
		for _, sp := range t.Spans(name) {
			ep := EpochAttr{SpanID: sp.ID, Name: sp.Name}
			ep.EnergyMJ, _ = sp.Num("energy_mj")
			ep.Messages = int64(sp.Nums["messages"])
			ep.Values = int64(sp.Nums["values"])
			a.Epochs = append(a.Epochs, ep)
		}
	}
	sort.Slice(a.Epochs, func(i, j int) bool { return a.Epochs[i].SpanID < a.Epochs[j].SpanID })
	return a
}

// Render formats the attribution as the text `tracetool attribute`
// prints. Energy columns print in shortest round-trip form so the
// output is comparable across runs byte for byte.
func (a *Attribution) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %6s %8s %14s %14s\n", "node", "parent", "messages", "energy (mJ)", "subtree (mJ)")
	for _, n := range a.Nodes {
		parent := "-"
		if n.Parent >= 0 {
			parent = fmt.Sprintf("%d", n.Parent)
		}
		fmt.Fprintf(&b, "%4d %6s %8d %14g %14g\n", n.Node, parent, n.Messages, n.EnergyMJ, n.SubtreeMJ)
	}
	if a.Requests > 0 {
		fmt.Fprintf(&b, "requests: %d messages, %g mJ (not attributed per node)\n", a.Requests, a.RequestMJ)
	}
	for _, ep := range a.Epochs {
		fmt.Fprintf(&b, "%s span %d: %g mJ, %d messages, %d values\n",
			ep.Name, ep.SpanID, ep.EnergyMJ, ep.Messages, ep.Values)
	}
	return b.String()
}
