// Package traceanalysis parses the JSON-lines traces emitted by
// internal/obs back into a causal span tree and derives the analyses
// cmd/tracetool exposes: per-phase summaries, the critical latency
// path of a collection round, per-node/per-subtree energy attribution,
// and trace-vs-trace diffs.
//
// The package is registered with the determinism lint: given the same
// trace bytes it produces the same analysis, with no wall clocks, no
// global RNGs, and no map-iteration-order leaks. Energy attribution
// replays the per-record energy fields in sequence order, so its
// per-node sums are bitwise identical to the producer's accumulators
// (the tracer writes floats in shortest round-trip form).
package traceanalysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind distinguishes the four record shapes of the trace format.
type Kind int

const (
	// KindBegin opens a span: {"seq":N,"begin":NAME,"id":I,"parent":P,"t":T,...}
	KindBegin Kind = iota
	// KindEnd closes a span by ID: {"seq":N,"end":I,"t":T,...}
	KindEnd
	// KindSpan is a flat, already-closed span:
	// {"seq":N,"span":NAME,"id":I,"parent":P,"start":S,"end":E,...}
	// (legacy records omit id/parent; the parser assigns ID = seq).
	KindSpan
	// KindEvent is a point event: {"seq":N,"ev":NAME,"parent":P,"t":T,...}
	// (parent optional).
	KindEvent
)

func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindSpan:
		return "span"
	case KindEvent:
		return "ev"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Record is one parsed trace line. Structural keys (seq, the kind key,
// id, parent, t, start, end) are lifted into typed fields; everything
// else lands in Nums or Strs by JSON type.
type Record struct {
	Seq    int64
	Kind   Kind
	Name   string // span/event name; "" for end records
	ID     int64  // span identity (begin/span) or the closed span (end)
	Parent int64  // enclosing span ID; 0 means root
	Time   float64
	Start  float64
	End    float64
	Nums   map[string]float64
	Strs   map[string]string
}

// Num returns a numeric field and whether it was present.
func (r *Record) Num(key string) (float64, bool) {
	v, ok := r.Nums[key]
	return v, ok
}

// Int returns a numeric field truncated to int, or def when absent.
func (r *Record) Int(key string, def int) int {
	if v, ok := r.Nums[key]; ok {
		return int(v)
	}
	return def
}

// ParseRecords reads a JSON-lines trace into its records, in input
// (= seq) order. Blank lines are skipped; any malformed line fails the
// whole parse with its line number, since a truncated trace would
// silently skew every downstream analysis.
func ParseRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		rec, err := parseLine(raw)
		if err != nil {
			return nil, fmt.Errorf("traceanalysis: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traceanalysis: read: %w", err)
	}
	return recs, nil
}

func parseLine(raw []byte) (Record, error) {
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		return Record{}, err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rec := Record{Nums: map[string]float64{}, Strs: map[string]string{}}
	kindSeen := false
	for _, k := range keys {
		v := m[k]
		switch k {
		case "seq":
			n, err := asNum(k, v)
			if err != nil {
				return Record{}, err
			}
			rec.Seq = int64(n)
		case "begin", "span", "ev":
			if kindSeen {
				return Record{}, fmt.Errorf("record has two kind keys")
			}
			kindSeen = true
			name, ok := v.(string)
			if !ok {
				return Record{}, fmt.Errorf("%s: want string name, got %T", k, v)
			}
			rec.Name = name
			switch k {
			case "begin":
				rec.Kind = KindBegin
			case "span":
				rec.Kind = KindSpan
			default:
				rec.Kind = KindEvent
			}
		case "end":
			// "end" is the kind key on end records (numeric span ID) but
			// an ordinary timestamp field on flat span records.
			if n, ok := v.(float64); ok && !kindSeen &&
				m["span"] == nil && m["ev"] == nil && m["begin"] == nil {
				kindSeen = true
				rec.Kind = KindEnd
				rec.ID = int64(n)
				continue
			}
			n, err := asNum(k, v)
			if err != nil {
				return Record{}, err
			}
			rec.End = n
		case "id":
			n, err := asNum(k, v)
			if err != nil {
				return Record{}, err
			}
			rec.ID = int64(n)
		case "parent":
			n, err := asNum(k, v)
			if err != nil {
				return Record{}, err
			}
			rec.Parent = int64(n)
		case "t":
			n, err := asNum(k, v)
			if err != nil {
				return Record{}, err
			}
			rec.Time = n
		case "start":
			n, err := asNum(k, v)
			if err != nil {
				return Record{}, err
			}
			rec.Start = n
		default:
			switch fv := v.(type) {
			case float64:
				rec.Nums[k] = fv
			case string:
				rec.Strs[k] = fv
			case bool:
				if fv {
					rec.Nums[k] = 1
				} else {
					rec.Nums[k] = 0
				}
			default:
				return Record{}, fmt.Errorf("field %q: unsupported value %T", k, v)
			}
		}
	}
	if !kindSeen {
		return Record{}, fmt.Errorf("record has no begin/end/span/ev key")
	}
	if rec.Seq == 0 {
		return Record{}, fmt.Errorf("record has no seq")
	}
	// Legacy flat spans carry no explicit ID; the record's seq is unique
	// and matches how the tracer derives new-style IDs.
	if rec.Kind == KindSpan && rec.ID == 0 {
		rec.ID = rec.Seq
	}
	return rec, nil
}

func asNum(key string, v interface{}) (float64, error) {
	n, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("%s: want number, got %T", key, v)
	}
	return n, nil
}
