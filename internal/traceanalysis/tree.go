package traceanalysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Span is one node of the reconstructed trace tree.
type Span struct {
	ID     int64
	Parent int64 // 0 when the span is a root
	Name   string
	Start  float64
	End    float64
	// Open reports the trace ended before the span's end record (a
	// crashed or truncated run).
	Open bool
	// Nums/Strs merge the fields of the begin and end records (end
	// fields win on collision).
	Nums map[string]float64
	Strs map[string]string
	// Children holds nested spans in seq order; Events the point
	// events parented here, also in seq order.
	Children []*Span
	Events   []*Record
}

// Num returns a numeric span field and whether it was present.
func (s *Span) Num(key string) (float64, bool) {
	v, ok := s.Nums[key]
	return v, ok
}

// Int returns a numeric span field truncated to int, or def when
// absent.
func (s *Span) Int(key string, def int) int {
	if v, ok := s.Nums[key]; ok {
		return int(v)
	}
	return def
}

// Duration is End-Start (0 for spans still open at trace end).
func (s *Span) Duration() float64 {
	if s.Open {
		return 0
	}
	return s.End - s.Start
}

// Walk visits the span and its descendants preorder, children in seq
// order.
func (s *Span) Walk(visit func(*Span)) {
	visit(s)
	for _, c := range s.Children {
		c.Walk(visit)
	}
}

// Trace is a fully parsed trace.
type Trace struct {
	// Records holds every record in seq order.
	Records []Record
	// Roots holds the top-level spans (parent 0, or parent IDs the
	// trace never defined) in seq order.
	Roots []*Span
	// Loose holds events with no enclosing span, in seq order.
	Loose []*Record
	// spans indexes every span by ID.
	spans map[int64]*Span
}

// SpanCount returns the total number of spans in the tree.
func (t *Trace) SpanCount() int {
	return len(t.spans)
}

// Span returns the span with the given ID, nil when absent.
func (t *Trace) Span(id int64) *Span {
	return t.spans[id]
}

// Spans returns every span whose name matches, in seq (= ID) order.
func (t *Trace) Spans(name string) []*Span {
	ids := make([]int64, 0, len(t.spans))
	for id, s := range t.spans {
		if s.Name == name {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Span, len(ids))
	for i, id := range ids {
		out[i] = t.spans[id]
	}
	return out
}

// Parse reads a JSON-lines trace and reconstructs its span tree.
func Parse(r io.Reader) (*Trace, error) {
	recs, err := ParseRecords(r)
	if err != nil {
		return nil, err
	}
	return Build(recs)
}

// Build assembles records (in seq order) into a span tree. Unknown
// parent IDs demote the child to a root rather than failing: older
// traces reuse the "parent" key for network topology, and a prefix of
// a live trace is a legitimate input.
func Build(recs []Record) (*Trace, error) {
	t := &Trace{Records: recs, spans: map[int64]*Span{}}
	lastSeq := int64(0)
	for i := range recs {
		rec := &recs[i]
		if rec.Seq <= lastSeq {
			return nil, fmt.Errorf("traceanalysis: seq %d after %d; trace is reordered or spliced", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		switch rec.Kind {
		case KindBegin, KindSpan:
			if t.spans[rec.ID] != nil {
				return nil, fmt.Errorf("traceanalysis: duplicate span id %d (seq %d)", rec.ID, rec.Seq)
			}
			s := &Span{
				ID:     rec.ID,
				Parent: rec.Parent,
				Name:   rec.Name,
				Nums:   rec.Nums,
				Strs:   rec.Strs,
			}
			if rec.Kind == KindBegin {
				s.Start = rec.Time
				s.Open = true
			} else {
				s.Start, s.End = rec.Start, rec.End
			}
			t.spans[rec.ID] = s
			if p := t.spans[rec.Parent]; p != nil {
				p.Children = append(p.Children, s)
			} else {
				t.Roots = append(t.Roots, s)
			}
		case KindEnd:
			s := t.spans[rec.ID]
			if s == nil {
				return nil, fmt.Errorf("traceanalysis: end for unknown span id %d (seq %d)", rec.ID, rec.Seq)
			}
			if !s.Open {
				return nil, fmt.Errorf("traceanalysis: span id %d ended twice (seq %d)", rec.ID, rec.Seq)
			}
			s.Open = false
			s.End = rec.Time
			mergeFields(s, rec)
		case KindEvent:
			if p := t.spans[rec.Parent]; p != nil {
				p.Events = append(p.Events, rec)
			} else {
				t.Loose = append(t.Loose, rec)
			}
		}
	}
	return t, nil
}

// mergeFields folds an end record's fields into the span.
func mergeFields(s *Span, rec *Record) {
	keys := make([]string, 0, len(rec.Nums))
	for k := range rec.Nums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Nums[k] = rec.Nums[k]
	}
	keys = keys[:0]
	for k := range rec.Strs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Strs[k] = rec.Strs[k]
	}
}

// RenderTree formats the span tree as an indented outline — the
// debugging view behind `tracetool tree`.
func (t *Trace) RenderTree() string {
	var b strings.Builder
	var emit func(s *Span, depth int)
	emit = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s%s [%g, %g]", strings.Repeat("  ", depth), s.Name, s.Start, s.End)
		if s.Open {
			b.WriteString(" (open)")
		}
		if e, ok := s.Num("energy_mj"); ok {
			fmt.Fprintf(&b, " energy=%.3f mJ", e)
		}
		if m, ok := s.Num("messages"); ok {
			fmt.Fprintf(&b, " messages=%d", int64(m))
		}
		fmt.Fprintf(&b, " (%d events, %d children)\n", len(s.Events), len(s.Children))
		for _, c := range s.Children {
			emit(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		emit(r, 0)
	}
	return b.String()
}
