package traceanalysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"prospector/internal/traceanalysis"
)

// loadFixture parses a committed trace from testdata.
func loadFixture(t *testing.T, name string) *traceanalysis.Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := traceanalysis.Parse(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return tr
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkGolden compares rendered output against a committed golden file
// byte for byte — the reports promise deterministic output.
func checkGolden(t *testing.T, got, goldenName string) {
	t.Helper()
	want := golden(t, goldenName)
	if got != want {
		t.Errorf("output differs from testdata/%s:\n--- got ---\n%s\n--- want ---\n%s", goldenName, got, want)
	}
}

// The fixtures were produced by cmd/prospector on a 12-node network
// (-nodes 12 -k 3 -epochs 3 -sim -loss 0.15 -seed 5) with the lp+lf
// and exact planners; regenerate goldens with
// `go run ./cmd/tracetool <sub> testdata/<trace>` if the trace format
// deliberately changes.

func TestGoldenSummary(t *testing.T) {
	tr := loadFixture(t, "sim_lp.jsonl")
	checkGolden(t, traceanalysis.Summarize(tr).Render(), "sim_lp.summary.golden")
}

func TestGoldenTree(t *testing.T) {
	tr := loadFixture(t, "sim_lp.jsonl")
	checkGolden(t, tr.RenderTree(), "sim_lp.tree.golden")
}

func TestGoldenCritPath(t *testing.T) {
	tr := loadFixture(t, "sim_lp.jsonl")
	checkGolden(t, traceanalysis.RenderCritPaths(traceanalysis.CritPaths(tr)), "sim_lp.critpath.golden")
}

func TestGoldenAttribute(t *testing.T) {
	tr := loadFixture(t, "sim_lp.jsonl")
	checkGolden(t, traceanalysis.Attribute(tr).Render(), "sim_lp.attribute.golden")
}

func TestGoldenDiff(t *testing.T) {
	a := loadFixture(t, "sim_lp.jsonl")
	b := loadFixture(t, "sim_naive.jsonl")
	d := traceanalysis.Diff(traceanalysis.Summarize(a), traceanalysis.Summarize(b))
	checkGolden(t, d.Render(), "sim_diff.golden")
}

// TestGoldenLegacyTrace keeps the parser accepting the pre-span trace
// shape (flat spans without id/parent, unparented events) that
// internal/obs still emits through its legacy Event/Span entry points.
func TestGoldenLegacyTrace(t *testing.T) {
	tr := loadFixture(t, filepath.Join("..", "..", "obs", "testdata", "trace_golden.jsonl"))
	if tr.SpanCount() == 0 && len(tr.Loose) == 0 {
		t.Fatal("legacy trace parsed to nothing")
	}
	for _, r := range tr.Roots {
		if r.Open {
			t.Errorf("legacy flat span %q parsed as open", r.Name)
		}
	}
}
