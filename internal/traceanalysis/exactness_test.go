package traceanalysis_test

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
	"prospector/internal/sim"
	"prospector/internal/traceanalysis"
)

func randTree(rng *rand.Rand, n int) *network.Network {
	parent := make([]network.NodeID, n)
	for i := 1; i < n; i++ {
		parent[i] = network.NodeID(rng.Intn(i))
	}
	net, err := network.New(parent, nil)
	if err != nil {
		panic(err)
	}
	return net
}

func randValues(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func randBandwidth(rng *rand.Rand, net *network.Network, lo int) []int {
	bw := make([]int, net.Size())
	for v := 1; v < net.Size(); v++ {
		bw[v] = lo + rng.Intn(4)
		if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
			bw[v] = s
		}
	}
	return bw
}

// parseTrace flushes the tracer and rebuilds the span tree.
func parseTrace(t *testing.T, tr *obs.Tracer, buf *bytes.Buffer) *traceanalysis.Trace {
	t.Helper()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	trace, err := traceanalysis.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return trace
}

// TestAttributeMatchesSimNodeEnergy is the acceptance keystone: replaying
// a lossy simulated round's trace must rebuild Result.NodeEnergy
// BITWISE — not approximately — because the trace carries the exact
// floats the simulator added, in the same per-node order, serialized in
// shortest round-trip form.
func TestAttributeMatchesSimNodeEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(50)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf)
		cfg := sim.DefaultConfig(net)
		cfg.Trace = tr
		if trial%2 == 0 {
			loss := make([]float64, n)
			for i := 1; i < n; i++ {
				loss[i] = rng.Float64() * 0.4
			}
			cfg.LossProb = loss
			cfg.Rng = rand.New(rand.NewSource(int64(trial)))
		}
		res, err := sim.Run(cfg, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		attr := traceanalysis.Attribute(parseTrace(t, tr, &buf))
		checkNodeEnergy(t, trial, attr, res.NodeEnergy)
	}
}

// TestAttributeMatchesInstallNodeEnergy covers the top-down
// distribution phase, where the transmitting node is the parent (the
// trace's dst field) rather than the record's node.
func TestAttributeMatchesInstallNodeEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(50)
		net := randTree(rng, n)
		p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf)
		cfg := sim.DefaultConfig(net)
		cfg.Trace = tr
		if trial%2 == 0 {
			loss := make([]float64, n)
			for i := 1; i < n; i++ {
				loss[i] = rng.Float64() * 0.4
			}
			cfg.LossProb = loss
			cfg.Rng = rand.New(rand.NewSource(int64(trial)))
		}
		res, err := sim.RunInstall(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		attr := traceanalysis.Attribute(parseTrace(t, tr, &buf))
		checkNodeEnergy(t, trial, attr, res.NodeEnergy)
	}
}

// TestAttributeMatchesExecGauges cross-checks the analytic executor:
// the replay must land on the same values as the exec.node.<i>.energy_mj
// registry gauges, which exec accumulates independently of the trace.
func TestAttributeMatchesExecGauges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(50)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf)
		reg := obs.NewRegistry()
		env := exec.Env{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel()), Obs: reg, Trace: tr}
		if _, err := exec.Run(env, p, vals); err != nil {
			t.Fatal(err)
		}
		attr := traceanalysis.Attribute(parseTrace(t, tr, &buf))
		snap := reg.Snapshot()
		for i := 0; i < n; i++ {
			want := snap.Gauges["exec.node."+strconv.Itoa(i)+".energy_mj"]
			got := 0.0
			if row, ok := attr.Node(i); ok {
				got = row.EnergyMJ
			}
			if got != want {
				t.Fatalf("trial %d: node %d: attributed %v but gauge says %v", trial, i, got, want)
			}
		}
	}
}

// checkNodeEnergy asserts the attribution equals the simulator's
// per-node accumulators with == (no tolerance).
func checkNodeEnergy(t *testing.T, trial int, attr *traceanalysis.Attribution, want []float64) {
	t.Helper()
	for i, w := range want {
		got := 0.0
		if row, ok := attr.Node(i); ok {
			got = row.EnergyMJ
		}
		if got != w {
			t.Fatalf("trial %d: node %d: attributed %v but simulator metered %v (diff %g)",
				trial, i, got, w, got-w)
		}
	}
	// And no phantom nodes the simulator never charged.
	for _, row := range attr.Nodes {
		if row.Node < 0 || row.Node >= len(want) {
			t.Fatalf("trial %d: attribution invented node %d", trial, row.Node)
		}
	}
}
