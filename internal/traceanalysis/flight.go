package traceanalysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Flight-dump analysis. A flight dump is what internal/obs/telemetry's
// monitor writes when a live rule breaches: one JSON header line
// identifying the breach, then the flight recorder's retained trace
// records (a plain JSON-lines trace fragment, oldest first). This file
// parses the document and renders the report behind `tracetool flight`.

// FlightSchemaPrefix is the schema-family marker a flight header must
// carry. The producer (telemetry.FlightSchema) currently writes
// "prospector/flight/v1"; matching on the prefix lets this reader
// accept later minor revisions while still rejecting arbitrary JSON
// lines that merely look header-ish.
const FlightSchemaPrefix = "prospector/flight/"

// FlightHeader mirrors telemetry.FlightHeader, the first line of a
// flight dump. Declared here rather than imported: telemetry depends
// (through regress and ledger) on this package, so the reader keeps
// its own view of the schema. The JSON keys are the contract.
type FlightHeader struct {
	Flight  string  `json:"flight"`
	Series  string  `json:"series"`
	Kind    string  `json:"kind"`
	Got     float64 `json:"got"`
	Want    string  `json:"want"`
	Tick    int64   `json:"tick"`
	Now     float64 `json:"now"`
	Records int     `json:"records"`
	Dropped int64   `json:"dropped"`
	Note    string  `json:"note,omitempty"`
}

// FlightDump is a parsed flight-recorder dump: the breach header plus
// the retained trace fragment rebuilt into a span tree.
type FlightDump struct {
	Header FlightHeader
	Trace  *Trace
}

// ParseFlight reads a flight dump: the header line, then the trace
// fragment. A reader with no header line, a header from a different
// schema family, or an unparsable fragment is an error; a header with
// zero following records parses (Trace has no records) — callers
// decide whether that is reportable.
func ParseFlight(r io.Reader) (*FlightDump, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return nil, fmt.Errorf("traceanalysis: flight dump is empty")
	}
	var hdr FlightHeader
	if jerr := json.Unmarshal(bytes.TrimSpace(line), &hdr); jerr != nil {
		return nil, fmt.Errorf("traceanalysis: flight header: %w", jerr)
	}
	if !strings.HasPrefix(hdr.Flight, FlightSchemaPrefix) {
		return nil, fmt.Errorf("traceanalysis: not a flight dump (flight=%q, want prefix %q)", hdr.Flight, FlightSchemaPrefix)
	}
	t, err := Parse(br)
	if err != nil {
		return nil, err
	}
	return &FlightDump{Header: hdr, Trace: t}, nil
}

// Render formats the flight report: what breached, the ring state at
// dump time, the record window, and per-name record counts so the
// reader sees at a glance what the recorder retained. Deterministic:
// same dump bytes, same report bytes.
func (d *FlightDump) Render() string {
	var b strings.Builder
	h := d.Header
	fmt.Fprintf(&b, "flight dump (%s)\n", h.Flight)
	fmt.Fprintf(&b, "breach: %s %s got %s (want %s)\n",
		h.Series, h.Kind, formatNum(h.Got), h.Want)
	if h.Note != "" {
		fmt.Fprintf(&b, "note:   %s\n", h.Note)
	}
	fmt.Fprintf(&b, "tick:   %d (now %s); %d records retained, %d evicted\n",
		h.Tick, formatNum(h.Now), h.Records, h.Dropped)
	recs := d.Trace.Records
	if len(recs) == 0 {
		b.WriteString("records: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "records: %d, seq %d..%d, spans %d\n",
		len(recs), recs[0].Seq, recs[len(recs)-1].Seq, d.Trace.SpanCount())
	counts := map[string]int{}
	for i := range recs {
		name := recs[i].Name
		if name == "" { // end records close a span opened earlier
			name = "(end)"
		}
		counts[recs[i].Kind.String()+" "+name]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-28s %d\n", k, counts[k])
	}
	return b.String()
}

// formatNum renders a float in shortest round-trip form, matching the
// trace format (integral values come out without a decimal point).
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
