package traceanalysis

import (
	"fmt"
	"sort"
	"strings"
)

// PhaseTotal aggregates every span sharing one name ("phase"):
// sim.epoch, exec.epoch, lp.solve, core.plan, sim.install, ...
type PhaseTotal struct {
	Name     string
	Spans    int
	Open     int // spans never closed (truncated trace)
	Duration float64
	EnergyMJ float64
	Messages int64
	Values   int64
}

// EventTotal counts every event sharing one name.
type EventTotal struct {
	Name     string
	Count    int
	EnergyMJ float64 // sum of energy_mj/tx_mj fields, when present
}

// Summary is the per-phase rollup of one trace.
type Summary struct {
	Records int
	Spans   int
	Phases  []PhaseTotal // sorted by name
	Events  []EventTotal // sorted by name
}

// Phase returns the named phase total and whether it exists.
func (s *Summary) Phase(name string) (PhaseTotal, bool) {
	for _, p := range s.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseTotal{}, false
}

// Summarize rolls a trace up into per-phase and per-event totals.
// Span iteration is in ID order and events in seq order, so the float
// sums are reproducible for a given trace.
func Summarize(t *Trace) *Summary {
	s := &Summary{Records: len(t.Records), Spans: t.SpanCount()}
	ids := make([]int64, 0, t.SpanCount())
	for id := range t.spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	phases := map[string]*PhaseTotal{}
	for _, id := range ids {
		sp := t.spans[id]
		p := phases[sp.Name]
		if p == nil {
			p = &PhaseTotal{Name: sp.Name}
			phases[sp.Name] = p
		}
		p.Spans++
		if sp.Open {
			p.Open++
		}
		p.Duration += sp.Duration()
		if v, ok := sp.Num("energy_mj"); ok {
			p.EnergyMJ += v
		} else {
			// Flat transfer spans carry split shares instead.
			tx, _ := sp.Num("tx_mj")
			rx, _ := sp.Num("rx_mj")
			p.EnergyMJ += tx + rx
		}
		p.Messages += int64(sp.Nums["messages"])
		p.Values += int64(sp.Nums["values"])
	}
	events := map[string]*EventTotal{}
	for i := range t.Records {
		rec := &t.Records[i]
		if rec.Kind != KindEvent {
			continue
		}
		e := events[rec.Name]
		if e == nil {
			e = &EventTotal{Name: rec.Name}
			events[rec.Name] = e
		}
		e.Count++
		if v, ok := rec.Num("energy_mj"); ok {
			e.EnergyMJ += v
		} else if v, ok := rec.Num("tx_mj"); ok {
			e.EnergyMJ += v
			if rx, ok := rec.Num("rx_mj"); ok {
				e.EnergyMJ += rx
			}
		}
	}
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Phases = append(s.Phases, *phases[n])
	}
	names = names[:0]
	for n := range events {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Events = append(s.Events, *events[n])
	}
	return s
}

// Render formats the summary as the text table `tracetool summary`
// prints.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d records, %d spans\n", s.Records, s.Spans)
	if len(s.Phases) > 0 {
		fmt.Fprintf(&b, "%-14s %6s %10s %12s %9s %8s\n",
			"phase", "spans", "duration", "energy (mJ)", "messages", "values")
		for _, p := range s.Phases {
			fmt.Fprintf(&b, "%-14s %6d %10.4f %12.3f %9d %8d",
				p.Name, p.Spans, p.Duration, p.EnergyMJ, p.Messages, p.Values)
			if p.Open > 0 {
				fmt.Fprintf(&b, "  (%d open)", p.Open)
			}
			b.WriteString("\n")
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "%-14s %6s %12s\n", "event", "count", "energy (mJ)")
		for _, e := range s.Events {
			fmt.Fprintf(&b, "%-14s %6d %12.3f\n", e.Name, e.Count, e.EnergyMJ)
		}
	}
	return b.String()
}
