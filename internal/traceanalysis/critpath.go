package traceanalysis

import (
	"fmt"
	"strings"
)

// Hop is one transfer on a critical path: node's message to dst.
type Hop struct {
	Node  int
	Dst   int
	Start float64
	End   float64
	// Wait is the idle gap between the previous hop's delivery and
	// this hop's first transmission attempt (carrier-sense deferral,
	// slot alignment); 0 on the first hop.
	Wait float64
}

// EpochPath is the critical latency chain of one collection round: the
// sequence of transfers that gated the root's last reception, deepest
// sender first.
type EpochPath struct {
	SpanID  int64
	Name    string // sim.epoch or exec.epoch
	Latency float64
	Hops    []Hop
}

// epochSpanNames are the phases critpath analyzes.
var epochSpanNames = []string{"sim.epoch", "exec.epoch"}

// CritPaths extracts the critical path of every collection round in
// the trace, in span-ID order.
//
// A round's transfers form a DAG via the collection tree: a node's
// message cannot leave before the child deliveries it pooled. The
// critical path is reconstructed backwards from the latest delivery to
// a non-transmitting node (the root): each step picks the
// latest-finishing transfer into the current sender that completed
// before the sender started. Both sim.xfer child spans (simulated
// clock) and exec.msg events (step clock, zero-width) are understood.
func CritPaths(t *Trace) []EpochPath {
	var out []EpochPath
	for _, name := range epochSpanNames {
		for _, ep := range t.Spans(name) {
			if p, ok := critPath(ep); ok {
				out = append(out, p)
			}
		}
	}
	// Spans() yields ID order per name; interleave the two families
	// back into global ID order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].SpanID < out[j-1].SpanID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// critPath reconstructs one epoch's chain. ok is false when the round
// moved no messages.
func critPath(ep *Span) (EpochPath, bool) {
	var xfers []Hop
	for _, c := range ep.Children {
		if c.Name == "sim.xfer" {
			xfers = append(xfers, Hop{}.with(c.Int("node", -1), c.Int("dst", -1), c.Start, c.End))
		}
	}
	for _, ev := range ep.Events {
		if ev.Name == "exec.msg" {
			xfers = append(xfers, Hop{}.with(ev.Int("node", -1), ev.Int("dst", -1), ev.Time, ev.Time))
		}
	}
	if len(xfers) == 0 {
		return EpochPath{}, false
	}
	senders := map[int]bool{}
	for _, x := range xfers {
		senders[x.Node] = true
	}
	// Terminal hop: the latest delivery to a node that never transmits
	// (the root of the collection tree). Ties break toward the earlier
	// record, which xfers order provides.
	terminal := -1
	for i, x := range xfers {
		if senders[x.Dst] {
			continue
		}
		if terminal < 0 || x.End > xfers[terminal].End {
			terminal = i
		}
	}
	if terminal < 0 {
		return EpochPath{}, false
	}
	path := []Hop{xfers[terminal]}
	cur := xfers[terminal]
	for hops := 0; hops < len(xfers); hops++ {
		prev := -1
		for i, x := range xfers {
			if x.Dst != cur.Node || x.End > cur.Start {
				continue
			}
			if prev < 0 || x.End > xfers[prev].End {
				prev = i
			}
		}
		if prev < 0 {
			break
		}
		cur = xfers[prev]
		path = append(path, cur)
	}
	// Reverse into causal (deepest-first) order and fill waits.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	for i := 1; i < len(path); i++ {
		path[i].Wait = path[i].Start - path[i-1].End
	}
	return EpochPath{SpanID: ep.ID, Name: ep.Name, Latency: xfers[terminal].End, Hops: path}, true
}

// with returns the hop with its fields set (keeps the construction
// sites above compact).
func (h Hop) with(node, dst int, start, end float64) Hop {
	h.Node, h.Dst, h.Start, h.End = node, dst, start, end
	return h
}

// RenderCritPaths formats the chains as the text `tracetool critpath`
// prints.
func RenderCritPaths(paths []EpochPath) string {
	if len(paths) == 0 {
		return "no collection rounds with transfers in trace\n"
	}
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s span %d: latency %.4f, %d hops\n", p.Name, p.SpanID, p.Latency, len(p.Hops))
		for i, h := range p.Hops {
			fmt.Fprintf(&b, "  %2d: node %3d -> %3d  [%.4f, %.4f]", i+1, h.Node, h.Dst, h.Start, h.End)
			if i > 0 {
				fmt.Fprintf(&b, "  wait %.4f", h.Wait)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
