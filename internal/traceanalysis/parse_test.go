package traceanalysis_test

import (
	"strings"
	"testing"

	"prospector/internal/traceanalysis"
)

func parseAll(t *testing.T, lines string) *traceanalysis.Trace {
	t.Helper()
	tr, err := traceanalysis.Parse(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseSpanTreeShapes(t *testing.T) {
	tr := parseAll(t, `{"seq":1,"begin":"query","id":1,"parent":0,"t":0,"planner":"lp+lf"}
{"seq":2,"span":"lp.solve","id":2,"parent":1,"start":0,"end":0.5,"pivots":12}
{"seq":3,"begin":"sim.epoch","id":3,"parent":1,"t":0}
{"seq":4,"ev":"sim.trigger","parent":3,"t":0,"node":0,"energy_mj":0.3}
{"seq":5,"span":"sim.xfer","id":5,"parent":3,"start":0.1,"end":0.2,"node":2,"dst":0,"tx_mj":1.5,"rx_mj":0.5}
{"seq":6,"end":3,"t":0.9,"energy_mj":2.3,"messages":1}
{"seq":7,"end":1,"t":1}`)

	if tr.SpanCount() != 4 {
		t.Fatalf("want 4 spans, got %d", tr.SpanCount())
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "query" {
		t.Fatalf("roots = %+v", tr.Roots)
	}
	root := tr.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("query should have 2 children, got %d", len(root.Children))
	}
	epoch := tr.Span(3)
	if epoch == nil || epoch.Open {
		t.Fatalf("epoch span missing or open: %+v", epoch)
	}
	if e, ok := epoch.Num("energy_mj"); !ok || e != 2.3 {
		t.Fatalf("end-record fields not merged: %v %v", e, ok)
	}
	if epoch.End != 0.9 {
		t.Fatalf("epoch end = %v", epoch.End)
	}
	if len(epoch.Events) != 1 || epoch.Events[0].Name != "sim.trigger" {
		t.Fatalf("epoch events = %+v", epoch.Events)
	}
	if len(epoch.Children) != 1 || epoch.Children[0].Name != "sim.xfer" {
		t.Fatalf("epoch children = %+v", epoch.Children)
	}
	// The flat span's own "end" key must be read as its end time, not as
	// a span-closing record.
	if x := epoch.Children[0]; x.Start != 0.1 || x.End != 0.2 {
		t.Fatalf("sim.xfer times = [%v, %v]", x.Start, x.End)
	}
}

func TestParseOpenSpanAtTruncation(t *testing.T) {
	tr := parseAll(t, `{"seq":1,"begin":"query","id":1,"parent":0,"t":0}
{"seq":2,"begin":"sim.epoch","id":2,"parent":1,"t":0}`)
	if !tr.Span(1).Open || !tr.Span(2).Open {
		t.Fatal("truncated trace must leave spans open")
	}
	if tr.Span(2).Duration() != 0 {
		t.Fatal("open span duration must be 0")
	}
}

func TestParseLegacyFlatSpanGetsSeqID(t *testing.T) {
	tr := parseAll(t, `{"seq":3,"span":"lp.solve","start":0,"end":1,"pivots":4}
{"seq":7,"ev":"loose","t":2,"node":1}`)
	if tr.Span(3) == nil {
		t.Fatal("legacy flat span should get ID = seq")
	}
	if len(tr.Loose) != 1 {
		t.Fatalf("unparented event should be loose, got %d", len(tr.Loose))
	}
}

func TestParseUnknownParentDemotesToRoot(t *testing.T) {
	// Legacy traces reuse "parent" for network topology; an unknown
	// parent must not fail the parse.
	tr := parseAll(t, `{"seq":1,"span":"sim.xfer","start":0,"end":1,"node":5,"parent":2}`)
	if len(tr.Roots) != 1 {
		t.Fatalf("roots = %d", len(tr.Roots))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"reordered seq": `{"seq":2,"ev":"a","t":0}
{"seq":1,"ev":"b","t":0}`,
		"duplicate id": `{"seq":1,"begin":"a","id":1,"t":0}
{"seq":2,"begin":"b","id":1,"t":0}`,
		"end unknown":   `{"seq":1,"end":9,"t":0}`,
		"double end":    `{"seq":1,"begin":"a","id":1,"t":0}` + "\n" + `{"seq":2,"end":1,"t":1}` + "\n" + `{"seq":3,"end":1,"t":2}`,
		"no kind key":   `{"seq":1,"t":0}`,
		"no seq":        `{"ev":"a","t":0}`,
		"two kind keys": `{"seq":1,"ev":"a","begin":"b","t":0}`,
		"bad json":      `{"seq":1,`,
		"bad value":     `{"seq":1,"ev":"a","t":0,"field":[1,2]}`,
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	for _, name := range names {
		if _, err := traceanalysis.Parse(strings.NewReader(cases[name])); err == nil {
			t.Errorf("%s: parse accepted malformed trace", name)
		}
	}
}

func TestBoolFieldsBecomeNums(t *testing.T) {
	tr := parseAll(t, `{"seq":1,"ev":"a","t":0,"flag":true,"off":false}`)
	r := tr.Loose[0]
	if v, _ := r.Num("flag"); v != 1 {
		t.Fatalf("flag = %v", v)
	}
	if v, _ := r.Num("off"); v != 0 {
		t.Fatalf("off = %v", v)
	}
}

func TestCritPathOrdering(t *testing.T) {
	// A three-hop chain with a decoy branch: the path must follow the
	// latest delivery backwards, not the decoy that finished earlier.
	tr := parseAll(t, `{"seq":1,"begin":"sim.epoch","id":1,"parent":0,"t":0}
{"seq":2,"span":"sim.xfer","id":2,"parent":1,"start":0,"end":1,"node":4,"dst":2}
{"seq":3,"span":"sim.xfer","id":3,"parent":1,"start":0,"end":0.4,"node":3,"dst":2}
{"seq":4,"span":"sim.xfer","id":4,"parent":1,"start":1.5,"end":2.5,"node":2,"dst":0}
{"seq":5,"end":1,"t":2.5}`)
	paths := traceanalysis.CritPaths(tr)
	if len(paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(paths))
	}
	p := paths[0]
	if p.Latency != 2.5 || len(p.Hops) != 2 {
		t.Fatalf("path = %+v", p)
	}
	if p.Hops[0].Node != 4 || p.Hops[1].Node != 2 {
		t.Fatalf("hops follow decoy: %+v", p.Hops)
	}
	if w := p.Hops[1].Wait; w != 0.5 {
		t.Fatalf("wait = %v", w)
	}
}
