package ledger_test

import (
	"fmt"
	"io"
	"testing"

	"prospector/internal/ledger"
	"prospector/internal/obs"
)

// benchRegistry builds a registry of the shape a full experiments run
// leaves behind: a few dozen counters, per-node gauges, and labeled
// histograms.
func benchRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		reg.Counter(fmt.Sprintf("exec.level.%d.messages", i)).Add(int64(i * 3))
	}
	for i := 0; i < 120; i++ {
		reg.Gauge(fmt.Sprintf("exec.node.%d.energy_mj", i)).Set(float64(i) * 1.5)
	}
	bounds := []float64{1, 2, 5, 10, 20, 50}
	for i := 0; i < 8; i++ {
		h := reg.Histogram(fmt.Sprintf("lp.h%d", i), bounds)
		for j := 0; j < 200; j++ {
			h.Observe(float64(j % 37))
		}
	}
	return reg
}

// BenchmarkManifestBuild measures assembling a manifest from a
// realistic end-of-run snapshot (the split/copy work).
func BenchmarkManifestBuild(b *testing.B) {
	reg := benchRegistry()
	snap := reg.Snapshot()
	env := ledger.HostEnvironment(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ledger.New("bench", map[string]string{"fig": "3"}, snap, env)
	}
}

// BenchmarkManifestWrite measures the full emission path: snapshot ->
// manifest -> indented JSON. This is the per-run overhead -manifest
// adds to a figure run.
func BenchmarkManifestWrite(b *testing.B) {
	reg := benchRegistry()
	env := ledger.HostEnvironment(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ledger.New("bench", map[string]string{"fig": "3"}, reg.Snapshot(), env)
		if err := m.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
