package ledger

import (
	"strconv"
	"strings"
)

// Series resolves a dotted series reference against the manifest — the
// namespace baseline rules are written in:
//
//	<counter>                    metrics counter, as float64
//	<gauge>                      metrics gauge (includes derived
//	                             quantiles like lp.warm_pivots.p99 and
//	                             lp.warm_hit_rate)
//	<histogram>.count/.sum/.mean histogram accessors
//	trace.records / trace.spans / trace.rounds
//	trace.max_hops / trace.max_latency
//	trace.request_mj / trace.request_messages
//	trace.phase.<name>.<attr>    attr: spans, duration, energy_mj,
//	                             messages, values (phase names keep
//	                             their dots: trace.phase.exec.epoch.energy_mj)
//	trace.node.<id>.<attr>       attr: energy_mj, messages
//
// The boolean reports whether the reference resolved. Counters shadow
// gauges shadow histograms in the unlikely event of a name collision.
func (m *Manifest) Series(name string) (float64, bool) {
	if strings.HasPrefix(name, "trace.") {
		return m.traceSeries(strings.TrimPrefix(name, "trace."))
	}
	if m.Metrics == nil {
		return 0, false
	}
	if v, ok := m.Metrics.Counters[name]; ok {
		return float64(v), true
	}
	if v, ok := m.Metrics.Gauges[name]; ok {
		return v, true
	}
	if base, attr, ok := splitLastDot(name); ok {
		if h, have := m.Metrics.Histograms[base]; have {
			switch attr {
			case "count":
				return float64(h.Count), true
			case "sum":
				return h.Sum, true
			case "mean":
				if h.Count == 0 {
					return 0, true
				}
				return h.Sum / float64(h.Count), true
			}
		}
	}
	return 0, false
}

// traceSeries resolves the trace.* namespace (name arrives with the
// prefix stripped).
func (m *Manifest) traceSeries(name string) (float64, bool) {
	t := m.Trace
	if t == nil {
		return 0, false
	}
	switch name {
	case "records":
		return float64(t.Records), true
	case "spans":
		return float64(t.Spans), true
	case "rounds":
		return float64(t.Rounds), true
	case "max_hops":
		return float64(t.MaxHops), true
	case "max_latency":
		return t.MaxLatency, true
	case "request_mj":
		return t.RequestMJ, true
	case "request_messages":
		return float64(t.RequestMessages), true
	}
	if rest, ok := strings.CutPrefix(name, "phase."); ok {
		phase, attr, split := splitLastDot(rest)
		if !split {
			return 0, false
		}
		for _, p := range t.Phases {
			if p.Name != phase {
				continue
			}
			switch attr {
			case "spans":
				return float64(p.Spans), true
			case "duration":
				return p.Duration, true
			case "energy_mj":
				return p.EnergyMJ, true
			case "messages":
				return float64(p.Messages), true
			case "values":
				return float64(p.Values), true
			}
			return 0, false
		}
		return 0, false
	}
	if rest, ok := strings.CutPrefix(name, "node."); ok {
		idStr, attr, split := splitLastDot(rest)
		if !split {
			return 0, false
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return 0, false
		}
		for _, n := range t.Nodes {
			if n.Node != id {
				continue
			}
			switch attr {
			case "energy_mj":
				return n.EnergyMJ, true
			case "messages":
				return float64(n.Messages), true
			}
			return 0, false
		}
	}
	return 0, false
}

// splitLastDot splits "a.b.c" into ("a.b", "c"); ok is false when
// there is no dot.
func splitLastDot(s string) (head, tail string, ok bool) {
	i := strings.LastIndexByte(s, '.')
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}
