package ledger_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"prospector/internal/experiments"
	"prospector/internal/ledger"
	"prospector/internal/obs"
	"prospector/internal/traceanalysis"
)

// quickFigure3Manifest runs the shared smoke-scale Figure 3 workload
// with a fresh registry and an in-memory trace, and assembles the
// manifest exactly as cmd/experiments -manifest does.
func quickFigure3Manifest(t testing.TB) *ledger.Manifest {
	t.Helper()
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	experiments.SetObs(reg, tr)
	defer experiments.SetObs(nil, nil)
	span := tr.StartSpan(nil, "experiment", 0, obs.F("fig", "3"))
	experiments.SetSpan(span)
	_, err := experiments.Figure3(experiments.QuickFigure3Config())
	experiments.SetSpan(nil)
	span.End(1)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush trace: %v", err)
	}
	trace, err := traceanalysis.Parse(&buf)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	env := ledger.HostEnvironment(12345)
	env.WallSeconds = map[string]float64{"figure3": 1.0}
	m := ledger.New("experiments", map[string]string{"fig": "3", "quick": "true"}, reg.Snapshot(), env)
	m.Trace = ledger.SummarizeTrace(trace)
	return m
}

// TestManifestDeterminism is the ledger's core guarantee: two same-seed
// runs produce byte-identical manifests outside the Environment block.
func TestManifestDeterminism(t *testing.T) {
	a := quickFigure3Manifest(t)
	b := quickFigure3Manifest(t)
	ab, err := a.DeterministicBytes()
	if err != nil {
		t.Fatalf("DeterministicBytes(a): %v", err)
	}
	bb, err := b.DeterministicBytes()
	if err != nil {
		t.Fatalf("DeterministicBytes(b): %v", err)
	}
	if !bytes.Equal(ab, bb) {
		t.Errorf("same-seed manifests differ outside Environment:\nA: %.2000s\nB: %.2000s", ab, bb)
	}
}

// TestManifestQuarantinesWallClock pins the relocation: the wall-clock
// histogram and its derived quantile gauges must leave Metrics for
// Environment.WallClockMetrics, and everything else must stay.
func TestManifestQuarantinesWallClock(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("lp.solves").Add(3)
	reg.Gauge("lp.warm_hit_rate").Set(0.5)
	reg.Histogram("lp.solve_seconds", []float64{0.01, 0.1}).Observe(0.005)
	reg.Histogram("lp.warm_pivots", []float64{1, 10}).Observe(4)
	m := ledger.New("test", nil, reg.Snapshot(), ledger.Environment{})

	if _, ok := m.Metrics.Histograms["lp.solve_seconds"]; ok {
		t.Errorf("lp.solve_seconds still in Metrics")
	}
	for k := range m.Metrics.Gauges {
		if strings.HasPrefix(k, "lp.solve_seconds.") {
			t.Errorf("derived wall-clock gauge %s still in Metrics", k)
		}
	}
	wall := m.Environment.WallClockMetrics
	if wall == nil {
		t.Fatalf("no WallClockMetrics block")
	}
	if _, ok := wall.Histograms["lp.solve_seconds"]; !ok {
		t.Errorf("lp.solve_seconds not relocated to Environment")
	}
	if _, ok := wall.Gauges["lp.solve_seconds.p50"]; !ok {
		t.Errorf("lp.solve_seconds.p50 not relocated to Environment")
	}
	// The deterministic series must be untouched.
	if m.Metrics.Counters["lp.solves"] != 3 {
		t.Errorf("lp.solves = %d, want 3", m.Metrics.Counters["lp.solves"])
	}
	if _, ok := m.Metrics.Histograms["lp.warm_pivots"]; !ok {
		t.Errorf("lp.warm_pivots missing from Metrics")
	}
	if _, ok := m.Metrics.Gauges["lp.warm_pivots.p50"]; !ok {
		t.Errorf("lp.warm_pivots.p50 missing from Metrics")
	}
	// DeterministicBytes must not see the environment block at all.
	db, err := m.DeterministicBytes()
	if err != nil {
		t.Fatalf("DeterministicBytes: %v", err)
	}
	if bytes.Contains(db, []byte("lp.solve_seconds")) {
		t.Errorf("DeterministicBytes still contains wall-clock series")
	}
}

// TestManifestQuarantinesRuntimeFamily pins the prefix quarantine: the
// telemetry runtime bridge's go.* gauges and the exec.epoch_ms wall
// histogram must relocate to the environment block wholesale.
func TestManifestQuarantinesRuntimeFamily(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("go.goroutines").Set(12)
	reg.Gauge("go.heap_bytes").Set(1 << 20)
	reg.Histogram("exec.epoch_ms", []float64{1, 10, 100}).Observe(3)
	reg.Counter("exec.messages").Add(5)
	m := ledger.New("test", nil, reg.Snapshot(), ledger.Environment{})

	for k := range m.Metrics.Gauges {
		if strings.HasPrefix(k, "go.") {
			t.Errorf("runtime gauge %s still in Metrics", k)
		}
	}
	if _, ok := m.Metrics.Histograms["exec.epoch_ms"]; ok {
		t.Errorf("exec.epoch_ms still in Metrics")
	}
	wall := m.Environment.WallClockMetrics
	if wall == nil {
		t.Fatalf("no WallClockMetrics block")
	}
	if _, ok := wall.Gauges["go.goroutines"]; !ok {
		t.Errorf("go.goroutines not relocated to Environment")
	}
	if _, ok := wall.Histograms["exec.epoch_ms"]; !ok {
		t.Errorf("exec.epoch_ms not relocated to Environment")
	}
	if m.Metrics.Counters["exec.messages"] != 5 {
		t.Errorf("deterministic counter disturbed")
	}
	db, err := m.DeterministicBytes()
	if err != nil {
		t.Fatalf("DeterministicBytes: %v", err)
	}
	for _, s := range []string{"go.goroutines", "exec.epoch_ms"} {
		if bytes.Contains(db, []byte(s)) {
			t.Errorf("DeterministicBytes still contains %s", s)
		}
	}
}

// TestManifestRoundTrip writes and re-reads a manifest, and rejects a
// document with the wrong schema.
func TestManifestRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("exec.messages").Add(7)
	m := ledger.New("test", map[string]string{"k": "5"}, reg.Snapshot(), ledger.HostEnvironment(99))

	path := t.TempDir() + "/m.json"
	if err := ledger.WriteFile(path, m); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ledger.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if back.Run.Command != "test" || back.Run.Args["k"] != "5" {
		t.Errorf("run block = %+v", back.Run)
	}
	if got, ok := back.Series("exec.messages"); !ok || got != 7 {
		t.Errorf("exec.messages = %v, %v; want 7, true", got, ok)
	}
	if back.Environment.StartUnix != 99 {
		t.Errorf("StartUnix = %d, want 99", back.Environment.StartUnix)
	}

	bad := path + ".bad"
	if err := os.WriteFile(bad, []byte(`{"schema":"something/else/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.ReadFile(bad); err == nil {
		t.Errorf("ReadFile accepted wrong schema")
	}
}

// TestSeriesResolution covers every branch of the series namespace.
func TestSeriesResolution(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("exec.messages").Add(10)
	reg.Gauge("lp.warm_hit_rate").Set(0.75)
	h := reg.Histogram("lp.warm_pivots", []float64{1, 10})
	h.Observe(2)
	h.Observe(4)
	m := ledger.New("test", nil, reg.Snapshot(), ledger.Environment{})
	m.Trace = &ledger.TraceSummary{
		Records: 100, Spans: 40, Rounds: 5, MaxHops: 3, MaxLatency: 1.5,
		RequestMJ: 2.25, RequestMessages: 9,
		Phases: []ledger.PhaseAgg{{Name: "exec.epoch", Spans: 5, Duration: 10, EnergyMJ: 42.5, Messages: 30, Values: 60}},
		Nodes:  []ledger.NodeAgg{{Node: 7, EnergyMJ: 3.5, Messages: 12}},
	}

	cases := []struct {
		name string
		want float64
		ok   bool
	}{
		{"exec.messages", 10, true},
		{"lp.warm_hit_rate", 0.75, true},
		{"lp.warm_pivots.count", 2, true},
		{"lp.warm_pivots.sum", 6, true},
		{"lp.warm_pivots.mean", 3, true},
		{"trace.records", 100, true},
		{"trace.spans", 40, true},
		{"trace.rounds", 5, true},
		{"trace.max_hops", 3, true},
		{"trace.max_latency", 1.5, true},
		{"trace.request_mj", 2.25, true},
		{"trace.request_messages", 9, true},
		{"trace.phase.exec.epoch.spans", 5, true},
		{"trace.phase.exec.epoch.duration", 10, true},
		{"trace.phase.exec.epoch.energy_mj", 42.5, true},
		{"trace.phase.exec.epoch.messages", 30, true},
		{"trace.phase.exec.epoch.values", 60, true},
		{"trace.node.7.energy_mj", 3.5, true},
		{"trace.node.7.messages", 12, true},
		{"no.such.series", 0, false},
		{"trace.phase.missing.energy_mj", 0, false},
		{"trace.node.99.energy_mj", 0, false},
		{"trace.node.notanumber.energy_mj", 0, false},
		{"lp.warm_pivots.p101", 0, false},
	}
	for _, c := range cases {
		got, ok := m.Series(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Series(%q) = %v, %v; want %v, %v", c.name, got, ok, c.want, c.ok)
		}
	}

	// Derived quantile gauges resolve through the plain gauge path.
	if got, ok := m.Series("lp.warm_pivots.p50"); !ok || got <= 0 {
		t.Errorf("lp.warm_pivots.p50 = %v, %v; want positive, true", got, ok)
	}
}
