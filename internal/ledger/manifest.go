// Package ledger makes every experiment run a self-describing,
// machine-checkable artifact: a run manifest is one deterministic JSON
// document capturing what was run (command + flags), on what (go
// version, OS/arch, git revision), what came out (the final metrics
// snapshot, including the derived quantile gauges and
// lp.warm_hit_rate), and what the trace shows (per-phase totals,
// per-node energy attribution, critical-path aggregates).
//
// Everything nondeterministic — host facts, wall-clock timings, and
// the wall-time metric series fed from injected clocks — is quarantined
// in the Environment block, so two runs of the same seed produce
// byte-identical manifests outside it (DeterministicBytes pins this,
// and internal/ledger's tests enforce it). internal/regress compares
// manifests against committed baselines; cmd/regress is the CLI.
package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"prospector/internal/obs"
)

// Schema identifies the manifest document format. Bump the version on
// any change that would make old baselines or readers misinterpret a
// field.
const Schema = "prospector/run-manifest/v1"

// Manifest is one run's self-description. Field order is the document
// order; map keys serialize sorted (encoding/json), so marshaling is
// deterministic given deterministic values.
type Manifest struct {
	Schema string `json:"schema"`
	Run    Run    `json:"run"`
	// Metrics is the end-of-run registry snapshot with the wall-clock
	// series relocated to Environment.WallClockMetrics.
	Metrics *obs.Snapshot `json:"metrics"`
	// Trace aggregates are present when the run also streamed a trace.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Environment is the one nondeterministic block: host facts and
	// wall-clock measurements. Comparisons that demand reproducibility
	// (DeterministicBytes, regress rules) never look inside it.
	Environment Environment `json:"environment"`
}

// Run records what was executed: the command and its effective
// configuration as flag-name -> rendered-value pairs.
type Run struct {
	Command string            `json:"command"`
	Args    map[string]string `json:"args,omitempty"`
}

// Environment is the nondeterministic block of a manifest.
type Environment struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GitRev    string `json:"git_rev,omitempty"`
	// StartUnix is the run's start in Unix seconds, supplied by the
	// caller (the deterministic core never reads clocks).
	StartUnix int64 `json:"start_unix,omitempty"`
	// WallSeconds holds per-phase wall-time self-instrumentation, e.g.
	// one entry per figure for cmd/experiments.
	WallSeconds map[string]float64 `json:"wall_seconds,omitempty"`
	// WallClockMetrics receives the metric series fed from injected
	// wall clocks (lp.solve_seconds and its derived quantiles), which
	// would otherwise break manifest determinism.
	WallClockMetrics *obs.Snapshot `json:"wall_clock_metrics,omitempty"`
}

// wallClockSeries names the histogram families whose observations are
// wall-clock readings. The family's histogram (any label block) and
// its derived quantile gauges are relocated into the environment.
var wallClockSeries = []string{"lp.solve_seconds", "exec.epoch_ms"}

// wallClockPrefixes names whole metric families that are inherently
// nondeterministic: every series under a listed prefix is relocated.
// go.* is the telemetry runtime bridge (heap, GC, goroutines, sched
// latency) — runtime state can never appear in the deterministic block.
var wallClockPrefixes = []string{"go."}

func hasWallClockPrefix(key string) bool {
	for _, p := range wallClockPrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// New assembles a manifest from a run's identity, its final registry
// snapshot, and the environment block. The snapshot is copied; wall-
// clock series are moved into env.WallClockMetrics rather than
// dropped, so the signal stays available without poisoning
// determinism. snap may be nil (a run without metrics still gets a
// well-formed manifest).
func New(command string, args map[string]string, snap *obs.Snapshot, env Environment) *Manifest {
	m := &Manifest{Schema: Schema, Run: Run{Command: command, Args: args}, Environment: env}
	metrics, wall := splitWallClock(snap)
	m.Metrics = metrics
	if wall != nil {
		m.Environment.WallClockMetrics = wall
	}
	return m
}

// splitWallClock copies snap, moving wall-clock series into a second
// snapshot (nil when none were present).
func splitWallClock(snap *obs.Snapshot) (metrics, wall *obs.Snapshot) {
	metrics = emptySnapshot()
	if snap == nil {
		return metrics, nil
	}
	toWall := func() *obs.Snapshot {
		if wall == nil {
			wall = emptySnapshot()
		}
		return wall
	}
	for k, v := range snap.Counters {
		metrics.Counters[k] = v
	}
	gauges := make([]string, 0, len(snap.Gauges))
	for k := range snap.Gauges {
		gauges = append(gauges, k)
	}
	sort.Strings(gauges)
	for _, k := range gauges {
		if isWallClockGauge(k) {
			toWall().Gauges[k] = snap.Gauges[k]
		} else {
			metrics.Gauges[k] = snap.Gauges[k]
		}
	}
	hists := make([]string, 0, len(snap.Histograms))
	for k := range snap.Histograms {
		hists = append(hists, k)
	}
	sort.Strings(hists)
	for _, k := range hists {
		if isWallClockHistogram(k) {
			toWall().Histograms[k] = snap.Histograms[k]
		} else {
			metrics.Histograms[k] = snap.Histograms[k]
		}
	}
	return metrics, wall
}

func emptySnapshot() *obs.Snapshot {
	return &obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistogramSnapshot{},
	}
}

// isWallClockHistogram matches a histogram series key against the
// wall-clock families: the bare family name or the family with a label
// block.
func isWallClockHistogram(key string) bool {
	if hasWallClockPrefix(key) {
		return true
	}
	for _, name := range wallClockSeries {
		if key == name || strings.HasPrefix(key, name+"{") {
			return true
		}
	}
	return false
}

// isWallClockGauge matches the derived quantile gauges of a wall-clock
// family (<family>.p50 and friends, with or without labels).
func isWallClockGauge(key string) bool {
	if hasWallClockPrefix(key) {
		return true
	}
	for _, name := range wallClockSeries {
		if strings.HasPrefix(key, name+".p") {
			return true
		}
	}
	return false
}

// HostEnvironment gathers the reproducibility-relevant host facts. The
// git revision comes from the binary's embedded build info and is empty
// when the build carried no VCS stamp (e.g. test binaries). startUnix
// is caller-supplied wall time; pass 0 to omit.
func HostEnvironment(startUnix int64) Environment {
	env := Environment{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		StartUnix: startUnix,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				env.GitRev = s.Value
			}
		}
	}
	return env
}

// Write emits the manifest as one indented JSON document with a
// trailing newline.
func (m *Manifest) Write(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("ledger: marshal manifest: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the manifest to path (or stdout for "-").
func WriteFile(path string, m *Manifest) error {
	if path == "-" {
		return m.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ledger: manifest file: %w", err)
	}
	err = m.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile loads and validates a manifest document.
func ReadFile(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("ledger: %s: %w", path, err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("ledger: %s: schema %q, want %q", path, m.Schema, Schema)
	}
	return &m, nil
}

// DeterministicBytes marshals the manifest with the Environment block
// zeroed: the bytes two same-seed runs must agree on.
func (m *Manifest) DeterministicBytes() ([]byte, error) {
	c := *m
	c.Environment = Environment{}
	return json.MarshalIndent(&c, "", "  ")
}
