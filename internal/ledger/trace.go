package ledger

import (
	"os"

	"prospector/internal/traceanalysis"
)

// TraceSummary is the trace-derived block of a manifest: the per-phase
// rollup, the bitwise-exact per-node energy attribution, and
// critical-path aggregates. All of it replays from the trace's
// deterministic virtual clocks, so it participates in manifest
// determinism (unlike wall time).
type TraceSummary struct {
	Records int        `json:"records"`
	Spans   int        `json:"spans"`
	Phases  []PhaseAgg `json:"phases,omitempty"`
	Nodes   []NodeAgg  `json:"nodes,omitempty"`
	// Rounds is the number of collection rounds with a reconstructed
	// critical path; MaxHops / MaxLatency aggregate over them.
	Rounds     int     `json:"rounds"`
	MaxHops    int     `json:"max_hops,omitempty"`
	MaxLatency float64 `json:"max_latency,omitempty"`
	// RequestMJ / RequestMessages are mop-up and naive-pull traffic,
	// kept off per-node rows exactly as the attribution replay does.
	RequestMJ       float64 `json:"request_mj,omitempty"`
	RequestMessages int64   `json:"request_messages,omitempty"`
}

// PhaseAgg is one phase's totals (the tracetool summary row).
type PhaseAgg struct {
	Name     string  `json:"name"`
	Spans    int     `json:"spans"`
	Duration float64 `json:"duration"`
	EnergyMJ float64 `json:"energy_mj"`
	Messages int64   `json:"messages,omitempty"`
	Values   int64   `json:"values,omitempty"`
}

// NodeAgg is one node's share of the run (the tracetool attribute row).
type NodeAgg struct {
	Node     int     `json:"node"`
	EnergyMJ float64 `json:"energy_mj"`
	Messages int64   `json:"messages,omitempty"`
}

// SummarizeTrace reduces a parsed trace to the manifest's aggregate
// block, reusing the tracetool analyses (per-phase summary, per-node
// energy attribution, critical paths).
func SummarizeTrace(t *traceanalysis.Trace) *TraceSummary {
	sum := traceanalysis.Summarize(t)
	ts := &TraceSummary{Records: sum.Records, Spans: sum.Spans}
	for _, p := range sum.Phases {
		ts.Phases = append(ts.Phases, PhaseAgg{
			Name:     p.Name,
			Spans:    p.Spans,
			Duration: p.Duration,
			EnergyMJ: p.EnergyMJ,
			Messages: p.Messages,
			Values:   p.Values,
		})
	}
	attr := traceanalysis.Attribute(t)
	for _, n := range attr.Nodes {
		ts.Nodes = append(ts.Nodes, NodeAgg{Node: n.Node, EnergyMJ: n.EnergyMJ, Messages: n.Messages})
	}
	ts.RequestMJ = attr.RequestMJ
	ts.RequestMessages = attr.Requests
	for _, p := range traceanalysis.CritPaths(t) {
		ts.Rounds++
		if len(p.Hops) > ts.MaxHops {
			ts.MaxHops = len(p.Hops)
		}
		if p.Latency > ts.MaxLatency {
			ts.MaxLatency = p.Latency
		}
	}
	return ts
}

// AttachTraceFile parses the JSON-lines trace at path and attaches its
// summary to the manifest. Call after the tracer has been flushed.
func (m *Manifest) AttachTraceFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no signal
	t, err := traceanalysis.Parse(f)
	if err != nil {
		return err
	}
	m.Trace = SummarizeTrace(t)
	return nil
}
