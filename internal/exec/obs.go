package exec

import (
	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// Metric names exported by the executor when Env.Obs is set:
//
//	exec.messages                 counter, every message of any kind
//	exec.values                   counter, value transmissions
//	exec.bytes                    counter, content bytes on the air
//	exec.requests                 counter, mop-up / naive request messages
//	exec.level.<d>.messages       counter, data messages sent by depth-d nodes
//	exec.level.<d>.bytes          counter, content bytes sent by depth-d nodes
//	exec.energy_mj.collection     gauge, accumulated collection energy
//	exec.energy_mj.trigger        gauge, accumulated trigger energy
//	exec.energy_mj.requests       gauge, accumulated request energy
//	exec.node.<id>.energy_mj      gauge, per-node radio spend (TX+RX+trigger)
//
// With Env.Trace set, each data message additionally emits an
// "exec.msg" event on a deterministic step clock (one tick per
// message), replaying the collection round bottom-up.

// execObs holds pre-resolved metric handles so the per-message hot
// path performs no registry lookups. A nil *execObs (observability
// disabled) costs one pointer check per charge.
type execObs struct {
	net   *network.Network
	model energy.Model

	messages, values, bytes, requests *obs.Counter
	collectEnergy, triggerEnergy      *obs.Gauge
	requestEnergy                     *obs.Gauge
	lvlMsgs, lvlBytes                 []*obs.Counter // indexed by sender depth
	nodeEnergy                        []*obs.Gauge   // indexed by node

	trace *obs.Tracer
	step  float64 // deterministic trace clock: one tick per message
}

// newExecObs resolves every handle up front; returns nil when both the
// registry and tracer are absent.
func newExecObs(r *obs.Registry, tr *obs.Tracer, net *network.Network, model energy.Model) *execObs {
	if r == nil && tr == nil {
		return nil
	}
	e := &execObs{
		net:           net,
		model:         model,
		messages:      r.Counter("exec.messages"),
		values:        r.Counter("exec.values"),
		bytes:         r.Counter("exec.bytes"),
		requests:      r.Counter("exec.requests"),
		collectEnergy: r.Gauge("exec.energy_mj.collection"),
		triggerEnergy: r.Gauge("exec.energy_mj.trigger"),
		requestEnergy: r.Gauge("exec.energy_mj.requests"),
		trace:         tr,
	}
	if r != nil {
		maxDepth := 0
		n := net.Size()
		for i := 0; i < n; i++ {
			if d := net.Depth(network.NodeID(i)); d > maxDepth {
				maxDepth = d
			}
		}
		e.lvlMsgs = make([]*obs.Counter, maxDepth+1)
		e.lvlBytes = make([]*obs.Counter, maxDepth+1)
		for d := 0; d <= maxDepth; d++ {
			e.lvlMsgs[d] = r.Counter(levelMetric(d, "messages"))
			e.lvlBytes[d] = r.Counter(levelMetric(d, "bytes"))
		}
		e.nodeEnergy = make([]*obs.Gauge, n)
		for i := 0; i < n; i++ {
			e.nodeEnergy[i] = r.Gauge(nodeMetric(i))
		}
	}
	return e
}

func levelMetric(depth int, what string) string {
	return "exec.level." + itoa(depth) + "." + what
}

func nodeMetric(id int) string {
	return "exec.node." + itoa(id) + ".energy_mj"
}

// itoa avoids strconv in metric-name construction (names are built only
// at handle-resolution time, but keeping the helper dependency-light).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// msg records one data message from v to its parent carrying nValues
// readings (contentBytes total content) at combined energy cost.
func (e *execObs) msg(v network.NodeID, nValues, contentBytes int, cost float64) {
	if e == nil {
		return
	}
	e.messages.Inc()
	e.values.Add(int64(nValues))
	e.bytes.Add(int64(contentBytes))
	e.collectEnergy.Add(cost)
	if e.lvlMsgs != nil {
		d := e.net.Depth(v)
		e.lvlMsgs[d].Inc()
		e.lvlBytes[d].Add(int64(contentBytes))
		e.nodeEnergy[v].Add(e.model.TxShare(cost))
		e.nodeEnergy[e.net.Parent(v)].Add(e.model.RxShare(cost))
	}
	if e.trace != nil {
		e.step++
		e.trace.Event("exec.msg", e.step,
			obs.F("node", int(v)),
			obs.F("parent", int(e.net.Parent(v))),
			obs.F("values", nValues),
			obs.F("bytes", contentBytes))
	}
}

// trigger attributes the collection trigger broadcast: one Trigger()
// charge per internal node with a participating child, matching
// plan.TriggerCost and the simulator's per-node accounting.
func (e *execObs) trigger(p *plan.Plan) {
	if e == nil {
		return
	}
	total := 0.0
	for _, v := range e.net.Preorder() {
		for _, ch := range e.net.Children(v) {
			if p.UsesEdge(ch) {
				c := e.model.Trigger()
				total += c
				if e.nodeEnergy != nil {
					e.nodeEnergy[v].Add(c)
				}
				break
			}
		}
	}
	e.triggerEnergy.Add(total)
	if e.trace != nil {
		e.step++
		e.trace.Event("exec.trigger", e.step, obs.F("energy_mj", total))
	}
}

// request records one request message (mop-up or naive pull) down the
// edge above v.
func (e *execObs) request(v network.NodeID, cost float64) {
	if e == nil {
		return
	}
	e.messages.Inc()
	e.requests.Inc()
	e.requestEnergy.Add(cost)
	if e.trace != nil {
		e.step++
		e.trace.Event("exec.request", e.step, obs.F("node", int(v)))
	}
}
