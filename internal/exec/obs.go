package exec

import (
	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// Metric names exported by the executor when Env.Obs is set:
//
//	exec.messages                 counter, every message of any kind
//	exec.values                   counter, value transmissions
//	exec.bytes                    counter, content bytes on the air
//	exec.requests                 counter, mop-up / naive request messages
//	exec.level.<d>.messages       counter, data messages sent by depth-d nodes
//	exec.level.<d>.bytes          counter, content bytes sent by depth-d nodes
//	exec.energy_mj.collection     gauge, accumulated collection energy
//	exec.energy_mj.trigger        gauge, accumulated trigger energy
//	exec.energy_mj.requests       gauge, accumulated request energy
//	exec.node.<id>.energy_mj      gauge, per-node radio spend (TX+RX+trigger)
//	exec.epoch_mj                 histogram, total energy per executed epoch
//
// exec.epoch_mj gets one observation per entry-point run (the ledger
// total at finish), so the telemetry collector's windowed quantiles
// over it read as live energy-per-epoch percentiles.
//
// With Env.Trace set, each entry point (Run, NaiveOne, NaiveBatch,
// MopUp) wraps its work in an "exec.epoch" span on a deterministic
// step clock (one tick per message), carrying energy/message totals at
// End. Inside it, every data message emits an "exec.msg" event with
// its per-node energy shares (tx_mj to the sender, rx_mj to the
// parent), every trigger rebroadcast an "exec.trigger" event with the
// rebroadcasting node's energy, and every request an "exec.request"
// event — enough for tracetool attribute to rebuild the per-node
// energy gauges exactly.

// execObs holds pre-resolved metric handles so the per-message hot
// path performs no registry lookups. A nil *execObs (observability
// disabled) costs one pointer check per charge.
type execObs struct {
	net   *network.Network
	model energy.Model

	messages, values, bytes, requests *obs.Counter
	collectEnergy, triggerEnergy      *obs.Gauge
	requestEnergy                     *obs.Gauge
	epochMJ                           *obs.Histogram
	lvlMsgs, lvlBytes                 []*obs.Counter // indexed by sender depth
	nodeEnergy                        []*obs.Gauge   // indexed by node

	trace  *obs.Tracer
	parent *obs.Span // caller-supplied enclosing span (Env.Span)
	span   *obs.Span // current exec.epoch span
	step   float64   // deterministic trace clock: one tick per message

	// fields is the scratch the per-message emitters assemble records
	// in, so tracing a message never packs a fresh variadic slice.
	fields []obs.Field
}

// newExecObs resolves every handle up front; returns nil when both the
// registry and tracer are absent.
func newExecObs(r *obs.Registry, tr *obs.Tracer, net *network.Network, model energy.Model) *execObs {
	if r == nil && tr == nil {
		return nil
	}
	e := &execObs{
		net:           net,
		model:         model,
		messages:      r.Counter("exec.messages"),
		values:        r.Counter("exec.values"),
		bytes:         r.Counter("exec.bytes"),
		requests:      r.Counter("exec.requests"),
		collectEnergy: r.Gauge("exec.energy_mj.collection"),
		triggerEnergy: r.Gauge("exec.energy_mj.trigger"),
		requestEnergy: r.Gauge("exec.energy_mj.requests"),
		epochMJ:       r.Histogram("exec.epoch_mj", epochMJBounds),
		trace:         tr,
	}
	if r != nil {
		maxDepth := 0
		n := net.Size()
		for i := 0; i < n; i++ {
			if d := net.Depth(network.NodeID(i)); d > maxDepth {
				maxDepth = d
			}
		}
		e.lvlMsgs = make([]*obs.Counter, maxDepth+1)
		e.lvlBytes = make([]*obs.Counter, maxDepth+1)
		for d := 0; d <= maxDepth; d++ {
			e.lvlMsgs[d] = r.Counter(levelMetric(d, "messages"))
			e.lvlBytes[d] = r.Counter(levelMetric(d, "bytes"))
		}
		e.nodeEnergy = make([]*obs.Gauge, n)
		for i := 0; i < n; i++ {
			e.nodeEnergy[i] = r.Gauge(nodeMetric(i))
		}
	}
	return e
}

func levelMetric(depth int, what string) string {
	return "exec.level." + itoa(depth) + "." + what
}

func nodeMetric(id int) string {
	return "exec.node." + itoa(id) + ".energy_mj"
}

// itoa avoids strconv in metric-name construction (names are built only
// at handle-resolution time, but keeping the helper dependency-light).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// begin opens an exec.epoch span on the step clock, parented to the
// caller's Env.Span. A nil receiver or absent tracer no-ops.
func (e *execObs) begin(fields ...obs.Field) {
	if e == nil || e.trace == nil {
		return
	}
	e.span = e.trace.StartSpan(e.parent, "exec.epoch", e.step, fields...)
}

// epochMJBounds buckets per-epoch energy totals: sub-mJ idle epochs up
// through multi-joule full-collection rounds on large networks.
var epochMJBounds = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// finish ends the epoch span with the run's ledger totals and observes
// the epoch's energy into exec.epoch_mj.
func (e *execObs) finish(led *energy.Ledger) {
	if e == nil {
		return
	}
	e.epochMJ.Observe(led.Total())
	e.span.End(e.step,
		obs.FFloat("energy_mj", led.Total()),
		obs.FInt("messages", int64(led.Messages)),
		obs.FInt("values", int64(led.Values)))
	e.span = nil
}

// event bumps the step clock and emits one trace record, parented to
// the epoch span when one is open.
func (e *execObs) event(name string, fields ...obs.Field) {
	e.step++
	if e.span != nil {
		e.span.Event(name, e.step, fields...)
		return
	}
	e.trace.Event(name, e.step, fields...)
}

// msg records one data message from v to its parent carrying nValues
// readings (contentBytes total content) at combined energy cost.
func (e *execObs) msg(v network.NodeID, nValues, contentBytes int, cost float64) {
	if e == nil {
		return
	}
	e.messages.Inc()
	e.values.Add(int64(nValues))
	e.bytes.Add(int64(contentBytes))
	e.collectEnergy.Add(cost)
	if e.lvlMsgs != nil {
		d := e.net.Depth(v)
		e.lvlMsgs[d].Inc()
		e.lvlBytes[d].Add(int64(contentBytes))
		e.nodeEnergy[v].Add(e.model.TxShare(cost))
		e.nodeEnergy[e.net.Parent(v)].Add(e.model.RxShare(cost))
	}
	if e.trace != nil {
		// "dst" (not "parent"): parented events already use the parent
		// key for the enclosing span's ID.
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		e.fields = append(e.fields[:0],
			obs.FInt("node", int64(v)),
			obs.FInt("dst", int64(e.net.Parent(v))),
			obs.FInt("values", int64(nValues)),
			obs.FInt("bytes", int64(contentBytes)),
			obs.FFloat("tx_mj", e.model.TxShare(cost)),
			obs.FFloat("rx_mj", e.model.RxShare(cost)))
		e.event("exec.msg", e.fields...)
	}
}

// trigger attributes the collection trigger broadcast: one Trigger()
// charge per internal node with a participating child, matching
// plan.TriggerCost and the simulator's per-node accounting. Each
// rebroadcasting node emits its own exec.trigger event so traces can
// attribute the energy per node.
func (e *execObs) trigger(p *plan.Plan) {
	if e == nil {
		return
	}
	total := 0.0
	for _, v := range e.net.Preorder() {
		for _, ch := range e.net.Children(v) {
			if p.UsesEdge(ch) {
				c := e.model.Trigger()
				total += c
				if e.nodeEnergy != nil {
					e.nodeEnergy[v].Add(c)
				}
				if e.trace != nil {
					//alloc:amortized the scratch grows to the widest record once, then is reused per event
					e.fields = append(e.fields[:0],
						obs.FInt("node", int64(v)),
						obs.FFloat("energy_mj", c))
					e.event("exec.trigger", e.fields...)
				}
				break
			}
		}
	}
	e.triggerEnergy.Add(total)
}

// request records one request message (mop-up or naive pull) down the
// edge above v. Like msg it runs once per message and must stay off
// the heap.
//
//alloc:none
func (e *execObs) request(v network.NodeID, cost float64) {
	if e == nil {
		return
	}
	e.messages.Inc()
	e.requests.Inc()
	e.requestEnergy.Add(cost)
	if e.trace != nil {
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		e.fields = append(e.fields[:0],
			obs.FInt("node", int64(v)),
			obs.FFloat("energy_mj", cost))
		e.event("exec.request", e.fields...)
	}
}
