package exec

import (
	"io"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// TestChargeAllocFree pins the runtime half of the //alloc:none claims
// on chargeMsg, chargeTrigger, and execObs.request: with metrics and
// tracing enabled, the per-message accounting path performs zero heap
// allocations once the trace scratch has warmed.
func TestChargeAllocFree(t *testing.T) {
	parent := []network.NodeID{0, 0, 0, 1, 1, 2}
	net, err := network.New(parent, nil)
	if err != nil {
		t.Fatal(err)
	}
	bw := []int{0, 2, 1, 1, 1, 1}
	p, err := plan.NewFiltering(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{
		Net:   net,
		Costs: plan.NewCosts(net, energy.DefaultModel()),
		Obs:   obs.NewRegistry(),
		Trace: obs.NewTracer(io.Discard),
	}
	env = env.instrumented()
	var led energy.Ledger
	// Warm: grow the emitters' field scratch to the widest record.
	env.chargeMsg(&led, 3, 2, 1)
	env.chargeTrigger(&led, p)
	env.em.request(3, 0.5)

	allocs := testing.AllocsPerRun(100, func() {
		env.chargeMsg(&led, 3, 2, 1)
		env.chargeTrigger(&led, p)
		env.em.request(3, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("charge path allocated %v times per round, want 0", allocs)
	}
}

// BenchmarkExecCharge measures the instrumented per-message accounting
// path; its allocs/op must stay 0 (the CI bench smoke enforces this
// with -benchmem).
func BenchmarkExecCharge(b *testing.B) {
	parent := []network.NodeID{0, 0, 0, 1, 1, 2}
	net, err := network.New(parent, nil)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.NewFiltering(net, []int{0, 2, 1, 1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	env := Env{
		Net:   net,
		Costs: plan.NewCosts(net, energy.DefaultModel()),
		Obs:   obs.NewRegistry(),
		Trace: obs.NewTracer(io.Discard),
	}
	env = env.instrumented()
	var led energy.Ledger
	env.chargeMsg(&led, 3, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.chargeMsg(&led, 3, 2, 1)
		env.chargeTrigger(&led, p)
	}
}
