package exec

import (
	"io"
	"math/rand"
	"testing"

	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// BenchmarkObsOverhead measures the cost instrumentation adds to one
// collection round. The "off" variant runs with a nil registry — the
// default for library callers — and must allocate exactly as much as
// the pre-instrumentation executor: every obs call site degrades to a
// nil-receiver no-op. "live" resolves handles against a real registry
// and "live+trace" additionally streams spans to a discarded writer.
func BenchmarkObsOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	net := randTree(rng, 120)
	vals := randValues(rng, net.Size())
	chosen := make([]bool, net.Size())
	for i := 1; i < len(chosen); i += 3 {
		chosen[i] = true
	}
	p, err := plan.NewSelection(net, chosen)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, env Env) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(env, p, vals); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("collect-off", func(b *testing.B) {
		run(b, testEnv(net))
	})
	b.Run("collect-live", func(b *testing.B) {
		env := testEnv(net)
		env.Obs = obs.NewRegistry()
		run(b, env)
	})
	b.Run("collect-live+trace", func(b *testing.B) {
		env := testEnv(net)
		env.Obs = obs.NewRegistry()
		env.Trace = obs.NewTracer(io.Discard)
		run(b, env)
	})
}

// BenchmarkObsOverheadNilPath isolates the per-message instrumentation
// call with a nil *execObs receiver; it must not allocate.
func BenchmarkObsOverheadNilPath(b *testing.B) {
	var em *execObs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		em.msg(network.NodeID(1), 3, 14, 0.5)
	}
}
