package exec

import (
	"prospector/internal/network"
	"prospector/internal/plan"
)

// ProofState retains, for every node, the values it saw and proved
// during a proof-carrying collection phase. A mop-up phase (PROSPECTOR
// EXACT's second phase) consumes this state.
type ProofState struct {
	env    Env
	plan   *plan.Plan
	values []float64
	// retrieved[v]: v's own reading plus everything received from its
	// children, sorted by rank (the paper's retrieved(v)).
	retrieved [][]ValueAt
	// provenCnt[v]: how many leading values of sent[v] (of
	// retrieved[v] for the root) v has proven to be the true top of
	// its subtree.
	provenCnt []int
	// sent[v]: the list v passed to its parent.
	sent [][]ValueAt
}

// runProof executes a proof-carrying plan per Section 4.3: each node
// sorts its children's lists with its own reading, passes up its edge's
// bandwidth worth of top values, and marks the prefix it can prove via
// conditions (c.1)-(c.3).
func runProof(env Env, p *plan.Plan, values []float64) *Result {
	res := &Result{}
	env.chargeTrigger(&res.Ledger, p)
	net := env.Net
	st := &ProofState{
		env:       env,
		plan:      p,
		values:    values,
		retrieved: make([][]ValueAt, net.Size()),
		provenCnt: make([]int, net.Size()),
		sent:      make([][]ValueAt, net.Size()),
	}
	net.PostorderWalk(func(v network.NodeID) {
		pool := []ValueAt{{Node: v, Val: values[v]}}
		for _, c := range net.Children(v) {
			pool = append(pool, st.sent[c]...)
		}
		SortDesc(pool)
		st.retrieved[v] = pool
		send := pool
		if v != network.Root && len(send) > p.Bandwidth[v] {
			send = send[:p.Bandwidth[v]]
		}
		st.sent[v] = send
		st.provenCnt[v] = st.provenPrefix(v, send)
		if v != network.Root {
			extra := 0
			if len(net.Children(v)) > 0 && st.provenCnt[v] < len(send) {
				extra = 1 // proven-count field
			}
			env.chargeMsg(&res.Ledger, v, len(send), extra)
		}
	})
	res.Returned = dedupe(append([]ValueAt(nil), st.retrieved[network.Root]...))
	res.Proven = st.provenCnt[network.Root]
	res.State = st
	return res
}

// provenPrefix returns the length of the longest prefix of list whose
// every value node v can prove is among the top values of its subtree.
func (st *ProofState) provenPrefix(v network.NodeID, list []ValueAt) int {
	n := 0
	for _, w := range list {
		if !st.provenAt(v, w) {
			break
		}
		n++
	}
	return n
}

// provenAt implements the per-value proof conditions: value w is proven
// by v iff for every child c of v one of
//
//	(c.1) w comes from c's subtree and lies within c's proven prefix;
//	(c.2) c proved some value ranked strictly below w;
//	(c.3) c passed up its entire subtree.
//
// v's own reading needs no condition: v knows it exactly.
func (st *ProofState) provenAt(v network.NodeID, w ValueAt) bool {
	net := st.env.Net
	for _, c := range net.Children(v) {
		if st.childSupports(c, w) {
			continue
		}
		return false
	}
	return true
}

func (st *ProofState) childSupports(c network.NodeID, w ValueAt) bool {
	net := st.env.Net
	// (c.3) everything below c is visible.
	if len(st.sent[c]) == net.SubtreeSize(c) {
		return true
	}
	if net.IsAncestor(c, w.Node) {
		// (c.1) w came through c; it must be within c's proven prefix.
		for i := 0; i < st.provenCnt[c]; i++ {
			if st.sent[c][i].Node == w.Node {
				return true
			}
		}
		return false
	}
	// (c.2) c proved a strictly smaller value. Proven values are the
	// leading prefix of c's list, so it suffices to check the last one.
	if p := st.provenCnt[c]; p > 0 && w.Outranks(st.sent[c][p-1]) {
		return true
	}
	return false
}
