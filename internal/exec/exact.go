package exec

import (
	"fmt"

	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
)

// MopUpResult is the outcome of an exact second phase.
type MopUpResult struct {
	// Answer is the exact top k of the network.
	Answer []ValueAt
	// Ledger accounts the second phase only (request broadcasts and
	// response messages).
	Ledger energy.Ledger
	// Queried reports whether any request had to be sent at all.
	Queried bool
}

// MopUp runs PROSPECTOR EXACT's second phase over the state of a
// proof-carrying collection: the root determines which of the top k
// remain unproven and recursively retrieves, from each subtree, the top
// candidates within the still-uncertain value range (Section 4.3).
func (st *ProofState) MopUp(k int) (*MopUpResult, error) {
	return st.MopUpWith(k, MopUpOptions{})
}

// MopUpOptions tunes the second phase.
type MopUpOptions struct {
	// Tailored switches from one broadcast request per node to
	// per-child unicast requests with individually tightened upper
	// bounds (anything new from child c ranks strictly below the
	// smallest value c already delivered). This is the refinement the
	// paper sketches and then sets aside as bringing "only marginal
	// benefits"; the ablation bench measures that claim.
	Tailored bool
}

// MopUpWith is MopUp with explicit options.
func (st *ProofState) MopUpWith(k int, opts MopUpOptions) (*MopUpResult, error) {
	if st == nil {
		return nil, fmt.Errorf("exec: MopUp needs the state of a proof-phase run")
	}
	if k < 1 {
		return nil, fmt.Errorf("exec: MopUp needs k >= 1, got %d", k)
	}
	res := &MopUpResult{}
	m := &mopper{st: st, res: res, opts: opts}
	st.env.em.begin(obs.F("plan", "mopup"), obs.F("k", k))
	ans := m.answer(network.Root, k, nil, nil)
	if len(ans) > k {
		ans = ans[:k]
	}
	res.Answer = ans
	st.env.em.finish(&res.Ledger)
	return res, nil
}

// mopper carries the mutable recursion state of one mop-up.
type mopper struct {
	st   *ProofState
	res  *MopUpResult
	opts MopUpOptions
}

// between reports whether x lies strictly inside the open rank interval
// (lo, hi); nil bounds are infinite.
func between(x ValueAt, lo, hi *ValueAt) bool {
	if hi != nil && !hi.Outranks(x) {
		return false
	}
	if lo != nil && !x.Outranks(*lo) {
		return false
	}
	return true
}

// minRank returns the lower-ranked of two optional bounds (nil means
// "no bound", i.e. infinitely high rank).
func minRank(a, b *ValueAt) *ValueAt {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.Outranks(*b):
		return b
	default:
		return a
	}
}

// answer returns, for node v, the complete top-t list of subtree(v)
// values strictly inside the rank interval (lo, hi), retrieving missing
// values from v's children as needed. It updates retrieved[v] with
// everything learned.
func (m *mopper) answer(v network.NodeID, t int, lo, hi *ValueAt) []ValueAt {
	st := m.st
	net := st.env.Net
	known := st.retrieved[v] // sorted by rank, deduped by construction

	// The proven prefix of v's list is the exact top of its subtree:
	// every subtree value outranking the last proven value is known.
	var cutoff *ValueAt
	if p := st.provenCnt[v]; p > 0 {
		c := known[p-1]
		cutoff = &c
	}
	complete := len(known) == net.SubtreeSize(v)

	// Count how much of the request the certain region already covers.
	certain := 0
	for _, x := range known {
		if !between(x, lo, hi) {
			continue
		}
		if complete || (cutoff != nil && !cutoff.Outranks(x)) {
			certain++
			if certain >= t {
				break
			}
		} else {
			break // below the certainty cutoff; stop counting
		}
	}
	need := t - certain
	if need > 0 && !complete && len(net.Children(v)) > 0 {
		// The uncertain zone: ranks strictly below the proven cutoff
		// (hidden values cannot outrank it) and above lo, tightened by
		// candidates v already holds in the zone.
		hi2 := minRank(hi, cutoff)
		lo2 := lo
		zoneCands := 0
		for _, x := range known {
			if between(x, lo2, hi2) {
				zoneCands++
				if zoneCands == need {
					c := x
					lo2 = minRankLow(lo2, &c)
					break
				}
			}
		}
		if zoneOpen(lo2, hi2) {
			if !m.opts.Tailored {
				m.broadcast(v)
			}
			for _, c := range net.Children(v) {
				if len(st.sent[c]) == net.SubtreeSize(c) {
					continue // child already fully visible at v
				}
				if m.opts.Tailored {
					// Every subtree-c value outranking c's smallest
					// proven value is proven and already delivered, so
					// c can only contribute fresh values below that
					// cap; skip the child when that zone is empty.
					// (Narrowing the request range itself backfires:
					// c then fills its quota with deeper values the
					// broadcast protocol never needed.)
					cap := hi2
					if p := st.provenCnt[c]; p > 0 {
						last := st.sent[c][p-1]
						cap = minRank(hi2, &last)
					}
					if !zoneOpen(lo2, cap) {
						continue // nothing new from c can matter
					}
					m.unicastRequest(c)
				}
				resp := m.answer(c, need, lo2, hi2)
				m.respond(c, resp, v)
			}
			known = st.retrieved[v]
		}
	}
	// Assemble the top-t in range from (now augmented) knowledge.
	var out []ValueAt
	for _, x := range known {
		if between(x, lo, hi) {
			out = append(out, x)
			if len(out) == t {
				break
			}
		}
	}
	return out
}

// minRankLow returns the higher-ranked of two optional lower bounds
// (nil means no bound, i.e. infinitely low).
func minRankLow(a, b *ValueAt) *ValueAt {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.Outranks(*b):
		return a
	default:
		return b
	}
}

// zoneOpen reports whether the open interval (lo, hi) can contain any
// value.
func zoneOpen(lo, hi *ValueAt) bool {
	if lo == nil || hi == nil {
		return true
	}
	return hi.Outranks(*lo)
}

// chargeRequest debits one mop-up request (broadcast or tailored
// unicast) of the given cost, aimed at v.
func (m *mopper) chargeRequest(v network.NodeID, cost float64) {
	m.res.Ledger.Requests += cost
	m.res.Ledger.Messages++
	m.st.env.em.request(v, cost)
	m.res.Queried = true
}

// chargeReply debits a mop-up response carrying n fresh values on the
// edge above c.
func (m *mopper) chargeReply(c network.NodeID, n int, cost float64) {
	m.res.Ledger.Requests += cost
	m.res.Ledger.Messages++
	m.res.Ledger.Values += n
	m.st.env.em.msg(c, n, n*m.st.env.Costs.Model().BytesPerValue, cost)
}

// broadcast charges one request broadcast from v to its children.
func (m *mopper) broadcast(v network.NodeID) {
	m.chargeRequest(v, m.st.env.Costs.Model().Request())
}

// unicastRequest charges one per-child tailored request on the edge
// above child c.
func (m *mopper) unicastRequest(c network.NodeID) {
	env := m.st.env
	cost := env.Costs.Msg[c] + env.Costs.Model().PerByte*float64(env.Costs.Model().BytesPerRequest)
	if f := env.Failures; f != nil && f.Prob != nil && f.Rng.Float64() < f.Prob[c] {
		cost *= 1 + f.RerouteFactor
	}
	m.chargeRequest(c, cost)
}

// respond merges a child's response into the parent's knowledge and
// charges the response message. Values the child already delivered in
// phase 1 are not retransmitted.
func (m *mopper) respond(c network.NodeID, resp []ValueAt, parent network.NodeID) {
	st := m.st
	have := make(map[network.NodeID]bool, len(st.retrieved[parent]))
	for _, x := range st.retrieved[parent] {
		have[x.Node] = true
	}
	var fresh []ValueAt
	for _, x := range resp {
		if !have[x.Node] {
			fresh = append(fresh, x)
		}
	}
	env := st.env
	cost := env.Costs.Msg[c] + env.Costs.ValueCost(c, len(fresh))
	if f := env.Failures; f != nil && f.Prob != nil && f.Rng.Float64() < f.Prob[c] {
		cost *= 1 + f.RerouteFactor
	}
	m.chargeReply(c, len(fresh), cost)
	if len(fresh) > 0 {
		merged := append(st.retrieved[parent], fresh...)
		SortDesc(merged)
		st.retrieved[parent] = merged
	}
}
