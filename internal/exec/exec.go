// Package exec simulates query-plan execution over a sensor network:
// the bottom-up collection phase (with or without local filtering),
// proof-carrying collection, the exact mop-up protocol, and the
// NAIVE-k / NAIVE-1 baselines. Execution is deterministic given the
// ground-truth readings (and the failure model's RNG, when present) and
// charges every message to an energy ledger.
package exec

import (
	"fmt"
	"math/rand"
	"slices"

	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// ValueAt is a sensor reading tagged with its source node.
type ValueAt struct {
	Node network.NodeID
	Val  float64
}

// Outranks reports whether a ranks strictly above b under the
// deterministic total order used throughout: larger value first,
// smaller node ID first on ties.
func (a ValueAt) Outranks(b ValueAt) bool {
	if a.Val != b.Val {
		return a.Val > b.Val
	}
	return a.Node < b.Node
}

// SortDesc sorts values from highest to lowest rank in place. It uses
// the generic slices.SortFunc rather than sort.Slice: the latter boxes
// the slice through interface{} and allocates a closure per call, which
// would put two allocations on every message of the simulator's
// otherwise allocation-free epoch drain.
func SortDesc(vs []ValueAt) {
	slices.SortFunc(vs, func(a, b ValueAt) int {
		switch {
		case a.Outranks(b):
			return -1
		case b.Outranks(a):
			return 1
		default:
			return 0
		}
	})
}

// TrueTopK returns the top k readings of a ground-truth assignment.
func TrueTopK(values []float64, k int) []ValueAt {
	all := make([]ValueAt, len(values))
	for i, v := range values {
		all[i] = ValueAt{Node: network.NodeID(i), Val: v}
	}
	SortDesc(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Accuracy returns the fraction of the true top k present among the
// returned values (the paper's accuracy metric).
func Accuracy(returned []ValueAt, truth []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	top := TrueTopK(truth, k)
	have := make(map[network.NodeID]bool, len(returned))
	for _, r := range returned {
		have[r.Node] = true
	}
	hit := 0
	for _, t := range top {
		if have[t.Node] {
			hit++
		}
	}
	return float64(hit) / float64(len(top))
}

// FailureModel injects transient link failures (Section 4.4): each
// message on the edge above node v fails with probability Prob[v] and
// is rerouted by the reliable protocol at RerouteFactor times extra
// cost. Delivery always succeeds; only energy is affected.
type FailureModel struct {
	Prob          []float64
	RerouteFactor float64
	Rng           *rand.Rand
}

// Env bundles everything execution needs besides the plan itself.
type Env struct {
	Net      *network.Network
	Costs    *plan.Costs
	Failures *FailureModel // optional
	// Obs, when non-nil, receives exec.* metrics (see obs.go). Leaving
	// it nil keeps the per-message hot path allocation-free.
	Obs *obs.Registry
	// Trace, when non-nil, receives one exec.epoch span per run and one
	// exec.msg event per message on a deterministic step clock.
	Trace *obs.Tracer
	// Span, when non-nil, becomes the parent of the exec.epoch spans,
	// slotting executions into a caller-owned trace tree (typically the
	// CLI's root query span).
	Span *obs.Span

	// em caches resolved metric handles for one run; populated by the
	// entry points, never by callers.
	em *execObs
}

// instrumented returns a copy of the environment with metric handles
// resolved (nil handles when observability is off).
func (e Env) instrumented() Env {
	if e.Obs != nil || e.Trace != nil {
		e.em = newExecObs(e.Obs, e.Trace, e.Net, e.Costs.Model())
		e.em.parent = e.Span
	}
	return e
}

// chargeMsg adds the cost of one unicast carrying nValues readings
// plus extraBytes over the edge above v, applying failure inflation.
// It runs once per message, so it must stay off the heap even with
// metrics and tracing enabled.
//
//alloc:none
func (e Env) chargeMsg(led *energy.Ledger, v network.NodeID, nValues, extraBytes int) {
	m := e.Costs.Model()
	// Per-edge Msg/Val costs come from the (possibly failure-inflated)
	// cost table; extra bytes are charged at the base rate.
	c := e.Costs.Msg[v] + e.Costs.Val[v]*float64(nValues) + m.PerByte*float64(extraBytes)
	if f := e.Failures; f != nil && f.Prob != nil && f.Rng.Float64() < f.Prob[v] {
		c *= 1 + f.RerouteFactor
	}
	led.Collection += c
	led.Messages++
	led.Values += nValues
	e.em.msg(v, nValues, nValues*m.BytesPerValue+extraBytes, c)
}

// chargeTrigger debits the broadcast trigger that starts a collection
// phase.
//
//alloc:none
func (e Env) chargeTrigger(led *energy.Ledger, p *plan.Plan) {
	led.Trigger += p.TriggerCost(e.Net, e.Costs)
	e.em.trigger(p)
}

// Result is the outcome of executing a plan on one epoch of readings.
type Result struct {
	// Returned holds every value that reached the root (including the
	// root's own reading), sorted from highest rank down.
	Returned []ValueAt
	// Proven counts how many leading values of Returned the root can
	// prove are the true top values in the network (Proof plans only).
	Proven int
	// Ledger accounts all energy spent by this execution.
	Ledger energy.Ledger
	// State retains per-node execution state for a mop-up phase
	// (Proof plans only).
	State *ProofState
}

// Accuracy is a convenience wrapper over the package-level Accuracy.
func (r *Result) Accuracy(truth []float64, k int) float64 {
	return Accuracy(r.Returned, truth, k)
}

// Run executes a plan against one epoch of ground-truth readings.
func Run(env Env, p *plan.Plan, values []float64) (*Result, error) {
	if env.Net == nil || env.Costs == nil {
		return nil, fmt.Errorf("exec: environment needs a network and costs")
	}
	if len(values) != env.Net.Size() {
		return nil, fmt.Errorf("exec: %d readings for %d nodes", len(values), env.Net.Size())
	}
	if err := p.Validate(env.Net); err != nil {
		return nil, err
	}
	env = env.instrumented()
	var res *Result
	env.em.begin(obs.FStr("plan", p.Kind.String()))
	switch p.Kind {
	case plan.Selection:
		res = runSelection(env, p, values)
	case plan.Filtering:
		res = runFiltering(env, p, values)
	case plan.Proof:
		res = runProof(env, p, values)
	default:
		return nil, fmt.Errorf("exec: unknown plan kind %v", p.Kind)
	}
	env.em.finish(&res.Ledger)
	return res, nil
}

// runSelection moves chosen readings to the root unfiltered.
func runSelection(env Env, p *plan.Plan, values []float64) *Result {
	res := &Result{}
	env.chargeTrigger(&res.Ledger, p)
	net := env.Net
	lists := make([][]ValueAt, net.Size())
	net.PostorderWalk(func(v network.NodeID) {
		var pool []ValueAt
		if p.Chosen != nil && p.Chosen[v] {
			pool = append(pool, ValueAt{Node: v, Val: values[v]})
		}
		for _, c := range net.Children(v) {
			pool = append(pool, lists[c]...)
		}
		if v == network.Root {
			lists[v] = pool
			return
		}
		if len(pool) > 0 {
			env.chargeMsg(&res.Ledger, v, len(pool), 0)
		}
		lists[v] = pool
	})
	returned := append([]ValueAt(nil), lists[network.Root]...)
	returned = append(returned, ValueAt{Node: network.Root, Val: values[network.Root]})
	SortDesc(returned)
	res.Returned = dedupe(returned)
	return res
}

// runFiltering executes a bandwidth plan with local filtering: each
// participating node merges its children's lists with its own reading
// and forwards only its edge's bandwidth worth of top values.
func runFiltering(env Env, p *plan.Plan, values []float64) *Result {
	res := &Result{}
	env.chargeTrigger(&res.Ledger, p)
	net := env.Net
	lists := make([][]ValueAt, net.Size())
	net.PostorderWalk(func(v network.NodeID) {
		participates := v == network.Root || p.UsesEdge(v)
		if !participates {
			return
		}
		var pool []ValueAt
		pool = append(pool, ValueAt{Node: v, Val: values[v]})
		for _, c := range net.Children(v) {
			pool = append(pool, lists[c]...)
		}
		SortDesc(pool)
		if v == network.Root {
			lists[v] = pool
			return
		}
		send := pool
		if len(send) > p.Bandwidth[v] {
			send = send[:p.Bandwidth[v]]
		}
		env.chargeMsg(&res.Ledger, v, len(send), 0)
		lists[v] = send
	})
	res.Returned = dedupe(lists[network.Root])
	return res
}

// dedupe removes duplicate node entries from a rank-sorted list.
func dedupe(vs []ValueAt) []ValueAt {
	seen := make(map[network.NodeID]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if !seen[v.Node] {
			seen[v.Node] = true
			out = append(out, v)
		}
	}
	return out
}
