package exec

import (
	"math"
	"math/rand"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/plan"
)

func testEnv(net *network.Network) Env {
	return Env{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel())}
}

func randValues(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func randTree(rng *rand.Rand, n int) *network.Network {
	parent := make([]network.NodeID, n)
	for i := 1; i < n; i++ {
		parent[i] = network.NodeID(rng.Intn(i)) // random recursive tree
	}
	net, err := network.New(parent, nil)
	if err != nil {
		panic(err)
	}
	return net
}

func TestTrueTopKAndAccuracy(t *testing.T) {
	vals := []float64{1, 9, 5, 7, 3}
	top := TrueTopK(vals, 3)
	if top[0].Node != 1 || top[1].Node != 3 || top[2].Node != 2 {
		t.Fatalf("TrueTopK = %v", top)
	}
	ret := []ValueAt{{Node: 1, Val: 9}, {Node: 2, Val: 5}}
	if acc := Accuracy(ret, vals, 3); math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("accuracy = %g, want 2/3", acc)
	}
	if acc := Accuracy(nil, vals, 3); acc != 0 {
		t.Errorf("empty accuracy = %g", acc)
	}
}

func TestSelectionRunDeliversChosen(t *testing.T) {
	net := network.BalancedTree(2, 3) // 15 nodes
	vals := randValues(rand.New(rand.NewSource(2)), net.Size())
	chosen := make([]bool, net.Size())
	chosen[7], chosen[12], chosen[3] = true, true, true
	p, err := plan.NewSelection(net, chosen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(testEnv(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[network.NodeID]bool)
	for _, v := range res.Returned {
		got[v.Node] = true
	}
	for _, want := range []network.NodeID{7, 12, 3, network.Root} {
		if !got[want] {
			t.Errorf("node %d missing from result", want)
		}
	}
	if len(res.Returned) != 4 {
		t.Errorf("returned %d values, want 4", len(res.Returned))
	}
	// Values carry correct readings.
	for _, v := range res.Returned {
		if v.Val != vals[v.Node] {
			t.Errorf("node %d returned %g, truth %g", v.Node, v.Val, vals[v.Node])
		}
	}
}

func TestSelectionCostMatchesStatic(t *testing.T) {
	net := network.BalancedTree(3, 2)
	vals := randValues(rand.New(rand.NewSource(3)), net.Size())
	chosen := make([]bool, net.Size())
	chosen[5], chosen[9] = true, true
	p, err := plan.NewSelection(net, chosen)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(net)
	res, err := Run(env, p, vals)
	if err != nil {
		t.Fatal(err)
	}
	want := p.CollectionCost(net, env.Costs)
	if math.Abs(res.Ledger.Collection-want) > 1e-9 {
		t.Errorf("executed collection cost %g, static %g", res.Ledger.Collection, want)
	}
	if res.Ledger.Trigger <= 0 {
		t.Error("no trigger cost charged")
	}
}

func TestFilteringKeepsTopValues(t *testing.T) {
	// Chain 0-1-2-3-4 with bandwidth 2 everywhere: the two largest
	// readings below each cut must arrive.
	net := network.Line(5)
	vals := []float64{0, 5, 9, 7, 8}
	bw := []int{0, 2, 2, 2, 1}
	p, err := plan.NewFiltering(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(testEnv(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Node 4 sends {8}; node 3 pools {7,8} sends both; node 2 pools
	// {9,8,7} sends {9,8}; node 1 pools {5,9,8} sends {9,8}.
	if len(res.Returned) != 3 { // 9, 8, plus root's own 0
		t.Fatalf("returned %v", res.Returned)
	}
	if res.Returned[0].Node != 2 || res.Returned[1].Node != 4 {
		t.Errorf("top returned = %v", res.Returned[:2])
	}
}

func TestFilteringAccuracyImprovesWithBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := randTree(rng, 40)
	vals := randValues(rng, 40)
	const k = 8
	prev := -1.0
	for _, b := range []int{1, 2, 4, 8} {
		bw := make([]int, net.Size())
		for v := 1; v < net.Size(); v++ {
			bw[v] = b
			if s := net.SubtreeSize(network.NodeID(v)); s < b {
				bw[v] = s
			}
		}
		p, err := plan.NewFiltering(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		acc := res.Accuracy(vals, k)
		if acc < prev {
			t.Errorf("bandwidth %d: accuracy %g dropped below %g", b, acc, prev)
		}
		prev = acc
	}
	if prev != 1 {
		t.Errorf("bandwidth k must be exact, accuracy %g", prev)
	}
}

func TestNaiveKIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		k := 1 + rng.Intn(10)
		bw := make([]int, n)
		for v := 1; v < n; v++ {
			bw[v] = k
			if s := net.SubtreeSize(network.NodeID(v)); s < k {
				bw[v] = s
			}
		}
		p, err := plan.NewFiltering(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		if acc := res.Accuracy(vals, k); acc != 1 {
			t.Errorf("trial %d: NAIVE-%d accuracy %g", trial, k, acc)
		}
	}
}

func TestProofLemma1(t *testing.T) {
	// Lemma 1: values proven by any node are exactly the top values of
	// its subtree — checked at the root across random trees, values,
	// and bandwidth plans.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(50)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		bw := make([]int, n)
		for v := 1; v < n; v++ {
			bw[v] = 1 + rng.Intn(4)
			if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
				bw[v] = s
			}
		}
		p, err := plan.NewProof(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		truth := TrueTopK(vals, res.Proven)
		for i := 0; i < res.Proven; i++ {
			if res.Returned[i].Node != truth[i].Node {
				t.Fatalf("trial %d: proven[%d] = node %d, truth %d (proven=%d)",
					trial, i, res.Returned[i].Node, truth[i].Node, res.Proven)
			}
		}
	}
}

func TestProofFullBandwidthProvesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := randTree(rng, 30)
	vals := randValues(rng, 30)
	bw := make([]int, 30)
	for v := 1; v < 30; v++ {
		bw[v] = net.SubtreeSize(network.NodeID(v))
	}
	p, err := plan.NewProof(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(testEnv(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven != 30 {
		t.Errorf("full-bandwidth plan proved %d of 30", res.Proven)
	}
}

func TestMopUpExactness(t *testing.T) {
	// PROSPECTOR EXACT's invariant: whatever the phase-1 plan, phase 2
	// returns the exact top k.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		n := 4 + rng.Intn(60)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		k := 1 + rng.Intn(minInt(n, 12))
		bw := make([]int, n)
		for v := 1; v < n; v++ {
			bw[v] = 1 + rng.Intn(3)
			if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
				bw[v] = s
			}
		}
		p, err := plan.NewProof(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		mop, err := res.State.MopUp(k)
		if err != nil {
			t.Fatal(err)
		}
		truth := TrueTopK(vals, k)
		if len(mop.Answer) != len(truth) {
			t.Fatalf("trial %d: answer has %d values, want %d", trial, len(mop.Answer), len(truth))
		}
		for i := range truth {
			if mop.Answer[i].Node != truth[i].Node {
				t.Fatalf("trial %d (n=%d k=%d): answer[%d] = node %d, truth %d",
					trial, n, k, i, mop.Answer[i].Node, truth[i].Node)
			}
		}
		// When phase 1 already proved everything, phase 2 is free.
		if res.Proven >= k && mop.Queried {
			t.Errorf("trial %d: mop-up queried despite %d proven", trial, res.Proven)
		}
	}
}

func TestMopUpCostDropsWithProvenCount(t *testing.T) {
	// More phase-1 bandwidth => more proven => cheaper phase 2.
	rng := rand.New(rand.NewSource(10))
	net := randTree(rng, 50)
	vals := randValues(rng, 50)
	const k = 10
	var prevCost = math.Inf(1)
	prevProven := -1
	for _, b := range []int{1, 3, 6, 10} {
		bw := make([]int, 50)
		for v := 1; v < 50; v++ {
			bw[v] = b
			if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
				bw[v] = s
			}
		}
		p, err := plan.NewProof(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		mop, err := res.State.MopUp(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Proven < prevProven {
			t.Errorf("bandwidth %d: proven %d dropped below %d", b, res.Proven, prevProven)
		}
		cost := mop.Ledger.Total()
		if cost > prevCost+1e-9 && res.Proven > prevProven {
			t.Errorf("bandwidth %d: phase-2 cost %g rose from %g while proven improved", b, cost, prevCost)
		}
		prevCost, prevProven = cost, res.Proven
	}
}

func TestNaiveOneExactAndExpensive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		k := 1 + rng.Intn(minInt(n, 8))
		env := testEnv(net)
		res, err := NaiveOne(env, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := TrueTopK(vals, k)
		if len(res.Returned) != len(truth) {
			t.Fatalf("trial %d: got %d values", trial, len(res.Returned))
		}
		for i := range truth {
			if res.Returned[i].Node != truth[i].Node {
				t.Fatalf("trial %d: NAIVE-1 wrong at rank %d", trial, i)
			}
		}
	}
}

func TestNaiveOneMessageCountGrowsWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := randTree(rng, 40)
	vals := randValues(rng, 40)
	env := testEnv(net)
	prev := 0
	for _, k := range []int{1, 5, 10, 20} {
		res, err := NaiveOne(env, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ledger.Messages <= prev {
			t.Errorf("k=%d: %d messages, not more than %d", k, res.Ledger.Messages, prev)
		}
		prev = res.Ledger.Messages
	}
}

func TestFailureModelInflatesCost(t *testing.T) {
	net := network.Line(6)
	vals := []float64{0, 1, 2, 3, 4, 5}
	bw := []int{0, 3, 3, 3, 2, 1}
	p, err := plan.NewFiltering(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(testEnv(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	prob := make([]float64, 6)
	for i := range prob {
		prob[i] = 1 // every message fails
	}
	env := testEnv(net)
	env.Failures = &FailureModel{Prob: prob, RerouteFactor: 0.5, Rng: rand.New(rand.NewSource(1))}
	faulty, err := Run(env, p, vals)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Ledger.Collection * 1.5
	if math.Abs(faulty.Ledger.Collection-want) > 1e-9 {
		t.Errorf("faulty cost %g, want %g", faulty.Ledger.Collection, want)
	}
	// Results are unaffected (reliable protocol).
	if len(faulty.Returned) != len(clean.Returned) {
		t.Error("failures changed the result")
	}
}

func TestRunValidation(t *testing.T) {
	net := network.Line(3)
	p, err := plan.NewFiltering(net, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testEnv(net), p, []float64{1, 2}); err == nil {
		t.Error("Run accepted wrong value count")
	}
	if _, err := Run(Env{}, p, []float64{1, 2, 3}); err == nil {
		t.Error("Run accepted empty env")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMopUpTailoredExactness(t *testing.T) {
	// The per-child tailored variant must stay exact and never fetch
	// more values than the broadcast protocol.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(50)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		k := 1 + rng.Intn(minInt(n, 10))
		bw := make([]int, n)
		for v := 1; v < n; v++ {
			bw[v] = 1 + rng.Intn(3)
			if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
				bw[v] = s
			}
		}
		p, err := plan.NewProof(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		run1, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		run2, err := Run(testEnv(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := run1.State.MopUp(k)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := run2.State.MopUpWith(k, MopUpOptions{Tailored: true})
		if err != nil {
			t.Fatal(err)
		}
		truth := TrueTopK(vals, k)
		for i := range truth {
			if tail.Answer[i].Node != truth[i].Node {
				t.Fatalf("trial %d: tailored answer wrong at rank %d", trial, i)
			}
			if plain.Answer[i].Node != tail.Answer[i].Node {
				t.Fatalf("trial %d: variants disagree at rank %d", trial, i)
			}
		}
		if tail.Ledger.Values > plain.Ledger.Values {
			t.Errorf("trial %d: tailored fetched %d values, broadcast %d",
				trial, tail.Ledger.Values, plain.Ledger.Values)
		}
	}
}

func TestNaiveBatchExactAndInterpolates(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(40)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		k := 1 + rng.Intn(minInt(n, 8))
		env := testEnv(net)
		truth := TrueTopK(vals, k)
		prevMsgs := 1 << 30
		for _, batch := range []int{1, 2, 4, 8} {
			res, err := NaiveBatch(env, vals, k, batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Returned) != len(truth) {
				t.Fatalf("trial %d batch %d: %d values", trial, batch, len(res.Returned))
			}
			for i := range truth {
				if res.Returned[i].Node != truth[i].Node {
					t.Fatalf("trial %d batch %d: wrong at rank %d", trial, batch, i)
				}
			}
			// Larger batches never need more messages.
			if res.Ledger.Messages > prevMsgs {
				t.Errorf("trial %d: batch %d used %d messages, more than smaller batch's %d",
					trial, batch, res.Ledger.Messages, prevMsgs)
			}
			prevMsgs = res.Ledger.Messages
		}
		// batch=1 must match NAIVE-1's result and message count.
		b1, err := NaiveBatch(env, vals, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		n1, err := NaiveOne(env, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		if b1.Ledger.Messages != n1.Ledger.Messages {
			t.Errorf("trial %d: batch=1 used %d messages, NAIVE-1 %d",
				trial, b1.Ledger.Messages, n1.Ledger.Messages)
		}
	}
}

func TestNaiveBatchValidation(t *testing.T) {
	net := network.Line(3)
	env := testEnv(net)
	if _, err := NaiveBatch(env, []float64{1}, 1, 1); err == nil {
		t.Error("accepted short values")
	}
	if _, err := NaiveBatch(env, []float64{1, 2, 3}, 0, 1); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := NaiveBatch(env, []float64{1, 2, 3}, 1, 0); err == nil {
		t.Error("accepted batch = 0")
	}
}
