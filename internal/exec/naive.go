package exec

import (
	"fmt"

	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
)

// NaiveOne simulates the NAIVE-1 exact algorithm of Section 2: a
// pipelined distributed heap in which every node hands its parent one
// value per request. Each request and each returned value is a separate
// message, so NAIVE-1 minimizes values transmitted at the price of a
// prohibitive per-message overhead.
//
// It returns the exact top k along with the energy ledger of the run.
func NaiveOne(env Env, values []float64, k int) (*Result, error) {
	if len(values) != env.Net.Size() {
		return nil, fmt.Errorf("exec: %d readings for %d nodes", len(values), env.Net.Size())
	}
	if k < 1 {
		return nil, fmt.Errorf("exec: NaiveOne needs k >= 1, got %d", k)
	}
	env = env.instrumented()
	s := &naiveOne{
		env:     env,
		values:  values,
		ownUsed: make([]bool, env.Net.Size()),
		pending: make(map[network.NodeID]*ValueAt, env.Net.Size()),
		done:    make(map[network.NodeID]bool, env.Net.Size()),
	}
	res := &Result{}
	env.em.begin(obs.F("plan", "naive1"), obs.F("k", k))
	for i := 0; i < k; i++ {
		v, ok := s.next(network.Root, &res.Ledger)
		if !ok {
			break // fewer than k nodes in the network
		}
		res.Returned = append(res.Returned, v)
	}
	env.em.finish(&res.Ledger)
	return res, nil
}

type naiveOne struct {
	env     Env
	values  []float64
	ownUsed []bool
	// pending[c] holds a value fetched from child c, not yet consumed.
	pending map[network.NodeID]*ValueAt
	// done[c] marks children whose subtrees are exhausted.
	done map[network.NodeID]bool
}

// next pops the largest remaining value of v's subtree, fetching one
// value from each child whose heap slot is empty first.
func (s *naiveOne) next(v network.NodeID, led *energy.Ledger) (ValueAt, bool) {
	net := s.env.Net
	for _, c := range net.Children(v) {
		if s.done[c] || s.pending[c] != nil {
			continue
		}
		// Request one value from c (a small unicast down the edge).
		s.chargeRequest(c, led)
		val, ok := s.next(c, led)
		// The reply comes back up the same edge; an "exhausted" reply
		// carries no value but is still a message.
		if ok {
			s.chargeValue(c, led)
			v := val
			s.pending[c] = &v
		} else {
			s.chargeEmpty(c, led)
			s.done[c] = true
		}
	}
	// Pop the best among v's own (unconsumed) reading and the heap.
	var best *ValueAt
	var bestChild network.NodeID = -1
	if !s.ownUsed[v] {
		best = &ValueAt{Node: v, Val: s.values[v]}
	}
	for _, c := range net.Children(v) {
		if p := s.pending[c]; p != nil && (best == nil || p.Outranks(*best)) {
			best = p
			bestChild = c
		}
	}
	if best == nil {
		return ValueAt{}, false
	}
	if bestChild >= 0 {
		s.pending[bestChild] = nil
	} else {
		s.ownUsed[v] = true
	}
	return *best, true
}

func (s *naiveOne) chargeRequest(edge network.NodeID, led *energy.Ledger) {
	c := s.inflate(edge, s.env.Costs.Model().Request())
	led.Requests += c
	led.Messages++
	s.env.em.request(edge, c)
}

func (s *naiveOne) chargeValue(edge network.NodeID, led *energy.Ledger) {
	c := s.inflate(edge, s.env.Costs.Msg[edge]+s.env.Costs.ValueCost(edge, 1))
	led.Collection += c
	led.Messages++
	led.Values++
	s.env.em.msg(edge, 1, s.env.Costs.Model().BytesPerValue, c)
}

func (s *naiveOne) chargeEmpty(edge network.NodeID, led *energy.Ledger) {
	c := s.inflate(edge, s.env.Costs.Msg[edge])
	led.Collection += c
	led.Messages++
	s.env.em.msg(edge, 0, 0, c)
}

func (s *naiveOne) inflate(edge network.NodeID, cost float64) float64 {
	if f := s.env.Failures; f != nil && f.Prob != nil && f.Rng.Float64() < f.Prob[edge] {
		cost *= 1 + f.RerouteFactor
	}
	return cost
}

// NaiveBatch generalizes the paper's two naive exact algorithms into
// one family: each request asks a child for its next `batch` values at
// once. batch=1 is exactly NAIVE-1 (minimum values moved, maximum
// messages); batch>=k approaches NAIVE-k's single-pass behaviour
// (minimum messages, wasted values). Sweeping batch quantifies the
// message-count/value-count tradeoff Section 2 describes.
func NaiveBatch(env Env, values []float64, k, batch int) (*Result, error) {
	if len(values) != env.Net.Size() {
		return nil, fmt.Errorf("exec: %d readings for %d nodes", len(values), env.Net.Size())
	}
	if k < 1 {
		return nil, fmt.Errorf("exec: NaiveBatch needs k >= 1, got %d", k)
	}
	if batch < 1 {
		return nil, fmt.Errorf("exec: NaiveBatch needs batch >= 1, got %d", batch)
	}
	env = env.instrumented()
	s := &naiveBatch{
		env:     env,
		values:  values,
		batch:   batch,
		ownUsed: make([]bool, env.Net.Size()),
		pending: make(map[network.NodeID][]ValueAt, env.Net.Size()),
		done:    make(map[network.NodeID]bool, env.Net.Size()),
	}
	res := &Result{}
	env.em.begin(obs.F("plan", "naive-batch"), obs.F("k", k), obs.F("batch", batch))
	got := s.next(network.Root, k, &res.Ledger)
	if len(got) > k {
		got = got[:k]
	}
	res.Returned = got
	env.em.finish(&res.Ledger)
	return res, nil
}

type naiveBatch struct {
	env     Env
	values  []float64
	batch   int
	ownUsed []bool
	pending map[network.NodeID][]ValueAt
	done    map[network.NodeID]bool
}

// chargeRequest debits one batch request unicast down the edge above c.
func (s *naiveBatch) chargeRequest(c network.NodeID, led *energy.Ledger) {
	cost := s.env.Costs.Model().Request()
	led.Requests += cost
	led.Messages++
	s.env.em.request(c, cost)
}

// chargeReply debits the reply message carrying a batch of values back
// up the edge above c (an empty reply is still a message).
func (s *naiveBatch) chargeReply(c network.NodeID, vals []ValueAt, led *energy.Ledger) {
	cost := s.env.Costs.Msg[c] + s.env.Costs.ValueCost(c, len(vals))
	led.Collection += cost
	led.Messages++
	led.Values += len(vals)
	s.env.em.msg(c, len(vals), len(vals)*s.env.Costs.Model().BytesPerValue, cost)
}

// next pops up to want of the largest remaining values of v's subtree,
// refilling child buffers batch values at a time.
func (s *naiveBatch) next(v network.NodeID, want int, led *energy.Ledger) []ValueAt {
	net := s.env.Net
	var out []ValueAt
	for len(out) < want {
		// Refill any empty, unexhausted child buffer.
		for _, c := range net.Children(v) {
			if s.done[c] || len(s.pending[c]) > 0 {
				continue
			}
			s.chargeRequest(c, led)
			vals := s.next(c, s.batch, led)
			s.chargeReply(c, vals, led)
			if len(vals) == 0 {
				s.done[c] = true
				continue
			}
			s.pending[c] = vals
			if len(vals) < s.batch {
				// Short reply: subtree exhausted after this buffer.
				s.done[c] = true
			}
		}
		// Pop the best among own value and child buffer heads.
		var best *ValueAt
		var bestChild network.NodeID = -1
		if !s.ownUsed[v] {
			best = &ValueAt{Node: v, Val: s.values[v]}
		}
		for _, c := range net.Children(v) {
			if buf := s.pending[c]; len(buf) > 0 && (best == nil || buf[0].Outranks(*best)) {
				b := buf[0]
				best = &b
				bestChild = c
			}
		}
		if best == nil {
			break // subtree exhausted
		}
		if bestChild >= 0 {
			s.pending[bestChild] = s.pending[bestChild][1:]
		} else {
			s.ownUsed[v] = true
		}
		out = append(out, *best)
	}
	return out
}
