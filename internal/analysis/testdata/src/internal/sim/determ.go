// Package sim is a determinism-check fixture: a deliberately
// violating twin of the real internal/sim, exercising the banned-call
// and map-iteration rules plus their sanctioned alternatives.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Clock is the sanctioned injected form of a time source.
type Clock func() time.Time

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want determinism "wall-clock read"
}

// Age measures elapsed wall time directly.
func Age(since time.Time) time.Duration {
	return time.Since(since) // want determinism "wall-clock read"
}

// Jitter draws from the global RNG.
func Jitter(n int) int {
	return rand.Intn(n) // want determinism "global RNG"
}

// Seeded draws from an injected RNG; legal.
func Seeded(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// SuppressedStamp documents why a wall-clock read is acceptable here.
func SuppressedStamp() time.Time {
	//lint:ignore determinism fixture demonstrating an honored suppression
	return time.Now()
}

// Keys leaks map iteration order into the returned slice.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m { // want determinism "range over map"
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: the sanctioned idiom.
func SortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Count accumulates order-independent integers; legal.
func Count(m map[int]string, needle string) int {
	n := 0
	for _, v := range m {
		if v == needle {
			n++
		}
	}
	return n
}

// Invert writes through keys; last-write-wins per key is order-free.
func Invert(m map[int]string) map[string]int {
	inv := make(map[string]int, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Sum accumulates floats in map order: non-associative, so the low
// bits depend on iteration order.
func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want determinism "range over map"
		s += v
	}
	return s
}
