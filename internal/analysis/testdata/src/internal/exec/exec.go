// Package exec exercises budgetflow: every energy.Ledger debit must
// go through a charge* accounting helper, so the executor and the
// simulator cannot drift apart one scattered += at a time.
package exec

import "fixture/internal/energy"

// Result mirrors the executor's result carrier.
type Result struct {
	Ledger energy.Ledger
}

// chargeMsg is a sanctioned accounting helper.
func chargeMsg(led *energy.Ledger, cost float64) {
	led.Collection += cost
	led.Messages++
}

// chargeValue batches debits through a closure; closures inside a
// helper are part of it.
func chargeValue(led *energy.Ledger, costs []float64) {
	add := func(c float64) {
		led.Collection += c
		led.Values++
	}
	for _, c := range costs {
		add(c)
	}
}

// Deliver routes its debit through a helper; legal.
func Deliver(r *Result, cost float64) {
	chargeMsg(&r.Ledger, cost)
}

// Sneak debits the ledger inline, bypassing the helpers.
func Sneak(r *Result, cost float64) {
	r.Ledger.Collection += cost // want budgetflow "energy.Ledger.Collection written outside the accounting helpers"
	r.Ledger.Messages++         // want budgetflow "energy.Ledger.Messages written outside the accounting helpers"
}

// Reset replaces the whole ledger: a reset, not a debit; legal.
func Reset(r *Result) {
	r.Ledger = energy.Ledger{}
}

// Tally only reads; legal.
func Tally(r *Result) float64 {
	return r.Ledger.Total()
}

// Backdate reconciles a ledger against a replay trace.
func Backdate(r *Result, cost float64) {
	//lint:ignore budgetflow fixture demonstrating an honored suppression
	r.Ledger.Requests += cost
}
