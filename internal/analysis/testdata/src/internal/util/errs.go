// Package util is an errcheck-lite fixture: discarded error returns
// and the sanctioned ways to handle or visibly drop them.
package util

import (
	"fmt"
	"os"
	"strings"
)

// Cleanup drops the error from os.Remove.
func Cleanup(path string) {
	os.Remove(path) // want errchecklite "error that is discarded"
}

// CloseLater defers a Close whose error is lost.
func CloseLater(f *os.File) {
	defer f.Close() // want errchecklite "error that is discarded"
}

// Explicit discards visibly; legal.
func Explicit(path string) {
	_ = os.Remove(path)
}

// Handled checks the error; legal.
func Handled(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("cleanup: %w", err)
	}
	return nil
}

// Builder writes to sticky writers, whose Write methods never return
// a non-nil error; legal without checks.
func Builder(xs []string) string {
	var b strings.Builder
	b.WriteString("[")
	fmt.Fprintf(&b, "%d:", len(xs))
	for _, x := range xs {
		b.WriteString(x)
	}
	b.WriteString("]")
	return b.String()
}

// Suppressed documents a deliberate drop.
func Suppressed(path string) {
	//lint:ignore errchecklite fixture demonstrating an honored suppression
	os.Remove(path)
}
