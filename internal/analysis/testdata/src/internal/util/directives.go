// Directive-audit fixtures: malformed or mistargeted lint:ignore
// comments are diagnostics themselves, so suppressions cannot rot
// silently. The suppress-audit test pins the expected findings here
// by message rather than by want-comments, because a want-comment
// appended to a directive line would be parsed as the reason.
package util

import "os"

// MissingReason has a directive without a reason, which does not
// suppress; the underlying finding still fires.
func MissingReason(path string) {
	//lint:ignore errchecklite
	os.Remove(path) // want errchecklite "error that is discarded"
}

// UnknownCheck names a check the suite does not know.
func UnknownCheck(path string) {
	//lint:ignore nosuchcheck the check name has a typo
	_ = os.Remove(path)
}

// Audited demonstrates suppressing the audit itself: the first
// directive covers the unknown-check finding on the line below it.
func Audited(path string) {
	//lint:ignore suppress fixture demonstrating an honored suppression
	//lint:ignore alsounknown covered by the directive above
	_ = os.Remove(path)
}
