// Package edge collects the call-graph and CFG shapes the concurrency
// checks lean on, all of them clean: method values, defer with a
// closure over a named result, go on a method expression, and
// channel-direction conversions.
package edge

// Runner owns a done channel and blocks until it closes.
type Runner struct {
	done chan struct{}
	n    int
}

// NewRunner builds a runner.
func NewRunner() *Runner { return &Runner{done: make(chan struct{})} }

// Run blocks until Stop.
func (r *Runner) Run() {
	<-r.done
	r.n++
}

// Stop releases Run.
func (r *Runner) Stop() { close(r.done) }

// Launch starts Run through a method expression and hands back the
// stopper as a method value.
func Launch(r *Runner) func() {
	go (*Runner).Run(r)
	stop := r.Stop
	return stop
}

// Deferred doubles a named result in a deferred closure.
func Deferred(xs []int) (sum int) {
	defer func() {
		sum *= 2
	}()
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Directions narrows a bidirectional channel both ways.
func Directions(ch chan int) (chan<- int, <-chan int) {
	var in chan<- int = ch
	var out <-chan int = ch
	return in, out
}
