// Package lp is a floatcmp-check fixture: raw float equality is legal
// only inside the approved helpers, which exist to give every exact
// comparison a documented home.
package lp

// isZero is an approved helper; raw == is legal here.
func isZero(x float64) bool { return x == 0 }

// sameFloat is the second approved helper.
func sameFloat(a, b float64) bool { return a == b }

// Converged compares floats with == directly.
func Converged(prev, next float64) bool {
	return prev == next // want floatcmp "floating-point == comparison"
}

// Moved compares floats with != directly.
func Moved(a, b float64) bool {
	return a != b // want floatcmp "floating-point != comparison"
}

// Fixed routes through the approved helpers; legal.
func Fixed(lo, hi float64) bool {
	return sameFloat(lo, hi) && !isZero(lo)
}

// SuppressedSentinel documents why an exact sentinel test is fine.
func SuppressedSentinel(x float64) bool {
	//lint:ignore floatcmp fixture demonstrating an honored suppression
	return x == 0.5
}

// Ints may compare with == freely.
func Ints(a, b int) bool { return a == b }

const eps = 1e-9

// ConstFold compares two untyped constants, folded at compile time.
func ConstFold() bool { return eps == 1e-9 }

// Ordered comparisons are not equality; legal.
func Ordered(a, b float64) bool { return a < b || a >= b }
