// Package leak exercises the goroutine-leak analysis: fire-and-forget
// shapes are flagged, every accepted termination signal has a clean
// twin.
package leak

import (
	"context"
	"sync"
)

// Fire starts a goroutine nothing can stop.
func Fire() {
	go func() { // want goleak "no termination signal"
		for {
		}
	}()
}

// spin is a named fire-and-forget target.
func spin() {
	for {
	}
}

// FireNamed leaks through a named function: the callee's body is
// resolved and scanned.
func FireNamed() {
	go spin() // want goleak "no termination signal"
}

// Unjoined Adds and Dones but never Waits.
func Unjoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want goleak "no termination signal"
			defer wg.Done()
		}()
	}
}

// WithContext is fine: cancellation is visible in the body.
func WithContext(ctx context.Context, out chan<- int) {
	go func() {
		select {
		case <-ctx.Done():
		case out <- 1:
		}
	}()
}

// Joined is fine: the WaitGroup is waited in this function.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Ranged is fine: the worker drains a channel and hands the sum back
// over a done channel the caller receives from.
func Ranged(ch chan int) int {
	res := make(chan int)
	go func() {
		s := 0
		for v := range ch {
			s += v
		}
		res <- s
	}()
	return <-res
}

// ArgWait is fine: the WaitGroup parameter of the named worker maps
// back to the variable this function waits on.
func ArgWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go step(&wg)
	wg.Wait()
}

func step(wg *sync.WaitGroup) {
	wg.Done()
}

// Grandfathered is a documented long-lived pump a demo binary accepts;
// the suppression must cover a real raw diagnostic.
func Grandfathered(ch chan int) {
	//lint:ignore goleak metronome pump for a demo binary; dies with the process by design
	go func() {
		for {
			ch <- 1
		}
	}()
}
