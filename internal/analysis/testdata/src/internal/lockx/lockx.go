// Package lockx exercises the lock-discipline analysis: release on
// every path, guarded fields under their lock (directly and through
// the emitLocked call-site idiom), and lock-bearing copies.
package lockx

import "sync"

// Table is a guarded counter with a locked-helper split.
type Table struct {
	mu sync.RWMutex
	n  int //guarded-by:mu
}

// Add locks around the helper: the sanctioned call shape.
func (t *Table) Add(d int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addLocked(d)
}

// addLocked touches n without locking; every caller must hold t.mu.
func (t *Table) addLocked(d int) {
	t.n += d
}

// AddUnlocked forgets the lock: flagged at this call site, not inside
// the helper.
func (t *Table) AddUnlocked(d int) {
	t.addLocked(d) // want lockcheck "call to addLocked writes n"
}

// Peek reads n bare with no caller to blame.
func (t *Table) Peek() int {
	return t.n // want lockcheck "no caller holds it"
}

// Bump takes only the read lock for a write.
func (t *Table) Bump() {
	t.mu.RLock()
	t.n++ // want lockcheck "requires the exclusive lock"
	t.mu.RUnlock()
}

// Forget releases on the happy path only; the early return leaks.
func (t *Table) Forget(d int) {
	t.mu.Lock() // want lockcheck "not released on every path"
	if d < 0 {
		return
	}
	t.n += d
	t.mu.Unlock()
}

// Stray releases a lock this path never took.
func (t *Table) Stray() {
	t.mu.Unlock() // want lockcheck "cannot be held"
}

// Twice self-deadlocks.
func (t *Table) Twice() {
	t.mu.Lock()
	t.mu.Lock() // want lockcheck "already held"
	t.n++
	t.mu.Unlock()
}

// Scoped releases through a deferred closure: covered on every path,
// panics included, so nothing fires.
func (t *Table) Scoped(d int) {
	t.mu.Lock()
	defer func() {
		t.mu.Unlock()
	}()
	if d == 0 {
		return
	}
	t.n += d
}

// handoff acquires for a paired release elsewhere; the suppression
// documents the contract.
func (t *Table) handoff() {
	//lint:ignore lockcheck acquired for the caller; the paired release is the caller's contract
	t.mu.Lock()
}

// Box carries a mutex by value.
type Box struct {
	mu sync.Mutex
	v  int
}

// Freeze copies Box — and its mutex — into the parameter.
func Freeze(b Box) int { // want lockcheck "copies lock-bearing sync.Mutex"
	return b.v
}

// Package-level twin of the guarded-field discipline.
var (
	tabMu sync.Mutex
	total int //guarded-by:tabMu
)

// AddTotal takes the package lock properly.
func AddTotal(d int) {
	tabMu.Lock()
	total += d
	tabMu.Unlock()
}

// ReadTotal skips the lock entirely.
func ReadTotal() int {
	return total // want lockcheck "guarded by tabMu"
}
