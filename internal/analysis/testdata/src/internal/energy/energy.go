// Package energy anchors the dataflow fixtures: the unit table tags
// these fields by (package suffix, type, name) exactly as it does in
// the real tree, and budgetflow recognizes this Ledger wherever it is
// written.
package energy

// Model mirrors the tagged fields of the real cost model.
type Model struct {
	PerMessage    float64
	PerByte       float64
	BytesPerValue int
}

// PerValue returns the energy of moving one value across a link.
func (m Model) PerValue() float64 { return m.PerByte * float64(m.BytesPerValue) }

// Ledger mirrors the real accounting ledger.
type Ledger struct {
	Collection float64
	Trigger    float64
	Requests   float64
	Install    float64
	Messages   int
	Values     int
}

// Total sums the energy categories.
func (l *Ledger) Total() float64 {
	return l.Collection + l.Trigger + l.Requests + l.Install
}
