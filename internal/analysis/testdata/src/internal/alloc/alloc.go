// Package alloc exercises the allocation-discipline analysis: a hot
// accumulator annotated //alloc:none is walked through the clean
// shapes (stack composite literal, caller-provided append), the
// violation classes (method value, variadic packing, deep call-path
// allocations), a blessed grow-on-demand site, and directive hygiene.
package alloc

// Ring is a fixed-capacity accumulator reused across epochs.
type Ring struct {
	buf []int
	sum int
}

// point is a tiny value type; constructing one on the stack is free.
type point struct{ x, y int }

// Observe is the clean fast path: a non-escaping composite literal
// and arithmetic only.
//
//alloc:none
func (r *Ring) Observe(v int) {
	p := point{x: v, y: -v}
	r.sum += p.x + p.y + v
}

// Fill appends into the caller-provided slice: the caller owns the
// capacity, so the append is clean under the parameter-rooted rule.
//
//alloc:none
func Fill(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// sink records a callback for later.
var sink func()

// Reset clears the accumulator.
func (r *Ring) Reset() { r.sum = 0 }

// Arm leaks a bound method: materializing a method value allocates
// the closure that binds the receiver.
//
//alloc:none
func (r *Ring) Arm() {
	sink = r.Reset // want alloccheck "method value allocates"
}

// total sums its variadic arguments; the callee itself is clean.
func total(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

// Tally packs its three arguments into a fresh slice at the call.
//
//alloc:none
func (r *Ring) Tally(a, b, c int) {
	r.sum += total(a, b, c) // want alloccheck "variadic call packs"
}

// Grow doubles the scratch buffer when the high-water mark rises; the
// growth is amortized away over an epoch, so the site is blessed.
//
//alloc:none
func (r *Ring) Grow(n int) {
	if cap(r.buf) < n {
		//alloc:amortized scratch grows to the high-water mark, then stays
		r.buf = make([]int, 0, n)
	}
	r.buf = r.buf[:n]
}

// leakyHelper allocates on every call: the map insert and the string
// key conversion are real per-call costs.
func leakyHelper(m map[string]int, k []byte) {
	m[string(k)] = len(k)
}

// Index is annotated but reaches leakyHelper's allocations; the
// violation reports here, naming the call path.
//
//alloc:none
func Index(m map[string]int, k []byte) { // want alloccheck "call path Index -> leakyHelper"
	leakyHelper(m, k)
}

// rebuild allocates a fresh buffer; callers that only reach it on a
// cold path bless the call edge instead of the sites inside.
func (r *Ring) rebuild(n int) {
	r.buf = make([]int, n)
}

// Refresh reaches rebuild's allocation only when the capacity is
// stale: the blessed call edge is an amortized boundary, so the
// traversal stops there and Refresh verifies clean.
//
//alloc:none
func (r *Ring) Refresh(n int) {
	if cap(r.buf) < n {
		//alloc:amortized rebuild runs only when the high-water mark rises
		r.rebuild(n)
	}
	r.buf = r.buf[:n]
}

// Keep returns a fresh ring from an annotated constructor: the
// suppression documents the accepted one-time allocation and must
// cover a real raw finding.
//
//alloc:none
func Keep() *Ring {
	//lint:ignore alloccheck one-time debug constructor; the pool replaces it
	r := &Ring{}
	return r
}

// Drift demonstrates directive hygiene: unknown spellings and
// misplaced annotations are findings even outside an annotated
// closure.
func Drift() {
	//alloc:lazy grow lazily // want alloccheck "unknown alloc directive"
	//alloc:none // want alloccheck "must be in a function declaration's doc comment"
	_ = point{x: 1}
}
