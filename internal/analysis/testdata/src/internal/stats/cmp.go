// Package stats is the second floatcmp-check fixture: its approved
// helper is exactly, mirroring the real internal/stats.
package stats

// exactly is the approved helper; raw == is legal here.
func exactly(x, v float64) bool { return x == v }

// AtBoundary compares a probability to a sentinel directly.
func AtBoundary(p float64) bool {
	return p == 1 // want floatcmp "floating-point == comparison"
}

// AtZero routes through the approved helper; legal.
func AtZero(p float64) bool { return exactly(p, 0) }

// SuppressedBoundary documents an exact comparison inline.
func SuppressedBoundary(p float64) bool {
	//lint:ignore floatcmp fixture demonstrating an honored suppression
	return p != p
}
