// Package core misuses the cost model the way a hurried planner
// would: per-value coefficients added straight into energy totals
// (unitcheck) and plans patched after construction (planfreeze).
package core

import "fixture/internal/plan"

// PathCost folds the per-value coefficient into an energy total
// without multiplying by a value count.
func PathCost(c *plan.Costs, v int) float64 {
	total := c.Msg[v]
	total += c.Val[v] // want unitcheck "mixed units: mJ += mJ/val"
	return total
}

// EdgeCost adds a message cost to a per-value coefficient.
func EdgeCost(c *plan.Costs, v int) float64 {
	return c.Msg[v] + c.Val[v] // want unitcheck "mixed units: mJ + mJ/val"
}

// Misconvert passes an energy total where a value count belongs.
func Misconvert(c *plan.Costs, v int) float64 {
	total := c.Msg[v]
	return c.ValueCost(v, int(total)) // want unitcheck "wants val, got mJ"
}

// WeighedCost multiplies the coefficient out first; legal.
//
//unit:n=val
func WeighedCost(c *plan.Costs, v, n int) float64 {
	return c.Msg[v] + c.ValueCost(v, n)
}

// CalibrationFudge knowingly treats the coefficient as a flat cost
// while sweeping calibration constants.
func CalibrationFudge(c *plan.Costs, v int) float64 {
	//lint:ignore unitcheck fixture demonstrating an honored suppression
	return c.Msg[v] + c.Val[v]
}

//unit:mJ a stray directive attaches to nothing // want unitcheck "attached to no declaration"

// Widen writes through a frozen plan outside its defining package.
func Widen(p *plan.Plan, v int) {
	p.Bandwidth[v]++ // want planfreeze "write to frozen plan.Plan"
}

// Fake builds a plan around the constructor's validation.
func Fake(n int) *plan.Plan {
	return &plan.Plan{Bandwidth: make([]int, n)} // want planfreeze "composite literal constructs frozen plan.Plan"
}

// Reroute hands a frozen plan to a helper that mutates it; the
// interprocedural mutator masks catch the call site.
func Reroute(p *plan.Plan) {
	p.Grow(0, 1) // want planfreeze "mutates its frozen plan.Plan argument"
}

// Rebind swaps which plan a variable names; rebinding is not mutation.
func Rebind(p, q *plan.Plan) *plan.Plan {
	p = q
	return p
}

// Scratch repairs a search-internal working copy in place.
func Scratch(p *plan.Plan, v int) {
	//lint:ignore planfreeze fixture demonstrating an honored suppression
	p.Bandwidth[v] = 0
}
