// Package plan defines the fixture twins of the frozen plan type and
// its per-edge cost vectors. Inside this package plans may be built
// and mutated freely; planfreeze locks them everywhere else.
package plan

// Plan is immutable once a constructor returns it.
type Plan struct {
	Bandwidth []int
}

// New is the sanctioned constructor.
func New(n int) *Plan { return &Plan{Bandwidth: make([]int, n)} }

// Grow raises the bandwidth of the edge above v. Legal here; calling
// it with a frozen plan from another package is a planfreeze finding.
func (p *Plan) Grow(v, n int) { p.Bandwidth[v] += n }

// Costs mirrors the real per-edge cost table: Msg is the fixed cost of
// a message on the edge above v, Val the marginal cost of one value.
type Costs struct {
	Msg []float64
	Val []float64
}

// ValueCost converts a value count into energy on the edge above v.
//
//unit:n=val return=mJ
func (c *Costs) ValueCost(v, n int) float64 { return c.Val[v] * float64(n) }
