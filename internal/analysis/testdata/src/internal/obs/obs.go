// Package obs is an obsnilsafe-check fixture: handle types whose
// exported pointer-receiver methods must tolerate nil receivers.
package obs

// Meter is a nil-safe handle.
type Meter struct{ v int64 }

// Add is guarded and legal.
func (m *Meter) Add(d int64) {
	if m == nil {
		return
	}
	m.v += d
}

// Inc delegates to a guarded method; legal.
func (m *Meter) Inc() { m.Add(1) }

// Value dereferences the receiver with no guard.
func (m *Meter) Value() int64 { // want obsnilsafe "must begin with"
	return m.v
}

// Swap guards by reassigning the receiver; legal.
func (m *Meter) Swap() *Meter {
	if m == nil {
		m = &Meter{}
	}
	return m
}

//lint:ignore obsnilsafe fixture demonstrating an honored suppression
func (m *Meter) Reset() { m.v = 0 }

// peek is unexported; the contract covers the exported surface only.
func (m *Meter) peek() int64 { return m.v }

// View is a value type; nil receivers are impossible.
type View struct{ n int }

// N is legal without a guard.
func (v View) N() int { return v.n }

// Drop never touches its receiver.
func (*Meter) Drop() {}
