// Package confine exercises the goroutine-confinement analysis:
// Planner is declared single-goroutine, and the fixture walks it
// through every escape shape plus the sanctioned hand-offs.
package confine

// Planner is the fixture twin of the stateful warm-start planners: its
// caches are only coherent on the goroutine that built them.
//
//confine:goroutine
type Planner struct {
	cache []int
}

// New builds a planner owned by the calling goroutine.
func New() *Planner { return &Planner{} }

// Plan reads and mutates the warm cache.
func (p *Planner) Plan(budget int) int {
	p.cache = append(p.cache, budget)
	return len(p.cache)
}

// shared is the package-level escape hatch the check must flag.
var shared *Planner

// Publish stores a planner where any goroutine can reach it.
func Publish(p *Planner) {
	shared = p // want confine "stored in package-level variable shared"
}

// Indirect leaks through a helper: the call graph propagates Publish's
// leak mask to this call site.
func Indirect(p *Planner) {
	Publish(p) // want confine "call to Publish leaks confined confine.Planner"
}

// Handoff sends the planner to a worker over a channel.
func Handoff(p *Planner, ch chan *Planner) {
	ch <- p // want confine "sent on a channel"
}

// Spawn captures the planner in a goroutine closure. The done receive
// keeps goleak quiet; the capture is still an escape.
func Spawn(p *Planner, done chan struct{}) {
	go func() {
		_ = p.Plan(1) // want confine "captured by a goroutine"
		<-done
	}()
}

// pool is the sanctioned parking slot.
var pool *Planner

// Put transfers ownership to the pool; the annotation documents the
// external happens-before edge, so confine stays quiet here and Put's
// callers are not poisoned.
func Put(p *Planner) {
	//confine:transfer pool hand-off; the caller stops using p and the next Get owner begins after it
	pool = p
}

// Recycle proves a transfer-annotated helper is callable: no call-site
// finding here.
func Recycle(p *Planner) {
	Put(p)
}

// legacy is a publish the team chose to live with for now.
var legacy *Planner

// KeepLegacy suppresses the finding instead of transferring: the
// directive must cover a real raw diagnostic.
func KeepLegacy(p *Planner) {
	//lint:ignore confine grandfathered single-process publish; removed when the planner pool lands
	legacy = p
}
