package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllocBareAmortizedDirective pins the one hygiene finding the
// golden fixtures cannot host: a reason-less //alloc:amortized. Any
// trailing text on the directive line parses as its reason, so a want
// comment cannot share the line the way it does for the other
// directive findings. The bare directive must both be reported and
// fail to bless the site below it.
func TestAllocBareAmortizedDirective(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module bare\n\ngo 1.22\n")
	write("bare.go", `package bare

// Buf is reusable scratch.
type Buf struct{ b []byte }

// Ensure grows the scratch to hold n bytes.
//
//alloc:none
func (x *Buf) Ensure(n int) {
	if cap(x.b) < n {
		//alloc:amortized
		x.b = make([]byte, 0, n)
	}
}
`)
	pkgs, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading bare-directive module: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	check := newAllocCheck()
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	pass := &Pass{Check: check, Pkg: pkgs[0], Prog: prog, report: func(d Diagnostic) { diags = append(diags, d) }}
	check.Run(pass)

	var sawBare, sawSite bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a reason") {
			sawBare = true
		}
		if strings.Contains(d.Message, "make escapes") {
			sawSite = true
		}
	}
	if !sawBare {
		t.Errorf("reason-less //alloc:amortized was not reported: %v", diags)
	}
	if !sawSite {
		t.Errorf("bare directive blessed the make site anyway: %v", diags)
	}
}
