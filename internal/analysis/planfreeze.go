package analysis

import (
	"go/ast"
	"go/types"
)

// planfreeze: plan.Plan and lp.Solution are frozen after their
// constructors (the LP solver) return them — the planners compare and
// execute plans, and a mutated plan silently desynchronizes the
// planned costs from the executed ones. The check enforces, outside
// each type's defining package:
//
//  1. no direct writes through a frozen value (p.Bandwidth[i] = ...,
//     sol.X[0] = ..., *p = ...); rebinding a variable (p = q) is fine;
//  2. no composite-literal construction (plan.Plan{...} bypasses the
//     constructors' validation);
//  3. no calls that mutate a frozen argument — an interprocedural
//     fixpoint over the call graph computes, for every module
//     function, which parameters (receiver included) it writes
//     through, so handing a frozen value to a mutating helper is
//     flagged at the call site even when the write is layers deep.

// frozenSpec names one immutable-after-construction struct.
type frozenSpec struct {
	pkg  string // import-path suffix of the defining package
	name string
}

var frozenTypes = []frozenSpec{
	{"internal/plan", "Plan"},
	{"internal/lp", "Solution"},
}

// frozenName resolves t (through pointers) to a frozen type, returning
// its display name and defining package, or ok=false.
func frozenName(t types.Type) (string, *types.Package, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", nil, false
	}
	for _, fs := range frozenTypes {
		if obj.Name() == fs.name && pathHasSuffix(obj.Pkg().Path(), fs.pkg) {
			return obj.Pkg().Name() + "." + obj.Name(), obj.Pkg(), true
		}
	}
	return "", nil, false
}

// prefixChain returns the proper prefixes of an assignable expression,
// innermost-first: for p.Bandwidth[i] it yields p.Bandwidth then p.
// Writing through any frozen prefix mutates the frozen struct; the
// whole expression itself is excluded so rebinding (p = q) and
// whole-struct replacement of a *field* that happens to be frozen are
// judged by their own prefixes.
func prefixChain(lhs ast.Expr) []ast.Expr {
	var chain []ast.Expr
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = unparen(x.X)
		case *ast.IndexExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		default:
			return chain
		}
		chain = append(chain, e)
	}
}

// frozenWorld is the interprocedural mutator solution: for every
// module function, the mask of parameter slots (receiver first, when
// present) through which it writes into a frozen struct.
type frozenWorld struct {
	mutators map[*types.Func][]bool
}

// paramSlots maps a declaration's receiver and parameter objects to
// mask slots.
func paramSlots(pkg *Package, fd *ast.FuncDecl) (map[types.Object]int, int) {
	slots := make(map[types.Object]int)
	n := 0
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					slots[obj] = n
				}
				n++
			}
			if len(f.Names) == 0 { // unnamed receiver/parameter
				n++
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return slots, n
}

// frozenWrites calls visit for every write in body whose target has a
// frozen proper prefix.
func frozenWrites(pkg *Package, body ast.Node, visit func(lhs ast.Expr, prefix ast.Expr, name string, defPkg *types.Package)) {
	check := func(lhs ast.Expr) {
		for _, pre := range prefixChain(lhs) {
			t := pkg.Info.TypeOf(pre)
			if t == nil {
				continue
			}
			if name, defPkg, ok := frozenName(t); ok {
				visit(lhs, pre, name, defPkg)
				return // one finding per write target
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}

// buildFrozenWorld computes the mutator masks: direct param-rooted
// frozen writes seed the masks, then call sites propagate them to
// callers passing their own parameters through, to a fixed point.
func buildFrozenWorld(prog *Program) *frozenWorld {
	fw := &frozenWorld{mutators: make(map[*types.Func][]bool)}
	cg := prog.CallGraph()

	slotCache := make(map[*types.Func]map[types.Object]int)
	mask := func(fn *types.Func) []bool {
		if m, ok := fw.mutators[fn]; ok {
			return m
		}
		fd := cg.Decl(fn)
		pkg := cg.DeclPkg(fn)
		if fd == nil || pkg == nil {
			return nil
		}
		slots, n := paramSlots(pkg, fd)
		slotCache[fn] = slots
		m := make([]bool, n)
		fw.mutators[fn] = m
		return m
	}

	// Seed: direct writes through a parameter.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m := mask(fn)
				frozenWrites(pkg, fd.Body, func(lhs, pre ast.Expr, name string, defPkg *types.Package) {
					root, ok := pre.(*ast.Ident)
					if !ok {
						return
					}
					obj := pkg.Info.Uses[root]
					if obj == nil {
						return
					}
					if slot, ok := slotCache[fn][obj]; ok {
						m[slot] = true
					}
				})
			}
		}
	}

	// Propagate through call sites: f passing its own parameter into a
	// mutating slot of g mutates through that parameter too.
	for changed := true; changed; {
		changed = false
		for _, site := range cg.Sites {
			calleeMask := fw.mutators[site.Callee]
			if len(calleeMask) == 0 {
				continue
			}
			callerMask := mask(site.Caller)
			if callerMask == nil {
				continue
			}
			callerSlots := slotCache[site.Caller]
			for slot, muts := range calleeMask {
				if !muts {
					continue
				}
				arg := argAtSlot(site.Pkg, site.Call, site.Callee, slot)
				if arg == nil {
					continue
				}
				id, ok := unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				obj := site.Pkg.Info.Uses[id]
				if obj == nil {
					continue
				}
				if cs, ok := callerSlots[obj]; ok && !callerMask[cs] {
					callerMask[cs] = true
					changed = true
				}
			}
		}
	}
	return fw
}

// argAtSlot returns the expression a call passes in the callee's given
// mask slot: the receiver expression for slot 0 of a method, the
// positional argument otherwise.
func argAtSlot(pkg *Package, call *ast.CallExpr, callee *types.Func, slot int) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		if slot == 0 {
			return receiverExpr(pkg.Info, call)
		}
		slot--
	}
	if slot < len(call.Args) {
		return call.Args[slot]
	}
	return nil
}

// newPlanfreezeCheck builds the planfreeze analyzer.
func newPlanfreezeCheck() *Check {
	return &Check{
		Name: "planfreeze",
		Doc:  "plan.Plan and lp.Solution are immutable outside their defining packages",
		Run: func(pass *Pass) {
			fw := pass.Prog.frozenWorld()
			cg := pass.Prog.CallGraph()
			samePkg := func(defPkg *types.Package) bool { return pass.Pkg.Types == defPkg }

			for _, file := range pass.Pkg.Files {
				// Rule 2: composite-literal construction.
				ast.Inspect(file, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					t := pass.Pkg.Info.TypeOf(cl)
					if t == nil {
						return true
					}
					if name, defPkg, ok := frozenName(t); ok && !samePkg(defPkg) {
						pass.Reportf(cl.Pos(), "composite literal constructs frozen %s outside %s; use its constructors", name, defPkg.Name())
					}
					return true
				})
				// Rule 1: direct writes.
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					frozenWrites(pass.Pkg, fd.Body, func(lhs, pre ast.Expr, name string, defPkg *types.Package) {
						if samePkg(defPkg) {
							return
						}
						pass.Reportf(lhs.Pos(), "write to frozen %s outside %s; plans are immutable once built", name, defPkg.Name())
					})
				}
			}
			// Rule 3: calls that mutate a frozen argument.
			for _, site := range cg.Sites {
				if site.Pkg != pass.Pkg {
					continue
				}
				m := fw.mutators[site.Callee]
				for slot, muts := range m {
					if !muts {
						continue
					}
					arg := argAtSlot(pass.Pkg, site.Call, site.Callee, slot)
					if arg == nil {
						continue
					}
					t := pass.Pkg.Info.TypeOf(arg)
					if t == nil {
						continue
					}
					if name, defPkg, ok := frozenName(t); ok && !samePkg(defPkg) {
						pass.Reportf(arg.Pos(), "call to %s mutates its frozen %s argument", site.Callee.Name(), name)
					}
				}
			}
		},
	}
}
