package analysis

import (
	"strings"
	"sync"
)

// Program is the whole-module state shared by every Pass of one Run.
// The PR 2 checks are per-package AST walks and ignore it; the
// dataflow checks (unitcheck, planfreeze, budgetflow) need structures
// that span package boundaries — the call graph, unit summaries,
// frozen-struct mutator sets — which are built here once, lazily, and
// shared. All lazy builders are sync.Once-guarded so a parallel Run
// can request them from several workers at once.
type Program struct {
	Pkgs   []*Package
	byPath map[string]*Package

	cgOnce sync.Once
	cg     *CallGraph

	unitsOnce sync.Once
	units     *unitWorld

	frozenOnce sync.Once
	frozen     *frozenWorld

	confineOnce sync.Once
	confine     *confineWorld

	lockOnce sync.Once
	lock     *lockWorld

	allocOnce sync.Once
	alloc     *allocWorld
}

// NewProgram wraps the loaded packages. pkgs should be LoadDir output
// (sorted by import path) so lazily built structures are
// deterministic.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, byPath: make(map[string]*Package, len(pkgs))}
	for _, p := range pkgs {
		prog.byPath[p.Path] = p
	}
	return prog
}

// Package returns the loaded package with the given import path.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// CallGraph returns the module call graph, building it on first use.
func (prog *Program) CallGraph() *CallGraph {
	prog.cgOnce.Do(func() { prog.cg = buildCallGraph(prog.Pkgs) })
	return prog.cg
}

// unitWorld returns the unit-inference state, building it on first use.
func (prog *Program) unitWorld() *unitWorld {
	prog.unitsOnce.Do(func() { prog.units = buildUnitWorld(prog) })
	return prog.units
}

// frozenWorld returns the plan-immutability state, building it on
// first use.
func (prog *Program) frozenWorld() *frozenWorld {
	prog.frozenOnce.Do(func() { prog.frozen = buildFrozenWorld(prog) })
	return prog.frozen
}

// confineWorld returns the goroutine-confinement state, building it on
// first use.
func (prog *Program) confineWorld() *confineWorld {
	prog.confineOnce.Do(func() { prog.confine = buildConfineWorld(prog) })
	return prog.confine
}

// lockWorld returns the lock-discipline state, building it on first
// use.
func (prog *Program) lockWorld() *lockWorld {
	prog.lockOnce.Do(func() { prog.lock = buildLockWorld(prog) })
	return prog.lock
}

// allocWorld returns the allocation-discipline state, building it on
// first use.
func (prog *Program) allocWorld() *allocWorld {
	prog.allocOnce.Do(func() { prog.alloc = buildAllocWorld(prog) })
	return prog.alloc
}

// pathHasSuffix reports whether the import path ends in suffix at a
// path-segment boundary, so configuration written against the real
// tree ("internal/plan") also matches the fixture module
// ("fixture/internal/plan").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
