package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// budgetflow: every energy debit in the executor and the simulator
// must flow through a named accounting entry point. The exec/sim
// equivalence tests compare ledgers counter by counter; an inline
// `res.Ledger.Collection += ...` scattered in a planner loop is
// exactly the kind of write that drifts between the two and corrupts
// every figure. The rule is simple and interprocedural only in the
// trivial sense: writes to energy.Ledger fields are allowed solely
// inside the per-package charge helpers listed here (closures within
// them included); everything else is flagged. Replacing a whole
// Ledger value (res.Ledger = energy.Ledger{}) is a reset, not a
// debit, and stays legal.

// budgetEntryPoints lists the sanctioned accounting helpers by
// function name, keyed by import-path suffix so fixture twins use the
// same table.
var budgetEntryPoints = map[string][]string{
	"internal/exec": {"chargeEmpty", "chargeMsg", "chargeReply", "chargeRequest", "chargeTrigger", "chargeValue"},
	"internal/sim":  {"chargeDelivery", "chargeInstall", "chargeLoss", "chargeTrigger"},
}

// ledgerType reports whether t (through pointers) is energy.Ledger.
func ledgerType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ledger" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/energy")
}

func budgetScope(path string) (string, bool) {
	for suffix := range budgetEntryPoints {
		if pathHasSuffix(path, suffix) {
			return suffix, true
		}
	}
	return "", false
}

// newBudgetflowCheck builds the budgetflow analyzer.
func newBudgetflowCheck() *Check {
	return &Check{
		Name: "budgetflow",
		Doc:  "energy.Ledger debits in exec/sim must go through the charge* accounting helpers",
		Applies: func(path string) bool {
			_, ok := budgetScope(path)
			return ok
		},
		Run: func(pass *Pass) {
			suffix, ok := budgetScope(pass.Pkg.Path)
			if !ok {
				return
			}
			allowed := make(map[string]bool)
			for _, name := range budgetEntryPoints[suffix] {
				allowed[name] = true
			}
			names := strings.Join(sortedNames(allowed), ", ")

			check := func(lhs ast.Expr) {
				for _, pre := range prefixChain(lhs) {
					t := pass.Pkg.Info.TypeOf(pre)
					if t == nil || !ledgerType(t) {
						continue
					}
					field := "a field"
					if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
						field = sel.Sel.Name
					}
					pass.Reportf(lhs.Pos(), "energy.Ledger.%s written outside the accounting helpers (%s)", field, names)
					return
				}
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || allowed[fd.Name.Name] {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.AssignStmt:
							for _, lhs := range n.Lhs {
								check(lhs)
							}
						case *ast.IncDecStmt:
							check(n.X)
						}
						return true
					})
				}
			}
		},
	}
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
