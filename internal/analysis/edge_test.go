package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// The fixture/internal/edge package collects the call-graph and CFG
// shapes the concurrency checks lean on: method expressions under go,
// method values, defers with closures, channel-direction conversions.
// These tests pin the substrate behavior directly; the golden test
// separately proves the package is finding-free.

func edgePkg(t *testing.T) *Package {
	t.Helper()
	fixtures(t)
	pkg := fixtureProgram().Package("fixture/internal/edge")
	if pkg == nil {
		t.Fatal("fixture/internal/edge did not load")
	}
	return pkg
}

// edgeDecl finds a declared function by name in the edge package.
func edgeDecl(t *testing.T, pkg *Package, name string) (*ast.FuncDecl, *types.Func) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				return fd, fn
			}
		}
	}
	t.Fatalf("function %s not found in %s", name, pkg.Path)
	return nil, nil
}

// TestCallGraphMethodExpression proves `go (*Runner).Run(r)` resolves
// to a call-graph edge Launch -> Run, the shape goleak uses to find the
// goroutine body behind a method-expression go statement.
func TestCallGraphMethodExpression(t *testing.T) {
	pkg := edgePkg(t)
	cg := fixtureProgram().CallGraph()
	_, run := edgeDecl(t, pkg, "Run")
	if run == nil {
		t.Fatal("no types.Func for Run")
	}
	found := false
	for _, site := range cg.CallsTo(run) {
		if site.Caller != nil && site.Caller.Name() == "Launch" {
			found = true
			if cg.Decl(run) == nil || cg.DeclPkg(run) != pkg {
				t.Errorf("Decl/DeclPkg of Run not resolved to the edge package")
			}
		}
	}
	if !found {
		t.Error("method-expression call (*Runner).Run(r) produced no Launch -> Run edge")
	}
}

// TestCallGraphMethodValueIsDynamic proves a method value handed around
// as a func() (stop := r.Stop) does not fabricate a call edge: only the
// direct close-over-channel call inside Stop itself appears.
func TestCallGraphMethodValueIsDynamic(t *testing.T) {
	pkg := edgePkg(t)
	cg := fixtureProgram().CallGraph()
	_, stop := edgeDecl(t, pkg, "Stop")
	if stop == nil {
		t.Fatal("no types.Func for Stop")
	}
	for _, site := range cg.CallsTo(stop) {
		t.Errorf("unexpected call edge to Stop from %v: method values are dynamic", site.Caller)
	}
}

// TestCFGDeferClosure proves a defer wrapping a closure stays a
// straight-line node (one block mention) and does not disturb the
// loop's back edge — the shape lockcheck's defer reasoning walks.
func TestCFGDeferClosure(t *testing.T) {
	pkg := edgePkg(t)
	fd, _ := edgeDecl(t, pkg, "Deferred")
	cfg := buildCFG(fd.Body)
	deferBlocks := 0
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferBlocks++
			}
		}
	}
	if deferBlocks != 1 {
		t.Errorf("defer with closure appears in %d block nodes, want 1", deferBlocks)
	}
	// The range loop must produce a cycle: some block reachable from
	// entry has a successor with a lower index (the back edge).
	hasBackEdge := false
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			if s.Index <= blk.Index && s != cfg.Exit {
				hasBackEdge = true
			}
		}
	}
	if !hasBackEdge {
		t.Error("range loop produced no back edge in the CFG")
	}
	if len(cfg.Exit.Preds) == 0 {
		t.Error("exit block unreachable")
	}
}

// TestChannelDirectionConversion proves the loader and type info keep
// directional conversions intact: Directions' locals have chan<- int /
// <-chan int types rooted at the same bidirectional parameter.
func TestChannelDirectionConversion(t *testing.T) {
	pkg := edgePkg(t)
	fd, _ := edgeDecl(t, pkg, "Directions")
	dirs := map[types.ChanDir]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			return true
		}
		if ch, ok := obj.Type().Underlying().(*types.Chan); ok {
			dirs[ch.Dir()] = true
		}
		return true
	})
	if !dirs[types.SendOnly] || !dirs[types.RecvOnly] {
		t.Errorf("direction conversions lost: saw %v, want both SendOnly and RecvOnly", dirs)
	}
}

// TestGoleakMethodExpressionAccepted pins the end-to-end behavior: the
// goroutine started through the method expression terminates via the
// done-channel receive in Run's body, so goleak stays quiet on the
// whole edge package.
func TestGoleakMethodExpressionAccepted(t *testing.T) {
	pkg := edgePkg(t)
	var diags []Diagnostic
	check := newGoleakCheck()
	pass := &Pass{Check: check, Pkg: pkg, Prog: fixtureProgram(),
		report: func(d Diagnostic) { diags = append(diags, d) }}
	check.Run(pass)
	for _, d := range diags {
		t.Errorf("unexpected goleak finding in edge package: %s", d)
	}
}
