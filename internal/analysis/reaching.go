package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Reaching definitions over the CFG of one function. A definition is
// one assignment to a local variable (or the function-entry
// pseudo-definition of a parameter, receiver, or named result); the
// fixed point computes, per block, which definitions may still be live
// on entry. unitcheck walks each block forward from that entry set to
// know, at every use of a variable, exactly which assignments can have
// produced its value.

type defKind int

const (
	defEntry  defKind = iota // parameter / receiver / named result
	defAssign                // x = rhs or x := rhs with a 1:1 expression
	defOpAssign
	defIncDec
	defOpaque // range vars, multi-value assigns, type-switch vars, ...
)

// definition is one definition site of obj.
type definition struct {
	index int
	obj   types.Object
	kind  defKind
	rhs   ast.Expr    // value expression for defAssign/defOpAssign, else nil
	op    token.Token // the compound token for defOpAssign (ADD_ASSIGN, ...)
	pos   token.Pos
}

// funcFlow is the reaching-definitions result for one function body.
type funcFlow struct {
	cfg    *CFG
	defs   []*definition
	defsOf map[types.Object][]int
	// entry holds the pseudo-definitions of parameters, receiver, and
	// named results, applied at the head of the entry block.
	entry []*definition
	// defsAt lists, in evaluation order, the definitions each block
	// node produces.
	defsAt map[ast.Node][]*definition
	in     []bitset // per block
}

// analyzeFlow builds the CFG and reaching-definitions solution for a
// function body. sig supplies the entry definitions; it may be nil for
// function literals whose parameters are handled the same way through
// the type info.
func analyzeFlow(info *types.Info, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) *funcFlow {
	ff := &funcFlow{
		cfg:    buildCFG(body),
		defsOf: make(map[types.Object][]int),
		defsAt: make(map[ast.Node][]*definition),
	}

	newDef := func(obj types.Object, kind defKind, rhs ast.Expr, op token.Token, pos token.Pos) *definition {
		d := &definition{index: len(ff.defs), obj: obj, kind: kind, rhs: rhs, op: op, pos: pos}
		ff.defs = append(ff.defs, d)
		ff.defsOf[obj] = append(ff.defsOf[obj], d.index)
		return d
	}

	// Entry definitions: receiver, parameters, named results.
	entry := ff.cfg.Entry()
	var entryDefs []*definition
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					entryDefs = append(entryDefs, newDef(obj, defEntry, nil, token.ILLEGAL, name.Pos()))
				}
			}
		}
	}
	addFields(recv)
	addFields(ftype.Params)
	addFields(ftype.Results)
	ff.entry = entryDefs

	// Definitions produced by each block node, in evaluation order.
	for _, blk := range ff.cfg.Blocks {
		for _, n := range blk.Nodes {
			ff.defsAt[n] = nodeDefs(info, n, newDef)
		}
	}

	// gen/kill per block: the last definition of each object in a
	// block survives it; every other definition of that object dies.
	nb := len(ff.cfg.Blocks)
	words := (len(ff.defs) + 63) / 64
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	out := make([]bitset, nb)
	ff.in = make([]bitset, nb)
	for i := range gen {
		gen[i] = newBitset(words)
		kill[i] = newBitset(words)
		out[i] = newBitset(words)
		ff.in[i] = newBitset(words)
	}
	apply := func(blk *Block, d *definition) {
		for _, j := range ff.defsOf[d.obj] {
			gen[blk.Index].clear(j)
			kill[blk.Index].set(j)
		}
		gen[blk.Index].set(d.index)
		kill[blk.Index].clear(d.index)
	}
	for _, d := range entryDefs {
		apply(entry, d)
	}
	for _, blk := range ff.cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range ff.defsAt[n] {
				apply(blk, d)
			}
		}
	}

	// Forward fixed point: in[b] = ∪ out[pred], out = gen ∪ (in−kill).
	for changed := true; changed; {
		changed = false
		for _, blk := range ff.cfg.Blocks {
			i := blk.Index
			for _, p := range blk.Preds {
				ff.in[i].union(out[p.Index])
			}
			if out[i].mergeFlow(gen[i], ff.in[i], kill[i]) {
				changed = true
			}
		}
	}
	return ff
}

// nodeDefs extracts the definitions a block node produces, calling
// newDef for each in evaluation order.
func nodeDefs(info *types.Info, n ast.Node, newDef func(types.Object, defKind, ast.Expr, token.Token, token.Pos) *definition) []*definition {
	var defs []*definition
	defineIdent := func(id *ast.Ident, kind defKind, rhs ast.Expr, op token.Token) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			defs = append(defs, newDef(v, kind, rhs, op, id.Pos()))
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		switch {
		case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						defineIdent(id, defAssign, n.Rhs[i], token.ILLEGAL)
					}
				}
			} else { // x, y := f()
				for _, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						defineIdent(id, defOpaque, nil, token.ILLEGAL)
					}
				}
			}
		default: // +=, -=, *=, ...
			if id, ok := unparen(n.Lhs[0]).(*ast.Ident); ok {
				defineIdent(id, defOpAssign, n.Rhs[0], n.Tok)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			defineIdent(id, defIncDec, nil, n.Tok)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if len(vs.Values) == len(vs.Names) {
					defineIdent(name, defAssign, vs.Values[i], token.ILLEGAL)
				} else if len(vs.Values) == 0 {
					defineIdent(name, defOpaque, nil, token.ILLEGAL) // zero value
				} else {
					defineIdent(name, defOpaque, nil, token.ILLEGAL)
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := unparen(n.Key).(*ast.Ident); ok {
			defineIdent(id, defOpaque, nil, token.ILLEGAL)
		}
		if id, ok := unparen(n.Value).(*ast.Ident); ok {
			defineIdent(id, defOpaque, nil, token.ILLEGAL)
		}
	}
	return defs
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// bitset is a fixed-width bit vector over definition indices.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) copyFrom(o bitset) {
	copy(b, o)
}

// union adds o into b.
func (b bitset) union(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// mergeFlow sets b = gen ∪ (in − kill) and reports whether b changed.
func (b bitset) mergeFlow(gen, in, kill bitset) bool {
	changed := false
	for i := range b {
		next := gen[i] | (in[i] &^ kill[i])
		if next != b[i] {
			b[i] = next
			changed = true
		}
	}
	return changed
}
