package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goleak: no fire-and-forget goroutines in the library packages. Every
// `go` statement in internal/... must carry a provable termination
// signal — some structural evidence that the goroutine stops and that
// somebody notices. The accepted shapes:
//
//	A. the goroutine body references a context.Context (cancellation
//	   plumbing is visible);
//	B. the body receives from a channel — `<-ch`, `for range ch`, or a
//	   select with a receive case — so closing the channel ends it;
//	C. the body calls wg.Done() on a sync.WaitGroup that is provably
//	   joined: a Wait() on the same local variable in the enclosing
//	   function, or on the same field/package-level WaitGroup anywhere
//	   in the package;
//	D. the enclosing function references a Close/Shutdown/Stop method
//	   of a value the goroutine captures (the http.Server idiom:
//	   `go srv.Serve(ln)` is fine when `srv.Close` is handed out);
//	E. the body signals a captured channel (close or send) that the
//	   enclosing function receives from (the done-channel idiom).
//
// For `go namedFn(...)` the callee's body is resolved through the call
// graph and scanned the same way; a wg.Done on a callee *parameter* is
// mapped back to the argument at the go site. The check is
// conservative in the accepting direction only — a `for { <-tick.C }`
// loop with no exit counts as signal B — because its job is to catch
// goroutines with no coordination at all, not to prove liveness.
type goleakScan struct {
	pkg *Package
	cg  *CallGraph
}

func newGoleakCheck() *Check {
	return &Check{
		Name: "goleak",
		Doc:  "every go statement in internal/... has a provable termination signal: context, channel receive, joined WaitGroup, reachable stopper, or done-channel hand-shake",
		Applies: func(path string) bool {
			return strings.Contains("/"+path+"/", "/internal/")
		},
		Run: func(pass *Pass) {
			gs := &goleakScan{pkg: pass.Pkg, cg: pass.Prog.CallGraph()}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						g, ok := n.(*ast.GoStmt)
						if !ok {
							return true
						}
						if !gs.terminates(fd, g) {
							pass.Reportf(g.Pos(), "goroutine has no termination signal (context, channel receive, joined WaitGroup, or reachable Close/Shutdown/Stop); it can leak")
						}
						return true
					})
				}
			}
		},
	}
}

// terminates reports whether the goroutine started by g shows one of
// the accepted termination signals.
func (gs *goleakScan) terminates(encl *ast.FuncDecl, g *ast.GoStmt) bool {
	info := gs.pkg.Info

	// The body to scan: a literal's body, or the resolved declaration
	// of a named/method callee. remap translates a WaitGroup root
	// object in the body back to the caller's world (identity for
	// literals, parameter-slot mapping for named callees).
	var body *ast.BlockStmt
	remap := func(obj types.Object) types.Object { return obj }
	var lit *ast.FuncLit
	if l, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		lit = l
		body = l.Body
	} else if callee := staticCallee(info, g.Call); callee != nil {
		fd := gs.cg.Decl(callee)
		declPkg := gs.cg.DeclPkg(callee)
		if fd == nil || fd.Body == nil || declPkg == nil {
			return false // unresolvable body: demand a signal we can see
		}
		body = fd.Body
		slots, _ := paramSlots(declPkg, fd)
		remap = func(obj types.Object) types.Object {
			slot, ok := slots[obj]
			if !ok {
				return obj
			}
			arg := argAtSlot(gs.pkg, g.Call, callee, slot)
			if arg == nil {
				return obj
			}
			if root := rootIdent(arg); root != nil {
				if o := gs.pkg.Info.Uses[root]; o != nil {
					return o
				}
			}
			return obj
		}
		// Signal A via arguments: passing a context into the callee
		// counts even before scanning its body.
		for _, arg := range g.Call.Args {
			if isContextType(info.TypeOf(arg)) {
				return true
			}
		}
	} else {
		return false // dynamic call (func value): no body to inspect
	}

	bodyInfo := info
	if lit == nil {
		// Named callee: its body was type-checked in its own package.
		if declPkg := gs.cg.DeclPkg(staticCallee(info, g.Call)); declPkg != nil {
			bodyInfo = declPkg.Info
		}
	}

	if gs.bodyHasContextOrReceive(bodyInfo, body) {
		return true // signals A and B
	}
	if gs.waitGroupJoined(bodyInfo, body, remap, encl) {
		return true // signal C
	}
	if lit != nil {
		captured := capturedRoots(info, lit)
		if gs.stopperReachable(encl, g, captured) {
			return true // signal D
		}
		if gs.doneChannelHandshake(info, lit, encl, g, captured) {
			return true // signal E
		}
	} else {
		// go srv.Serve(ln): the receiver and arguments are the
		// captured values for the stopper pattern.
		objs := make(map[types.Object]bool)
		note := func(e ast.Expr) {
			if e == nil {
				return
			}
			if root := rootIdent(e); root != nil {
				if obj := info.Uses[root]; obj != nil {
					objs[obj] = true
				}
			}
		}
		note(receiverExpr(info, g.Call))
		for _, arg := range g.Call.Args {
			note(arg)
		}
		if gs.stopperReachable(encl, g, objs) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// bodyHasContextOrReceive scans a goroutine body (skipping nested
// literals) for a context reference or a channel receive.
func (gs *goleakScan) bodyHasContextOrReceive(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isContextType(info.TypeOf(n)) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// waitGroupJoined implements signal C: a wg.Done() in the body whose
// WaitGroup is joined by a reachable Wait().
func (gs *goleakScan) waitGroupJoined(bodyInfo *types.Info, body *ast.BlockStmt, remap func(types.Object) types.Object, encl *ast.FuncDecl) bool {
	for _, done := range waitGroupCalls(bodyInfo, body, "Done") {
		target := remap(done.root)
		if target == nil {
			continue
		}
		// Local (or remapped-to-local) WaitGroup: Wait in the enclosing
		// function, anywhere outside the goroutine body.
		for _, wait := range waitGroupCalls(gs.pkg.Info, encl.Body, "Wait") {
			if wait.root == target || (done.field != nil && wait.field == done.field) {
				return true
			}
		}
		// Field or package-level WaitGroup: any Wait in the package on
		// the same field object / package var joins it.
		if done.field != nil || isPackageLevel(target) {
			for _, file := range gs.pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					for _, wait := range waitGroupCalls(gs.pkg.Info, fd.Body, "Wait") {
						if wait.root == target || (done.field != nil && wait.field == done.field) {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// wgCall is one wg.Done()/wg.Wait() occurrence: the root object of the
// receiver chain and, for field-rooted WaitGroups, the field object.
type wgCall struct {
	root  types.Object
	field types.Object
}

func waitGroupCalls(info *types.Info, body ast.Node, method string) []wgCall {
	var out []wgCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		if t := info.TypeOf(sel.X); t == nil || !syncType(t, "WaitGroup") {
			return true
		}
		var c wgCall
		if root := rootIdent(sel.X); root != nil {
			c.root = info.Uses[root]
			if c.root == nil {
				c.root = info.Defs[root]
			}
		}
		if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
			c.field = info.Uses[inner.Sel]
		}
		if c.root != nil || c.field != nil {
			out = append(out, c)
		}
		return true
	})
	return out
}

// capturedRoots collects the objects a literal references that are
// declared outside it.
func capturedRoots(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		objs[obj] = true
		return true
	})
	return objs
}

// stopperReachable implements signal D: the enclosing function, outside
// the go statement itself, references a Close/Shutdown/Stop method of a
// value the goroutine captures.
func (gs *goleakScan) stopperReachable(encl *ast.FuncDecl, g *ast.GoStmt, captured map[types.Object]bool) bool {
	info := gs.pkg.Info
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found || n == ast.Node(g) {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Close", "Shutdown", "Stop":
		default:
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if obj := info.Uses[root]; obj != nil && captured[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// doneChannelHandshake implements signal E: the goroutine closes or
// sends on a captured channel that the enclosing function receives
// from.
func (gs *goleakScan) doneChannelHandshake(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl, g *ast.GoStmt, captured map[types.Object]bool) bool {
	signaled := make(map[types.Object]bool)
	chanObj := func(e ast.Expr) types.Object {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		obj := info.Uses[root]
		if obj == nil || !captured[obj] {
			return nil
		}
		if t := info.TypeOf(e); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return obj
			}
		}
		return nil
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := chanObj(n.Chan); obj != nil {
				signaled[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if obj := chanObj(n.Args[0]); obj != nil {
						signaled[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(signaled) == 0 {
		return false
	}
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found || n == ast.Node(g) {
			return false
		}
		var target ast.Expr
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				target = n.X
			}
		case *ast.RangeStmt:
			target = n.X
		}
		if target == nil {
			return true
		}
		if root := rootIdent(target); root != nil {
			if obj := info.Uses[root]; obj != nil && signaled[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
