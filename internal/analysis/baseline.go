package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// A Baseline records known findings so a repository can adopt a new
// check without first paying down every existing violation: baselined
// findings are tolerated, anything beyond them is new and fails. Keys
// deliberately omit line numbers — unrelated edits shift lines, and a
// baseline that rots on every refactor teaches people to regenerate it
// blindly. A key is (check, slash-separated file path relative to the
// lint root, message), and the value is how many identical findings
// the file may contain.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one tolerated finding with its multiplicity.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineKey struct {
	check, file, message string
}

// baselineFile normalizes a diagnostic's file name to the baseline's
// root-relative slash form so a baseline written on one machine (or
// from another working directory) still matches.
func baselineFile(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && filepath.IsLocal(rel) {
		filename = rel
	}
	return filepath.ToSlash(filename)
}

// NewBaseline captures the given diagnostics as the tolerated set.
// root is the lint root the diagnostics were produced under.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{d.Check, baselineFile(root, d.Position.Filename), d.Message}]++
	}
	b := &Baseline{Findings: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{Check: k.check, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	return b
}

// Filter returns the diagnostics not covered by the baseline. Each
// entry absorbs up to Count matching findings; diagnostics beyond an
// entry's count are new. Filter does not mutate the baseline.
func (b *Baseline) Filter(root string, diags []Diagnostic) []Diagnostic {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey{e.Check, e.File, e.Message}] += e.Count
	}
	var fresh []Diagnostic
	for _, d := range diags {
		k := baselineKey{d.Check, baselineFile(root, d.Position.Filename), d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}

// WriteBaseline serializes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline: %w", err)
	}
	for i, e := range b.Findings {
		if e.Check == "" || e.File == "" {
			return nil, fmt.Errorf("analysis: baseline entry %d is missing a check or file", i)
		}
		if e.Count < 1 {
			return nil, fmt.Errorf("analysis: baseline entry %d (%s in %s) has count %d, want >= 1", i, e.Check, e.File, e.Count)
		}
	}
	return &b, nil
}
