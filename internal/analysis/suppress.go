package analysis

import (
	"go/token"
	"strings"
)

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	check  string
	reason string
	pos    token.Pos
	line   int
	file   string
}

const directive = "//lint:ignore"

// collectSuppressions parses every //lint:ignore directive in the
// package. Well-formed directives (check name plus non-empty reason)
// land in pkg.suppressions keyed by file and line; malformed ones are
// kept for the suppress audit.
func collectSuppressions(pkg *Package) {
	pkg.suppressions = make(map[string]map[int][]suppression)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directive)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // an unrelated comment such as //lint:ignorefoo
				}
				pos := pkg.Fset.Position(c.Pos())
				s := suppression{pos: c.Pos(), line: pos.Line, file: pos.Filename}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					s.check = fields[0]
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				if s.check == "" || s.reason == "" {
					pkg.malformed = append(pkg.malformed, s)
					continue
				}
				byLine := pkg.suppressions[s.file]
				if byLine == nil {
					byLine = make(map[int][]suppression)
					pkg.suppressions[s.file] = byLine
				}
				byLine[s.line] = append(byLine[s.line], s)
			}
		}
	}
}

// suppressed reports whether a diagnostic from check at d's position is
// covered by a directive on the same line or the line directly above.
func (pkg *Package) suppressed(d Diagnostic) bool {
	byLine := pkg.suppressions[d.Position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		for _, s := range byLine[line] {
			if s.check == d.Check {
				return true
			}
		}
	}
	return false
}

// newSuppressCheck builds the audit that keeps //lint:ignore honest:
// every directive needs both a check name and a reason, and the check
// name must be one the suite knows.
func newSuppressCheck(known []string) *Check {
	names := make(map[string]bool, len(known))
	for _, n := range known {
		names[n] = true
	}
	names["suppress"] = true
	return &Check{
		Name: "suppress",
		Doc:  "lint:ignore directives must name a known check and give a reason",
		Run: func(pass *Pass) {
			for _, s := range pass.Pkg.malformed {
				pass.Reportf(s.pos, "lint:ignore directive needs a check name and a reason: %q", directive+" <check> <reason>")
			}
			for _, byLine := range pass.Pkg.suppressions {
				for _, sups := range byLine {
					for _, s := range sups {
						if !names[s.check] {
							pass.Reportf(s.pos, "lint:ignore names unknown check %q", s.check)
						}
					}
				}
			}
		},
	}
}
