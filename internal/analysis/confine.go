package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// confine: goroutine-escape analysis for types declared
// single-goroutine. The stateful planner/solver types (core.paramLP
// and the parametric planners, lp.Workspace, lp.Basis, obs.Span) carry
// warm-start caches that are correct only when every access happens on
// the goroutine that built them; the concurrent plan-serving tier being
// layered on top must hand whole planners between workers, never share
// one. A type opts in with //confine:goroutine in its doc comment, and
// the check flags every site where a value of a confined type becomes
// reachable from a second goroutine:
//
//  1. captured by (or passed to) the function a `go` statement starts;
//  2. sent on a channel;
//  3. stored in a package-level variable, or through one.
//
// Escapes are tracked interprocedurally: a function that leaks one of
// its own parameters marks that parameter slot as leaking, leak masks
// propagate over the call graph to a fixed point (exactly like
// planfreeze's mutator masks), and a call passing a confined value
// into a leaking slot is flagged at the call site.
//
// A sanctioned hand-off — a pool Put, a publish under a documented
// external happens-before edge — is annotated in place:
//
//	//confine:transfer <reason>
//
// on or directly above the escape site. Transferred sites are silent
// and do not poison the enclosing function's leak mask. Known
// limitations, on purpose: a confined value stored into a local struct
// that later escapes is not chased (annotate the struct type instead),
// and reads of package-level confined values are not flagged (the
// store is the hand-off point).

// confineWorld is the shared interprocedural state: the confined type
// set, the per-function leak masks, and the precomputed findings.
type confineWorld struct {
	confined map[*types.TypeName]bool
	leakers  map[*types.Func][]bool
	findings map[*Package][]worldFinding
}

// worldFinding is one precomputed diagnostic-to-be.
type worldFinding struct {
	pos token.Pos
	msg string
}

// confinedName resolves t (through pointers) to a confined type,
// returning its display name, or ok=false.
func (cw *confineWorld) confinedName(t types.Type) (string, bool) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if !cw.confined[tn] {
		return "", false
	}
	if tn.Pkg() == nil {
		return tn.Name(), true
	}
	return tn.Pkg().Name() + "." + tn.Name(), true
}

// rootIdent returns the root identifier of a selector/index/deref/
// address chain (x for &x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = unparen(x.X)
		case *ast.IndexExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = unparen(x.X)
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether obj is a package-scope variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && pkg.Scope() == v.Parent()
}

// buildConfineWorld scans every function for escape sites, seeds and
// propagates the leak masks, and records the findings.
func buildConfineWorld(prog *Program) *confineWorld {
	cw := &confineWorld{
		confined: make(map[*types.TypeName]bool),
		leakers:  make(map[*types.Func][]bool),
		findings: make(map[*Package][]worldFinding),
	}
	for _, pkg := range prog.Pkgs {
		for _, tn := range confinedTypes(pkg) {
			cw.confined[tn] = true
		}
	}
	cg := prog.CallGraph()

	slotCache := make(map[*types.Func]map[types.Object]int)
	mask := func(fn *types.Func) []bool {
		if m, ok := cw.leakers[fn]; ok {
			return m
		}
		fd := cg.Decl(fn)
		pkg := cg.DeclPkg(fn)
		if fd == nil || pkg == nil {
			return nil
		}
		slots, n := paramSlots(pkg, fd)
		slotCache[fn] = slots
		m := make([]bool, n)
		cw.leakers[fn] = m
		return m
	}

	// Pass 1: leaf escape sites, leak-mask seeds, directive hygiene.
	type transferMap = map[string]map[int]transferSite
	transfersOf := make(map[*Package]transferMap, len(prog.Pkgs))
	for _, pkg := range prog.Pkgs {
		transfers, _ := collectTransfers(pkg)
		transfersOf[pkg] = transfers
	}
	transferred := func(pkg *Package, pos token.Pos) bool {
		p := pkg.Fset.Position(pos)
		byLine := transfersOf[pkg][p.Filename]
		if byLine == nil {
			return false
		}
		_, onLine := byLine[p.Line]
		_, above := byLine[p.Line-1]
		return onLine || above
	}

	for _, pkg := range prog.Pkgs {
		// Reason-less transfer directives are findings themselves: an
		// unjustified hand-off is exactly what the check exists to stop.
		for _, f := range pkg.Files {
			for _, cgrp := range f.Comments {
				for _, c := range cgrp.List {
					rest, ok := cutDirective(c.Text, confineTransferDirective)
					if ok && rest == "" {
						cw.findings[pkg] = append(cw.findings[pkg], worldFinding{
							pos: c.Pos(),
							msg: "confine:transfer directive needs a reason: \"//confine:transfer <reason>\"",
						})
					}
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				var m []bool
				if fn != nil {
					m = mask(fn)
				}
				// escape records one leaf site: a finding unless the
				// site is a sanctioned transfer, and a leak-mask seed
				// when the escaping value is one of fd's parameters.
				escape := func(pos token.Pos, value ast.Expr, name, how string) {
					if transferred(pkg, pos) {
						return
					}
					cw.findings[pkg] = append(cw.findings[pkg], worldFinding{
						pos: pos,
						msg: "confined " + name + " " + how + "; annotate the hand-off with //confine:transfer or keep it on its owning goroutine",
					})
					if root := rootIdent(value); root != nil && fn != nil {
						if obj := pkg.Info.Uses[root]; obj != nil {
							if slot, ok := slotCache[fn][obj]; ok {
								m[slot] = true
							}
						}
					}
				}
				confineScanBody(pkg, cw, fd.Body, escape)
			}
		}
	}

	// Pass 2: propagate leak masks over the call graph — a caller
	// passing its own parameter into a leaking slot leaks it too.
	for changed := true; changed; {
		changed = false
		for _, site := range cg.Sites {
			calleeMask := cw.leakers[site.Callee]
			if len(calleeMask) == 0 {
				continue
			}
			callerMask := mask(site.Caller)
			if callerMask == nil {
				continue
			}
			callerSlots := slotCache[site.Caller]
			for slot, leaks := range calleeMask {
				if !leaks {
					continue
				}
				arg := argAtSlot(site.Pkg, site.Call, site.Callee, slot)
				if arg == nil {
					continue
				}
				id, ok := unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				obj := site.Pkg.Info.Uses[id]
				if obj == nil {
					continue
				}
				if cs, ok := callerSlots[obj]; ok && !callerMask[cs] {
					callerMask[cs] = true
					changed = true
				}
			}
		}
	}

	// Pass 3: call sites passing a confined value into a leaking slot.
	for _, site := range cg.Sites {
		m := cw.leakers[site.Callee]
		for slot, leaks := range m {
			if !leaks {
				continue
			}
			arg := argAtSlot(site.Pkg, site.Call, site.Callee, slot)
			if arg == nil {
				continue
			}
			t := site.Pkg.Info.TypeOf(arg)
			if t == nil {
				continue
			}
			name, ok := cw.confinedName(t)
			if !ok {
				continue
			}
			if transferred(site.Pkg, arg.Pos()) {
				continue
			}
			cw.findings[site.Pkg] = append(cw.findings[site.Pkg], worldFinding{
				pos: arg.Pos(),
				msg: "call to " + site.Callee.Name() + " leaks confined " + name + " to another goroutine",
			})
		}
	}
	return cw
}

// confineScanBody walks one function body for leaf escape sites,
// calling escape(pos, value, typeName, how) for each.
func confineScanBody(pkg *Package, cw *confineWorld, body ast.Node, escape func(token.Pos, ast.Expr, string, string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			confineScanGo(pkg, cw, n, escape)
		case *ast.SendStmt:
			if t := pkg.Info.TypeOf(n.Value); t != nil {
				if name, ok := cw.confinedName(t); ok {
					escape(n.Value.Pos(), n.Value, name, "sent on a channel")
				}
			}
		case *ast.AssignStmt:
			oneToOne := len(n.Lhs) == len(n.Rhs)
			for i, lhs := range n.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				obj := pkg.Info.Uses[root]
				if obj == nil {
					obj = pkg.Info.Defs[root]
				}
				if obj == nil || !isPackageLevel(obj) {
					continue
				}
				// The stored value's type decides: for 1:1 assigns the
				// RHS (so `global = nil` stays legal), the LHS slot
				// type for tuple assigns.
				var t types.Type
				var value ast.Expr
				if oneToOne {
					value = n.Rhs[i]
					t = pkg.Info.TypeOf(value)
					if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
						continue
					}
				} else {
					value = lhs
					t = pkg.Info.TypeOf(lhs)
				}
				if t == nil {
					continue
				}
				if name, ok := cw.confinedName(t); ok {
					escape(lhs.Pos(), value, name, "stored in package-level variable "+root.Name)
				}
			}
		}
		return true
	})
}

// confineScanGo flags confined values handed to a new goroutine: the
// receiver and arguments of the started call, and — for a function
// literal — every confined free variable the literal captures.
func confineScanGo(pkg *Package, cw *confineWorld, g *ast.GoStmt, escape func(token.Pos, ast.Expr, string, string)) {
	call := g.Call
	checkExpr := func(e ast.Expr, how string) {
		if e == nil {
			return
		}
		if t := pkg.Info.TypeOf(e); t != nil {
			if name, ok := cw.confinedName(t); ok {
				escape(e.Pos(), e, name, how)
			}
		}
	}
	for _, arg := range call.Args {
		checkExpr(arg, "passed to a goroutine")
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		seen := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || seen[obj] {
				return true
			}
			if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				return true // the literal's own locals and parameters
			}
			t := pkg.Info.TypeOf(id)
			if t == nil {
				return true
			}
			if name, ok := cw.confinedName(t); ok {
				seen[obj] = true
				escape(id.Pos(), id, name, "captured by a goroutine")
			}
			return true
		})
		return
	}
	checkExpr(receiverExpr(pkg.Info, call), "passed to a goroutine")
}

// newConfineCheck builds the confine analyzer.
func newConfineCheck() *Check {
	return &Check{
		Name: "confine",
		Doc:  "types marked //confine:goroutine never become reachable from a second goroutine without a //confine:transfer hand-off",
		Run: func(pass *Pass) {
			cw := pass.Prog.confineWorld()
			for _, f := range cw.findings[pass.Pkg] {
				pass.Reportf(f.pos, "%s", f.msg)
			}
		},
	}
}
