package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Unit machinery for the unitcheck analyzer. A Unit is a product of
// base dimensions with integer exponents — the cost model juggles
// millijoules (mJ), bytes (B), messages (msg), values (val), and
// seconds (s), and the classic bug is adding a per-byte coefficient
// to a total energy. The nil *Unit means "unknown"; an empty dims map
// is dimensionless (a fraction or count ratio), written "1".
//
// Units enter the analysis two ways:
//
//   - the declarative table below, keyed by (package suffix, owner
//     type, name), which tags the cost-model fields and methods of the
//     real tree and, by suffix matching, their fixture twins;
//   - //unit: directives in source, for locals, parameters, and
//     anything the table does not cover:
//
//     //unit: mJ                    on a var/const/field declaration
//     //unit: nValues=val extra=B   on a func declaration (parameters)
//     //unit: return=mJ             on a func declaration
//
// A directive sits at the end of the declaration line, on the line
// directly above it, or in the declaration's doc comment. Malformed
// directives are unitcheck findings themselves.

// knownDims is the closed set of base dimensions; a typo in a
// directive ("mj") must be a finding, not a fresh dimension.
var knownDims = map[string]bool{"mJ": true, "B": true, "msg": true, "val": true, "s": true}

// Unit is a product of base dimensions with integer exponents.
type Unit struct {
	dims map[string]int
}

// dimensionless reports whether u is the empty product.
func (u *Unit) dimensionless() bool { return u != nil && len(u.dims) == 0 }

func (u *Unit) equal(o *Unit) bool {
	if u == nil || o == nil {
		return u == o
	}
	if len(u.dims) != len(o.dims) {
		return false
	}
	for d, e := range u.dims {
		if o.dims[d] != e {
			return false
		}
	}
	return true
}

// String renders the unit in the same syntax parseUnit accepts:
// "mJ", "mJ/B", "B/val", "1", "mJ/B/val", "B^2".
func (u *Unit) String() string {
	if u == nil {
		return "?"
	}
	var pos, neg []string
	for _, d := range sortedDims(u.dims) {
		e := u.dims[d]
		switch {
		case e > 1:
			pos = append(pos, d+"^"+strconv.Itoa(e))
		case e == 1:
			pos = append(pos, d)
		case e == -1:
			neg = append(neg, d)
		case e < -1:
			neg = append(neg, d+"^"+strconv.Itoa(-e))
		}
	}
	s := strings.Join(pos, "*")
	if s == "" {
		s = "1"
	}
	for _, d := range neg {
		s += "/" + d
	}
	return s
}

func sortedDims(dims map[string]int) []string {
	out := make([]string, 0, len(dims))
	for d := range dims {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// parseUnit parses "mJ", "mJ/B", "B*s", "mJ/B/val", "B^2", "1".
func parseUnit(s string) (*Unit, error) {
	u := &Unit{dims: make(map[string]int)}
	for i, seg := range strings.Split(s, "/") {
		sign := 1
		if i > 0 {
			sign = -1
		}
		for _, factor := range strings.Split(seg, "*") {
			name, exp := factor, 1
			if base, pow, ok := strings.Cut(factor, "^"); ok {
				n, err := strconv.Atoi(pow)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("bad exponent in unit %q", s)
				}
				name, exp = base, n
			}
			if name == "1" && exp == 1 {
				continue
			}
			if !knownDims[name] {
				return nil, fmt.Errorf("unknown dimension %q in unit %q (known: B, mJ, msg, s, val)", name, s)
			}
			u.dims[name] += sign * exp
			if u.dims[name] == 0 {
				delete(u.dims, name)
			}
		}
	}
	return u, nil
}

// mustUnit parses a unit-table string, panicking on the programmer
// error of an invalid table entry.
func mustUnit(s string) *Unit {
	u, err := parseUnit(s)
	if err != nil {
		panic("analysis: bad unit table entry: " + err.Error())
	}
	return u
}

// mulUnits / divUnits combine units; unknown propagates.
func mulUnits(a, b *Unit) *Unit {
	if a == nil || b == nil {
		return nil
	}
	out := &Unit{dims: make(map[string]int, len(a.dims)+len(b.dims))}
	for d, e := range a.dims {
		out.dims[d] = e
	}
	for d, e := range b.dims {
		out.dims[d] += e
		if out.dims[d] == 0 {
			delete(out.dims, d)
		}
	}
	return out
}

func divUnits(a, b *Unit) *Unit {
	if a == nil || b == nil {
		return nil
	}
	inv := &Unit{dims: make(map[string]int, len(b.dims))}
	for d, e := range b.dims {
		inv.dims[d] = -e
	}
	return mulUnits(a, inv)
}

// joinUnits is the optimistic lattice join used when several
// definitions reach a use: unknowns defer to the known unit, and two
// different known units collapse to unknown (the mixing itself is
// flagged at the assignment that caused it, not at every later use).
func joinUnits(a, b *Unit) *Unit {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.equal(b):
		return a
	default:
		return nil
	}
}

// unitTableEntry tags one named element of the real tree: a struct
// field or method when owner is a type name, a package-level func,
// var, or const when owner is empty. pkg is an import-path suffix so
// the fixture module's twin packages get the same rows. Entries that
// resolve to nothing (a fixture twin declaring only a subset) are
// silently skipped.
type unitTableEntry struct {
	pkg, owner, name, unit string
}

var unitTable = []unitTableEntry{
	// internal/energy: the paper's cost model.
	{"internal/energy", "Model", "PerMessage", "mJ"},
	{"internal/energy", "Model", "PerByte", "mJ/B"},
	{"internal/energy", "Model", "BytesPerValue", "B/val"},
	{"internal/energy", "Model", "BytesPerRequest", "B"},
	{"internal/energy", "Model", "TriggerFraction", "1"},
	{"internal/energy", "Model", "PerValue", "mJ/val"},
	{"internal/energy", "Model", "Unicast", "mJ"},
	{"internal/energy", "Model", "Trigger", "mJ"},
	{"internal/energy", "Model", "Request", "mJ"},
	{"internal/energy", "Model", "TxShare", "mJ"},
	{"internal/energy", "Model", "RxShare", "mJ"},
	{"internal/energy", "Ledger", "Collection", "mJ"},
	{"internal/energy", "Ledger", "Trigger", "mJ"},
	{"internal/energy", "Ledger", "Requests", "mJ"},
	{"internal/energy", "Ledger", "Install", "mJ"},
	{"internal/energy", "Ledger", "Messages", "msg"},
	{"internal/energy", "Ledger", "Values", "val"},
	{"internal/energy", "Ledger", "Total", "mJ"},
	{"internal/energy", "", "TxFraction", "1"},

	// internal/plan: per-node cost vectors and bandwidth plans.
	{"internal/plan", "Costs", "Msg", "mJ"},
	{"internal/plan", "Costs", "Val", "mJ/val"},
	{"internal/plan", "Costs", "ValueCost", "mJ"},
	{"internal/plan", "Plan", "Bandwidth", "val"},
	{"internal/plan", "Plan", "TotalBandwidth", "val"},
	{"internal/plan", "Plan", "CollectionCost", "mJ"},
	{"internal/plan", "Plan", "TriggerCost", "mJ"},
	{"internal/plan", "Plan", "InstallCost", "mJ"},
	{"internal/plan", "Plan", "BundleBytes", "B"},
	{"internal/plan", "Plan", "SubplanBytes", "B"},

	// internal/sim: radio-level replay of the same model.
	{"internal/sim", "Result", "NodeEnergy", "mJ"},
	{"internal/sim", "Config", "SlotSeconds", "s"},
}

// unitScopeSuffixes lists the packages unitcheck analyzes: the cost
// model and every package that does arithmetic with it.
var unitScopeSuffixes = []string{
	"internal/energy",
	"internal/plan",
	"internal/lp",
	"internal/exec",
	"internal/sim",
	"internal/core",
}

func unitScope(path string) bool {
	for _, s := range unitScopeSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

const unitDirective = "//unit:"

// unitErr is one malformed //unit: directive, reported by unitcheck.
type unitErr struct {
	pos token.Pos
	msg string
}

// unitWorld is the cross-package unit state: declared units per
// object, return units per function (declared or inferred), directive
// errors per package, and a cache of per-function dataflow results.
type unitWorld struct {
	prog        *Program
	scope       []*Package
	decl        map[types.Object]*Unit
	ret         map[*types.Func]*Unit
	declaredRet map[*types.Func]bool
	errs        map[*Package][]unitErr

	mu    sync.Mutex
	flows map[*ast.FuncDecl]*funcFlow
}

func (w *unitWorld) flowOf(pkg *Package, fd *ast.FuncDecl) *funcFlow {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ff, ok := w.flows[fd]; ok {
		return ff
	}
	ff := analyzeFlow(pkg.Info, fd.Type, fd.Recv, fd.Body)
	w.flows[fd] = ff
	return ff
}

func (w *unitWorld) addErr(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	w.errs[pkg] = append(w.errs[pkg], unitErr{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// buildUnitWorld collects declared units (table + directives), then
// iterates whole-module return-unit inference to a fixed point: a
// function whose single result is computed with one consistent unit
// exports that unit to its callers, even without a table row.
func buildUnitWorld(prog *Program) *unitWorld {
	w := &unitWorld{
		prog:        prog,
		decl:        make(map[types.Object]*Unit),
		ret:         make(map[*types.Func]*Unit),
		declaredRet: make(map[*types.Func]bool),
		errs:        make(map[*Package][]unitErr),
		flows:       make(map[*ast.FuncDecl]*funcFlow),
	}
	for _, pkg := range prog.Pkgs {
		if unitScope(pkg.Path) {
			w.scope = append(w.scope, pkg)
		}
	}
	for _, pkg := range w.scope {
		w.applyTable(pkg)
		w.collectDirectives(pkg)
	}
	for round := 0; round < 4; round++ {
		changed := false
		for _, pkg := range w.scope {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if w.inferReturn(pkg, fd) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return w
}

// inferReturn analyzes one function and, when its single numeric
// result is produced with one consistent known unit, records that as
// the function's return unit. Reports whether the summary changed.
func (w *unitWorld) inferReturn(pkg *Package, fd *ast.FuncDecl) bool {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok || w.declaredRet[fn] {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	ua := w.analyze(pkg, fd, fn, nil)
	var inferred *Unit
	for _, ru := range ua.returns {
		if ru == nil {
			continue
		}
		if inferred != nil && !inferred.equal(ru) {
			return false // conflicting returns: stay unknown
		}
		inferred = ru
	}
	if len(ua.returns) == 0 || ua.sawUnknownReturn {
		return false
	}
	if inferred.equal(w.ret[fn]) {
		return false
	}
	w.ret[fn] = inferred
	return true
}

// retUnit is the declared or inferred return unit of fn.
func (w *unitWorld) retUnit(fn *types.Func) *Unit { return w.ret[fn] }

func (w *unitWorld) setDeclaredRet(fn *types.Func, u *Unit) {
	w.ret[fn] = u
	w.declaredRet[fn] = true
}

// applyTable resolves the table rows matching pkg's import path.
func (w *unitWorld) applyTable(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, e := range unitTable {
		if !pathHasSuffix(pkg.Path, e.pkg) {
			continue
		}
		u := mustUnit(e.unit)
		if e.owner == "" {
			w.tagObject(scope.Lookup(e.name), u)
			continue
		}
		tn, ok := scope.Lookup(e.owner).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == e.name {
					w.decl[st.Field(i)] = u
				}
			}
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == e.name {
				w.setDeclaredRet(named.Method(i), u)
			}
		}
	}
}

func (w *unitWorld) tagObject(obj types.Object, u *Unit) {
	switch obj := obj.(type) {
	case *types.Func:
		w.setDeclaredRet(obj, u)
	case *types.Var, *types.Const:
		w.decl[obj] = u
	}
}

// collectDirectives parses every //unit: comment in pkg and attaches
// each to the declaration on its line, the line below, or (for
// functions) the declaration its doc comment documents. Unattached or
// unparsable directives become unitcheck findings.
func (w *unitWorld) collectDirectives(pkg *Package) {
	for _, file := range pkg.Files {
		byLine := make(map[int][]*ast.Comment)
		used := make(map[*ast.Comment]bool)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, unitDirective) {
					line := pkg.Fset.Position(c.Pos()).Line
					byLine[line] = append(byLine[line], c)
				}
			}
		}
		// attached returns the directives adjacent to a node starting
		// at pos, marking them consumed.
		attached := func(pos token.Pos) []*ast.Comment {
			line := pkg.Fset.Position(pos).Line
			var out []*ast.Comment
			for _, l := range [2]int{line, line - 1} {
				for _, c := range byLine[l] {
					if !used[c] {
						used[c] = true
						out = append(out, c)
					}
				}
			}
			return out
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				cs := attached(n.Pos())
				if n.Doc != nil {
					for _, c := range n.Doc.List {
						if strings.HasPrefix(c.Text, unitDirective) && !used[c] {
							used[c] = true
							cs = append(cs, c)
						}
					}
				}
				for _, c := range cs {
					w.applyFuncDirective(pkg, n, c)
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					for _, c := range attached(field.Pos()) {
						w.applyNamedDirective(pkg, c, field.Names, "field")
					}
				}
			case *ast.ValueSpec:
				for _, c := range attached(n.Pos()) {
					w.applyNamedDirective(pkg, c, n.Names, "declaration")
				}
			case *ast.AssignStmt:
				var names []*ast.Ident
				for _, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						names = append(names, id)
					}
				}
				for _, c := range attached(n.Pos()) {
					w.applyNamedDirective(pkg, c, names, "assignment")
				}
			}
			return true
		})
		for _, cs := range byLine {
			for _, c := range cs {
				if !used[c] {
					w.addErr(pkg, c.Pos(), "unit directive attached to no declaration")
				}
			}
		}
	}
}

// directiveTokens splits a //unit: comment into its fields.
func directiveTokens(c *ast.Comment) []string {
	return strings.Fields(strings.TrimPrefix(c.Text, unitDirective))
}

// applyFuncDirective handles a directive on a function declaration:
// every token must be name=unit (a parameter, receiver, or named
// result) or return=unit.
func (w *unitWorld) applyFuncDirective(pkg *Package, fd *ast.FuncDecl, c *ast.Comment) {
	toks := directiveTokens(c)
	if len(toks) == 0 {
		w.addErr(pkg, c.Pos(), "empty unit directive")
		return
	}
	for _, tok := range toks {
		name, unit, ok := strings.Cut(tok, "=")
		if !ok {
			w.addErr(pkg, c.Pos(), "unit directive on a function needs name=unit or return=unit, got %q", tok)
			continue
		}
		u, err := parseUnit(unit)
		if err != nil {
			w.addErr(pkg, c.Pos(), "unit directive: %v", err)
			continue
		}
		if name == "return" {
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				w.setDeclaredRet(fn, u)
			}
			continue
		}
		if !w.tagFuncName(pkg, fd, name, u) {
			w.addErr(pkg, c.Pos(), "unit directive names no parameter, receiver, or result %q", name)
		}
	}
}

func (w *unitWorld) tagFuncName(pkg *Package, fd *ast.FuncDecl, name string, u *Unit) bool {
	try := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if id.Name == name {
					if obj := pkg.Info.Defs[id]; obj != nil {
						w.decl[obj] = u
						return true
					}
				}
			}
		}
		return false
	}
	return try(fd.Recv) || try(fd.Type.Params) || try(fd.Type.Results)
}

// applyNamedDirective handles a directive on a field, var/const spec,
// or assignment: either one bare unit covering every declared name,
// or name=unit tokens.
func (w *unitWorld) applyNamedDirective(pkg *Package, c *ast.Comment, names []*ast.Ident, what string) {
	toks := directiveTokens(c)
	if len(toks) == 0 {
		w.addErr(pkg, c.Pos(), "empty unit directive")
		return
	}
	if len(names) == 0 {
		w.addErr(pkg, c.Pos(), "unit directive on a %s with no named targets", what)
		return
	}
	objOf := func(id *ast.Ident) types.Object {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[id]
	}
	for _, tok := range toks {
		if name, unit, ok := strings.Cut(tok, "="); ok {
			u, err := parseUnit(unit)
			if err != nil {
				w.addErr(pkg, c.Pos(), "unit directive: %v", err)
				continue
			}
			found := false
			for _, id := range names {
				if id.Name == name {
					if obj := objOf(id); obj != nil {
						w.decl[obj] = u
						found = true
					}
				}
			}
			if !found {
				w.addErr(pkg, c.Pos(), "unit directive names nothing called %q in this %s", name, what)
			}
			continue
		}
		u, err := parseUnit(tok)
		if err != nil {
			w.addErr(pkg, c.Pos(), "unit directive: %v", err)
			continue
		}
		for _, id := range names {
			if obj := objOf(id); obj != nil {
				w.decl[obj] = u
			}
		}
	}
}
