// Package analysis is a zero-dependency static-analysis engine for
// this repository, built on the standard library's go/ast, go/parser,
// and go/types only. It enforces project invariants the compiler
// cannot see: planners and the simulator must be deterministic
// (injected clocks and RNGs, no map-iteration-order-dependent output),
// internal/obs instrumentation must stay nil-receiver-safe, the
// LP/stats numeric code must never compare floats with raw == or !=,
// and library code must not discard error returns.
//
// The engine loads and type-checks every package under a module root
// (see LoadDir), runs a suite of checks over each (see Suite and Run),
// and reports diagnostics with file:line:column positions. Individual
// findings can be silenced in source with a directive comment:
//
//	//lint:ignore <check> <reason>
//
// placed either at the end of the offending line or on the line
// directly above it. Directives without both a check name and a
// non-empty reason are themselves diagnostics (the "suppress" check).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Check    string         `json:"check"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Check, d.Message)
}

// Package is one loaded, type-checked package plus the side tables the
// checks need.
type Package struct {
	Path  string // import path ("prospector/internal/lp")
	Dir   string // directory the files were parsed from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// suppressions maps filename -> line -> directives covering that
	// line; malformed holds directives the suppress audit flags.
	suppressions map[string]map[int][]suppression
	malformed    []suppression
}

// Check is one analyzer in the suite.
type Check struct {
	// Name identifies the check in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description for -help output.
	Doc string
	// Applies reports whether the check runs over the package with the
	// given import path. A nil Applies runs everywhere.
	Applies func(path string) bool
	// Run inspects one package and reports findings via the pass.
	Run func(*Pass)
}

// Pass carries one (check, package) execution. Prog exposes the
// whole-module Program so interprocedural checks can reach the call
// graph and shared dataflow summaries; per-package checks ignore it.
type Pass struct {
	Check *Check
	Pkg   *Package
	Prog  *Program

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Check:    p.Check.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// isFloat reports whether t is (or has underlying) float32/float64 or
// an untyped float constant type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// isInteger reports whether t is an integer type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsInteger != 0
}
