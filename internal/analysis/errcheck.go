package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// stickyWriters are receiver/destination types whose write methods
// either cannot fail (strings.Builder, bytes.Buffer) or latch the
// first error for a later Flush/Err call (bufio.Writer). Discarding
// their error results is the standard-library idiom.
var stickyWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"bufio.Writer":    true,
}

// newErrcheckCheck flags statements that call a function returning an
// error and drop the result on the floor. An explicit `_ = f()` is
// visible intent and stays legal; a bare `f()` is not.
func newErrcheckCheck() *Check {
	return &Check{
		Name: "errchecklite",
		Doc:  "no discarded error returns in non-test library code",
		Applies: func(path string) bool {
			return strings.Contains(path, "/internal/")
		},
		Run: runErrcheck,
	}
}

func runErrcheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil || !returnsError(pass, call) || allowedDiscard(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or assign to _ explicitly",
				calleeLabel(call))
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// allowedDiscard covers the sticky-writer idiom: methods on
// strings.Builder/bytes.Buffer/bufio.Writer, and fmt.Fprint* calls
// whose destination is one of those.
func allowedDiscard(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, isMethod := pass.Pkg.Info.Selections[sel]; isMethod {
		return stickyWriters[typeLabel(s.Recv())]
	}
	// Package function: fmt.Fprint/Fprintf/Fprintln to a sticky writer.
	if obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil &&
		obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") && len(call.Args) > 0 {
		return stickyWriters[typeLabel(pass.TypeOf(call.Args[0]))]
	}
	return false
}

// typeLabel renders t as "pkgname.TypeName", unwrapping one pointer.
func typeLabel(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// calleeLabel names the called function for the diagnostic message.
func calleeLabel(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	default:
		return "call"
	}
}
