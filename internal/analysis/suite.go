package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Suite returns the project's full analyzer suite: the per-package
// checks (determinism, obsnilsafe, floatcmp, errchecklite), the
// dataflow checks (unitcheck, planfreeze, budgetflow), the
// concurrency-safety checks (confine, lockcheck, goleak), the
// allocation-discipline check (alloccheck), plus the suppress audit
// (which knows the other checks' names so it can flag typos in
// directives).
func Suite() []*Check {
	checks := []*Check{
		newDeterminismCheck(),
		newObsNilsafeCheck(),
		newFloatcmpCheck(),
		newErrcheckCheck(),
		newUnitCheck(),
		newPlanfreezeCheck(),
		newBudgetflowCheck(),
		newConfineCheck(),
		newLockcheckCheck(),
		newGoleakCheck(),
		newAllocCheck(),
	}
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name
	}
	return append(checks, newSuppressCheck(names))
}

// SelectChecks filters the suite by name; an empty list keeps all.
func SelectChecks(checks []*Check, names []string) ([]*Check, error) {
	if len(names) == 0 {
		return checks, nil
	}
	byName := make(map[string]*Check, len(checks))
	for _, c := range checks {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			known := make([]string, len(checks))
			for i, kc := range checks {
				known[i] = kc.Name
			}
			sort.Strings(known)
			return nil, fmt.Errorf("analysis: unknown check %q (known: %s)", n, strings.Join(known, ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// Run executes every applicable check over every package and returns
// the surviving (unsuppressed) diagnostics sorted by position. Checks
// run on a bounded worker pool sized to the machine; see RunWorkers.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	return RunWorkers(pkgs, checks, 0)
}

// CheckTiming is one check's accumulated wall time across every
// (package, check) task, as reported by RunWorkersTimed.
type CheckTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunWorkers is Run with an explicit worker count (0 means NumCPU).
// Every (package, check) pair is one task; each task collects into its
// own slice and the slices merge in task order before the final sort,
// so the output is identical for any worker count. Shared
// interprocedural state lives in one Program whose lazy builders are
// sync.Once-guarded.
func RunWorkers(pkgs []*Package, checks []*Check, workers int) []Diagnostic {
	diags, _ := RunWorkersTimed(pkgs, checks, workers)
	return diags
}

// RunWorkersTimed is RunWorkers plus per-check timing: each check's
// entry sums the wall time of its tasks across all packages, sorted
// slowest first (ties by name). Because the Program's interprocedural
// state (call graph, alloc/confine worlds) is built lazily under
// sync.Once, its construction cost lands on whichever check touches it
// first — timings are a profile, not an isolated benchmark.
func RunWorkersTimed(pkgs []*Package, checks []*Check, workers int) ([]Diagnostic, []CheckTiming) {
	prog := NewProgram(pkgs)
	type task struct {
		pkg   *Package
		check *Check
	}
	var tasks []task
	for _, pkg := range pkgs {
		for _, check := range checks {
			if check.Applies != nil && !check.Applies(pkg.Path) {
				continue
			}
			tasks = append(tasks, task{pkg, check})
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([][]Diagnostic, len(tasks))
	elapsed := make([]time.Duration, len(tasks))
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				t := tasks[i]
				pass := &Pass{
					Check: t.check,
					Pkg:   t.pkg,
					Prog:  prog,
					report: func(d Diagnostic) {
						if !t.pkg.suppressed(d) {
							results[i] = append(results[i], d)
						}
					},
				}
				start := time.Now()
				t.check.Run(pass)
				elapsed[i] = time.Since(start)
			}
		}()
	}
	for i := range tasks {
		ch <- i
	}
	close(ch)
	wg.Wait()
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
	// Every selected check appears in the profile, even one whose
	// Applies filter matched no package (it shows 0s).
	perCheck := make(map[string]time.Duration, len(checks))
	for _, c := range checks {
		perCheck[c.Name] = 0
	}
	for i, t := range tasks {
		perCheck[t.check.Name] += elapsed[i]
	}
	timings := make([]CheckTiming, 0, len(perCheck))
	for name, d := range perCheck {
		timings = append(timings, CheckTiming{Name: name, Elapsed: d})
	}
	sort.Slice(timings, func(i, j int) bool {
		if timings[i].Elapsed != timings[j].Elapsed {
			return timings[i].Elapsed > timings[j].Elapsed
		}
		return timings[i].Name < timings[j].Name
	})
	return diags, timings
}

// WriteText prints one "file:line:col: [check] message" line per
// diagnostic.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the diagnostics as one indented JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
