package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Suite returns the project's full analyzer suite: determinism,
// obsnilsafe, floatcmp, errchecklite, plus the suppress audit (which
// knows the other checks' names so it can flag typos in directives).
func Suite() []*Check {
	checks := []*Check{
		newDeterminismCheck(),
		newObsNilsafeCheck(),
		newFloatcmpCheck(),
		newErrcheckCheck(),
	}
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name
	}
	return append(checks, newSuppressCheck(names))
}

// SelectChecks filters the suite by name; an empty list keeps all.
func SelectChecks(checks []*Check, names []string) ([]*Check, error) {
	if len(names) == 0 {
		return checks, nil
	}
	byName := make(map[string]*Check, len(checks))
	for _, c := range checks {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// Run executes every applicable check over every package and returns
// the surviving (unsuppressed) diagnostics sorted by position.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, check := range checks {
			if check.Applies != nil && !check.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Check: check,
				Pkg:   pkg,
				report: func(d Diagnostic) {
					if !pkg.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			check.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// WriteText prints one "file:line:col: [check] message" line per
// diagnostic.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the diagnostics as one indented JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
