package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockcheck: CFG-based lock discipline for sync.Mutex/RWMutex.
//
//  1. Balance — every lock acquired on a path is released on every
//     exit from the function. `defer mu.Unlock()` (directly or via a
//     deferred closure) releases on all exits including panics, which
//     is how the check reasons about panic paths: a deferred release
//     covers them, an inline one does not, but only a genuinely
//     missing release on a normal path is reported. Releasing a lock
//     that cannot be held, acquiring one that is already held
//     (self-deadlock), and mixing Lock/RUnlock modes are findings too.
//
//  2. Guarded fields — a struct field or package-level var annotated
//     //guarded-by:<name> may only be read with the named lock held in
//     any mode and written with it held exclusively. The discipline is
//     interprocedural one call level deep: a function that accesses a
//     guarded field through its receiver/parameter (or a package var)
//     without locking is legal exactly when every call site holds the
//     lock — each call site that does not is flagged (the emitLocked
//     idiom: callers lock, the helper touches the fields). Helpers
//     buried more than one call level below the acquisition need
//     restructuring or a //lint:ignore with justification.
//
//  3. Copies — no lock-bearing struct crosses a call boundary by
//     value: a parameter or receiver whose type (transitively)
//     contains a sync.Mutex, RWMutex, WaitGroup, Once, or Cond that is
//     not behind a pointer is a finding.
//
// Locks are identified syntactically by their access path (t.mu,
// s.inner.mu, a package-level obsMu) rooted at a variable; locks
// reached through calls or index expressions are not modeled.
// sync.Once, TryLock, and embedded-mutex method promotion through a
// different path spelling are out of scope by design.

type lockMode int

const (
	lockExcl   lockMode = iota // Lock/Unlock
	lockShared                 // RLock/RUnlock
)

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// lockKey names one lock: the root variable plus the dotted field path
// to the mutex ("" when the root is the mutex itself).
type lockKey struct {
	root types.Object
	path string
}

func (k lockKey) String() string {
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// lockAcq is the state of one held lock on a path.
type lockAcq struct {
	mode     lockMode
	pos      token.Pos // acquisition site
	deferred bool      // a deferred release covers every exit
}

type lockState map[lockKey]lockAcq

func copyLockState(s lockState) lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func lockStatesEqual(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// lockPath resolves an expression to a lock key: a chain of selectors
// over a root identifier, through pointers. ok=false for anything else
// (calls, index expressions).
func lockPath(info *types.Info, e ast.Expr) (lockKey, bool) {
	var parts []string
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return lockKey{}, false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return lockKey{root: obj, path: strings.Join(parts, ".")}, true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		default:
			return lockKey{}, false
		}
	}
}

// joinLockPath appends a lock field to a base path.
func joinLockPath(base, lock string) string {
	if base == "" {
		return lock
	}
	return base + "." + lock
}

// syncType reports whether t (through pointers) is the named sync
// type.
func syncType(t types.Type, names ...string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// lockCall classifies a call as a mutex acquire/release, returning the
// lock key, the operation, and the mode.
func lockCall(info *types.Info, call *ast.CallExpr) (lockKey, lockOp, lockMode) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, opNone, lockExcl
	}
	var op lockOp
	var mode lockMode
	switch sel.Sel.Name {
	case "Lock":
		op, mode = opAcquire, lockExcl
	case "Unlock":
		op, mode = opRelease, lockExcl
	case "RLock":
		op, mode = opAcquire, lockShared
	case "RUnlock":
		op, mode = opRelease, lockShared
	default:
		return lockKey{}, opNone, lockExcl
	}
	recvT := info.TypeOf(sel.X)
	if recvT == nil || !syncType(recvT, "Mutex", "RWMutex") {
		return lockKey{}, opNone, lockExcl
	}
	key, ok := lockPath(info, sel.X)
	if !ok {
		return lockKey{}, opNone, lockExcl
	}
	return key, op, mode
}

// containsLock reports whether t transitively embeds a sync lock type
// by value, naming the first one found.
func containsLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if syncType(t, "Mutex", "RWMutex", "WaitGroup", "Once", "Cond") {
		named := t
		for {
			p, ok := named.(*types.Pointer)
			if !ok {
				break
			}
			named = p.Elem()
		}
		return "sync." + named.(*types.Named).Obj().Name(), true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if _, ok := ft.(*types.Pointer); ok {
				continue
			}
			if name, ok := containsLock(ft, seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return "", false
}

// guardInfo is the resolved //guarded-by: annotation of one field or
// package var.
type guardInfo struct {
	lockName string
	lockObj  types.Object // package-level lock var (nil for fields)
	isField  bool
}

// guardReq is one guarded access a function performs without holding
// the lock itself, to be justified by its call sites.
type guardReq struct {
	fn        *types.Func
	pkg       *Package
	pos       token.Pos
	fieldName string
	isWrite   bool
	slot      int     // >= 0: root is receiver/param slot; -1: package-level
	path      string  // lock path relative to the slot's root
	globalKey lockKey // the absolute key when slot == -1
	lockDesc  string
}

// lockWorld is the precomputed module-wide lockcheck result.
type lockWorld struct {
	findings map[*Package][]worldFinding
}

// lockUnit is one analyzed function body (declaration or literal).
type lockUnit struct {
	pkg  *Package
	fn   *types.Func // enclosing declared function (also for literals)
	body *ast.BlockStmt
	recv *ast.FieldList // declaration receiver, nil for literals
	ftyp *ast.FuncType
	lit  bool
}

func buildLockWorld(prog *Program) *lockWorld {
	lw := &lockWorld{findings: make(map[*Package][]worldFinding)}
	report := func(pkg *Package, pos token.Pos, msg string) {
		lw.findings[pkg] = append(lw.findings[pkg], worldFinding{pos: pos, msg: msg})
	}

	// Guard annotations, with hygiene: the named lock must exist.
	guards := make(map[types.Object]guardInfo)
	for _, pkg := range prog.Pkgs {
		for _, gf := range collectGuarded(pkg) {
			gi := guardInfo{lockName: gf.lockName, isField: gf.isField}
			if gf.isField {
				// The lock must be a sibling field of the same struct.
				structT, ok := gf.obj.(*types.Var)
				if !ok {
					continue
				}
				found := false
				if owner, ok := fieldOwner(pkg, structT); ok {
					for i := 0; i < owner.NumFields(); i++ {
						f := owner.Field(i)
						if f.Name() == gf.lockName && syncType(f.Type(), "Mutex", "RWMutex") {
							found = true
							break
						}
					}
				}
				if !found {
					report(pkg, gf.obj.Pos(), "guarded-by:"+gf.lockName+" names no sibling sync.Mutex/RWMutex field")
					continue
				}
			} else {
				lockObj := pkg.Types.Scope().Lookup(gf.lockName)
				if lockObj == nil || !syncType(lockObj.Type(), "Mutex", "RWMutex") {
					report(pkg, gf.obj.Pos(), "guarded-by:"+gf.lockName+" names no package-level sync.Mutex/RWMutex")
					continue
				}
				gi.lockObj = lockObj
			}
			guards[gf.obj] = gi
		}
	}

	// Analyze every function body; collect per-call lock states and
	// caller-dependent guarded requirements.
	var reqs []guardReq
	callStates := make(map[*ast.CallExpr]lockState)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				lockCheckCopies(pkg, fd, report)
				units := collectLockUnits(pkg, fn, fd)
				for _, u := range units {
					ua := &lockAnalysis{
						unit:       u,
						guards:     guards,
						callStates: callStates,
						report:     func(pos token.Pos, msg string) { report(u.pkg, pos, msg) },
						addReq:     func(r guardReq) { reqs = append(reqs, r) },
					}
					ua.run()
				}
			}
		}
	}

	// Interprocedural pass: every call site of a function with
	// unprotected guarded accesses must hold the lock.
	cg := prog.CallGraph()
	for _, req := range reqs {
		sites := cg.CallsTo(req.fn)
		if len(sites) == 0 {
			verb := "read"
			if req.isWrite {
				verb = "written"
			}
			report(req.pkg, req.pos, "field "+req.fieldName+" (guarded by "+req.lockDesc+") "+verb+" without the lock held, and no caller holds it")
			continue
		}
		for _, site := range sites {
			key := req.globalKey
			ok := req.slot < 0
			if req.slot >= 0 {
				arg := argAtSlot(site.Pkg, site.Call, req.fn, req.slot)
				if arg != nil {
					if base, pok := lockPath(site.Pkg.Info, arg); pok {
						key = lockKey{root: base.root, path: joinLockPath(base.path, req.path)}
						ok = true
					}
				}
			}
			held := false
			if ok {
				if acq, has := callStates[site.Call][key]; has {
					held = acq.mode == lockExcl || !req.isWrite
				}
			}
			if !held {
				verb := "reads"
				if req.isWrite {
					verb = "writes"
				}
				need := ""
				if req.isWrite {
					need = " exclusively"
				}
				report(site.Pkg, site.Call.Pos(), "call to "+req.fn.Name()+" "+verb+" "+req.fieldName+" (guarded by "+req.lockDesc+") without holding the lock"+need)
			}
		}
	}
	return lw
}

// fieldOwner resolves the struct type a field variable belongs to.
func fieldOwner(pkg *Package, field *types.Var) (*types.Struct, bool) {
	// Walk the package's declared types looking for the field; fields
	// are rare enough that a linear scan is fine.
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return st, true
			}
		}
	}
	return nil, false
}

// lockCheckCopies flags lock-bearing receivers and parameters passed
// by value.
func lockCheckCopies(pkg *Package, fd *ast.FuncDecl, report func(*Package, token.Pos, string)) {
	checkFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pkg.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, ok := t.(*types.Pointer); ok {
				continue
			}
			if name, ok := containsLock(t, make(map[types.Type]bool)); ok {
				report(pkg, f.Type.Pos(), what+" copies lock-bearing "+name+" by value; pass a pointer")
			}
		}
	}
	checkFields(fd.Recv, "receiver")
	checkFields(fd.Type.Params, "parameter")
}

// collectLockUnits returns the declaration body plus every function
// literal inside it as separate analysis units — except literals that
// are the immediate call of a `defer` statement, whose releases are
// modeled as part of the enclosing function's defer reasoning.
func collectLockUnits(pkg *Package, fn *types.Func, fd *ast.FuncDecl) []lockUnit {
	units := []lockUnit{{pkg: pkg, fn: fn, body: fd.Body, recv: fd.Recv, ftyp: fd.Type}}
	deferred := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := unparen(ds.Call.Fun).(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || deferred[lit] {
			return true
		}
		units = append(units, lockUnit{pkg: pkg, fn: fn, body: lit.Body, ftyp: lit.Type, lit: true})
		return true
	})
	return units
}

// lockAnalysis runs the two lock dataflows over one function body and
// reports its findings.
type lockAnalysis struct {
	unit       lockUnit
	guards     map[types.Object]guardInfo
	callStates map[*ast.CallExpr]lockState
	report     func(token.Pos, string)
	addReq     func(guardReq)

	cfg *CFG
	// deferAnywhere forgives exit-leaks for keys with a deferred
	// release registered anywhere in the unit (the rare defer-before-
	// lock shape still releases at runtime).
	deferAnywhere map[lockKey]bool

	slots map[types.Object]int // receiver/param objects -> slot
}

func (ua *lockAnalysis) run() {
	u := ua.unit
	ua.cfg = buildCFG(u.body)
	ua.deferAnywhere = make(map[lockKey]bool)
	ast.Inspect(u.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != u.body.Pos() {
			return false
		}
		if ds, ok := n.(*ast.DeferStmt); ok {
			for _, key := range deferReleases(u.pkg.Info, ds) {
				ua.deferAnywhere[key] = true
			}
		}
		return true
	})
	if !u.lit {
		ua.slots = make(map[types.Object]int)
		n := 0
		addFields := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if obj := u.pkg.Info.Defs[name]; obj != nil {
						ua.slots[obj] = n
					}
					n++
				}
				if len(f.Names) == 0 {
					n++
				}
			}
		}
		addFields(u.recv)
		addFields(u.ftyp.Params)
	}

	nb := len(ua.cfg.Blocks)
	inMay := make([]lockState, nb)
	inMust := make([]lockState, nb)
	outMay := make([]lockState, nb)
	outMust := make([]lockState, nb)
	inMay[0] = lockState{}
	inMust[0] = lockState{}

	// Fixed point over both analyses together: the transfer function is
	// shared, only the merge differs (union for may, intersection for
	// must).
	for changed := true; changed; {
		changed = false
		for _, blk := range ua.cfg.Blocks {
			i := blk.Index
			if i != 0 {
				inMay[i] = mergeMay(blk, outMay)
				inMust[i] = mergeMust(blk, outMust)
			}
			if inMust[i] == nil {
				continue // unreachable so far
			}
			may, must := copyLockState(inMay[i]), copyLockState(inMust[i])
			ua.scanBlock(blk, may, must, false)
			if !lockStatesEqual(may, outMay[i]) || outMust[i] == nil || !lockStatesEqual(must, outMust[i]) {
				outMay[i], outMust[i] = may, must
				changed = true
			}
		}
	}

	// Reporting sweep: deterministic single pass in block order.
	for _, blk := range ua.cfg.Blocks {
		i := blk.Index
		if inMust[i] == nil {
			continue // unreachable code reports nothing
		}
		ua.scanBlock(blk, copyLockState(inMay[i]), copyLockState(inMust[i]), true)
	}

	// Exit balance: a lock held on any path into Exit without a
	// deferred release leaks.
	if exitMay := mergeMay(ua.cfg.Exit, outMay); exitMay != nil {
		keys := make([]lockKey, 0, len(exitMay))
		for k := range exitMay {
			keys = append(keys, k)
		}
		// Deterministic order: by acquisition position.
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if exitMay[keys[j]].pos < exitMay[keys[i]].pos {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		for _, k := range keys {
			acq := exitMay[k]
			if acq.deferred || ua.deferAnywhere[k] {
				continue
			}
			ua.report(acq.pos, "lock "+k.String()+" acquired here is not released on every path out of the function")
		}
	}
}

func mergeMay(blk *Block, outs []lockState) lockState {
	var in lockState
	for _, p := range blk.Preds {
		o := outs[p.Index]
		if o == nil {
			continue
		}
		if in == nil {
			in = copyLockState(o)
			continue
		}
		for k, v := range o {
			if cur, ok := in[k]; ok {
				// Keep the earliest acquisition; un-deferred wins so a
				// leaky path is never forgiven by a deferred twin.
				v.deferred = v.deferred && cur.deferred
				if cur.pos < v.pos {
					v.pos = cur.pos
				}
				in[k] = v
			} else {
				in[k] = v
			}
		}
	}
	if in == nil && len(blk.Preds) > 0 {
		return nil
	}
	if in == nil {
		in = lockState{}
	}
	return in
}

func mergeMust(blk *Block, outs []lockState) lockState {
	var in lockState
	seen := false
	for _, p := range blk.Preds {
		o := outs[p.Index]
		if o == nil {
			continue // unknown predecessor: must-analysis skips it
		}
		if !seen {
			in = copyLockState(o)
			seen = true
			continue
		}
		for k, v := range in {
			ov, ok := o[k]
			if !ok {
				delete(in, k)
				continue
			}
			if ov.mode != v.mode {
				// Held in both, in different modes: the shared level is
				// all that is guaranteed.
				v.mode = lockShared
			}
			v.deferred = v.deferred && ov.deferred
			if ov.pos < v.pos {
				v.pos = ov.pos
			}
			in[k] = v
		}
	}
	if !seen {
		return nil
	}
	return in
}

// deferReleases lists the lock keys a defer statement releases: a
// direct `defer mu.Unlock()` or the top-level releases of a deferred
// closure.
func deferReleases(info *types.Info, ds *ast.DeferStmt) []lockKey {
	var keys []lockKey
	if key, op, _ := lockCall(info, ds.Call); op == opRelease {
		keys = append(keys, key)
		return keys
	}
	lit, ok := unparen(ds.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, op, _ := lockCall(info, call); op == opRelease {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// scanBlock applies the block's nodes to the two states in evaluation
// order; when report is true it also emits findings and records call
// states and guarded requirements.
func (ua *lockAnalysis) scanBlock(blk *Block, may, must lockState, report bool) {
	for _, node := range blk.Nodes {
		ua.scanNode(node, may, must, report)
	}
}

func (ua *lockAnalysis) scanNode(node ast.Node, may, must lockState, report bool) {
	info := ua.unit.pkg.Info

	// Write targets of this node: the expressions written *through*.
	writes := make(map[ast.Expr]bool)
	noteWrites := func(lhs ast.Expr) {
		writes[unparen(lhs)] = true
		for _, pre := range prefixChain(lhs) {
			writes[pre] = true
		}
	}
	switch n := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			noteWrites(lhs)
		}
	case *ast.IncDecStmt:
		noteWrites(n.X)
	}

	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.GoStmt:
			return false // runs concurrently; its literal is a unit
		case *ast.DeferStmt:
			for _, key := range deferReleases(info, n) {
				if acq, ok := may[key]; ok {
					acq.deferred = true
					may[key] = acq
				}
				if acq, ok := must[key]; ok {
					acq.deferred = true
					must[key] = acq
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				writes[unparen(n.X)] = true
				for _, pre := range prefixChain(n.X) {
					writes[pre] = true
				}
			}
		case *ast.CallExpr:
			if key, op, mode := lockCall(info, n); op != opNone {
				ua.applyLockOp(n, key, op, mode, may, must, report)
				return false // don't treat mu.Lock() as a guarded access of mu
			}
			if report {
				ua.callStates[n] = copyLockState(must)
			}
		case *ast.SelectorExpr:
			if report {
				ua.checkGuarded(n, writes[n], must)
			}
		case *ast.Ident:
			if report {
				ua.checkGuardedVar(n, writes[n], must)
			}
		}
		return true
	})
}

func (ua *lockAnalysis) applyLockOp(call *ast.CallExpr, key lockKey, op lockOp, mode lockMode, may, must lockState, report bool) {
	switch op {
	case opAcquire:
		if acq, held := must[key]; held && report {
			_ = acq
			ua.report(call.Pos(), "lock "+key.String()+" acquired while already held (self-deadlock)")
		}
		acq := lockAcq{mode: mode, pos: call.Pos()}
		may[key] = acq
		must[key] = acq
	case opRelease:
		if _, held := may[key]; !held {
			if report {
				ua.report(call.Pos(), "lock "+key.String()+" released but cannot be held on this path")
			}
		} else if acq, held := must[key]; held && acq.mode != mode && report {
			ua.report(call.Pos(), "lock "+key.String()+" released in the wrong mode (Lock pairs with Unlock, RLock with RUnlock)")
		}
		delete(may, key)
		delete(must, key)
	}
}

// checkGuarded handles field accesses x.f where f carries a
// //guarded-by: annotation.
func (ua *lockAnalysis) checkGuarded(sel *ast.SelectorExpr, isWrite bool, must lockState) {
	info := ua.unit.pkg.Info
	var obj types.Object
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		obj = s.Obj()
	} else if o, ok := info.Uses[sel.Sel]; ok {
		obj = o
	}
	if obj == nil {
		return
	}
	gi, guarded := ua.guards[obj]
	if !guarded || !gi.isField {
		return
	}
	base, ok := lockPath(info, sel.X)
	if !ok {
		return // unexpressible path: out of scope by design
	}
	key := lockKey{root: base.root, path: joinLockPath(base.path, gi.lockName)}
	ua.requireHeld(key, obj.Name(), sel.Pos(), isWrite, must, base)
}

// checkGuardedVar handles bare uses of guarded package-level vars.
func (ua *lockAnalysis) checkGuardedVar(id *ast.Ident, isWrite bool, must lockState) {
	obj := ua.unit.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	gi, guarded := ua.guards[obj]
	if !guarded || gi.isField || gi.lockObj == nil {
		return
	}
	key := lockKey{root: gi.lockObj}
	ua.requireHeld(key, obj.Name(), id.Pos(), isWrite, must, lockKey{root: obj})
}

// requireHeld reports or defers (to the call-site pass) a guarded
// access without the needed lock.
func (ua *lockAnalysis) requireHeld(key lockKey, fieldName string, pos token.Pos, isWrite bool, must lockState, base lockKey) {
	if acq, held := must[key]; held {
		if isWrite && acq.mode != lockExcl {
			ua.report(pos, "write to "+fieldName+" (guarded by "+key.String()+") requires the exclusive lock, but only the read lock is held")
		}
		return
	}
	// Not held here. A receiver/parameter-rooted (or package-level)
	// access may be justified by every caller holding the lock.
	if slot, ok := ua.slots[key.root]; ok && ua.unit.fn != nil && !ua.unit.lit {
		ua.addReq(guardReq{
			fn:        ua.unit.fn,
			pkg:       ua.unit.pkg,
			pos:       pos,
			fieldName: fieldName,
			isWrite:   isWrite,
			slot:      slot,
			path:      key.path,
			lockDesc:  key.String(),
		})
		return
	}
	if key.root != nil && isPackageLevel(key.root) && ua.unit.fn != nil && !ua.unit.lit {
		ua.addReq(guardReq{
			fn:        ua.unit.fn,
			pkg:       ua.unit.pkg,
			pos:       pos,
			fieldName: fieldName,
			isWrite:   isWrite,
			slot:      -1,
			globalKey: key,
			lockDesc:  key.String(),
		})
		return
	}
	verb := "read"
	if isWrite {
		verb = "written"
	}
	ua.report(pos, "field "+fieldName+" (guarded by "+key.String()+") "+verb+" without the lock held")
}

// newLockcheckCheck builds the lockcheck analyzer.
func newLockcheckCheck() *Check {
	return &Check{
		Name: "lockcheck",
		Doc:  "mutexes are released on every path, //guarded-by: fields are accessed under their lock, and no lock-bearing struct is copied by value",
		Run: func(pass *Pass) {
			lw := pass.Prog.lockWorld()
			for _, f := range lw.findings[pass.Pkg] {
				pass.Reportf(f.pos, "%s", f.msg)
			}
		},
	}
}
