package analysis

import (
	"go/ast"
	"strings"
)

// floatcmpScope maps package-path suffixes to the helper functions in
// that package allowed to compare floats with == or !=. Everything
// else must go through those helpers (or a tolerance), because a raw
// equality on computed floats silently depends on rounding.
var floatcmpScope = map[string][]string{
	"/internal/lp":            {"isZero", "sameFloat"},
	"/internal/serve":         {"sameBudget"},
	"/internal/stats":         {"exactly"},
	"/internal/traceanalysis": {},
	"/internal/ledger":        {},
	"/internal/regress":       {"exactly"},
	"/cmd/regress":            {},
}

func newFloatcmpCheck() *Check {
	return &Check{
		Name: "floatcmp",
		Doc:  "no ==/!= between floating-point operands outside the approved tolerance helpers",
		Applies: func(path string) bool {
			return floatHelpersFor(path) != nil
		},
		Run: runFloatcmp,
	}
}

func floatHelpersFor(path string) []string {
	for suf, helpers := range floatcmpScope {
		if strings.HasSuffix(path, suf) {
			return helpers
		}
	}
	return nil
}

func runFloatcmp(pass *Pass) {
	approved := make(map[string]bool)
	for _, h := range floatHelpersFor(pass.Pkg.Path) {
		approved[h] = true
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && approved[fn.Name.Name] {
				continue // the helper itself is the sanctioned home for ==
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				op := cmp.Op.String()
				if op != "==" && op != "!=" {
					return true
				}
				if !isFloat(pass.TypeOf(cmp.X)) && !isFloat(pass.TypeOf(cmp.Y)) {
					return true
				}
				// Two untyped constants fold at compile time; no
				// runtime rounding is involved.
				if isConst(pass, cmp.X) && isConst(pass, cmp.Y) {
					return true
				}
				pass.Reportf(cmp.OpPos, "floating-point %s comparison; use an approved helper (%s) or an explicit tolerance",
					op, strings.Join(floatHelpersFor(pass.Pkg.Path), ", "))
				return true
			})
		}
	}
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
