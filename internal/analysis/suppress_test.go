package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for directive edge-case
// tests: files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// auditModule loads the module and returns just the suppress-audit
// diagnostics.
func auditModule(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	pkgs, err := LoadDir(writeModule(t, files))
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	var audit []Diagnostic
	for _, d := range Run(pkgs, Suite()) {
		if d.Check == "suppress" {
			audit = append(audit, d)
		}
	}
	return audit
}

func TestSuppressAuditMalformedDirectives(t *testing.T) {
	audit := auditModule(t, map[string]string{
		"p/p.go": `package p

// Bare directive: no check, no reason.
func A() {
	//lint:ignore
	_ = 0
}

// Check name but no reason.
func B() {
	//lint:ignore floatcmp
	_ = 0
}

// Reason of only whitespace collapses to nothing.
func C() {
	//lint:ignore floatcmp ` + "\t" + `
	_ = 0
}
`,
	})
	if len(audit) != 3 {
		t.Fatalf("audit reported %d diagnostics, want 3 malformed: %v", len(audit), audit)
	}
	for _, d := range audit {
		if !strings.Contains(d.Message, "needs a check name and a reason") {
			t.Errorf("malformed directive reported as %q", d.Message)
		}
	}
}

func TestSuppressAuditIgnoresUnrelatedComments(t *testing.T) {
	// //lint:ignorefoo is not a directive — the marker needs a word
	// boundary — and must neither suppress nor be audited.
	audit := auditModule(t, map[string]string{
		"p/p.go": `package p

//lint:ignorefoo bar
//lint:ignored by nobody
// lint:ignore floatcmp a leading space disarms the marker entirely
func A() {
	_ = 0
}
`,
	})
	if len(audit) != 0 {
		t.Fatalf("audit reported %d diagnostics for non-directives, want 0: %v", len(audit), audit)
	}
}

func TestSuppressAuditUnknownCheckNames(t *testing.T) {
	audit := auditModule(t, map[string]string{
		"p/p.go": `package p

func A() {
	//lint:ignore nosuch the name is misspelled
	_ = 0
}

func B() {
	//lint:ignore FloatCmp check names are case-sensitive
	_ = 0
}
`,
	})
	if len(audit) != 2 {
		t.Fatalf("audit reported %d diagnostics, want 2 unknown names: %v", len(audit), audit)
	}
	for _, want := range []string{`unknown check "nosuch"`, `unknown check "FloatCmp"`} {
		found := false
		for _, d := range audit {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no audit finding mentions %s", want)
		}
	}
}

func TestSuppressAuditSkipsTestdataAndTests(t *testing.T) {
	// Directives inside testdata trees and _test.go files are never
	// loaded, so they neither suppress nor count toward the audit.
	audit := auditModule(t, map[string]string{
		"p/p.go": `package p

func A() { _ = 0 }
`,
		"p/p_test.go": `package p

func helper() {
	//lint:ignore nosuch directives in test files are not loaded
	_ = 0
}
`,
		"p/testdata/fix.go": `package fix

func B() {
	//lint:ignore
	_ = 0
}
`,
	})
	if len(audit) != 0 {
		t.Fatalf("audit reported %d diagnostics from testdata/_test.go, want 0: %v", len(audit), audit)
	}
}

func TestSuppressDirectiveWhitespace(t *testing.T) {
	// Extra interior whitespace is fine: fields are split, the reason
	// rejoined. The directive suppresses the finding on the next line.
	pkgs, err := LoadDir(writeModule(t, map[string]string{
		"internal/lp/lp.go": `package lp

func isZero(x float64) bool {
	//lint:ignore   floatcmp    spaced   out   but   well-formed
	return x == 0
}
`,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, Suite()); len(diags) != 0 {
		t.Fatalf("well-formed spaced directive did not suppress: %v", diags)
	}
}
