package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func diag(check, file string, line int, msg string) Diagnostic {
	return Diagnostic{Check: check, Position: token.Position{Filename: file, Line: line}, Message: msg}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		diag("floatcmp", "root/internal/lp/x.go", 10, "floating-point == comparison"),
		diag("floatcmp", "root/internal/lp/x.go", 90, "floating-point == comparison"),
		diag("unitcheck", "root/internal/core/y.go", 5, "mixed units: mJ + mJ/val"),
	}
	b := NewBaseline("root", diags)
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (duplicates fold into a count): %+v", len(b.Findings), b.Findings)
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != 2 {
		t.Fatalf("round-trip has %d entries, want 2", len(back.Findings))
	}
	for i := range b.Findings {
		if b.Findings[i] != back.Findings[i] {
			t.Errorf("entry %d: wrote %+v, read %+v", i, b.Findings[i], back.Findings[i])
		}
	}
	if got := b.Findings[1]; got.File != "internal/lp/x.go" || got.Count != 2 {
		t.Errorf("folded entry = %+v, want root-relative file and count 2", got)
	}
}

func TestBaselineFilter(t *testing.T) {
	old := []Diagnostic{
		diag("floatcmp", "root/internal/lp/x.go", 10, "floating-point == comparison"),
		diag("floatcmp", "root/internal/lp/x.go", 90, "floating-point == comparison"),
	}
	b := NewBaseline("root", old)

	// Same findings on different lines stay absorbed: keys omit lines so
	// unrelated edits above a baselined finding do not resurface it.
	shifted := []Diagnostic{
		diag("floatcmp", "root/internal/lp/x.go", 14, "floating-point == comparison"),
		diag("floatcmp", "root/internal/lp/x.go", 95, "floating-point == comparison"),
	}
	if fresh := b.Filter("root", shifted); len(fresh) != 0 {
		t.Errorf("line-shifted findings not absorbed: %v", fresh)
	}

	// A third identical finding exceeds the entry's count and is new.
	extra := append(shifted, diag("floatcmp", "root/internal/lp/x.go", 200, "floating-point == comparison"))
	if fresh := b.Filter("root", extra); len(fresh) != 1 || fresh[0].Position.Line != 200 {
		t.Errorf("count overflow = %v, want only the line-200 finding", fresh)
	}

	// A different check, file, or message is never absorbed.
	other := []Diagnostic{
		diag("unitcheck", "root/internal/lp/x.go", 10, "mixed units: mJ + mJ/val"),
		diag("floatcmp", "root/internal/lp/z.go", 10, "floating-point == comparison"),
	}
	if fresh := b.Filter("root", other); len(fresh) != 2 {
		t.Errorf("unrelated findings absorbed: got %d fresh, want 2", len(fresh))
	}

	// Filter must not consume the baseline: a second pass sees the full budget.
	if fresh := b.Filter("root", shifted); len(fresh) != 0 {
		t.Errorf("baseline mutated by Filter: second pass reported %v", fresh)
	}
}

func TestBaselineFileNormalization(t *testing.T) {
	// Absolute paths outside the root are kept verbatim (slash-normalized)
	// rather than mangled into ../ chains.
	d := []Diagnostic{diag("floatcmp", "/elsewhere/x.go", 1, "floating-point == comparison")}
	b := NewBaseline("/repo", d)
	if b.Findings[0].File != "/elsewhere/x.go" {
		t.Errorf("out-of-root file = %q, want kept verbatim", b.Findings[0].File)
	}
	if fresh := b.Filter("/repo", d); len(fresh) != 0 {
		t.Errorf("out-of-root finding not matched against its own baseline: %v", fresh)
	}
}

func TestReadBaselineRejectsBadEntries(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"not json", "{", "parsing baseline"},
		{"missing check", `{"findings":[{"file":"x.go","message":"m","count":1}]}`, "missing a check"},
		{"zero count", `{"findings":[{"check":"floatcmp","file":"x.go","message":"m","count":0}]}`, "count 0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBaseline(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ReadBaseline error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
