package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the package-path suffixes whose behavior must
// be replayable: the planners, the executor, the simulator, the LP
// solver, and the trace toolchain (same trace bytes in, same analysis
// out). Clocks and RNGs reach them by injection only.
var deterministicPkgs = []string{
	"/internal/sim",
	"/internal/exec",
	"/internal/core",
	"/internal/lp",
	"/internal/serve",
	"/internal/traceanalysis",
	"/internal/ledger",
	"/internal/regress",
	"/cmd/tracetool",
	"/cmd/regress",
}

// bannedCalls maps package path -> function name -> the reason it
// breaks determinism. Only package-level functions are banned;
// methods on an injected *rand.Rand or a caller-supplied clock are the
// sanctioned replacements.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read; inject a clock (e.g. an Options.Now func)",
		"Since": "wall-clock read; inject a clock (e.g. an Options.Now func)",
		"Until": "wall-clock read; inject a clock (e.g. an Options.Now func)",
		"Sleep": "wall-clock dependence; drive time from the simulator",
	},
	"math/rand":    globalRandFuncs,
	"math/rand/v2": globalRandFuncs,
}

var globalRandFuncs = map[string]string{
	"Int": randAdvice, "Intn": randAdvice, "Int31": randAdvice,
	"Int31n": randAdvice, "Int63": randAdvice, "Int63n": randAdvice,
	"Uint32": randAdvice, "Uint64": randAdvice, "Float32": randAdvice,
	"Float64": randAdvice, "NormFloat64": randAdvice, "ExpFloat64": randAdvice,
	"Perm": randAdvice, "Shuffle": randAdvice, "Seed": randAdvice,
	"Read": randAdvice, "N": randAdvice,
}

const randAdvice = "global RNG; thread a seeded *rand.Rand through instead"

func newDeterminismCheck() *Check {
	return &Check{
		Name: "determinism",
		Doc:  "no wall clocks, global RNGs, or map-iteration-order-dependent output in planner/executor/simulator/LP code",
		Applies: func(path string) bool {
			for _, suf := range deterministicPkgs {
				if strings.HasSuffix(path, suf) {
					return true
				}
			}
			return false
		},
		Run: runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	// Banned package-level functions, resolved through the type
	// checker so import aliasing cannot hide them.
	for ident, obj := range pass.Pkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		byName := bannedCalls[fn.Pkg().Path()]
		if why, banned := byName[fn.Name()]; banned {
			pass.Reportf(ident.Pos(), "%s.%s: %s", fn.Pkg().Name(), fn.Name(), why)
		}
	}
	// Map-range loops whose bodies can leak iteration order.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				w := walker{pass: pass}
				if w.orderSafeStmts(rs.Body.List) && w.sortedLater(fn, rs) {
					return true
				}
				pass.Reportf(rs.Pos(), "range over map can leak iteration order into output; collect the keys and sort them first")
				return true
			})
		}
	}
}

// walker analyzes one map-range body. collected accumulates slice
// variables that the body appends to (the collect half of the
// collect-then-sort idiom); they must be sorted after the loop.
type walker struct {
	pass      *Pass
	collected []*ast.Ident
}

// orderSafeStmts reports whether executing stmts once per map entry is
// insensitive to entry order. Allowed: writes keyed into maps,
// commutative integer accumulation, call-free guards, delete(), and
// appends into a slice that sortedLater verifies is sorted afterwards.
// Anything else — function calls, channel ops, float accumulation
// (non-associative), plain assignments — is order-sensitive.
func (w *walker) orderSafeStmts(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !w.orderSafeStmt(st) {
			return false
		}
	}
	return true
}

func (w *walker) orderSafeStmt(st ast.Stmt) bool {
	pass := w.pass
	switch s := st.(type) {
	case *ast.AssignStmt:
		return w.orderSafeAssign(s)
	case *ast.IncDecStmt:
		return isInteger(pass.TypeOf(s.X)) && callFree(pass, s.X)
	case *ast.IfStmt:
		if s.Init != nil && !w.orderSafeStmt(s.Init) {
			return false
		}
		if !callFree(pass, s.Cond) {
			return false
		}
		if !w.orderSafeStmts(s.Body.List) {
			return false
		}
		if s.Else != nil {
			return w.orderSafeStmt(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return w.orderSafeStmts(s.List)
	case *ast.ExprStmt:
		// delete(m, k) is the one order-insensitive call statement.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return callFreeAll(pass, call.Args)
				}
			}
		}
		return false
	case *ast.BranchStmt:
		return s.Tok.String() == "continue" || s.Tok.String() == "break"
	default:
		return false
	}
}

// orderSafeAssign allows key-addressed map writes (last-write-wins per
// key is order-free), integer accumulation with commutative operators,
// short declarations of loop-local temporaries, and the collect half
// of collect-then-sort (`keys = append(keys, k)`).
func (w *walker) orderSafeAssign(a *ast.AssignStmt) bool {
	pass := w.pass
	if len(a.Lhs) == 1 && len(a.Rhs) == 1 && a.Tok.String() == "=" {
		if target, ok := a.Lhs[0].(*ast.Ident); ok {
			if call, ok := a.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) &&
				len(call.Args) >= 1 && isIdentNamed(call.Args[0], target.Name) &&
				callFreeAll(pass, call.Args[1:]) {
				w.collected = append(w.collected, target)
				return true
			}
		}
	}
	if !callFreeAll(pass, a.Rhs) {
		return false
	}
	switch a.Tok.String() {
	case ":=":
		return true // loop-local temp; any escape happens in a later statement
	case "=":
		for _, lhs := range a.Lhs {
			if !isMapIndexOrBlank(pass, lhs) {
				return false
			}
		}
		return true
	case "+=", "-=", "*=", "|=", "&=", "^=":
		for _, lhs := range a.Lhs {
			if !isInteger(pass.TypeOf(lhs)) && !isMapIndexOrBlank(pass, lhs) {
				return false
			}
			if !callFree(pass, lhs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// sortedLater verifies that every slice the loop collected into is
// passed to a sort or slices call after the loop ends, completing the
// collect-then-sort idiom.
func (w *walker) sortedLater(fn *ast.FuncDecl, rs *ast.RangeStmt) bool {
	for _, target := range w.collected {
		sorted := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < rs.End() {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				mentioned := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if isIdentNamed(m, target.Name) {
						mentioned = true
						return false
					}
					return true
				})
				if mentioned {
					sorted = true
					return false
				}
			}
			return true
		})
		if !sorted {
			return false
		}
	}
	return true
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isIdentNamed(n ast.Node, name string) bool {
	id, ok := n.(*ast.Ident)
	return ok && id.Name == name
}

func isMapIndexOrBlank(pass *Pass, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap && callFree(pass, ix.X) && callFree(pass, ix.Index)
}

// callFree reports whether e contains no function or method calls
// other than type conversions and pure builtins (len, cap, min, max).
func callFree(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	safe := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, found := pass.Pkg.Info.Types[call.Fun]; found && tv.IsType() {
			return true // conversion
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max", "abs":
					return true
				}
			}
		}
		safe = false
		return false
	})
	return safe
}

func callFreeAll(pass *Pass, es []ast.Expr) bool {
	for _, e := range es {
		if !callFree(pass, e) {
			return false
		}
	}
	return true
}
