package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Directive grammar for the concurrency-safety checks (confine,
// lockcheck). All three are doc/line comments, mirroring //lint:ignore:
//
//	//confine:goroutine
//	    In the doc comment of a type declaration: values of the type
//	    are confined to the goroutine that constructs them. The confine
//	    check flags every site where such a value becomes reachable
//	    from a second goroutine.
//
//	//confine:transfer <reason>
//	    On (or directly above) an escape site: this hand-off is a
//	    sanctioned ownership transfer — a pool Put, a publish under a
//	    documented external happens-before edge. The site is not
//	    reported and does not mark the enclosing function as a leaker.
//	    A transfer without a reason is itself a confine finding.
//
//	//guarded-by:<name>
//	    In the doc or line comment of a struct field: the field may
//	    only be accessed while the sibling lock field <name> is held
//	    (reads need the lock in any mode, writes need it exclusively).
//	    On a package-level var, <name> names a package-level
//	    sync.Mutex/RWMutex in the same package.

const (
	confineGoroutineDirective = "//confine:goroutine"
	confineTransferDirective  = "//confine:transfer"
	guardedByDirective        = "//guarded-by:"
)

// cutDirective splits a comment into the directive's argument text:
// ok reports whether text is the directive (alone or followed by
// whitespace), rest is the trimmed argument.
func cutDirective(text, directive string) (rest string, ok bool) {
	rest, ok = strings.CutPrefix(text, directive)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // an unrelated comment such as //confine:transferred
	}
	return strings.TrimSpace(rest), true
}

// transferSite is one parsed //confine:transfer directive.
type transferSite struct {
	file   string
	line   int
	reason string
}

// collectTransfers maps file -> line -> directive for every
// //confine:transfer in the package. Reason-less directives are
// returned separately so the confine check can flag them.
func collectTransfers(pkg *Package) (map[string]map[int]transferSite, []transferSite) {
	transfers := make(map[string]map[int]transferSite)
	var bare []transferSite
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutDirective(c.Text, confineTransferDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ts := transferSite{file: pos.Filename, line: pos.Line, reason: rest}
				if ts.reason == "" {
					bare = append(bare, ts)
					continue
				}
				byLine := transfers[ts.file]
				if byLine == nil {
					byLine = make(map[int]transferSite)
					transfers[ts.file] = byLine
				}
				byLine[ts.line] = ts
			}
		}
	}
	return transfers, bare
}

// commentHasDirective reports whether any line of the comment groups
// is exactly the directive (optionally followed by whitespace).
func commentHasDirective(directive string, groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") ||
				strings.HasPrefix(c.Text, directive+"\t") {
				return true
			}
		}
	}
	return false
}

// directiveArg extracts the <name> of a //guarded-by:<name> line from
// the comment groups, or "" when absent. Prose after the name is
// ignored, so a directive can double as an ordinary field comment.
func directiveArg(prefix string, groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, prefix); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// confinedTypes scans the package's type declarations for
// //confine:goroutine directives, returning the marked type names.
func confinedTypes(pkg *Package) []*types.TypeName {
	var out []*types.TypeName
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !commentHasDirective(confineGoroutineDirective, gd.Doc, ts.Doc, ts.Comment) {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					out = append(out, tn)
				}
			}
		}
	}
	return out
}

// guardedField is one //guarded-by: annotation: obj is the guarded
// field or package-level var, lockName the guarding lock. For struct
// fields the lock is the sibling field of that name; for package vars
// it is the package-level var of that name.
type guardedField struct {
	obj      types.Object
	lockName string
	isField  bool
}

// collectGuarded scans the package for //guarded-by: annotations on
// struct fields and package-level vars.
func collectGuarded(pkg *Package) []guardedField {
	var out []guardedField
	addField := func(field *ast.Field) {
		name := directiveArg(guardedByDirective, field.Doc, field.Comment)
		if name == "" {
			return
		}
		for _, id := range field.Names {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out = append(out, guardedField{obj: obj, lockName: name, isField: true})
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						addField(field)
					}
				case *ast.ValueSpec:
					// gd.Doc only speaks for a lone spec; in a var
					// block each spec carries its own annotation.
					groups := []*ast.CommentGroup{spec.Doc, spec.Comment}
					if len(gd.Specs) == 1 {
						groups = append(groups, gd.Doc)
					}
					name := directiveArg(guardedByDirective, groups...)
					if name == "" {
						continue
					}
					for _, id := range spec.Names {
						if obj := pkg.Info.Defs[id]; obj != nil {
							out = append(out, guardedField{obj: obj, lockName: name})
						}
					}
				}
			}
		}
	}
	return out
}
