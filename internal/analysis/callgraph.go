package analysis

import (
	"go/ast"
	"go/types"
)

// A static call graph over the loaded module. Only direct calls are
// resolved — plain function calls, package-qualified calls, and method
// calls on concrete receivers. Calls through interface values or
// stored function values are not edges; the checks built on top
// (planfreeze's mutator propagation) are deliberately may-analysis
// over what the resolver sees, which matches this codebase: planners
// and executors call each other directly.

// CallSite is one resolved call: Caller (the enclosing declared
// function; calls inside function literals are attributed to the
// declaration they appear in) invoking Callee at Call.
type CallSite struct {
	Caller *types.Func
	Callee *types.Func
	Call   *ast.CallExpr
	Pkg    *Package // package containing the call expression
}

// CallGraph holds the call sites and per-function indices.
type CallGraph struct {
	Sites    []CallSite // deterministic: package order, file order, position order
	decls    map[*types.Func]*ast.FuncDecl
	declPkg  map[*types.Func]*Package
	bySitee  map[*types.Func][]int // callee -> indices into Sites
	byCaller map[*types.Func][]int
}

// Decl returns the AST declaration of fn, or nil when fn is not
// declared in the loaded module (stdlib, interface methods).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// DeclPkg returns the package declaring fn, or nil when external.
func (g *CallGraph) DeclPkg(fn *types.Func) *Package { return g.declPkg[fn] }

// CallsTo returns every resolved call site whose callee is fn.
func (g *CallGraph) CallsTo(fn *types.Func) []CallSite {
	idx := g.bySitee[fn]
	sites := make([]CallSite, len(idx))
	for i, j := range idx {
		sites[i] = g.Sites[j]
	}
	return sites
}

// buildCallGraph resolves every direct call in the module. pkgs must
// be in deterministic order (LoadDir sorts by import path).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		decls:    make(map[*types.Func]*ast.FuncDecl),
		declPkg:  make(map[*types.Func]*Package),
		bySitee:  make(map[*types.Func][]int),
		byCaller: make(map[*types.Func][]int),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[caller] = fd
				g.declPkg[caller] = pkg
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := staticCallee(pkg.Info, call)
					if callee == nil {
						return true
					}
					i := len(g.Sites)
					g.Sites = append(g.Sites, CallSite{Caller: caller, Callee: callee, Call: call, Pkg: pkg})
					g.bySitee[callee] = append(g.bySitee[callee], i)
					g.byCaller[caller] = append(g.byCaller[caller], i)
					return true
				})
			}
		}
	}
	return g
}

// staticCallee resolves the called function of a call expression, or
// nil for dynamic calls (function values, conversions, builtins).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// receiverExpr returns the receiver expression of a method call, or
// nil for ordinary function calls.
func receiverExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && (s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr) {
		return sel.X
	}
	return nil
}
