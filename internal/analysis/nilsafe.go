package analysis

import (
	"go/ast"
	"strings"
)

// newObsNilsafeCheck enforces the internal/obs contract: a nil handle
// (registry, counter, tracer, ...) is a valid "disabled" value, so
// every exported method with a pointer receiver must either begin with
// a nil-receiver guard or delegate entirely to another method on the
// same receiver (which is then checked itself). Dereferencing the
// receiver before the guard defeats the contract at every call site.
func newObsNilsafeCheck() *Check {
	return &Check{
		Name: "obsnilsafe",
		Doc:  "exported pointer-receiver methods in internal/obs must begin with a nil-receiver guard",
		Applies: func(path string) bool {
			return strings.HasSuffix(path, "/internal/obs")
		},
		Run: runObsNilsafe,
	}
}

func runObsNilsafe(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recv := fn.Recv.List[0]
			if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
				continue // value receivers cannot be nil
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // unnamed receiver: the body cannot dereference it
			}
			name := recv.Names[0].Name
			if len(fn.Body.List) == 0 {
				continue
			}
			if hasNilGuard(fn.Body.List[0], name) || isPureDelegation(fn.Body.List, name) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"exported method %s must begin with `if %s == nil` (nil %s is a valid disabled handle)",
				fn.Name.Name, name, name)
		}
	}
}

// hasNilGuard matches `if recv == nil { ... }` as the statement, with
// the receiver on either side of ==. The guarded branch must defuse
// the nil: end in a return, or reassign the receiver to something
// non-nil.
func hasNilGuard(st ast.Stmt, recv string) bool {
	ifst, ok := st.(*ast.IfStmt)
	if !ok || ifst.Init != nil {
		return false
	}
	cmp, ok := ifst.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op.String() != "==" {
		return false
	}
	if !(isIdent(cmp.X, recv) && isIdent(cmp.Y, "nil") ||
		isIdent(cmp.X, "nil") && isIdent(cmp.Y, recv)) {
		return false
	}
	n := len(ifst.Body.List)
	if n == 0 {
		return false
	}
	switch last := ifst.Body.List[n-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		return len(last.Lhs) == 1 && isIdent(last.Lhs[0], recv) &&
			len(last.Rhs) == 1 && !isIdent(last.Rhs[0], "nil")
	default:
		return false
	}
}

// isPureDelegation matches a body that is exactly one call rooted at
// the receiver, e.g. `c.Add(1)` or `return r.Snapshot().WriteText(w)`.
// Calling a method on a nil pointer is legal; the callee carries the
// guard and is verified on its own.
func isPureDelegation(body []ast.Stmt, recv string) bool {
	if len(body) != 1 {
		return false
	}
	var call ast.Expr
	switch s := body[0].(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	c, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	return rootedAt(c.Fun, recv)
}

// rootedAt reports whether a selector/call chain bottoms out at the
// identifier name (r.Snapshot().WriteText -> r).
func rootedAt(e ast.Expr, name string) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.Ident:
			return x.Name == name
		default:
			return false
		}
	}
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
