package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// LoadDir parses and type-checks every non-test package under root,
// which must contain a go.mod naming the module. Directories named
// testdata or vendor, hidden directories, and _test.go files are
// skipped. Module-internal imports resolve to the freshly parsed
// source; everything else (the standard library) resolves through the
// stdlib source importer, so no compiled export data is required.
func LoadDir(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := ld.load(ld.importPath(dir), dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, in walk order.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loader memoizes per-import-path loading and doubles as the
// types.Importer for module-internal paths.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	sizes   types.Sizes
	pkgs    map[string]*Package
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		sizes:   types.SizesFor("gc", runtime.GOARCH),
		pkgs:    make(map[string]*Package),
	}
}

// importPath maps a directory under the module root to its import path.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer: module-internal paths load from
// source under root, everything else defers to the stdlib importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		p, err := ld.load(path, filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks the package in dir (memoized by import
// path). It returns (nil, nil) for a directory with no non-test files.
func (ld *loader) load(path, dir string) (*Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld, Sizes: ld.sizes}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	collectSuppressions(p)
	ld.pkgs[path] = p
	return p, nil
}
