package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// LoadDir parses and type-checks every non-test package under root,
// which must contain a go.mod naming the module. Directories named
// testdata or vendor, hidden directories, and _test.go files are
// skipped. Module-internal imports resolve to the freshly parsed
// source; everything else (the standard library) resolves through the
// stdlib source importer, so no compiled export data is required.
// Loading runs on a worker pool sized to the machine; see
// LoadDirWorkers.
func LoadDir(root string) ([]*Package, error) {
	return LoadDirWorkers(root, 0)
}

// LoadDirWorkers is LoadDir with an explicit worker count (0 means
// NumCPU). Parsing is embarrassingly parallel; type-checking proceeds
// in dependency waves — every package in a wave imports only packages
// from earlier waves, so the packages of one wave check concurrently.
// The one shared state, the stdlib source importer (which is not safe
// for concurrent use), is serialized behind the loader's mutex; it
// memoizes, so only the first import of each stdlib package pays.
func LoadDirWorkers(root string, workers int) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}

	// Stage 1: parse every directory concurrently. The shared FileSet
	// serializes file registration internally; positions do not depend
	// on registration order.
	parsed := make([]*parsedPkg, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				parsed[i], errs[i] = ld.parseDir(ld.importPath(dirs[i]), dirs[i])
			}
		}()
	}
	for i := range dirs {
		ch <- i
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 2: type-check in dependency waves.
	var pending []*parsedPkg
	byPath := make(map[string]*parsedPkg)
	for _, p := range parsed {
		if p != nil {
			pending = append(pending, p)
			byPath[p.path] = p
		}
	}
	var pkgs []*Package
	for len(pending) > 0 {
		var wave, rest []*parsedPkg
		for _, p := range pending {
			ready := true
			for _, dep := range p.moduleImports(modPath) {
				if _, done := ld.lookup(dep); !done {
					if _, exists := byPath[dep]; exists {
						ready = false
						break
					}
					// Import of a module path with no loadable package:
					// let the type-checker produce the error.
				}
			}
			if ready {
				wave = append(wave, p)
			} else {
				rest = append(rest, p)
			}
		}
		if len(wave) == 0 {
			// An import cycle; the type-checker reports it precisely.
			wave, rest = rest, nil
		}
		checked, err := ld.checkWave(wave, workers)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, checked...)
		pending = rest
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// checkWave type-checks one dependency wave on the worker pool.
func (ld *loader) checkWave(wave []*parsedPkg, workers int) ([]*Package, error) {
	if workers > len(wave) {
		workers = len(wave)
	}
	out := make([]*Package, len(wave))
	errs := make([]error, len(wave))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i], errs[i] = ld.check(wave[i])
			}
		}()
	}
	for i := range wave {
		ch <- i
	}
	close(ch)
	wg.Wait()
	var pkgs []*Package
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		if out[i] != nil {
			pkgs = append(pkgs, out[i])
		}
	}
	return pkgs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, in walk order.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// buildConstraintsSatisfied evaluates the //go:build line of a parsed
// file (if any) against the default build configuration: GOOS, GOARCH,
// and go1.x release tags are true, custom tags (prospector_debug and
// friends) are false. Files excluded by their constraints — debug-only
// assertion shims, platform twins — would otherwise double-declare
// symbols and fail the type-check.
func buildConstraintsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed: let the compiler complain, not lint
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// parsedPkg is one parsed-but-not-yet-type-checked package.
type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
}

// moduleImports lists the module-internal import paths of the package.
func (p *parsedPkg) moduleImports(modPath string) []string {
	var deps []string
	for _, f := range p.files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				deps = append(deps, path)
			}
		}
	}
	return deps
}

// loader memoizes per-import-path loading and doubles as the
// types.Importer for module-internal paths. The mutex guards the
// memo map and the stdlib source importer, which is not safe for
// concurrent use; type-checking itself runs outside the lock.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	sizes   types.Sizes

	mu   sync.Mutex
	std  types.Importer
	pkgs map[string]*Package
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		sizes:   types.SizesFor("gc", runtime.GOARCH),
		pkgs:    make(map[string]*Package),
	}
}

// importPath maps a directory under the module root to its import path.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}

// lookup returns the memoized package for an import path.
func (ld *loader) lookup(path string) (*Package, bool) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	p, ok := ld.pkgs[path]
	return p, ok
}

// Import implements types.Importer: module-internal paths must already
// be type-checked (wave order guarantees it), everything else defers
// to the stdlib source importer under the lock.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		if p, ok := ld.lookup(path); ok {
			return p.Types, nil
		}
		return nil, fmt.Errorf("analysis: no Go files in %s", path)
	}
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.std.Import(path)
}

// parseDir parses the non-test files of one directory. It returns
// (nil, nil) for a directory with no non-test files.
func (ld *loader) parseDir(path, dir string) (*parsedPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildConstraintsSatisfied(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &parsedPkg{path: path, dir: dir, files: files}, nil
}

// check type-checks one parsed package and memoizes the result.
func (ld *loader) check(pp *parsedPkg) (*Package, error) {
	if p, ok := ld.lookup(pp.path); ok {
		return p, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: ld, Sizes: ld.sizes}
	tpkg, err := conf.Check(pp.path, ld.fset, pp.files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pp.path, err)
	}
	p := &Package{
		Path:  pp.path,
		Dir:   pp.dir,
		Fset:  ld.fset,
		Files: pp.files,
		Types: tpkg,
		Info:  info,
	}
	collectSuppressions(p)
	ld.mu.Lock()
	ld.pkgs[pp.path] = p
	ld.mu.Unlock()
	return p, nil
}
