package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture module under testdata/src mirrors the repository layout
// (fixture/internal/sim, .../obs, .../lp, .../stats, .../util) so the
// path-scoped checks fire exactly as they do over the real tree. It is
// loaded once per test binary: type-checking pulls the standard
// library through the source importer, which dominates the cost.
var (
	fixtureOnce sync.Once
	fixturePkgs []*Package
	fixtureErr  error

	fixtureProgOnce sync.Once
	fixtureProg     *Program
)

// fixtureProgram shares one Program across raw runs so the
// interprocedural checks reuse their lazily built worlds, exactly as
// Run does.
func fixtureProgram() *Program {
	fixtureProgOnce.Do(func() { fixtureProg = NewProgram(fixturePkgs) })
	return fixtureProg
}

func fixtures(t *testing.T) []*Package {
	t.Helper()
	fixtureOnce.Do(func() {
		fixturePkgs, fixtureErr = LoadDir(filepath.Join("testdata", "src"))
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixture module: %v", fixtureErr)
	}
	if len(fixturePkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return fixturePkgs
}

// A want comment marks the line where a check must report:
//
//	expr // want <check> "<message substring>"
var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

type wantKey struct {
	file  string
	line  int
	check string
}

func collectWants(t *testing.T) map[wantKey]string {
	t.Helper()
	wants := make(map[wantKey]string)
	root := filepath.Join("testdata", "src")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants[wantKey{file: path, line: i + 1, check: m[1]}] = m[2]
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning want comments: %v", err)
	}
	return wants
}

// TestFixturesGolden runs every project check over the fixture module
// and demands an exact match against the want comments: every
// diagnostic must land on a want, and every want must fire. The
// suppress audit is exercised separately (TestSuppressAudit) because a
// want comment appended to a directive line would parse as its reason.
func TestFixturesGolden(t *testing.T) {
	pkgs := fixtures(t)
	wants := collectWants(t)
	for _, name := range []string{"determinism", "obsnilsafe", "floatcmp", "errchecklite",
		"unitcheck", "planfreeze", "budgetflow", "confine", "lockcheck", "goleak", "alloccheck"} {
		present := false
		for k := range wants {
			if k.check == name {
				present = true
				break
			}
		}
		if !present {
			t.Errorf("fixtures demonstrate no violation for check %s", name)
		}
	}

	var checks []*Check
	for _, c := range Suite() {
		if c.Name != "suppress" {
			checks = append(checks, c)
		}
	}
	matched := make(map[wantKey]bool)
	for _, d := range Run(pkgs, checks) {
		k := wantKey{file: d.Position.Filename, line: d.Position.Line, check: d.Check}
		substr, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !strings.Contains(d.Message, substr) {
			t.Errorf("%s: message %q does not contain %q", d.Position, d.Message, substr)
			continue
		}
		matched[k] = true
	}
	for k, substr := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: want [%s] %q never reported", k.file, k.line, k.check, substr)
		}
	}
}

// rawRun executes one check over one package with the suppression
// filter disabled.
func rawRun(pkg *Package, check *Check) []Diagnostic {
	if check.Applies != nil && !check.Applies(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	pass := &Pass{Check: check, Pkg: pkg, Prog: fixtureProgram(), report: func(d Diagnostic) { diags = append(diags, d) }}
	check.Run(pass)
	return diags
}

// TestSuppressionsHonored proves every fixture directive does real
// work: the named check, run without the suppression filter, reports
// inside the directive's coverage window (its line or the line below),
// and the filtered Run does not.
func TestSuppressionsHonored(t *testing.T) {
	pkgs := fixtures(t)
	byName := make(map[string]*Check)
	for _, c := range Suite() {
		byName[c.Name] = c
	}
	filtered := Run(pkgs, Suite())
	covers := func(diags []Diagnostic, file string, line int, check string) bool {
		for _, d := range diags {
			if d.Position.Filename == file && d.Check == check &&
				(d.Position.Line == line || d.Position.Line == line+1) {
				return true
			}
		}
		return false
	}
	total := 0
	for _, pkg := range pkgs {
		for _, byLine := range pkg.suppressions {
			for line, sups := range byLine {
				for _, s := range sups {
					check := byName[s.check]
					if check == nil {
						continue // unknown names are the audit's business
					}
					total++
					if !covers(rawRun(pkg, check), s.file, line, s.check) {
						t.Errorf("%s:%d: suppression of %q covers no finding", s.file, line, s.check)
					}
					if covers(filtered, s.file, line, s.check) {
						t.Errorf("%s:%d: suppression of %q was not honored", s.file, line, s.check)
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("fixtures contain no suppressions")
	}
}

// TestSuppressAudit pins the suppress check's findings over the
// fixtures by message: one malformed directive (missing reason), one
// unknown check name, and the suppressed unknown name stays silent.
func TestSuppressAudit(t *testing.T) {
	pkgs := fixtures(t)
	var audit []Diagnostic
	for _, d := range Run(pkgs, Suite()) {
		if d.Check == "suppress" {
			audit = append(audit, d)
		}
	}
	if len(audit) != 2 {
		t.Fatalf("suppress audit reported %d diagnostics, want 2: %v", len(audit), audit)
	}
	if !strings.Contains(audit[0].Message, "needs a check name and a reason") {
		t.Errorf("first audit finding = %q, want the missing-reason message", audit[0].Message)
	}
	if !strings.Contains(audit[1].Message, `unknown check "nosuchcheck"`) {
		t.Errorf("second audit finding = %q, want the unknown-check message", audit[1].Message)
	}
	for _, d := range audit {
		if strings.Contains(d.Message, "alsounknown") {
			t.Errorf("suppressed directive still audited: %s", d)
		}
	}
}

func TestSelectChecks(t *testing.T) {
	suite := Suite()
	all, err := SelectChecks(suite, nil)
	if err != nil || len(all) != len(suite) {
		t.Fatalf("empty selection = (%d checks, %v), want the full suite", len(all), err)
	}
	one, err := SelectChecks(suite, []string{"floatcmp"})
	if err != nil || len(one) != 1 || one[0].Name != "floatcmp" {
		t.Fatalf("selecting floatcmp = (%v, %v)", one, err)
	}
	if _, err := SelectChecks(suite, []string{"nosuch"}); err == nil {
		t.Fatal("selecting an unknown check did not fail")
	}
}

func TestWriters(t *testing.T) {
	diags := []Diagnostic{{
		Check:    "floatcmp",
		Position: token.Position{Filename: "x.go", Line: 3, Column: 9},
		Message:  "floating-point == comparison",
	}}
	var text bytes.Buffer
	if err := WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	if got, want := text.String(), "x.go:3:9: [floatcmp] floating-point == comparison\n"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}
	var js bytes.Buffer
	if err := WriteJSON(&js, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(js.String()) != "[]" {
		t.Errorf("WriteJSON(nil) = %q, want an empty array", js.String())
	}
	js.Reset()
	if err := WriteJSON(&js, diags); err != nil {
		t.Fatal(err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output does not round-trip: %v", err)
	}
	if len(back) != 1 || back[0] != diags[0] {
		t.Errorf("round-trip = %+v, want %+v", back, diags)
	}
}

func TestLoadDirRequiresModule(t *testing.T) {
	if _, err := LoadDir("testdata"); err == nil {
		t.Fatal("LoadDir on a directory without go.mod did not fail")
	}
}
