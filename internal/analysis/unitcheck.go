package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unitcheck: flow-sensitive unit propagation over each function. The
// declared units (table + directives, units.go) seed the analysis;
// reaching definitions carry units through local variables; call
// return summaries carry them across functions. Mixing is flagged
// where it happens — additions, subtractions, comparisons, compound
// assignments, call arguments, returns, and composite-literal fields
// whose two sides have different *known* units. Unknown never flags:
// an untagged quantity is unconstrained, and untyped constants are
// chameleons that adopt the unit of the other operand (so `total :=
// 0.0` then `total += costMJ` is mJ, while `cost * 0.5` keeps its
// unit because constants are dimensionless under * and /).

type reportFn func(pos token.Pos, format string, args ...interface{})

// evalRes is the unit of one evaluated expression. chameleon marks a
// constant expression with no tagged unit: unknown under + and -,
// dimensionless under * and /.
type evalRes struct {
	u         *Unit
	chameleon bool
}

// unitAnalysis propagates units through one function body (or
// function literal, with outer pointing at the enclosing analysis for
// captured variables).
type unitAnalysis struct {
	w     *unitWorld
	pkg   *Package
	fn    *types.Func // nil for function literals
	flow  *funcFlow
	outer *unitAnalysis

	defUnit []*Unit
	cur     bitset
	memo    map[ast.Expr]evalRes
	changed bool

	returns          []*Unit
	sawUnknownReturn bool
	lits             []*ast.FuncLit
}

// analyze runs unit propagation over fd, reporting through rep when
// non-nil. The flow solution is cached on the world; the unit solution
// is cheap enough to recompute.
func (w *unitWorld) analyze(pkg *Package, fd *ast.FuncDecl, fn *types.Func, rep reportFn) *unitAnalysis {
	ua := &unitAnalysis{w: w, pkg: pkg, fn: fn, flow: w.flowOf(pkg, fd)}
	ua.run(rep)
	return ua
}

func (ua *unitAnalysis) run(rep reportFn) {
	ua.defUnit = make([]*Unit, len(ua.flow.defs))
	// Iterate to a local fixed point so units flow around loops, then
	// make one reporting pass with the solved state.
	for round := 0; round < 5; round++ {
		ua.simulate(nil)
		if !ua.changed {
			break
		}
	}
	if rep != nil {
		ua.simulate(rep)
	}
	// Function literals get their own CFGs, with this analysis as the
	// lookup scope for captured variables.
	for _, lit := range ua.lits {
		flow := analyzeFlow(ua.pkg.Info, lit.Type, nil, lit.Body)
		sub := &unitAnalysis{w: ua.w, pkg: ua.pkg, flow: flow, outer: ua}
		sub.run(rep)
	}
}

// simulate walks every block forward from its reaching-definitions
// entry state, evaluating each node once. With rep == nil it only
// updates defUnit (setting ua.changed when the solution moved); with
// rep != nil it reports mismatches.
func (ua *unitAnalysis) simulate(rep reportFn) {
	ua.changed = false
	ua.returns = ua.returns[:0]
	ua.sawUnknownReturn = false
	ua.lits = ua.lits[:0]
	words := (len(ua.flow.defs) + 63) / 64
	ua.cur = newBitset(words)
	for _, blk := range ua.flow.cfg.Blocks {
		ua.cur.copyFrom(ua.flow.in[blk.Index])
		if blk == ua.flow.cfg.Entry() {
			for _, d := range ua.flow.entry {
				ua.applyDef(d)
			}
		}
		for _, n := range blk.Nodes {
			ua.processNode(n, rep)
		}
	}
}

// setDef records a definition's unit and advances the reaching state.
func (ua *unitAnalysis) setDef(d *definition, u *Unit) {
	if !u.equal(ua.defUnit[d.index]) {
		ua.defUnit[d.index] = u
		ua.changed = true
	}
	for _, j := range ua.flow.defsOf[d.obj] {
		ua.cur.clear(j)
	}
	ua.cur.set(d.index)
}

// applyDef computes the unit a definition produces from the state
// before it. A declared unit (directive or table) is sticky: the
// variable keeps it even through a flagged bad assignment, so one bug
// does not cascade.
func (ua *unitAnalysis) applyDef(d *definition) {
	declared := ua.w.decl[d.obj]
	var u *Unit
	switch d.kind {
	case defEntry, defOpaque:
		u = declared
	case defAssign:
		r := ua.eval(d.rhs, nil)
		switch {
		case declared != nil:
			u = declared
		case r.chameleon:
			u = nil
		default:
			u = r.u
		}
	case defOpAssign:
		base := declared
		if base == nil {
			base = ua.lookupVar(d.obj)
		}
		r := ua.eval(d.rhs, nil)
		switch d.op {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if base != nil {
				u = base
			} else if !r.chameleon {
				u = r.u
			}
		case token.MUL_ASSIGN:
			u = mulUnits(base, factorUnit(r))
		case token.QUO_ASSIGN:
			u = divUnits(base, factorUnit(r))
		case token.REM_ASSIGN:
			u = base
		}
		if declared != nil {
			u = declared
		}
	case defIncDec:
		u = declared
		if u == nil {
			u = ua.lookupVar(d.obj)
		}
	}
	ua.setDef(d, u)
}

// lookupVar joins the units of the definitions of obj reaching the
// current point; for variables of an enclosing function it joins over
// every definition (captures are flow-insensitive).
func (ua *unitAnalysis) lookupVar(obj types.Object) *Unit {
	if idx, ok := ua.flow.defsOf[obj]; ok {
		var u *Unit
		first := true
		for _, j := range idx {
			if !ua.cur.has(j) {
				continue
			}
			if first {
				u = ua.defUnit[j]
				first = false
			} else {
				u = joinUnits(u, ua.defUnit[j])
			}
		}
		return u
	}
	if ua.outer != nil {
		return ua.outer.lookupAll(obj)
	}
	return nil
}

// lookupAll joins over every definition of obj, ignoring flow.
func (ua *unitAnalysis) lookupAll(obj types.Object) *Unit {
	if u := ua.w.decl[obj]; u != nil {
		return u
	}
	if idx, ok := ua.flow.defsOf[obj]; ok {
		var u *Unit
		for i, j := range idx {
			if i == 0 {
				u = ua.defUnit[j]
			} else {
				u = joinUnits(u, ua.defUnit[j])
			}
		}
		return u
	}
	if ua.outer != nil {
		return ua.outer.lookupAll(obj)
	}
	return nil
}

// processNode evaluates one block node: checks its expressions and
// applies its definitions.
func (ua *unitAnalysis) processNode(n ast.Node, rep reportFn) {
	ua.memo = make(map[ast.Expr]evalRes)
	switch n := n.(type) {
	case *ast.AssignStmt:
		ua.assign(n, rep)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			ua.eval(r, rep)
		}
		if len(n.Results) == 1 {
			r := ua.eval(n.Results[0], rep)
			if ua.fn != nil && ua.w.declaredRet[ua.fn] {
				want := ua.w.ret[ua.fn]
				if rep != nil && want != nil && r.u != nil && !want.equal(r.u) {
					rep(n.Results[0].Pos(), "mixed units: return of %s from a function returning %s", r.u, want)
				}
			}
			ua.returns = append(ua.returns, r.u)
			if r.u == nil && !r.chameleon {
				ua.sawUnknownReturn = true
			}
		}
	case *ast.IncDecStmt:
		if _, ok := unparen(n.X).(*ast.Ident); !ok {
			ua.eval(n.X, rep)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					ua.valueSpec(vs, rep)
				}
			}
		}
	case *ast.SendStmt:
		ua.eval(n.Chan, rep)
		ua.eval(n.Value, rep)
	case *ast.ExprStmt:
		ua.eval(n.X, rep)
	case *ast.GoStmt:
		ua.eval(n.Call, rep)
	case *ast.DeferStmt:
		ua.eval(n.Call, rep)
	case *ast.RangeStmt:
		// X was evaluated in the predecessor block; Key/Value define
		// opaque units below.
	case ast.Expr:
		ua.eval(n, rep)
	}
	for _, d := range ua.flow.defsAt[n] {
		ua.applyDef(d)
	}
}

// assign checks an assignment statement: every right-hand side is
// evaluated, 1:1 assignments compare against the target's declared
// unit, and compound assignments check their operator's mixing rule.
func (ua *unitAnalysis) assign(n *ast.AssignStmt, rep reportFn) {
	if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
		for _, rhs := range n.Rhs {
			ua.eval(rhs, rep)
		}
		for _, lhs := range n.Lhs {
			if _, ok := unparen(lhs).(*ast.Ident); !ok {
				ua.eval(lhs, rep)
			}
		}
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			want := ua.declaredUnitOfExpr(n.Lhs[i])
			r := ua.eval(n.Rhs[i], rep)
			if rep != nil && want != nil && r.u != nil && !want.equal(r.u) {
				rep(n.Lhs[i].Pos(), "mixed units: assigning %s to %s", r.u, want)
			}
		}
		return
	}
	// Compound assignment: x op= rhs.
	lhs, rhs := n.Lhs[0], n.Rhs[0]
	l := ua.eval(lhs, rep)
	r := ua.eval(rhs, rep)
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if rep != nil && l.u != nil && r.u != nil && !l.u.equal(r.u) {
			rep(n.Pos(), "mixed units: %s %s %s", l.u, n.Tok, r.u)
		}
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		want := ua.declaredUnitOfExpr(lhs)
		if want == nil {
			return
		}
		f := factorUnit(r)
		got := mulUnits(l.u, f)
		if n.Tok == token.QUO_ASSIGN {
			got = divUnits(l.u, f)
		}
		if rep != nil && got != nil && !got.equal(want) {
			rep(n.Pos(), "mixed units: %s %s %s changes the declared unit", l.u, n.Tok, f)
		}
	}
}

// valueSpec checks `var x T = expr` declarations against declared
// units.
func (ua *unitAnalysis) valueSpec(vs *ast.ValueSpec, rep reportFn) {
	for _, v := range vs.Values {
		ua.eval(v, rep)
	}
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		obj := ua.pkg.Info.Defs[name]
		if obj == nil {
			continue
		}
		want := ua.w.decl[obj]
		r := ua.eval(vs.Values[i], rep)
		if rep != nil && want != nil && r.u != nil && !want.equal(r.u) {
			rep(vs.Values[i].Pos(), "mixed units: assigning %s to %s", r.u, want)
		}
	}
}

// factorUnit is an operand's unit under * and /: constants without a
// tagged unit are dimensionless there.
func factorUnit(r evalRes) *Unit {
	if r.u == nil && r.chameleon {
		return &Unit{dims: map[string]int{}}
	}
	return r.u
}

// declaredUnitOfExpr resolves the declared (table/directive) unit of
// an assignable expression: an identifier, a struct field selection,
// or an index/deref chain over one.
func (ua *unitAnalysis) declaredUnitOfExpr(e ast.Expr) *Unit {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := ua.pkg.Info.Defs[e]
		if obj == nil {
			obj = ua.pkg.Info.Uses[e]
		}
		if obj == nil {
			return nil
		}
		return ua.w.decl[obj]
	case *ast.SelectorExpr:
		if sel, ok := ua.pkg.Info.Selections[e]; ok {
			return ua.w.decl[sel.Obj()]
		}
		if obj := ua.pkg.Info.Uses[e.Sel]; obj != nil {
			return ua.w.decl[obj]
		}
	case *ast.IndexExpr:
		return ua.declaredUnitOfExpr(e.X)
	case *ast.StarExpr:
		return ua.declaredUnitOfExpr(e.X)
	}
	return nil
}

// eval computes the unit of an expression, reporting mixed-unit
// operations as it descends. Results are memoized per node so the
// definition pass can reuse them without re-reporting.
func (ua *unitAnalysis) eval(e ast.Expr, rep reportFn) evalRes {
	if r, ok := ua.memo[e]; ok {
		return r
	}
	r := ua.evalUncached(e, rep)
	ua.memo[e] = r
	return r
}

func (ua *unitAnalysis) evalUncached(e ast.Expr, rep reportFn) evalRes {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ua.eval(e.X, rep)
	case *ast.BasicLit:
		return evalRes{chameleon: true}
	case *ast.Ident:
		obj := ua.pkg.Info.Uses[e]
		if obj == nil {
			obj = ua.pkg.Info.Defs[e]
		}
		if obj == nil {
			return evalRes{}
		}
		if u := ua.w.decl[obj]; u != nil {
			return evalRes{u: u}
		}
		if _, ok := obj.(*types.Const); ok {
			return evalRes{chameleon: true}
		}
		if _, ok := obj.(*types.Var); ok {
			return evalRes{u: ua.lookupVar(obj)}
		}
		return evalRes{}
	case *ast.SelectorExpr:
		ua.eval(e.X, rep)
		if sel, ok := ua.pkg.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return evalRes{u: ua.w.decl[v]}
			}
			return evalRes{}
		}
		// Package-qualified name.
		if obj := ua.pkg.Info.Uses[e.Sel]; obj != nil {
			if u := ua.w.decl[obj]; u != nil {
				return evalRes{u: u}
			}
			if _, ok := obj.(*types.Const); ok {
				return evalRes{chameleon: true}
			}
		}
		return evalRes{}
	case *ast.IndexExpr:
		ua.eval(e.Index, rep)
		r := ua.eval(e.X, rep)
		return evalRes{u: r.u}
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				ua.eval(b, rep)
			}
		}
		r := ua.eval(e.X, rep)
		return evalRes{u: r.u}
	case *ast.StarExpr:
		return ua.eval(e.X, rep)
	case *ast.UnaryExpr:
		r := ua.eval(e.X, rep)
		if e.Op == token.SUB || e.Op == token.ADD {
			return r
		}
		return evalRes{}
	case *ast.BinaryExpr:
		return ua.binary(e, rep)
	case *ast.CallExpr:
		return ua.call(e, rep)
	case *ast.CompositeLit:
		return ua.compositeLit(e, rep)
	case *ast.FuncLit:
		ua.lits = append(ua.lits, e)
		return evalRes{}
	case *ast.TypeAssertExpr:
		ua.eval(e.X, rep)
		return evalRes{}
	case *ast.KeyValueExpr:
		// Reached only for non-struct composites; both sides checked.
		ua.eval(e.Key, rep)
		ua.eval(e.Value, rep)
		return evalRes{}
	}
	return evalRes{}
}

func (ua *unitAnalysis) binary(e *ast.BinaryExpr, rep reportFn) evalRes {
	l := ua.eval(e.X, rep)
	r := ua.eval(e.Y, rep)
	switch e.Op {
	case token.ADD, token.SUB:
		if rep != nil && l.u != nil && r.u != nil && !l.u.equal(r.u) {
			rep(e.Pos(), "mixed units: %s %s %s", l.u, e.Op, r.u)
		}
		return evalRes{u: joinUnits(l.u, r.u), chameleon: l.chameleon && r.chameleon}
	case token.MUL:
		return evalRes{u: mulUnits(factorUnit(l), factorUnit(r)), chameleon: l.chameleon && r.chameleon}
	case token.QUO:
		return evalRes{u: divUnits(factorUnit(l), factorUnit(r)), chameleon: l.chameleon && r.chameleon}
	case token.REM:
		return evalRes{u: l.u, chameleon: l.chameleon && r.chameleon}
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if rep != nil && l.u != nil && r.u != nil && !l.u.equal(r.u) {
			rep(e.Pos(), "mixed units: %s %s %s", l.u, e.Op, r.u)
		}
	}
	return evalRes{}
}

func (ua *unitAnalysis) call(e *ast.CallExpr, rep reportFn) evalRes {
	// Conversions preserve the operand's unit (float64(nValues)).
	if tv, ok := ua.pkg.Info.Types[e.Fun]; ok && tv.IsType() {
		if len(e.Args) == 1 {
			return ua.eval(e.Args[0], rep)
		}
		return evalRes{}
	}
	for _, a := range e.Args {
		ua.eval(a, rep)
	}
	if _, ok := unparen(e.Fun).(*ast.FuncLit); ok {
		ua.eval(e.Fun, rep) // immediately-invoked literals still get analyzed
	}
	callee := staticCallee(ua.pkg.Info, e)
	if callee == nil {
		return evalRes{}
	}
	// Check tagged parameters against argument units.
	sig, ok := callee.Type().(*types.Signature)
	if ok {
		np := sig.Params().Len()
		for i, a := range e.Args {
			pi := i
			if sig.Variadic() && pi >= np-1 {
				pi = np - 1
			}
			if pi >= np {
				break
			}
			param := sig.Params().At(pi)
			want := ua.w.decl[param]
			r := ua.eval(a, rep)
			if rep != nil && want != nil && r.u != nil && !want.equal(r.u) {
				rep(a.Pos(), "mixed units: argument %q wants %s, got %s", param.Name(), want, r.u)
			}
		}
	}
	return evalRes{u: ua.w.retUnit(callee)}
}

// compositeLit checks struct literals whose fields carry declared
// units; other composites just have their elements evaluated.
func (ua *unitAnalysis) compositeLit(e *ast.CompositeLit, rep reportFn) evalRes {
	var st *types.Struct
	if t := ua.pkg.Info.TypeOf(e); t != nil {
		st, _ = t.Underlying().(*types.Struct)
	}
	if st == nil {
		for _, elt := range e.Elts {
			ua.eval(elt, rep)
		}
		return evalRes{}
	}
	fieldByName := func(name string) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				return st.Field(i)
			}
		}
		return nil
	}
	for i, elt := range e.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = fieldByName(id.Name)
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		r := ua.eval(value, rep)
		if field == nil {
			continue
		}
		want := ua.w.decl[field]
		if rep != nil && want != nil && r.u != nil && !want.equal(r.u) {
			rep(value.Pos(), "mixed units: field %q is %s, value is %s", field.Name(), want, r.u)
		}
	}
	return evalRes{}
}

// newUnitCheck builds the unitcheck analyzer.
func newUnitCheck() *Check {
	return &Check{
		Name:    "unitcheck",
		Doc:     "mixed-unit arithmetic on cost-model quantities (mJ, B, msg, val, s)",
		Applies: unitScope,
		Run: func(pass *Pass) {
			w := pass.Prog.unitWorld()
			for _, e := range w.errs[pass.Pkg] {
				pass.Reportf(e.pos, "%s", e.msg)
			}
			rep := func(pos token.Pos, format string, args ...interface{}) {
				pass.Reportf(pos, format, args...)
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Body == nil {
							continue
						}
						fn, ok := pass.Pkg.Info.Defs[d.Name].(*types.Func)
						if !ok {
							continue
						}
						w.analyze(pass.Pkg, d, fn, rep)
					case *ast.GenDecl:
						// Package-level initializers, checked without flow.
						ua := &unitAnalysis{w: w, pkg: pass.Pkg, flow: &funcFlow{defsOf: map[types.Object][]int{}}}
						ua.memo = make(map[ast.Expr]evalRes)
						for _, spec := range d.Specs {
							if vs, ok := spec.(*ast.ValueSpec); ok {
								ua.valueSpec(vs, rep)
							}
						}
					}
				}
			}
		},
	}
}
