package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// alloccheck: static allocation discipline for hot paths. PR 5 made
// the warm-started parametric re-solve 0 B/op, but that invariant
// lived only in two benchmarks; this check makes it a compile-gated
// contract. A function opts in with
//
//	//alloc:none
//
// in its doc comment, and the check verifies — transitively, over the
// module call graph — that no path out of it reaches an allocation
// site. Sites are classified per function body:
//
//   - composite literals and new/make that escape, under a
//     conservative intra-procedural approximation (returned, stored
//     through a pointer/map/global, bound to a local that escapes,
//     captured by a closure, sent on a channel, boxed into an
//     interface);
//   - append whose destination is not a caller-provided slice (the
//     destination, after stripping slice expressions, must be a plain
//     parameter identifier — anything rooted in a field or local may
//     grow a heap array);
//   - map assignment, string concatenation, and string<->[]byte/[]rune
//     conversions;
//   - closure creation that captures variables, method values, and
//     variadic calls that pack arguments into a fresh slice;
//   - interface boxing: a non-pointer-shaped concrete value passed to
//     an interface{}/any parameter, assigned to an interface, or
//     returned as one (fmt-style calls hit packing + boxing + the
//     external-call rule at once);
//   - go statements, calls to external functions outside a small
//     allowlist of known allocation-free stdlib surface, and dynamic
//     calls through function values or interfaces.
//
// A site that allocates only on growth or first use is blessed in
// place:
//
//	//alloc:amortized <reason>
//
// on or directly above the site (grow-on-demand scratch, eta-arena
// refactorization, one-time handle creation). A reason-less amortized
// directive, an unknown //alloc: directive, and an //alloc:none that
// is not a function doc comment are all findings.
//
// Violations inside the annotated function are reported at the site;
// violations reached through calls are reported at the annotated
// function, naming the call path and the first offending site, so the
// contract's owner sees the break without chasing the callee chain.
//
// Accepted limitations, on purpose (see DESIGN.md §9): the escape
// approximation is flow-insensitive and not field-sensitive, argument
// passing to a non-interface parameter is not treated as an escape
// (the callee's own sites are checked instead), panic paths and defer
// records are not charged, and reflection or assembly behind an
// allowlisted call is invisible.

const (
	allocNoneDirective      = "//alloc:none"
	allocAmortizedDirective = "//alloc:amortized"
	allocDirectivePrefix    = "//alloc:"
)

// allocSite is one classified allocation in a function body.
type allocSite struct {
	pos  token.Pos
	desc string
}

// allocWorld is the shared interprocedural state: the annotated
// functions, the lazily classified per-function sites, and the
// precomputed findings.
type allocWorld struct {
	findings map[*Package][]worldFinding
}

// buildAllocWorld runs directive hygiene, classifies allocation sites
// in every function reachable from an //alloc:none annotation, and
// records the findings.
func buildAllocWorld(prog *Program) *allocWorld {
	aw := &allocWorld{findings: make(map[*Package][]worldFinding)}
	cg := prog.CallGraph()

	// Amortized blessings, per package: file -> line -> true.
	blessedOf := make(map[*Package]map[string]map[int]bool, len(prog.Pkgs))
	for _, pkg := range prog.Pkgs {
		blessed := make(map[string]map[int]bool)
		for _, f := range pkg.Files {
			for _, cgrp := range f.Comments {
				for _, c := range cgrp.List {
					rest, ok := cutDirective(c.Text, allocAmortizedDirective)
					if !ok {
						continue
					}
					if rest == "" {
						aw.findings[pkg] = append(aw.findings[pkg], worldFinding{
							pos: c.Pos(),
							msg: "alloc:amortized directive needs a reason: \"//alloc:amortized <reason>\"",
						})
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					byLine := blessed[p.Filename]
					if byLine == nil {
						byLine = make(map[int]bool)
						blessed[p.Filename] = byLine
					}
					byLine[p.Line] = true
				}
			}
		}
		blessedOf[pkg] = blessed
	}
	isBlessed := func(pkg *Package, pos token.Pos) bool {
		p := pkg.Fset.Position(pos)
		byLine := blessedOf[pkg][p.Filename]
		return byLine != nil && (byLine[p.Line] || byLine[p.Line-1])
	}

	// Annotated functions, in package/file/declaration order, plus the
	// set of //alloc:none comments legitimately placed in a func doc.
	type annotated struct {
		fn  *types.Func
		fd  *ast.FuncDecl
		pkg *Package
	}
	var roots []annotated
	consumed := make(map[token.Pos]bool)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					if _, ok := cutDirective(c.Text, allocNoneDirective); ok {
						consumed[c.Pos()] = true
						marked = true
					}
				}
				if !marked {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil || fd.Body == nil {
					aw.findings[pkg] = append(aw.findings[pkg], worldFinding{
						pos: fd.Pos(),
						msg: "//alloc:none on a function without a body cannot be verified",
					})
					continue
				}
				roots = append(roots, annotated{fn: fn, fd: fd, pkg: pkg})
			}
		}
	}

	// Directive hygiene: misplaced //alloc:none and unknown //alloc:
	// spellings are findings, like confine's reason-less transfers.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cgrp := range f.Comments {
				for _, c := range cgrp.List {
					if _, ok := cutDirective(c.Text, allocNoneDirective); ok {
						if !consumed[c.Pos()] {
							aw.findings[pkg] = append(aw.findings[pkg], worldFinding{
								pos: c.Pos(),
								msg: "//alloc:none must be in a function declaration's doc comment",
							})
						}
						continue
					}
					if _, ok := cutDirective(c.Text, allocAmortizedDirective); ok {
						continue
					}
					if strings.HasPrefix(c.Text, allocDirectivePrefix) {
						aw.findings[pkg] = append(aw.findings[pkg], worldFinding{
							pos: c.Pos(),
							msg: fmt.Sprintf("unknown alloc directive %q; known: //alloc:none, //alloc:amortized <reason>", c.Text),
						})
					}
				}
			}
		}
	}

	// Sites are classified lazily: only functions reachable from an
	// annotation pay the walk.
	siteCache := make(map[*types.Func][]allocSite)
	sitesOf := func(fn *types.Func) []allocSite {
		if s, ok := siteCache[fn]; ok {
			return s
		}
		fd := cg.Decl(fn)
		pkg := cg.DeclPkg(fn)
		var s []allocSite
		if fd != nil && pkg != nil && fd.Body != nil {
			s = classifyAllocSites(prog, cg, pkg, fd, fn, func(pos token.Pos) bool { return isBlessed(pkg, pos) })
		}
		siteCache[fn] = s
		return s
	}

	// Reachability from each annotated root: direct sites report at
	// the site, sites in callees report at the root with the call
	// path. BFS over the static call graph keeps paths shortest and
	// the traversal order deterministic (byCaller preserves Sites
	// order).
	for _, root := range roots {
		for _, site := range sitesOf(root.fn) {
			aw.findings[root.pkg] = append(aw.findings[root.pkg], worldFinding{
				pos: site.pos,
				msg: fmt.Sprintf("%s in //alloc:none function %s", site.desc, funcPathName(root.fn)),
			})
		}
		visited := map[*types.Func]bool{root.fn: true}
		prev := make(map[*types.Func]*types.Func)
		queue := []*types.Func{root.fn}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			for _, i := range cg.byCaller[fn] {
				// A blessed call site is an amortized boundary: the callee
				// allocates only on the cold/first-use path the reason
				// documents, so the traversal does not follow the edge.
				if st := cg.Sites[i]; st.Call != nil && isBlessed(st.Pkg, st.Call.Pos()) {
					continue
				}
				callee := cg.Sites[i].Callee
				if visited[callee] || cg.Decl(callee) == nil {
					continue
				}
				visited[callee] = true
				prev[callee] = fn
				queue = append(queue, callee)
				sites := sitesOf(callee)
				if len(sites) == 0 {
					continue
				}
				path := funcPathName(callee)
				for at := fn; at != nil; at = prev[at] {
					path = funcPathName(at) + " -> " + path
				}
				first := sites[0]
				where := cg.DeclPkg(callee).Fset.Position(first.pos)
				extra := ""
				if len(sites) > 1 {
					extra = fmt.Sprintf(" (+%d more)", len(sites)-1)
				}
				aw.findings[root.pkg] = append(aw.findings[root.pkg], worldFinding{
					pos: root.fd.Name.Pos(),
					msg: fmt.Sprintf("//alloc:none function %s: call path %s reaches allocation: %s (%s)%s",
						funcPathName(root.fn), path, first.desc, where, extra),
				})
			}
		}
	}
	return aw
}

// funcPathName renders fn for call-path reporting: Type.Method for
// methods, the bare name otherwise.
func funcPathName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// allocResolveAllow reports whether a call to the external function fn
// is trusted not to allocate: the sync/atomic/math kernel the hot
// paths lean on, slices (its sort is allocation-free), sort's binary
// searches, strconv's append-style formatters (they grow the caller's
// buffer, which the append rule already polices at the call site),
// and time.Now/Since plus Duration arithmetic.
func allocResolveAllow(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false // universe scope: error.Error and friends stay findings
	}
	switch pkg.Path() {
	case "sync", "sync/atomic", "math", "math/bits", "math/rand", "slices":
		return true
	case "sort":
		switch fn.Name() {
		case "Search", "SearchInts", "SearchFloat64s", "SearchStrings":
			return true
		}
	case "strconv":
		return strings.HasPrefix(fn.Name(), "Append")
	case "time":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if n, ok := t.(*types.Named); ok && n.Obj().Name() == "Duration" {
				return true
			}
			return false
		}
		return fn.Name() == "Now" || fn.Name() == "Since"
	}
	return false
}

// allocScan carries one function's classification walk.
type allocScan struct {
	prog    *Program
	cg      *CallGraph
	pkg     *Package
	fd      *ast.FuncDecl
	fn      *types.Func
	blessed func(token.Pos) bool

	parents  map[ast.Node]ast.Node
	params   map[types.Object]bool
	escaping map[types.Object]bool
	sites    []allocSite
}

// classifyAllocSites walks one function body and returns its
// unblessed allocation sites in source order.
func classifyAllocSites(prog *Program, cg *CallGraph, pkg *Package, fd *ast.FuncDecl, fn *types.Func, blessed func(token.Pos) bool) []allocSite {
	as := &allocScan{
		prog: prog, cg: cg, pkg: pkg, fd: fd, fn: fn, blessed: blessed,
		parents:  make(map[ast.Node]ast.Node),
		params:   make(map[types.Object]bool),
		escaping: make(map[types.Object]bool),
	}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			as.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					as.params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	as.markEscapingLocals()
	as.scanSites()
	return as.sites
}

func (as *allocScan) add(pos token.Pos, desc string) {
	if as.blessed(pos) {
		return
	}
	as.sites = append(as.sites, allocSite{pos: pos, desc: desc})
}

// parentOf returns n's parent, skipping parentheses.
func (as *allocScan) parentOf(n ast.Node) ast.Node {
	p := as.parents[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = as.parents[pe]
	}
}

func (as *allocScan) objOf(id *ast.Ident) types.Object {
	if obj := as.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return as.pkg.Info.Defs[id]
}

// isLocal reports whether obj is declared inside the scanned function
// (parameters and receivers included).
func (as *allocScan) isLocal(obj types.Object) bool {
	if obj == nil || isPackageLevel(obj) {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() >= as.fd.Pos() && obj.Pos() < as.fd.End()
}

// markEscapingLocals is the flow-insensitive escape pre-pass: a local
// is escaping when it is returned, sent on a channel, stored to heap,
// boxed into an interface, captured by a closure, or has its address
// taken outside a direct call argument.
func (as *allocScan) markEscapingLocals() {
	info := as.pkg.Info
	mark := func(e ast.Expr) {
		if root := rootIdent(e); root != nil {
			if obj := as.objOf(root); as.isLocal(obj) {
				as.escaping[obj] = true
			}
		}
	}
	ast.Inspect(as.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, lhs := range n.Lhs {
				if _, heap := as.lhsHeapStore(lhs); heap {
					mark(n.Rhs[i])
					continue
				}
				if t := info.TypeOf(lhs); t != nil && types.IsInterface(t) {
					mark(n.Rhs[i])
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				break
			}
			// &x handed straight to a call stays local by the
			// argument-passing rule; any other &x may outlive the frame.
			if p, ok := as.parentOf(n).(*ast.CallExpr); ok && argOfCall(p, n) {
				break
			}
			mark(n.X)
		case *ast.FuncLit:
			for obj := range as.capturedVars(n) {
				as.escaping[obj] = true
			}
		}
		return true
	})
}

// argOfCall reports whether e is one of call's arguments (not its Fun).
func argOfCall(call *ast.CallExpr, e ast.Expr) bool {
	for _, a := range call.Args {
		if a == e || unparen(a) == e {
			return true
		}
	}
	return false
}

// capturedVars returns the local variables lit closes over.
func (as *allocScan) capturedVars(lit *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := as.pkg.Info.Uses[id]
		if obj == nil || !as.isLocal(obj) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own locals and parameters
		}
		out[obj] = true
		return true
	})
	return out
}

// lhsHeapStore classifies an assignment target: true when a store
// through it makes the value reachable beyond the frame (global,
// pointer deref, map or slice element, field behind a pointer).
func (as *allocScan) lhsHeapStore(lhs ast.Expr) (string, bool) {
	info := as.pkg.Info
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := as.objOf(x)
			if obj == nil || x.Name == "_" {
				return "", false
			}
			if isPackageLevel(obj) {
				return "stored in package-level variable " + x.Name, true
			}
			return "", false
		case *ast.SelectorExpr:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return "stored through a pointer", true
				}
			}
			e = unparen(x.X)
		case *ast.IndexExpr:
			t := info.TypeOf(x.X)
			if t == nil {
				return "", false
			}
			switch t.Underlying().(type) {
			case *types.Map:
				return "stored into a map", true
			case *types.Slice, *types.Pointer:
				return "stored into a heap-backed element", true
			}
			e = unparen(x.X) // array value: keep walking to the root
		case *ast.StarExpr:
			return "stored through a pointer", true
		default:
			return "", false
		}
	}
}

// pointerShaped reports whether a value of type t fits an interface's
// data word without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// boxes reports whether passing a value of type t where iface is
// expected allocates: iface must be an interface, t a concrete
// non-pointer-shaped type.
func boxes(iface, t types.Type) bool {
	if iface == nil || t == nil || !types.IsInterface(iface) {
		return false
	}
	if types.IsInterface(t) || pointerShaped(t) {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// enclosingSig returns the signature of the innermost function
// enclosing n (a literal or the scanned declaration).
func (as *allocScan) enclosingSig(n ast.Node) *types.Signature {
	for at := as.parents[n]; at != nil; at = as.parents[at] {
		switch f := at.(type) {
		case *ast.FuncLit:
			if sig, ok := as.pkg.Info.TypeOf(f).(*types.Signature); ok {
				return sig
			}
			return nil
		case *ast.FuncDecl:
			sig, _ := as.fn.Type().(*types.Signature)
			return sig
		}
	}
	sig, _ := as.fn.Type().(*types.Signature)
	return sig
}

// scanSites is the classification pass proper.
func (as *allocScan) scanSites() {
	info := as.pkg.Info
	ast.Inspect(as.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			as.scanCompositeLit(n)
		case *ast.CallExpr:
			as.scanCall(n)
		case *ast.GoStmt:
			as.add(n.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			as.scanFuncLit(n)
		case *ast.BinaryExpr:
			as.scanConcat(n)
		case *ast.AssignStmt:
			as.scanAssign(n)
		case *ast.IncDecStmt:
			if ix, ok := unparen(n.X).(*ast.IndexExpr); ok {
				if t := info.TypeOf(ix.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						as.add(n.Pos(), "map assignment may allocate")
					}
				}
			}
		case *ast.ValueSpec:
			as.scanValueSpec(n)
		case *ast.ReturnStmt:
			as.scanReturn(n)
		case *ast.SelectorExpr:
			as.scanMethodValue(n)
		}
		return true
	})
}

// allocExprContext climbs from an allocation expression (composite
// literal, new, make) to its consuming context and reports whether the
// allocation escapes the frame under the conservative approximation.
func (as *allocScan) allocExprContext(e ast.Expr) (string, bool) {
	info := as.pkg.Info
	cur := ast.Node(e)
	for {
		p := as.parentOf(cur)
		switch p := p.(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				cur = p
				continue
			}
			return "", false
		case *ast.ReturnStmt:
			if sig := as.enclosingSig(p); sig != nil && len(p.Results) == sig.Results().Len() {
				for i, res := range p.Results {
					if (res == cur || unparen(res) == cur) && types.IsInterface(sig.Results().At(i).Type()) {
						return "boxed into an interface", true
					}
				}
			}
			return "returned", true
		case *ast.SendStmt:
			if p.Value == cur || unparen(p.Value) == cur {
				return "sent on a channel", true
			}
			return "", false
		case *ast.AssignStmt:
			if len(p.Lhs) != len(p.Rhs) {
				return "assigned in a multi-value context", true
			}
			for i, rhs := range p.Rhs {
				if rhs != cur && unparen(rhs) != cur {
					continue
				}
				lhs := unparen(p.Lhs[i])
				if t := info.TypeOf(lhs); t != nil && types.IsInterface(t) {
					return "boxed into an interface", true
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						return "", false
					}
					obj := as.objOf(id)
					if as.isLocal(obj) {
						if as.escaping[obj] {
							return "bound to " + id.Name + ", which escapes", true
						}
						return "", false
					}
					if obj != nil && isPackageLevel(obj) {
						return "stored in package-level variable " + id.Name, true
					}
					return "", false
				}
				if how, heap := as.lhsHeapStore(lhs); heap {
					return how, true
				}
				return "", false
			}
			return "", false
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if (v != cur && unparen(v) != cur) || i >= len(p.Names) {
					continue
				}
				obj := info.Defs[p.Names[i]]
				if t := info.TypeOf(p.Names[i]); t != nil && types.IsInterface(t) {
					return "boxed into an interface", true
				}
				if as.isLocal(obj) && as.escaping[obj] {
					return "bound to " + p.Names[i].Name + ", which escapes", true
				}
			}
			return "", false
		case *ast.KeyValueExpr, *ast.CompositeLit:
			// Element of an outer literal: the outer site speaks.
			return "", false
		case *ast.CallExpr:
			// Argument passing is not an escape by itself; boxing into
			// an interface parameter is flagged by the call scan.
			return "", false
		default:
			return "", false
		}
	}
}

func (as *allocScan) scanCompositeLit(cl *ast.CompositeLit) {
	// Nested literals ride on the outermost one's classification.
	switch as.parentOf(cl).(type) {
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return
	}
	how, esc := as.allocExprContext(cl)
	if !esc {
		return
	}
	// A struct or array literal is a plain value: copies move it
	// between frames without touching the heap. It only allocates
	// through its backing store (slice, map), its address (&T{}, the
	// UnaryExpr climb folds that into the escape context), or boxing.
	if p, ok := as.parentOf(cl).(*ast.UnaryExpr); !ok || p.Op != token.AND {
		if t := as.pkg.Info.TypeOf(cl); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
			default:
				if !strings.Contains(how, "boxed") {
					return
				}
			}
		}
	}
	as.add(cl.Pos(), "composite literal escapes ("+how+")")
}

func (as *allocScan) scanFuncLit(lit *ast.FuncLit) {
	if p, ok := as.parentOf(lit).(*ast.CallExpr); ok && unparen(p.Fun) == ast.Expr(lit) {
		return // immediately invoked: no closure object survives
	}
	if len(as.capturedVars(lit)) > 0 {
		as.add(lit.Pos(), "closure captures variables and allocates")
	}
}

func (as *allocScan) scanConcat(b *ast.BinaryExpr) {
	info := as.pkg.Info
	if b.Op != token.ADD {
		return
	}
	t := info.TypeOf(b)
	if t == nil {
		return
	}
	if bt, ok := t.Underlying().(*types.Basic); !ok || bt.Info()&types.IsString == 0 {
		return
	}
	if tv, ok := info.Types[b]; ok && tv.Value != nil {
		return // constant-folded
	}
	// Report only the outermost + of a concatenation chain.
	if p, ok := as.parentOf(b).(*ast.BinaryExpr); ok && p.Op == token.ADD {
		if pt := info.TypeOf(p); pt != nil {
			if bt, ok := pt.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
				return
			}
		}
	}
	as.add(b.Pos(), "string concatenation allocates")
}

func (as *allocScan) scanAssign(a *ast.AssignStmt) {
	info := as.pkg.Info
	for _, lhs := range a.Lhs {
		if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					as.add(lhs.Pos(), "map assignment may allocate")
				}
			}
		}
	}
	if a.Tok == token.ADD_ASSIGN {
		if t := info.TypeOf(a.Lhs[0]); t != nil {
			if bt, ok := t.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
				as.add(a.Pos(), "string concatenation allocates")
			}
		}
	}
	// Boxing on plain assignment; allocation expressions already
	// report through their own escape context.
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		rhs := unparen(a.Rhs[i])
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr:
			continue
		}
		if boxes(info.TypeOf(lhs), info.TypeOf(rhs)) {
			as.add(a.Rhs[i].Pos(), "value boxed into an interface")
		}
	}
}

func (as *allocScan) scanValueSpec(vs *ast.ValueSpec) {
	info := as.pkg.Info
	for i, v := range vs.Values {
		if i >= len(vs.Names) {
			break
		}
		rhs := unparen(v)
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr:
			continue
		}
		if boxes(info.TypeOf(vs.Names[i]), info.TypeOf(rhs)) {
			as.add(v.Pos(), "value boxed into an interface")
		}
	}
}

func (as *allocScan) scanReturn(r *ast.ReturnStmt) {
	info := as.pkg.Info
	sig := as.enclosingSig(r)
	if sig == nil || len(r.Results) != sig.Results().Len() {
		return
	}
	for i, res := range r.Results {
		rhs := unparen(res)
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr:
			continue // their own sites speak
		}
		if tv, ok := info.Types[res]; ok && tv.IsNil() {
			continue
		}
		if boxes(sig.Results().At(i).Type(), info.TypeOf(res)) {
			as.add(res.Pos(), "return value boxed into an interface")
		}
	}
}

func (as *allocScan) scanMethodValue(sel *ast.SelectorExpr) {
	s, ok := as.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if p, ok := as.parentOf(sel).(*ast.CallExpr); ok && unparen(p.Fun) == ast.Expr(sel) {
		return // ordinary method call
	}
	as.add(sel.Pos(), "method value allocates a bound-method closure")
}

// scanCall handles builtins (append, make, new), conversions, variadic
// packing, interface boxing of arguments, and the external/dynamic
// call rules.
func (as *allocScan) scanCall(call *ast.CallExpr) {
	info := as.pkg.Info
	fun := unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				as.scanAppend(call)
			case "make":
				if how, esc := as.allocExprContext(call); esc {
					as.add(call.Pos(), "make escapes ("+how+")")
				}
			case "new":
				if how, esc := as.allocExprContext(call); esc {
					as.add(call.Pos(), "new escapes ("+how+")")
				}
			}
			return
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// Qualified builtin is impossible, but unsafe.* selectors land
		// here; they never allocate.
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "unsafe" {
				return
			}
		}
	}

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		as.scanConversion(call, tv.Type)
		return
	}

	sig, _ := info.TypeOf(fun).(*types.Signature)
	callee := staticCallee(info, call)

	// Variadic packing.
	if sig != nil && sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		as.add(call.Pos(), "variadic call packs arguments into a new slice")
	}

	// Interface boxing at the call boundary.
	if sig != nil {
		fixed := sig.Params().Len()
		if sig.Variadic() {
			fixed--
		}
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case i < fixed:
				pt = sig.Params().At(i).Type()
			case sig.Variadic() && call.Ellipsis == token.NoPos:
				if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			case sig.Variadic():
				pt = sig.Params().At(sig.Params().Len() - 1).Type()
			}
			if tv, ok := info.Types[arg]; ok && tv.IsNil() {
				continue
			}
			if boxes(pt, info.TypeOf(arg)) {
				as.add(arg.Pos(), "argument boxed into an interface parameter")
			}
		}
	}

	// Callee classification: module functions become call-graph edges;
	// externals must be allowlisted; dynamic calls are opaque.
	if callee != nil {
		if as.cg.Decl(callee) != nil {
			return // followed interprocedurally
		}
		if allocResolveAllow(callee) {
			return
		}
		name := callee.Name()
		if callee.Pkg() != nil {
			name = callee.Pkg().Name() + "." + name
		}
		as.add(call.Pos(), "call to "+name+" (external, not allocation-free)")
		return
	}
	if sig != nil {
		as.add(call.Pos(), "dynamic call through a function value or interface may allocate")
	}
}

// scanAppend applies the caller-provided-slice rule: append is clean
// only when its destination, after stripping slice expressions, is a
// plain parameter identifier — the caller owns the capacity. Anything
// else may grow a heap array.
func (as *allocScan) scanAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	e := unparen(call.Args[0])
	for {
		se, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = unparen(se.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := as.objOf(id); obj != nil && as.params[obj] {
			return
		}
	}
	as.add(call.Pos(), "append may grow its backing array")
}

func (as *allocScan) scanConversion(call *ast.CallExpr, target types.Type) {
	info := as.pkg.Info
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	src := info.TypeOf(arg)
	if src == nil {
		return
	}
	if tv, ok := info.Types[call]; ok && tv.Value != nil {
		return // constant conversion
	}
	if types.IsInterface(target) {
		if boxes(target, src) {
			as.add(call.Pos(), "conversion boxes value into an interface")
		}
		return
	}
	tb, tIsBasic := target.Underlying().(*types.Basic)
	sb, sIsBasic := src.Underlying().(*types.Basic)
	if tIsBasic && tb.Info()&types.IsString != 0 {
		if !sIsBasic || sb.Info()&types.IsString == 0 {
			as.add(call.Pos(), "conversion to string allocates")
		}
		return
	}
	if sl, ok := target.Underlying().(*types.Slice); ok && sIsBasic && sb.Info()&types.IsString != 0 {
		if eb, ok := sl.Elem().Underlying().(*types.Basic); ok {
			switch eb.Kind() {
			case types.Byte, types.Rune:
				as.add(call.Pos(), "string-to-slice conversion allocates")
			}
		}
	}
}

// newAllocCheck builds the alloccheck analyzer.
func newAllocCheck() *Check {
	return &Check{
		Name: "alloccheck",
		Doc:  "functions marked //alloc:none never reach an allocation site, transitively; //alloc:amortized <reason> blesses grow-on-demand sites",
		Run: func(pass *Pass) {
			aw := pass.Prog.allocWorld()
			for _, f := range aw.findings[pass.Pkg] {
				pass.Reportf(f.pos, "%s", f.msg)
			}
		},
	}
}
