package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs. A CFG is the
// substrate for the reaching-definitions analysis (reaching.go) that
// unitcheck uses to propagate units through local variables; keeping
// it generic (blocks of ast.Node, no check-specific payload) leaves
// room for later flow-sensitive checks.
//
// Granularity: a Block holds a maximal straight-line run of "atomic"
// nodes. Simple statements (assignments, declarations, expression
// statements, returns) appear whole; for control statements only the
// header parts live in a block — an *ast.IfStmt contributes its Cond
// expression, a *ast.ForStmt its Cond, a *ast.RangeStmt itself (it
// both evaluates X and defines Key/Value each iteration), a switch its
// Tag plus per-clause case expressions. Bodies become separate blocks
// wired with edges. Consumers switch on the node type to decide which
// sub-expressions are evaluated and which identifiers are defined.
//
// The builder is deliberately conservative where precision buys
// nothing: a goto to an unseen label falls back to an edge into Exit,
// and panic calls are treated as ordinary statements (more paths reach
// a use, which can only make downstream analyses *less* eager to
// report).

// Block is one basic block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry; Exit is a distinguished empty block reached by every return
// and by falling off the end of the body.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// Entry returns the function entry block.
func (g *CFG) Entry() *Block { return g.Blocks[0] }

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{cfg: g}
	entry := b.newBlock()
	g.Exit = b.newBlock()
	b.cur = entry
	b.stmt(body)
	b.edge(b.cur, g.Exit)
	for _, pg := range b.pendingGotos {
		if target := b.labels[pg.label]; target != nil {
			b.edge(pg.from, target)
		} else {
			b.edge(pg.from, g.Exit)
		}
	}
	return g
}

// branchScope is one enclosing break or continue target, with the
// statement label when the loop/switch was labeled.
type branchScope struct {
	label  string
	target *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg          *CFG
	cur          *Block
	breaks       []branchScope
	continues    []branchScope
	fallthroughs []*Block
	labels       map[string]*Block
	pendingGotos []pendingGoto
	// pendingLabel carries a label name from a LabeledStmt to the
	// loop/switch statement it labels, so labeled break/continue
	// resolve to the right scope.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the label carried from an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findScope resolves a break/continue target: the innermost scope for
// an unlabeled branch, the matching labeled scope otherwise.
func findScope(scopes []branchScope, label string) *Block {
	for i := len(scopes) - 1; i >= 0; i-- {
		if label == "" || scopes[i].label == label {
			return scopes[i].target
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		// continue re-evaluates Post (when present) before the header.
		cont := header
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		body := b.newBlock()
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, after)
		}
		b.breaks = append(b.breaks, branchScope{label, after})
		b.continues = append(b.continues, branchScope{label, cont})
		b.cur = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, cont)
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(post, header)
		}
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		header := b.newBlock()
		b.edge(b.cur, header)
		header.Nodes = append(header.Nodes, s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(header, body)
		b.edge(header, after)
		b.breaks = append(b.breaks, branchScope{label, after})
		b.continues = append(b.continues, branchScope{label, header})
		b.cur = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, header)
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.add(s.Assign)
		b.switchClauses(label, s.Body, nil)
	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, branchScope{label, after})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(sel, blk)
			b.cur = blk
			b.stmt(cc.Comm)
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after
	case *ast.LabeledStmt:
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		lblk := b.newBlock()
		b.edge(b.cur, lblk)
		b.cur = lblk
		b.labels[s.Label.Name] = lblk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, findScope(b.breaks, label))
		case token.CONTINUE:
			b.edge(b.cur, findScope(b.continues, label))
		case token.GOTO:
			if target := b.labels[label]; target != nil {
				b.edge(b.cur, target)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{b.cur, label})
			}
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 {
				b.edge(b.cur, b.fallthroughs[n-1])
			}
		}
		b.cur = b.newBlock() // anything after the branch is unreachable
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock()
	default:
		// Assign, IncDec, Decl, Expr, Send, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

// switchClauses wires the shared clause structure of switch and
// type-switch statements: every clause body is a block fed from the
// dispatch block, falling through to the next clause when requested,
// otherwise exiting to the join block. caseExprs (when non-nil) places
// the clause's case expressions at the head of its block.
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt, caseExprs func(*ast.CaseClause, *Block)) {
	dispatch := b.cur
	after := b.newBlock()
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		blocks[i] = b.newBlock()
		b.edge(dispatch, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(cc, blocks[i])
		}
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.breaks = append(b.breaks, branchScope{label, after})
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		if i+1 < len(blocks) {
			b.fallthroughs = append(b.fallthroughs, blocks[i+1])
		} else {
			b.fallthroughs = append(b.fallthroughs, after)
		}
		b.cur = blocks[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, after)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}
