package plan

import (
	"encoding/binary"
	"fmt"

	"prospector/internal/network"
)

// Wire format. The initial distribution phase (Section 2) unicasts
// each participating node its subplan; these encoders produce the
// actual bytes, so installation costs are measured rather than
// estimated.
//
// Subplan layout (little endian):
//
//	byte    kind
//	uint16  own edge bandwidth
//	uint8   number of participating children
//	uint16* child IDs (the node waits for exactly these before sending)
//
// Whole-plan layout:
//
//	byte    kind
//	uint16  node count
//	uint16* bandwidth per node (entry 0, the root, is always 0)
//	byte    has-chosen flag
//	bytes   chosen bitmap (selection plans)

// EncodeSubplan serializes what node v must store to execute its part
// of the plan.
func (p *Plan) EncodeSubplan(net *network.Network, v network.NodeID) []byte {
	var kids []network.NodeID
	for _, c := range net.Children(v) {
		if p.UsesEdge(c) {
			kids = append(kids, c)
		}
	}
	buf := make([]byte, 0, 4+2*len(kids))
	buf = append(buf, byte(p.Kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Bandwidth[v]))
	buf = append(buf, byte(len(kids)))
	for _, c := range kids {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(c))
	}
	return buf
}

// SubplanBytes returns the encoded size of v's subplan without
// materializing it.
func (p *Plan) SubplanBytes(net *network.Network, v network.NodeID) int {
	n := 4
	for _, c := range net.Children(v) {
		if p.UsesEdge(c) {
			n += 2
		}
	}
	return n
}

// Encode serializes the whole plan (what the base station retains and
// what a re-optimization diff is computed against).
func (p *Plan) Encode() []byte {
	n := len(p.Bandwidth)
	buf := make([]byte, 0, 4+2*n+(n+7)/8)
	buf = append(buf, byte(p.Kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(n))
	for _, b := range p.Bandwidth {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(b))
	}
	if p.Chosen != nil {
		buf = append(buf, 1)
		bitmap := make([]byte, (n+7)/8)
		for i, c := range p.Chosen {
			if c {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, bitmap...)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// Decode reconstructs a plan encoded by Encode and validates it
// against the network.
func Decode(net *network.Network, data []byte) (*Plan, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("plan: truncated encoding (%d bytes)", len(data))
	}
	kind := Kind(data[0])
	if kind != Selection && kind != Filtering && kind != Proof {
		return nil, fmt.Errorf("plan: unknown kind byte %d", data[0])
	}
	n := int(binary.LittleEndian.Uint16(data[1:3]))
	if n != net.Size() {
		return nil, fmt.Errorf("plan: encoding for %d nodes, network has %d", n, net.Size())
	}
	need := 3 + 2*n + 1
	if len(data) < need {
		return nil, fmt.Errorf("plan: truncated encoding (%d of %d bytes)", len(data), need)
	}
	p := &Plan{Kind: kind, Bandwidth: make([]int, n)}
	for i := 0; i < n; i++ {
		p.Bandwidth[i] = int(binary.LittleEndian.Uint16(data[3+2*i:]))
	}
	off := 3 + 2*n
	hasChosen := data[off]
	off++
	if hasChosen == 1 {
		bm := (n + 7) / 8
		if len(data) < off+bm {
			return nil, fmt.Errorf("plan: truncated chosen bitmap")
		}
		p.Chosen = make([]bool, n)
		for i := 0; i < n; i++ {
			p.Chosen[i] = data[off+i/8]&(1<<(i%8)) != 0
		}
		off += bm
	} else if kind == Selection {
		return nil, fmt.Errorf("plan: selection plan without a chosen set")
	}
	if len(data) != off {
		return nil, fmt.Errorf("plan: %d trailing bytes", len(data)-off)
	}
	if err := p.Validate(net); err != nil {
		return nil, err
	}
	return p, nil
}

// BundleBytes returns the encoded size of the install bundle crossing
// the edge above v: the subplans of every participating node in v's
// subtree (v's own included).
func (p *Plan) BundleBytes(net *network.Network, v network.NodeID) int {
	total := 0
	for _, d := range net.Descendants(v) {
		if d == v || p.UsesEdge(d) {
			total += p.SubplanBytes(net, d)
		}
	}
	return total
}
