// Package plan defines executable top-k query plans: which edges a
// collection phase uses, how many values each edge may carry, and (for
// selection-style plans) which nodes' readings are wanted at the root.
// Planners in internal/core produce these; internal/exec runs them.
package plan

import (
	"fmt"
	"strings"

	"prospector/internal/energy"
	"prospector/internal/network"
)

// Kind distinguishes how a plan's bandwidth assignment is interpreted
// during execution.
type Kind int

// Plan kinds.
const (
	// Selection plans (PROSPECTOR GREEDY, LP-LF, ORACLE) move the
	// readings of the chosen nodes all the way to the root; relay
	// nodes forward without contributing or filtering.
	Selection Kind = iota
	// Filtering plans (PROSPECTOR LP+LF) give every used edge a
	// bandwidth; each participating node merges its children's lists
	// with its own reading and forwards only the top values.
	Filtering
	// Proof plans (PROSPECTOR PROOF / EXACT phase 1, ORACLE PROOF)
	// behave like filtering plans but use every edge and propagate
	// proven-count metadata per Section 4.3 of the paper.
	Proof
)

func (k Kind) String() string {
	switch k {
	case Selection:
		return "selection"
	case Filtering:
		return "filtering"
	case Proof:
		return "proof"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Plan is an executable query plan over a specific network. Bandwidth
// is indexed by node ID and describes the edge above that node (entry 0,
// the root, is unused). For Selection plans Chosen marks the nodes whose
// readings travel to the root and Bandwidth is derived.
type Plan struct {
	Kind      Kind
	Bandwidth []int
	Chosen    []bool // Selection plans only; nil otherwise
}

// NewSelection builds a Selection plan from a chosen-node set,
// deriving per-edge bandwidths (#chosen nodes in each subtree).
func NewSelection(net *network.Network, chosen []bool) (*Plan, error) {
	if len(chosen) != net.Size() {
		return nil, fmt.Errorf("plan: %d chosen flags for %d nodes", len(chosen), net.Size())
	}
	p := &Plan{
		Kind:      Selection,
		Bandwidth: make([]int, net.Size()),
		Chosen:    append([]bool(nil), chosen...),
	}
	net.PostorderWalk(func(v network.NodeID) {
		n := 0
		if chosen[v] {
			n = 1
		}
		for _, c := range net.Children(v) {
			n += p.Bandwidth[c]
		}
		if v != network.Root {
			p.Bandwidth[v] = n
		}
	})
	return p, nil
}

// NewFiltering builds a Filtering plan from explicit per-edge
// bandwidths (indexed by the lower endpoint; entry 0 ignored).
func NewFiltering(net *network.Network, bandwidth []int) (*Plan, error) {
	if len(bandwidth) != net.Size() {
		return nil, fmt.Errorf("plan: %d bandwidths for %d nodes", len(bandwidth), net.Size())
	}
	p := &Plan{Kind: Filtering, Bandwidth: append([]int(nil), bandwidth...)}
	return p, p.Validate(net)
}

// NewProof builds a Proof plan. Every edge must carry at least one
// value, since an unvisited node could hold the maximum.
func NewProof(net *network.Network, bandwidth []int) (*Plan, error) {
	if len(bandwidth) != net.Size() {
		return nil, fmt.Errorf("plan: %d bandwidths for %d nodes", len(bandwidth), net.Size())
	}
	for i := 1; i < len(bandwidth); i++ {
		if bandwidth[i] < 1 {
			return nil, fmt.Errorf("plan: proof plan leaves edge above node %d unused", i)
		}
	}
	p := &Plan{Kind: Proof, Bandwidth: append([]int(nil), bandwidth...)}
	return p, p.Validate(net)
}

// Validate checks internal consistency against a network.
func (p *Plan) Validate(net *network.Network) error {
	if len(p.Bandwidth) != net.Size() {
		return fmt.Errorf("plan: %d bandwidths for %d nodes", len(p.Bandwidth), net.Size())
	}
	for i := 1; i < len(p.Bandwidth); i++ {
		v := network.NodeID(i)
		if p.Bandwidth[i] < 0 {
			return fmt.Errorf("plan: negative bandwidth %d on edge above node %d", p.Bandwidth[i], i)
		}
		if p.Bandwidth[i] > net.SubtreeSize(v) {
			return fmt.Errorf("plan: bandwidth %d exceeds subtree size %d at node %d",
				p.Bandwidth[i], net.SubtreeSize(v), i)
		}
		// A used edge below an unused edge can never deliver values.
		if p.Bandwidth[i] > 0 && v != network.Root {
			if parent := net.Parent(v); parent != network.Root && p.Bandwidth[parent] == 0 {
				return fmt.Errorf("plan: edge above node %d used but parent edge above %d is not", i, parent)
			}
		}
	}
	if p.Chosen != nil && len(p.Chosen) != len(p.Bandwidth) {
		return fmt.Errorf("plan: %d chosen flags for %d nodes", len(p.Chosen), len(p.Bandwidth))
	}
	return nil
}

// UsesEdge reports whether the collection phase sends a message on the
// edge above v.
func (p *Plan) UsesEdge(v network.NodeID) bool {
	return v != network.Root && p.Bandwidth[v] > 0
}

// Participants returns how many nodes take part in the plan (have a
// used edge above them), plus the root.
func (p *Plan) Participants() int {
	n := 1
	for i := 1; i < len(p.Bandwidth); i++ {
		if p.Bandwidth[i] > 0 {
			n++
		}
	}
	return n
}

// Costs holds the per-edge cost parameters planning and accounting
// use: Msg[v] is the fixed cost of a message on the edge above v,
// Val[v] the marginal cost of one value on it. Derived from an
// energy.Model, optionally inflated for failure-prone links (§4.4).
type Costs struct {
	Msg, Val []float64
	model    energy.Model
}

// NewCosts derives uniform per-edge costs from the energy model.
func NewCosts(net *network.Network, m energy.Model) *Costs {
	c := &Costs{
		Msg:   make([]float64, net.Size()),
		Val:   make([]float64, net.Size()),
		model: m,
	}
	for i := 1; i < net.Size(); i++ {
		c.Msg[i] = m.PerMessage
		c.Val[i] = m.PerValue()
	}
	return c
}

// Model returns the underlying energy model.
func (c *Costs) Model() energy.Model { return c.model }

// ValueCost returns the cost of carrying n values on the edge above v.
// Val is a per-value coefficient (mJ/val); multiplying by the value
// count is the only sanctioned way to turn it into energy, and
// unitcheck flags Val used directly in an energy sum.
//
//unit:n=val return=mJ
func (c *Costs) ValueCost(v network.NodeID, n int) float64 {
	return c.Val[v] * float64(n)
}

// InflateForFailures raises each edge's costs by its expected reroute
// overhead: cost *= 1 + failProb[v]*rerouteFactor, the adjustment
// Section 4.4 feeds into optimization.
func (c *Costs) InflateForFailures(failProb []float64, rerouteFactor float64) error {
	if len(failProb) != len(c.Msg) {
		return fmt.Errorf("plan: %d failure probabilities for %d nodes", len(failProb), len(c.Msg))
	}
	for i := 1; i < len(c.Msg); i++ {
		p := failProb[i]
		if p < 0 || p > 1 {
			return fmt.Errorf("plan: failure probability %g on edge above node %d", p, i)
		}
		mult := 1 + p*rerouteFactor
		c.Msg[i] *= mult
		c.Val[i] *= mult
	}
	return nil
}

// proofMetaBytes is the per-message overhead of a Proof plan: the
// proven-count field on each internal edge (§4.3).
const proofMetaBytes = 1 //unit:B

// ProofMetaCost returns the energy reserved per internal edge for the
// proven-count field of Proof plans (§4.3). PerByte alone is mJ/B;
// this is the sanctioned conversion to energy.
//
//unit:return=mJ
func (c *Costs) ProofMetaCost() float64 { return c.model.PerByte * proofMetaBytes }

// CollectionCost returns the static energy cost of one collection
// phase of the plan: a message on every used edge plus the per-value
// cost of its bandwidth. For Proof plans one extra byte per internal
// edge is reserved for the proven-count field.
func (p *Plan) CollectionCost(net *network.Network, c *Costs) float64 {
	total := 0.0
	for i := 1; i < net.Size(); i++ {
		v := network.NodeID(i)
		if !p.UsesEdge(v) {
			continue
		}
		total += c.Msg[i] + c.ValueCost(v, p.Bandwidth[i])
		if p.Kind == Proof && len(net.Children(v)) > 0 {
			total += c.ProofMetaCost()
		}
	}
	return total
}

// TriggerCost returns the energy of the broadcast that starts a
// collection phase: every participating internal node rebroadcasts.
func (p *Plan) TriggerCost(net *network.Network, c *Costs) float64 {
	total := 0.0
	for _, v := range net.Preorder() {
		if len(net.Children(v)) == 0 {
			continue
		}
		// A node rebroadcasts when any child edge is used.
		for _, ch := range net.Children(v) {
			if p.UsesEdge(ch) {
				total += c.model.Trigger()
				break
			}
		}
	}
	return total
}

// InstallCost returns the energy of the initial distribution phase:
// each participating node receives, in one unicast from its parent, the
// bundle of encoded subplans (see wire.go) for every participating node
// in its subtree — its own part is peeled off and the rest relayed. The
// byte counts are actual encoding sizes, so bundles shrink with depth.
func (p *Plan) InstallCost(net *network.Network, c *Costs) float64 {
	total := 0.0
	for i := 1; i < net.Size(); i++ {
		v := network.NodeID(i)
		if !p.UsesEdge(v) {
			continue
		}
		total += c.Msg[i] + c.model.PerByte*float64(p.BundleBytes(net, v))
	}
	return total
}

// TotalBandwidth returns the sum of all edge bandwidths (total value
// transmissions budgeted per collection).
func (p *Plan) TotalBandwidth() int {
	t := 0
	for _, b := range p.Bandwidth[1:] {
		t += b
	}
	return t
}

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{%v participants=%d bandwidth=%d}", p.Kind, p.Participants(), p.TotalBandwidth())
}

// Describe renders a per-node table of the plan for logs and CLIs:
// which edges are used, their bandwidths, and (for selection plans)
// which nodes were chosen.
func (p *Plan) Describe(net *network.Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", p)
	fmt.Fprintf(&b, "%6s %6s %9s %6s %s\n", "node", "depth", "bandwidth", "chosen", "children-used")
	for _, v := range net.SortedByDepth() {
		if v != network.Root && !p.UsesEdge(v) {
			continue
		}
		used := 0
		for _, c := range net.Children(v) {
			if p.UsesEdge(c) {
				used++
			}
		}
		chosen := "-"
		if p.Chosen != nil {
			if p.Chosen[v] {
				chosen = "yes"
			} else {
				chosen = "no"
			}
		}
		fmt.Fprintf(&b, "%6d %6d %9d %6s %d/%d\n",
			v, net.Depth(v), p.Bandwidth[v], chosen, used, len(net.Children(v)))
	}
	return b.String()
}
