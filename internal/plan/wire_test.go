package plan

import (
	"math/rand"
	"reflect"
	"testing"

	"prospector/internal/network"
)

func randPlan(rng *rand.Rand, net *network.Network) *Plan {
	switch rng.Intn(3) {
	case 0:
		chosen := make([]bool, net.Size())
		for i := 1; i < net.Size(); i++ {
			chosen[i] = rng.Float64() < 0.4
		}
		p, err := NewSelection(net, chosen)
		if err != nil {
			panic(err)
		}
		return p
	case 1:
		bw := make([]int, net.Size())
		for _, v := range net.Preorder() {
			if v == network.Root {
				continue
			}
			parent := net.Parent(v)
			if parent != network.Root && bw[parent] == 0 {
				continue
			}
			bw[v] = rng.Intn(4)
			if s := net.SubtreeSize(v); bw[v] > s {
				bw[v] = s
			}
		}
		p, err := NewFiltering(net, bw)
		if err != nil {
			panic(err)
		}
		return p
	default:
		bw := make([]int, net.Size())
		for v := 1; v < net.Size(); v++ {
			bw[v] = 1 + rng.Intn(3)
			if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
				bw[v] = s
			}
		}
		p, err := NewProof(net, bw)
		if err != nil {
			panic(err)
		}
		return p
	}
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(60)
		parent := make([]network.NodeID, n)
		for i := 1; i < n; i++ {
			parent[i] = network.NodeID(rng.Intn(i))
		}
		net, err := network.New(parent, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := randPlan(rng, net)
		back, err := Decode(net, p.Encode())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Kind != p.Kind || !reflect.DeepEqual(back.Bandwidth, p.Bandwidth) {
			t.Fatalf("trial %d: round trip changed the plan", trial)
		}
		if !reflect.DeepEqual(back.Chosen, p.Chosen) {
			t.Fatalf("trial %d: chosen set changed", trial)
		}
	}
}

func TestSubplanEncoding(t *testing.T) {
	net := network.BalancedTree(2, 2)
	bw := []int{0, 3, 2, 1, 1, 1, 0} // child 6 unused
	p, err := NewFiltering(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	sub := p.EncodeSubplan(net, 2)
	// kind + bandwidth(2) + count + one child id (5; 6 is unused).
	if len(sub) != 6 {
		t.Fatalf("subplan = %v", sub)
	}
	if sub[0] != byte(Filtering) || sub[1] != 2 || sub[3] != 1 || sub[4] != 5 {
		t.Errorf("subplan bytes = %v", sub)
	}
	if got := p.SubplanBytes(net, 2); got != len(sub) {
		t.Errorf("SubplanBytes = %d, encoded %d", got, len(sub))
	}
	// Leaf subplan has no children section beyond the count.
	if got := p.SubplanBytes(net, 3); got != 4 {
		t.Errorf("leaf subplan bytes = %d", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	net := network.Line(4)
	p, err := NewFiltering(net, []int{0, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	good := p.Encode()
	cases := [][]byte{
		nil,
		good[:2],
		append(append([]byte{}, good...), 0xFF), // trailing
		append([]byte{9}, good[1:]...),          // bad kind
		func() []byte { b := append([]byte{}, good...); b[1] = 99; return b }(), // wrong size
	}
	for i, c := range cases {
		if _, err := Decode(net, c); err == nil {
			t.Errorf("case %d: Decode accepted corrupt data", i)
		}
	}
	// Selection without chosen bitmap.
	chosen := make([]bool, 4)
	chosen[2] = true
	sp, err := NewSelection(net, chosen)
	if err != nil {
		t.Fatal(err)
	}
	enc := sp.Encode()
	enc[len(enc)-2] = 0 // flip has-chosen flag... find its offset: 3+2*4
	bad := enc[:3+2*4+1]
	bad[3+2*4] = 0
	if _, err := Decode(net, bad); err == nil {
		t.Error("Decode accepted selection plan without chosen set")
	}
}

func TestInstallCostUsesRealBytes(t *testing.T) {
	net := network.BalancedTree(3, 2)
	p, err := NewProof(net, func() []int {
		bw := make([]int, net.Size())
		for v := 1; v < net.Size(); v++ {
			bw[v] = 1
		}
		return bw
	}())
	if err != nil {
		t.Fatal(err)
	}
	c := testCosts(net)
	// Bundle accounting: the edge above v carries every subplan of v's
	// participating subtree, each sized by its real encoding.
	want := 0.0
	for i := 1; i < net.Size(); i++ {
		v := network.NodeID(i)
		bundle := 0
		for _, d := range net.Descendants(v) {
			bundle += len(p.EncodeSubplan(net, d))
		}
		want += c.Msg[i] + c.Model().PerByte*float64(bundle)
	}
	if got := p.InstallCost(net, c); got != want {
		t.Errorf("InstallCost = %g, want %g", got, want)
	}
	// A deeper node's bundle is never larger than its parent's.
	for i := 1; i < net.Size(); i++ {
		v := network.NodeID(i)
		if par := net.Parent(v); par != network.Root {
			if p.BundleBytes(net, v) > p.BundleBytes(net, par) {
				t.Errorf("bundle grew from %d to %d descending to node %d",
					p.BundleBytes(net, par), p.BundleBytes(net, v), v)
			}
		}
	}
}
