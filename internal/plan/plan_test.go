package plan

import (
	"math"
	"strings"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/network"
)

func testCosts(net *network.Network) *Costs {
	return NewCosts(net, energy.DefaultModel())
}

func TestNewSelectionDerivesBandwidth(t *testing.T) {
	net := network.BalancedTree(2, 2) // 7 nodes: 0; 1,2; 3,4 under 1; 5,6 under 2
	chosen := make([]bool, 7)
	chosen[3], chosen[4], chosen[6] = true, true, true
	p, err := NewSelection(net, chosen)
	if err != nil {
		t.Fatal(err)
	}
	// Edge above 1 carries nodes 3 and 4; edge above 2 carries node 6.
	if p.Bandwidth[1] != 2 || p.Bandwidth[2] != 1 {
		t.Errorf("bandwidth = %v", p.Bandwidth)
	}
	if p.Bandwidth[3] != 1 || p.Bandwidth[5] != 0 {
		t.Errorf("leaf bandwidths = %v", p.Bandwidth)
	}
	// Participants: the root plus the used edges above 1, 2, 3, 4, 6.
	if p.Participants() != 6 {
		t.Errorf("participants = %d, want 6", p.Participants())
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	net := network.Line(4)
	if _, err := NewFiltering(net, []int{0, 1, 2}); err == nil {
		t.Error("accepted wrong length")
	}
	if _, err := NewFiltering(net, []int{0, -1, 0, 0}); err == nil {
		t.Error("accepted negative bandwidth")
	}
	if _, err := NewFiltering(net, []int{0, 9, 1, 1}); err == nil {
		t.Error("accepted bandwidth above subtree size")
	}
	// Used edge below an unused one.
	if _, err := NewFiltering(net, []int{0, 1, 0, 1}); err == nil {
		t.Error("accepted disconnected usage")
	}
	if _, err := NewProof(net, []int{0, 1, 1, 0}); err == nil {
		t.Error("proof plan accepted an unused edge")
	}
}

func TestCollectionCostBreakdown(t *testing.T) {
	net := network.Line(3) // edges above 1 and 2
	c := testCosts(net)
	p, err := NewFiltering(net, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Model()
	want := (m.PerMessage + 2*m.PerValue()) + (m.PerMessage + 1*m.PerValue())
	if got := p.CollectionCost(net, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("CollectionCost = %g, want %g", got, want)
	}
	// Proof plans reserve one byte per internal edge.
	pp, err := NewProof(net, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantProof := want + m.PerByte // node 1 is internal; node 2 is a leaf
	if got := pp.CollectionCost(net, c); math.Abs(got-wantProof) > 1e-12 {
		t.Errorf("proof CollectionCost = %g, want %g", got, wantProof)
	}
}

func TestTriggerCost(t *testing.T) {
	net := network.BalancedTree(2, 2)
	c := testCosts(net)
	bw := []int{0, 1, 0, 1, 0, 0, 0} // only the subtree under node 1 used
	p, err := NewFiltering(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	// Rebroadcasters: root (child 1 used) and node 1 (child 3 used).
	want := 2 * c.Model().Trigger()
	if got := p.TriggerCost(net, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("TriggerCost = %g, want %g", got, want)
	}
}

func TestInstallCostCoversParticipants(t *testing.T) {
	net := network.BalancedTree(2, 3)
	c := testCosts(net)
	all := make([]bool, net.Size())
	for i := 1; i < net.Size(); i++ {
		all[i] = true
	}
	p, err := NewSelection(net, all)
	if err != nil {
		t.Fatal(err)
	}
	got := p.InstallCost(net, c)
	// At least one message per non-root node.
	min := float64(net.Size()-1) * c.Model().PerMessage
	if got < min {
		t.Errorf("InstallCost %g below message floor %g", got, min)
	}
	// Install is the same order as collection (the paper's claim).
	collect := p.CollectionCost(net, c)
	if got > 3*collect {
		t.Errorf("InstallCost %g far above collection %g", got, collect)
	}
}

func TestInflateForFailures(t *testing.T) {
	net := network.Line(3)
	c := testCosts(net)
	baseMsg := c.Msg[1]
	prob := []float64{0, 0.5, 0}
	if err := c.InflateForFailures(prob, 0.6); err != nil {
		t.Fatal(err)
	}
	want := baseMsg * (1 + 0.5*0.6)
	if math.Abs(c.Msg[1]-want) > 1e-12 {
		t.Errorf("inflated Msg[1] = %g, want %g", c.Msg[1], want)
	}
	if c.Msg[2] != baseMsg {
		t.Errorf("Msg[2] changed to %g", c.Msg[2])
	}
	if err := c.InflateForFailures([]float64{0, 2, 0}, 1); err == nil {
		t.Error("accepted probability > 1")
	}
	if err := c.InflateForFailures([]float64{0}, 1); err == nil {
		t.Error("accepted short probability vector")
	}
}

func TestUsesEdgeAndTotals(t *testing.T) {
	net := network.Line(4)
	p, err := NewFiltering(net, []int{0, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.UsesEdge(network.Root) {
		t.Error("root has no edge")
	}
	if !p.UsesEdge(2) {
		t.Error("edge above 2 should be used")
	}
	if got := p.TotalBandwidth(); got != 6 {
		t.Errorf("TotalBandwidth = %d", got)
	}
	if got := p.Participants(); got != 4 {
		t.Errorf("Participants = %d", got)
	}
}

func TestDescribe(t *testing.T) {
	net := network.BalancedTree(2, 2)
	chosen := make([]bool, net.Size())
	chosen[3], chosen[6] = true, true
	p, err := NewSelection(net, chosen)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Describe(net)
	for _, want := range []string{"selection", "bandwidth", "chosen", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	// Unused-edge nodes are omitted (node 5 has no chosen descendant).
	if strings.Contains(out, "\n     5 ") {
		t.Errorf("Describe lists unused node:\n%s", out)
	}
}
