package core

import (
	"prospector/internal/lp"
)

// tieEps is the deterministic tie-break perturbation the LP builders
// put on objective-neutral variables (bandwidths, and candidate ties).
// The planners' programs are massively degenerate — many optimal
// vertices share one objective value but round to different plans —
// and which vertex a simplex run lands on depends on its pivot path,
// so a warm dual-recovery chain and a cold two-phase run could
// legitimately disagree. Index-distinct epsilons make the optimum a
// unique vertex, so every correct solve path returns the same plan
// (the warm-vs-cold differential tests rely on this). The value must
// exceed the solver's optimality tolerance (1e-7) to be acted on, and
// stay far below the objective's integral gaps (1.0) to never change
// which plans are genuinely optimal.
const tieEps = 1e-5

// paramLP is the cached parametric program behind an LP planner's
// Plan(budget) calls. The figure sweeps hammer one planner with a
// monotone budget axis over fixed (network, samples) state; the only
// thing that changes between calls is the budget row's right-hand
// side. So the planner builds its model once, keeps the solver
// workspace and the optimal basis, and serves each successive budget
// with an in-place SetRHS plus a warm re-solve — dual recovery pivots
// instead of two cold simplex phases, and no model canonicalization
// at all.
//
// The cache is keyed on the sample window's mutation generation
// (sample.Set.Gen): the adaptive runner slides the window in place, so
// any observed mutation rebuilds the program. A paramLP (and therefore
// any planner holding one) is not safe for concurrent use; experiment
// trials each build their own planners.
//
//confine:goroutine
type paramLP struct {
	model *lp.Model
	// budgetRow is the retained index of the cost row, or -1 when the
	// model has no budget row to update (degenerate all-zero costs).
	budgetRow int
	// fixed is the cost already committed before the budget row's
	// variable terms (PROOF's mandatory per-edge messages); the row's
	// rhs is budget - fixed.
	fixed float64
	ws    *lp.Workspace
	basis *lp.Basis
	gen   uint64
	built bool
	empty bool // no candidates: Plan short-circuits without a model
	// own enforces the //confine:goroutine contract dynamically under
	// the prospector_debug build tag; zero-cost otherwise.
	own owner
}

// fresh reports whether the cached program still describes cfg's
// sample window.
func (c *paramLP) fresh(cfg Config) bool {
	c.own.assert("parametric planner")
	return c.built && c.gen == cfg.Samples.Gen()
}

// install caches a freshly built model. The workspace survives
// rebuilds (its buffers re-grow at most once per shape); the basis
// chain does not.
func (c *paramLP) install(cfg Config, model *lp.Model, budgetRow int, fixed float64) {
	c.model = model
	c.budgetRow = budgetRow
	c.fixed = fixed
	if c.ws == nil {
		c.ws = lp.NewWorkspace()
	}
	c.basis = nil
	c.gen = cfg.Samples.Gen()
	c.built = true
	c.empty = false
}

// installEmpty caches the "no candidates" outcome, which needs no LP.
func (c *paramLP) installEmpty(cfg Config) {
	c.model = nil
	c.basis = nil
	c.gen = cfg.Samples.Gen()
	c.built = true
	c.empty = true
}

// solve points the budget row at the new budget and re-solves: warm
// from the chained basis when one exists, cold-direct otherwise. Any
// non-optimal outcome (an IterationLimit mid-chain, a numerically
// wedged basis) breaks the chain and falls back to the legacy presolve
// path on the same mutated model, which also re-arms the next call to
// start a fresh chain.
//
// The steady state — an intact chain served warm, no tracing — is the
// figure sweeps' inner loop and stays off the heap; the blessed call
// edges below mark where the cold and error paths are allowed to
// allocate (TestParametricSolveAllocFree pins the runtime truth).
//
//alloc:none
func (c *paramLP) solve(cfg Config, budget float64) (*lp.Solution, error) {
	c.own.assert("parametric planner")
	if c.budgetRow >= 0 {
		//alloc:amortized SetRHS writes one float in place; it allocates only to construct an invalid-row error
		if err := c.model.SetRHS(c.budgetRow, budget-c.fixed); err != nil {
			return nil, err
		}
	}
	opts := cfg.lpOptions()
	opts.Workspace = c.ws
	opts.KeepBasis = true
	opts.Warm = c.basis
	//alloc:amortized first solve and broken-chain recovery run cold; warm re-solves reuse the workspace (lp's annotated warm chain, BenchmarkWarmResolveSteadyState)
	sol, err := c.model.Solve(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status == lp.Optimal {
		c.basis = sol.Basis
		return sol, nil
	}
	c.basis = nil
	//alloc:amortized chain-break fallback re-solves cold through presolve; it never runs in an intact warm chain
	return cfg.solveLP(c.model)
}
