//go:build prospector_debug

package core

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// owner is the dynamic twin of the static confine contract: under the
// prospector_debug build tag a planner records the goroutine that
// first touches its LP cache and panics on any call from another one.
// Release builds compile this to nothing (owner_release.go).
type owner struct {
	gid int64
}

// goroutineID parses the current goroutine's id out of the stack
// header ("goroutine 17 [running]:"). Slow, which is fine: it only
// exists under the debug tag.
func goroutineID() int64 {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	s := strings.TrimPrefix(string(buf), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseInt(s[:i], 10, 64); err == nil {
			return id
		}
	}
	return -1
}

// assert claims ownership on first use and panics on a cross-goroutine
// call.
func (o *owner) assert(what string) {
	g := goroutineID()
	if o.gid == 0 {
		o.gid = g
		return
	}
	if o.gid != g {
		panic(fmt.Sprintf(
			"core: %s used from goroutine %d but owned by goroutine %d; planners are //confine:goroutine — build one per goroutine or hand it off explicitly",
			what, g, o.gid))
	}
}
