package core

import (
	"math/rand"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

func TestAdaptiveRunnerSteadyState(t *testing.T) {
	s := makeScenario(t, 20, 24, 5, 8)
	rng := rand.New(rand.NewSource(21))
	lf, err := NewLPFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveKPlan(s.cfg.Net, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.35 * naive.CollectionCost(s.cfg.Net, s.cfg.Costs)
	policy := DefaultAdaptivePolicy()
	policy.ReplanEvery = 5
	policy.CheckEvery = 10
	r, err := NewRunner(s.cfg, lf, budget, policy, rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(24), rng)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 20; e++ {
		if _, err := r.Step(src.Next()); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	st := r.Stats
	if st.Epochs != 20 {
		t.Errorf("epochs = %d", st.Epochs)
	}
	if st.Replans < 5 { // 1 initial + 20/5
		t.Errorf("replans = %d", st.Replans)
	}
	if st.SpotChecks != 2 {
		t.Errorf("spot checks = %d", st.SpotChecks)
	}
	if st.Disseminated > st.Replans {
		t.Errorf("disseminated %d > replans %d", st.Disseminated, st.Replans)
	}
	if st.Energy.Total() <= 0 {
		t.Error("no energy accounted")
	}
	if st.MeanAccuracy() <= 0.2 {
		t.Errorf("mean accuracy %.2f too low for a steady workload", st.MeanAccuracy())
	}
}

func TestAdaptiveRunnerRaisesSamplingUnderDrift(t *testing.T) {
	// Feed the runner a workload whose hot cluster moves to a
	// different subtree: the proof-carrying spot check cannot prove
	// the drifted top k through the one-value bandwidth it allocated
	// there, so the sampling rate must rise.
	const k = 4
	rng := rand.New(rand.NewSource(22))
	net := network.BalancedTree(3, 3) // 40 nodes
	nodes := net.Size()
	costs := plan.NewCosts(net, energy.DefaultModel())
	set := sample.MustNewSet(nodes, k, 8)

	// A regime makes k nodes of one subtree hot.
	subtreeA := net.Descendants(1) // first child's subtree
	subtreeB := net.Descendants(3) // third child's subtree
	regime := func(hot []network.NodeID) []float64 {
		v := make([]float64, nodes)
		for i := range v {
			v[i] = 50 + rng.NormFloat64()
		}
		for i := 0; i < k; i++ {
			v[hot[1+i]] += 30 // skip the subtree root itself
		}
		return v
	}
	for e := 0; e < 8; e++ {
		if err := set.Add(regime(subtreeA)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Net: net, Costs: costs, Samples: set, K: k}
	lf, err := NewLPFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveKPlan(net, k)
	if err != nil {
		t.Fatal(err)
	}
	policy := DefaultAdaptivePolicy()
	policy.ReplanEvery = 4
	policy.CheckEvery = 5
	policy.MinRate = 0.05
	// A near-minimum proof budget leaves no slack bandwidth, so the
	// drifted cluster cannot be proven through its b=1 edges.
	policy.CheckBudgetMult = 1.02
	r, err := NewRunner(cfg, lf, 0.3*naive.CollectionCost(net, costs), policy, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := r.SamplingRate()
	// Regime B: the hot cluster jumps to another subtree.
	for e := 0; e < 10; e++ {
		if _, err := r.Step(regime(subtreeB)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Stats.SpotChecks == 0 {
		t.Fatal("no spot checks ran")
	}
	if r.SamplingRate() <= before {
		t.Errorf("sampling rate %.3f did not rise from %.3f under drift", r.SamplingRate(), before)
	}
}

func TestRunnerValidation(t *testing.T) {
	s := makeScenario(t, 23, 20, 4, 5)
	rng := rand.New(rand.NewSource(23))
	g, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultAdaptivePolicy()
	bad.ImproveFactor = 0.5
	if _, err := NewRunner(s.cfg, g, 50, bad, rng); err == nil {
		t.Error("accepted ImproveFactor < 1")
	}
	if _, err := NewRunner(s.cfg, nil, 50, DefaultAdaptivePolicy(), rng); err == nil {
		t.Error("accepted nil planner")
	}
}

func TestGeneralizedSelectionQueryPlanning(t *testing.T) {
	// The paper's Section 3 generalization: plan a selection query
	// (readings > tau) with LP-LF over a threshold-marked sample set.
	const nodes = 30
	rng := rand.New(rand.NewSource(24))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	const tau = 58.0
	set, err := sample.NewGeneralSet(nodes, 0, sample.ThresholdMarker(tau))
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.AddAll(workload.Draw(src, 12)); err != nil {
		t.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := Config{Net: net, Costs: costs, Samples: set, K: 5}
	l, err := NewLPNoFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Plan(40)
	if err != nil {
		t.Fatal(err)
	}
	// The plan should target nodes that historically exceed tau.
	env := exec.Env{Net: net, Costs: costs}
	hits, want := 0, 0
	for e := 0; e < 10; e++ {
		truth := src.Next()
		res, err := exec.Run(env, p, truth)
		if err != nil {
			t.Fatal(err)
		}
		got := map[network.NodeID]bool{}
		for _, v := range res.Returned {
			got[v.Node] = true
		}
		for i, v := range truth {
			if v > tau {
				want++
				if got[network.NodeID(i)] {
					hits++
				}
			}
		}
	}
	if want == 0 {
		t.Skip("degenerate draw: no readings above tau")
	}
	if frac := float64(hits) / float64(want); frac < 0.4 {
		t.Errorf("selection plan caught %.0f%% of exceedances", 100*frac)
	}
}
