//go:build prospector_debug

package core

import (
	"strings"
	"testing"
)

// TestOwnerSameGoroutine proves repeated use from the owning goroutine
// stays silent.
func TestOwnerSameGoroutine(t *testing.T) {
	var o owner
	o.assert("planner")
	o.assert("planner")
}

// TestOwnerCrossGoroutinePanics proves the debug build turns a
// cross-goroutine planner call into a panic naming both goroutines.
func TestOwnerCrossGoroutinePanics(t *testing.T) {
	var o owner
	o.assert("planner")
	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		o.assert("planner")
	}()
	v := <-got
	if v == nil {
		t.Fatal("cross-goroutine assert did not panic")
	}
	msg, ok := v.(string)
	if !ok || !strings.Contains(msg, "confine:goroutine") {
		t.Fatalf("panic = %v, want a message pointing at the confine contract", v)
	}
}
