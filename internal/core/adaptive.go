package core

import (
	"fmt"
	"math/rand"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/plan"
	"prospector/internal/sample"
)

// AdaptivePolicy tunes the long-running query controller implementing
// the operational policies of Section 4.4: plan re-calculation at the
// base station with dissemination only when it pays, periodic
// proof-carrying spot checks driving the re-sampling rate, and
// exploration/exploitation sampling.
type AdaptivePolicy struct {
	// ReplanEvery is how many epochs pass between re-optimizations at
	// the base station (free: the station has line power).
	ReplanEvery int
	// ImproveFactor is how much better (in expected sample hits) a
	// recomputed plan must be before the controller pays to
	// disseminate it. The paper: "only if this plan performs
	// considerably better than the current one, do we disseminate it."
	ImproveFactor float64
	// CheckEvery is how many epochs pass between proof-carrying spot
	// checks of result accuracy.
	CheckEvery int
	// CheckBudgetMult scales the spot check's phase-1 budget over the
	// proof minimum.
	CheckBudgetMult float64
	// SpotCheckSamples caps how many recent samples the spot check's
	// PROOF program plans over (its LP grows with samples x nodes x
	// depth; accuracy of this knowledge only affects cost, never
	// correctness). 0 means 5.
	SpotCheckSamples int
	// LowAccuracy is the proven fraction below which the sampling
	// rate doubles; HighAccuracy is the fraction above which it
	// halves (never leaving [MinRate, MaxRate]).
	LowAccuracy, HighAccuracy float64
	MinRate, MaxRate          float64
}

// DefaultAdaptivePolicy returns moderate settings.
func DefaultAdaptivePolicy() AdaptivePolicy {
	return AdaptivePolicy{
		ReplanEvery:     10,
		ImproveFactor:   1.15,
		CheckEvery:      25,
		CheckBudgetMult: 1.3,
		LowAccuracy:     0.5,
		HighAccuracy:    0.9,
		MinRate:         0.02,
		MaxRate:         0.5,
	}
}

func (p AdaptivePolicy) validate() error {
	if p.ReplanEvery < 1 || p.CheckEvery < 1 {
		return fmt.Errorf("core: ReplanEvery and CheckEvery must be positive")
	}
	if p.ImproveFactor < 1 {
		return fmt.Errorf("core: ImproveFactor must be >= 1, got %g", p.ImproveFactor)
	}
	if p.MinRate <= 0 || p.MaxRate > 1 || p.MinRate > p.MaxRate {
		return fmt.Errorf("core: sampling rates must satisfy 0 < min <= max <= 1")
	}
	return nil
}

// Runner executes a standing approximate top-k query epoch after
// epoch, adapting to drift per Section 4.4. Drive it by calling Step
// with each new epoch's ground-truth readings.
type Runner struct {
	cfg       Config
	policy    AdaptivePolicy
	planner   Planner
	budget    float64
	env       exec.Env
	collector *sample.Collector
	current   *plan.Plan
	currentEV int // expected sample hits of the current plan
	epoch     int
	// Stats accumulates what the run spent and achieved.
	Stats RunnerStats
}

// RunnerStats summarizes a Runner's history.
type RunnerStats struct {
	Epochs        int
	Replans       int
	Disseminated  int
	SpotChecks    int
	SamplesTaken  int
	Energy        energy.Ledger
	AccuracySum   float64 // vs ground truth, for reporting only
	ProvenLastChk int
}

// MeanAccuracy returns the mean ground-truth accuracy across epochs.
func (s RunnerStats) MeanAccuracy() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return s.AccuracySum / float64(s.Epochs)
}

// NewRunner assembles the adaptive controller. The planner is re-run
// every ReplanEvery epochs against the evolving sample window; budget
// bounds each collection phase.
func NewRunner(cfg Config, planner Planner, budget float64, policy AdaptivePolicy, rng *rand.Rand) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := policy.validate(); err != nil {
		return nil, err
	}
	if planner == nil {
		return nil, fmt.Errorf("core: runner needs a planner")
	}
	collector, err := sample.NewCollector(cfg.Samples, cfg.Net, cfg.Costs.Model(), policy.MinRate*2, rng)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:       cfg,
		policy:    policy,
		planner:   planner,
		budget:    budget,
		env:       exec.Env{Net: cfg.Net, Costs: cfg.Costs, Obs: cfg.Obs},
		collector: collector,
	}
	if err := r.replan(true); err != nil {
		return nil, err
	}
	return r, nil
}

// Plan returns the currently installed plan.
func (r *Runner) Plan() *plan.Plan { return r.current }

// planValue scores a plan by its expected sample hits.
func (r *Runner) planValue(p *plan.Plan) int {
	switch p.Kind {
	case plan.Selection:
		return selectionObjective(r.cfg, p.Chosen)
	default:
		return bandwidthCoverage(r.cfg, p.Bandwidth)
	}
}

// replan recomputes the optimal plan at the base station and installs
// it if it is the first plan or beats the current one by
// ImproveFactor. Installation pays the dissemination cost.
func (r *Runner) replan(force bool) error {
	p, err := r.planner.Plan(r.budget)
	if err != nil {
		return err
	}
	r.Stats.Replans++
	if r.cfg.Obs != nil {
		r.cfg.Obs.Counter("core.runner.replans").Inc()
	}
	value := r.planValue(p)
	if !force && float64(value) < float64(r.currentEV)*r.policy.ImproveFactor {
		return nil // not considerably better; keep the installed plan
	}
	r.current = p
	r.currentEV = value
	r.Stats.Disseminated++
	if r.cfg.Obs != nil {
		r.cfg.Obs.Counter("core.runner.disseminations").Inc()
	}
	r.Stats.Energy.Install += p.InstallCost(r.cfg.Net, r.cfg.Costs)
	return nil
}

// Step processes one epoch: maybe sample, maybe replan, maybe spot
// check, then execute the standing query. It returns the epoch's
// result.
func (r *Runner) Step(truth []float64) (*exec.Result, error) {
	r.epoch++
	r.Stats.Epochs++
	sampled, err := r.collector.Observe(truth)
	if err != nil {
		return nil, err
	}
	if sampled {
		r.Stats.SamplesTaken++
	}
	if r.epoch%r.policy.ReplanEvery == 0 {
		if err := r.replan(false); err != nil {
			return nil, err
		}
	}
	if r.epoch%r.policy.CheckEvery == 0 {
		if err := r.spotCheck(truth); err != nil {
			return nil, err
		}
	}
	res, err := exec.Run(r.env, r.current, truth)
	if err != nil {
		return nil, err
	}
	r.Stats.Energy.Add(res.Ledger)
	r.Stats.AccuracySum += res.Accuracy(truth, r.cfg.K)
	if r.cfg.Obs != nil {
		r.cfg.Obs.Counter("core.runner.epochs").Inc()
		r.cfg.Obs.Gauge("core.runner.sampling_rate").Set(r.collector.Rate())
		r.cfg.Obs.Gauge("core.runner.mean_accuracy").Set(r.Stats.MeanAccuracy())
	}
	return res, nil
}

// spotCheck runs a proof-carrying plan to measure, without trusting
// the model, how many of the top k the sample-driven plans can still
// prove — and adjusts the sampling rate accordingly (the paper's
// re-sampling policy).
func (r *Runner) spotCheck(truth []float64) error {
	cfg := r.cfg
	cap := r.policy.SpotCheckSamples
	if cap <= 0 {
		cap = 5
	}
	if cfg.Samples.Len() > cap {
		trimmed := sample.MustNewSet(cfg.Samples.Nodes(), cfg.Samples.K(), cap)
		for j := cfg.Samples.Len() - cap; j < cfg.Samples.Len(); j++ {
			if err := trimmed.Add(cfg.Samples.Values(j)); err != nil {
				return err
			}
		}
		cfg.Samples = trimmed
	}
	pp, err := NewProofPlanner(cfg)
	if err != nil {
		return err
	}
	p, err := pp.Plan(pp.MinBudget() * r.policy.CheckBudgetMult)
	if err != nil {
		return err
	}
	res, err := exec.Run(r.env, p, truth)
	if err != nil {
		return err
	}
	r.Stats.SpotChecks++
	r.Stats.Energy.Add(res.Ledger)
	proven := res.Proven
	if proven > r.cfg.K {
		proven = r.cfg.K
	}
	r.Stats.ProvenLastChk = proven
	frac := float64(proven) / float64(r.cfg.K)
	if r.cfg.Obs != nil {
		r.cfg.Obs.Counter("core.runner.spot_checks").Inc()
		r.cfg.Obs.Gauge("core.runner.proven_fraction").Set(frac)
	}
	rate := r.collector.Rate()
	switch {
	case frac < r.policy.LowAccuracy:
		rate *= 2
	case frac > r.policy.HighAccuracy:
		rate /= 2
	default:
		return nil
	}
	if rate < r.policy.MinRate {
		rate = r.policy.MinRate
	}
	if rate > r.policy.MaxRate {
		rate = r.policy.MaxRate
	}
	return r.collector.SetRate(rate)
}

// SamplingRate exposes the collector's current rate (for tests and
// telemetry).
func (r *Runner) SamplingRate() float64 { return r.collector.Rate() }
