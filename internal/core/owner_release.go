//go:build !prospector_debug

package core

// owner is a no-op in release builds; the prospector_debug tag swaps
// in the asserting version (owner_debug.go) that records the owning
// goroutine and panics on cross-goroutine planner use.
type owner struct{}

// assert is free in release builds: no goroutine id, no branch.
func (o *owner) assert(string) {}
