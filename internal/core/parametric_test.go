package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"prospector/internal/obs"
	"prospector/internal/plan"
	"prospector/internal/workload"
)

// planKinds enumerates the parametric LP planners under differential
// test, each with a budget axis sized to its cost structure.
type diffCase struct {
	name    string
	make    func(cfg Config) (Planner, error)
	budgets func(cfg Config) []float64
}

func diffCases() []diffCase {
	return []diffCase{
		{
			name: "LP-LF",
			make: func(cfg Config) (Planner, error) { return NewLPNoFilter(cfg) },
			budgets: func(cfg Config) []float64 {
				return []float64{25, 40, 60, 90, 140, 220, 350}
			},
		},
		{
			name: "LP+LF",
			make: func(cfg Config) (Planner, error) { return NewLPFilter(cfg) },
			budgets: func(cfg Config) []float64 {
				return []float64{30, 50, 80, 130, 210, 340}
			},
		},
		{
			name: "Proof",
			make: func(cfg Config) (Planner, error) { return NewProofPlanner(cfg) },
			budgets: func(cfg Config) []float64 {
				pp, err := NewProofPlanner(cfg)
				if err != nil {
					panic(err)
				}
				min := pp.MinBudget()
				return []float64{min * 1.05, min * 1.2, min * 1.4, min * 1.7, min * 2.1, min * 2.6}
			},
		},
	}
}

func plansEqual(a, b *plan.Plan) bool {
	return a.Kind == b.Kind &&
		reflect.DeepEqual(a.Bandwidth, b.Bandwidth) &&
		reflect.DeepEqual(a.Chosen, b.Chosen)
}

// TestWarmDifferentialMatchesCold is the acceptance test for the
// parametric pipeline: a single planner serving a whole budget sweep
// through its warm basis chain must emit bitwise-identical plans to the
// legacy path that rebuilds and cold-solves every call, for all three
// LP planners, across seeds and a randomized budget order.
func TestWarmDifferentialMatchesCold(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{11, 22, 33} {
				nodes, k, nSamples := 25, 5, 6
				if tc.name == "LP-LF" {
					nodes, k, nSamples = 40, 8, 10
				}
				s := makeScenario(t, seed, nodes, k, nSamples)

				warmCfg := s.cfg
				warm, err := tc.make(warmCfg)
				if err != nil {
					t.Fatal(err)
				}
				// The cold reference rebuilds the model every call and
				// cold-solves it directly. Presolve stays off on both
				// sides: on degenerate programs the reduced model can
				// land on a different optimal vertex (same objective,
				// different rounding), which would mask what this test
				// isolates — that the warm basis chain itself never
				// changes the answer.
				coldCfg := s.cfg
				coldCfg.DisableWarm = true
				coldCfg.DisablePresolve = true
				cold, err := tc.make(coldCfg)
				if err != nil {
					t.Fatal(err)
				}

				budgets := tc.budgets(s.cfg)
				if len(budgets) < 6 {
					t.Fatalf("need >= 6 budgets, have %d", len(budgets))
				}
				// Randomized sweep order: warm chains must not depend on a
				// monotone budget axis.
				rng := rand.New(rand.NewSource(seed * 1000003))
				rng.Shuffle(len(budgets), func(i, j int) {
					budgets[i], budgets[j] = budgets[j], budgets[i]
				})

				for _, budget := range budgets {
					wp, err := warm.Plan(budget)
					if err != nil {
						t.Fatalf("seed %d budget %g: warm: %v", seed, budget, err)
					}
					cp, err := cold.Plan(budget)
					if err != nil {
						t.Fatalf("seed %d budget %g: cold: %v", seed, budget, err)
					}
					if !plansEqual(wp, cp) {
						t.Errorf("seed %d budget %g: warm plan %v != cold plan %v",
							seed, budget, wp, cp)
					}
				}
			}
		})
	}
}

// TestWarmChainIsActuallyWarm pins that a budget sweep through one
// planner hits the warm path: exactly one cold solve (the first call)
// and warm re-solves for the rest, visible through the lp.* counters.
func TestWarmChainIsActuallyWarm(t *testing.T) {
	s := makeScenario(t, 17, 40, 8, 10)
	reg := obs.NewRegistry()
	cfg := s.cfg
	cfg.Obs = reg
	p, err := NewLPNoFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{30, 55, 85, 120, 170, 240}
	for _, b := range budgets {
		if _, err := p.Plan(b); err != nil {
			t.Fatalf("budget %g: %v", b, err)
		}
	}
	colds := reg.Counter("lp.cold_solves").Value()
	warms := reg.Counter("lp.warm_resolves").Value()
	if colds != 1 {
		t.Errorf("cold solves = %d, want exactly 1 (the chain opener)", colds)
	}
	if want := int64(len(budgets) - 1); warms != want {
		t.Errorf("warm re-solves = %d, want %d", warms, want)
	}
	// The derived warm-hit rate must agree with the raw counters: with
	// no fallbacks, warm / (warm + cold) of this sweep.
	rate := reg.Gauge("lp.warm_hit_rate").Value()
	want := float64(warms) / float64(warms+colds)
	if diff := rate - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("lp.warm_hit_rate = %g, want %g", rate, want)
	}
}

// TestParametricRebuildOnSampleChange pins the cache key: mutating the
// sample window mid-chain must rebuild the program, and the rebuilt
// chain must still match the cold reference on the new window.
func TestParametricRebuildOnSampleChange(t *testing.T) {
	s := makeScenario(t, 29, 30, 6, 8)
	warm, err := NewLPNoFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := s.cfg
	coldCfg.DisableWarm = true
	cold, err := NewLPNoFilter(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, budget float64) {
		t.Helper()
		wp, err := warm.Plan(budget)
		if err != nil {
			t.Fatalf("%s: warm: %v", label, err)
		}
		cp, err := cold.Plan(budget)
		if err != nil {
			t.Fatalf("%s: cold: %v", label, err)
		}
		if !plansEqual(wp, cp) {
			t.Errorf("%s: warm plan %v != cold plan %v", label, wp, cp)
		}
	}
	check("before", 60)
	check("before", 110)

	// Slide the window: same Len going forward, different content.
	rng := rand.New(rand.NewSource(5150))
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(s.cfg.Net.Size()), rng)
	if err != nil {
		t.Fatal(err)
	}
	gen := s.cfg.Samples.Gen()
	if err := s.cfg.Samples.AddAll(workload.Draw(src, 3)); err != nil {
		t.Fatal(err)
	}
	if s.cfg.Samples.Gen() == gen {
		t.Fatal("sample generation did not advance on Add")
	}
	check("after", 60)
	check("after", 110)
}

// TestParametricEmptyCandidates covers the degenerate program: when no
// non-root node ever ranks in the top k, the parametric path must
// short-circuit to the empty plan just like the legacy path, and keep
// doing so across the chain.
func TestParametricEmptyCandidates(t *testing.T) {
	s := makeScenario(t, 3, 12, 1, 5)
	// Force every sample's top-1 onto the root so no candidates exist.
	cfg := s.cfg
	set := cfg.Samples.Clone()
	cfg.Samples = set
	n := cfg.Net.Size()
	for j := 0; j < 5; j++ {
		vals := make([]float64, n)
		vals[0] = 1000 + float64(j)
		if err := set.Add(vals); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild the window with only root-topped samples.
	fresh, err := NewLPNoFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for range 2 {
		// Drain until only the forced samples would matter: simplest is
		// to just check the planner tolerates repeated calls.
		for _, b := range []float64{10, 20} {
			if _, err := fresh.Plan(b); err != nil {
				t.Fatalf("budget %g: %v", b, err)
			}
		}
	}
}

// TestWarmPlannerReuseAcrossKinds ensures each planner type owns an
// independent chain: interleaving two planners over the same Config
// must not cross-contaminate their cached programs.
func TestWarmPlannerReuseAcrossKinds(t *testing.T) {
	s := makeScenario(t, 41, 25, 5, 6)
	lplf, err := NewLPNoFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	lpf, err := NewLPFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := s.cfg
	coldCfg.DisableWarm = true
	coldCfg.DisablePresolve = true
	coldLplf, _ := NewLPNoFilter(coldCfg)
	coldLpf, _ := NewLPFilter(coldCfg)
	for i, budget := range []float64{40, 70, 110, 180} {
		label := fmt.Sprintf("step %d budget %g", i, budget)
		wp, err := lplf.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := coldLplf.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(wp, cp) {
			t.Errorf("%s: LP-LF warm != cold", label)
		}
		wf, err := lpf.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := coldLpf.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(wf, cf) {
			t.Errorf("%s: LP+LF warm != cold", label)
		}
	}
}
