package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

// testScenario builds a random network, samples, and ground truth.
type testScenario struct {
	cfg   Config
	env   exec.Env
	truth [][]float64 // held-out epochs for evaluation
}

func makeScenario(t testing.TB, seed int64, nodes, k, nSamples int) *testScenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, nSamples)); err != nil {
		t.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := Config{Net: net, Costs: costs, Samples: set, K: k}
	return &testScenario{
		cfg:   cfg,
		env:   exec.Env{Net: net, Costs: costs},
		truth: workload.Draw(src, 10),
	}
}

// meanAccuracy executes a plan over the held-out epochs.
func (s *testScenario) meanAccuracy(t testing.TB, p *plan.Plan) float64 {
	t.Helper()
	total := 0.0
	for _, vals := range s.truth {
		res, err := exec.Run(s.env, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Accuracy(vals, s.cfg.K)
	}
	return total / float64(len(s.truth))
}

func TestConfigValidation(t *testing.T) {
	s := makeScenario(t, 1, 20, 4, 5)
	bad := s.cfg
	bad.K = 0
	if _, err := NewGreedy(bad); err == nil {
		t.Error("accepted k = 0")
	}
	bad = s.cfg
	bad.Samples = sample.MustNewSet(20, 3, 0) // wrong k, empty
	if _, err := NewLPNoFilter(bad); err == nil {
		t.Error("accepted empty sample set with mismatched k")
	}
	bad = s.cfg
	bad.Net = nil
	if _, err := NewLPFilter(bad); err == nil {
		t.Error("accepted nil network")
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	s := makeScenario(t, 2, 40, 8, 12)
	g, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{10, 40, 100, 400} {
		p, err := g.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if cost := p.CollectionCost(s.cfg.Net, s.cfg.Costs); cost > budget+1e-9 {
			t.Errorf("budget %g: plan costs %g", budget, cost)
		}
	}
}

func TestGreedyMoreBudgetMoreAccuracy(t *testing.T) {
	s := makeScenario(t, 3, 40, 8, 12)
	g, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, err := g.Plan(30)
	if err != nil {
		t.Fatal(err)
	}
	high, err := g.Plan(500)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := s.meanAccuracy(t, low), s.meanAccuracy(t, high); b < a {
		t.Errorf("accuracy fell from %g to %g with 16x budget", a, b)
	}
}

func TestLPNoFilterRespectsBudgetAndBeatsGreedy(t *testing.T) {
	s := makeScenario(t, 4, 50, 10, 15)
	g, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLPNoFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	greedyWins := 0
	for _, budget := range []float64{40, 80, 160} {
		gp, err := g.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		lpp, err := l.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if cost := lpp.CollectionCost(s.cfg.Net, s.cfg.Costs); cost > budget+1e-9 {
			t.Errorf("budget %g: LP-LF plan costs %g", budget, cost)
		}
		// Compare on the planning objective (expected hits over
		// samples), where LP-LF should never lose to Greedy by much.
		gh := selectionObjective(s.cfg, gp.Chosen)
		lh := selectionObjective(s.cfg, lpp.Chosen)
		if lh < gh {
			greedyWins++
		}
	}
	if greedyWins > 1 {
		t.Errorf("greedy beat LP-LF on its own objective %d/3 times", greedyWins)
	}
}

func TestLPFilterRespectsBudget(t *testing.T) {
	s := makeScenario(t, 5, 40, 8, 10)
	f, err := NewLPFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{30, 90, 250} {
		p, err := f.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != plan.Filtering {
			t.Fatalf("kind = %v", p.Kind)
		}
		if cost := p.CollectionCost(s.cfg.Net, s.cfg.Costs); cost > budget+1e-9 {
			t.Errorf("budget %g: plan costs %g", budget, cost)
		}
		if err := p.Validate(s.cfg.Net); err != nil {
			t.Errorf("budget %g: %v", budget, err)
		}
	}
}

func TestLPFilterHighBudgetHighAccuracy(t *testing.T) {
	s := makeScenario(t, 6, 40, 8, 15)
	f, err := NewLPFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Plan(2000) // plenty for everything
	if err != nil {
		t.Fatal(err)
	}
	if acc := s.meanAccuracy(t, p); acc < 0.85 {
		t.Errorf("near-unconstrained LP+LF accuracy %g", acc)
	}
}

func TestBandwidthCoverageMatchesExecution(t *testing.T) {
	// The planning-time coverage estimator must agree with actually
	// executing the plan on each sample.
	s := makeScenario(t, 7, 30, 6, 8)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		bw := make([]int, s.cfg.Net.Size())
		for v := 1; v < s.cfg.Net.Size(); v++ {
			bw[v] = rng.Intn(4)
			if sz := s.cfg.Net.SubtreeSize(network.NodeID(v)); bw[v] > sz {
				bw[v] = sz
			}
		}
		enforceMonotone(s.cfg.Net, bw)
		p, err := plan.NewFiltering(s.cfg.Net, bw)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for j := 0; j < s.cfg.Samples.Len(); j++ {
			vals := s.cfg.Samples.Values(j)
			res, err := exec.Run(s.env, p, vals)
			if err != nil {
				t.Fatal(err)
			}
			top := exec.TrueTopK(vals, s.cfg.K)
			have := map[network.NodeID]bool{}
			for _, r := range res.Returned {
				have[r.Node] = true
			}
			for _, v := range top {
				if have[v.Node] {
					want++
				}
			}
		}
		if got := bandwidthCoverage(s.cfg, bw); got != want {
			t.Fatalf("trial %d: coverage estimate %d, execution %d", trial, got, want)
		}
	}
}

func TestProofPlannerBudgets(t *testing.T) {
	s := makeScenario(t, 8, 25, 5, 6)
	pp, err := NewProofPlanner(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	min := pp.MinBudget()
	if _, err := pp.Plan(min * 0.5); err == nil {
		t.Error("accepted budget below the all-edges minimum")
	}
	p, err := pp.Plan(min * 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != plan.Proof {
		t.Fatalf("kind = %v", p.Kind)
	}
	for v := 1; v < s.cfg.Net.Size(); v++ {
		if p.Bandwidth[v] < 1 {
			t.Fatalf("proof plan leaves edge %d unused", v)
		}
	}
	if cost := proofCost(s.cfg, p.Bandwidth); cost > min*1.6+1e-9 {
		t.Errorf("plan cost %g exceeds budget %g", cost, min*1.6)
	}
}

func TestProofPlannerMoreBudgetMoreProven(t *testing.T) {
	s := makeScenario(t, 9, 25, 5, 6)
	pp, err := NewProofPlanner(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	min := pp.MinBudget()
	prev := -1.0
	for _, mult := range []float64{1.05, 1.5, 2.5} {
		p, err := pp.Plan(min * mult)
		if err != nil {
			t.Fatal(err)
		}
		got := pp.ExpectedProven(p.Bandwidth)
		if got < prev-0.75 { // tolerate small repair noise
			t.Errorf("budget x%g: expected proven %g fell from %g", mult, got, prev)
		}
		if got > prev {
			prev = got
		}
	}
	if prev <= 0 {
		t.Error("proof planner never proves anything")
	}
}

func TestExactAlwaysExact(t *testing.T) {
	s := makeScenario(t, 10, 25, 5, 6)
	ex, err := NewExact(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	min := ex.MinPhase1Budget()
	for _, mult := range []float64{1.05, 1.8} {
		p, err := ex.planner.Plan(min * mult)
		if err != nil {
			t.Fatal(err)
		}
		for _, vals := range s.truth {
			res, err := ex.RunWithPlan(s.env, p, vals)
			if err != nil {
				t.Fatal(err)
			}
			truth := exec.TrueTopK(vals, s.cfg.K)
			if len(res.Answer) != len(truth) {
				t.Fatalf("answer has %d values", len(res.Answer))
			}
			for i := range truth {
				if res.Answer[i].Node != truth[i].Node {
					t.Fatalf("mult %g: rank %d node %d, want %d", mult, i, res.Answer[i].Node, truth[i].Node)
				}
			}
		}
	}
}

func TestNaiveKPlanExact(t *testing.T) {
	s := makeScenario(t, 11, 30, 6, 5)
	p, err := NaiveKPlan(s.cfg.Net, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if acc := s.meanAccuracy(t, p); acc != 1 {
		t.Errorf("NAIVE-k accuracy %g", acc)
	}
}

func TestOraclePlanExactAndCheap(t *testing.T) {
	s := makeScenario(t, 12, 30, 6, 5)
	vals := s.truth[0]
	p, err := OraclePlan(s.cfg.Net, vals, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(s.env, p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(vals, s.cfg.K); acc != 1 {
		t.Errorf("oracle accuracy %g", acc)
	}
	nk, err := NaiveKPlan(s.cfg.Net, s.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	nkRes, err := exec.Run(s.env, nk, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Total() >= nkRes.Ledger.Total() {
		t.Errorf("oracle (%g) not cheaper than NAIVE-k (%g)",
			res.Ledger.Total(), nkRes.Ledger.Total())
	}
}

func TestOracleProofProvesAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(50)
		parent := make([]network.NodeID, n)
		for i := 1; i < n; i++ {
			parent[i] = network.NodeID(rng.Intn(i))
		}
		net, err := network.New(parent, nil)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(minInt(n, 10))
		p, err := OracleProofPlan(net, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		env := exec.Env{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel())}
		res, err := exec.Run(env, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		if res.Proven < k {
			t.Errorf("trial %d (n=%d k=%d): OracleProof proved only %d", trial, n, k, res.Proven)
		}
	}
}

func TestLocalFilteringWinsInContentionZones(t *testing.T) {
	// The paper's central qualitative claim (Figure 5): under strong
	// negative correlation, LP+LF beats LP-LF at equal budget.
	rng := rand.New(rand.NewSource(14))
	const (
		nodes = 60
		zones = 4
		k     = 8
	)
	bcfg := network.DefaultBuildConfig(nodes)
	pos, zoneOf := network.ZonePlacement(bcfg, zones, k, rng)
	net, err := network.FromPositions(pos, bcfg.Range*1.4)
	if err != nil {
		t.Fatal(err)
	}
	zcfg := workload.DefaultZoneConfig(nodes, zones, k, zoneOf)
	zcfg.Territorial = true
	src, err := workload.NewZoneField(zcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, 15)); err != nil {
		t.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := Config{Net: net, Costs: costs, Samples: set, K: k}
	env := exec.Env{Net: net, Costs: costs}

	lf, err := NewLPFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nolf, err := NewLPNoFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := 60.0
	pf, err := lf.Plan(budget)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := nolf.Plan(budget)
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Draw(src, 12)
	accF, accN := 0.0, 0.0
	for _, vals := range truth {
		rf, err := exec.Run(env, pf, vals)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := exec.Run(env, pn, vals)
		if err != nil {
			t.Fatal(err)
		}
		accF += rf.Accuracy(vals, k)
		accN += rn.Accuracy(vals, k)
	}
	accF /= float64(len(truth))
	accN /= float64(len(truth))
	if accF < accN {
		t.Errorf("LP+LF %.3f did not beat LP-LF %.3f under contention", accF, accN)
	}
}

func TestRoundingRepairKeepsBudget(t *testing.T) {
	s := makeScenario(t, 15, 40, 8, 10)
	withRepair := s.cfg
	noRepair := s.cfg
	noRepair.DisableRepair = true
	for _, budget := range []float64{50, 120} {
		fr, err := NewLPFilter(withRepair)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := fr.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if cost := bandwidthCost(withRepair, pr.Bandwidth); cost > budget+1e-9 {
			t.Errorf("repaired plan cost %g > budget %g", cost, budget)
		}
		fn, err := NewLPFilter(noRepair)
		if err != nil {
			t.Fatal(err)
		}
		pn, err := fn.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's bound: plain rounding costs at most 2x budget.
		if cost := bandwidthCost(noRepair, pn.Bandwidth); cost > 2*budget+1e-9 {
			t.Errorf("unrepaired plan cost %g > 2x budget %g", cost, budget)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = math.Abs // keep math import for future tolerance checks

func TestBandwidthCoverageMonotone(t *testing.T) {
	// Property: adding bandwidth anywhere never reduces top-k coverage.
	s := makeScenario(t, 25, 30, 6, 8)
	rng := rand.New(rand.NewSource(26))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bw := make([]int, s.cfg.Net.Size())
		for v := 1; v < s.cfg.Net.Size(); v++ {
			bw[v] = r.Intn(3)
			if sz := s.cfg.Net.SubtreeSize(network.NodeID(v)); bw[v] > sz {
				bw[v] = sz
			}
		}
		enforceMonotone(s.cfg.Net, bw)
		base := bandwidthCoverage(s.cfg, bw)
		// Raise one random usable edge.
		v := 1 + r.Intn(s.cfg.Net.Size()-1)
		if parent := s.cfg.Net.Parent(network.NodeID(v)); parent != network.Root && bw[parent] == 0 {
			return true // increment would be unreachable; skip
		}
		if bw[v] >= s.cfg.Net.SubtreeSize(network.NodeID(v)) {
			return true
		}
		bw[v]++
		return bandwidthCoverage(s.cfg, bw) >= base
	}
	for trial := 0; trial < 150; trial++ {
		if !f(rng.Int63()) {
			t.Fatalf("coverage decreased after a bandwidth increment (trial %d)", trial)
		}
	}
}

func TestSelectionObjectiveAdditive(t *testing.T) {
	// Property: the selection objective is exactly the sum of the
	// chosen nodes' column sums plus the root's.
	s := makeScenario(t, 27, 25, 5, 10)
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 50; trial++ {
		chosen := make([]bool, s.cfg.Net.Size())
		want := s.cfg.Samples.ColumnSum(0)
		for i := 1; i < len(chosen); i++ {
			if rng.Float64() < 0.4 {
				chosen[i] = true
				want += s.cfg.Samples.ColumnSum(i)
			}
		}
		if got := selectionObjective(s.cfg, chosen); got != want {
			t.Fatalf("objective %d, want %d", got, want)
		}
	}
}

func TestKnapsackRespectsBudgetAndCompetes(t *testing.T) {
	s := makeScenario(t, 29, 40, 8, 12)
	kp, err := NewKnapsack(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	knWins, gWins := 0, 0
	for _, budget := range []float64{25, 60, 120} {
		p, err := kp.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if cost := selectionCost(s.cfg, p.Chosen); cost > budget+1e-9 {
			t.Errorf("budget %g: knapsack plan costs %g", budget, cost)
		}
		gp, err := g.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		kv := selectionObjective(s.cfg, p.Chosen)
		gv := selectionObjective(s.cfg, gp.Chosen)
		if kv > gv {
			knWins++
		} else if gv > kv {
			gWins++
		}
	}
	// The DP should at least hold its own against the paper's greedy.
	if gWins == 3 {
		t.Error("knapsack lost to greedy at every budget")
	}
}

func TestKnapsackExactOnStar(t *testing.T) {
	// On a star there is no path sharing: the DP should find the
	// optimal integral selection (verified against brute force).
	const n = 12
	net := network.Star(n)
	rng := rand.New(rand.NewSource(30))
	set := sample.MustNewSet(n, 3, 0)
	for e := 0; e < 9; e++ {
		v := make([]float64, n)
		for i := 1; i < n; i++ {
			v[i] = rng.NormFloat64() * float64(i) // heavier tails at high IDs
		}
		if err := set.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	cfg := Config{Net: net, Costs: costs, Samples: set, K: 3}
	kp, err := NewKnapsack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	itemCost := costs.Msg[1] + costs.Val[1] // identical for all star edges
	budget := 4.5 * itemCost                // room for exactly 4 items
	p, err := kp.Plan(budget)
	if err != nil {
		t.Fatal(err)
	}
	got := selectionObjective(cfg, p.Chosen)
	// Brute force: best 4 column sums.
	sums := set.ColumnSums()
	best := sums[0]
	order := append([]int(nil), sums[1:]...)
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	for i := 0; i < 4 && i < len(order); i++ {
		best += order[i]
	}
	if got != best {
		t.Errorf("knapsack objective %d, optimum %d", got, best)
	}
}

func TestGreedyCostAware(t *testing.T) {
	s := makeScenario(t, 31, 35, 7, 10)
	ca, err := NewGreedyCostAware(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Name() != "GreedyCostAware" {
		t.Errorf("Name = %q", ca.Name())
	}
	plain, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []float64{30, 80} {
		pc, err := ca.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if cost := selectionCost(s.cfg, pc.Chosen); cost > budget+1e-9 {
			t.Errorf("budget %g: cost-aware plan costs %g", budget, cost)
		}
		pp, err := plain.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		// The cost-aware variant should not be catastrophically worse
		// on its shared objective.
		if selectionObjective(s.cfg, pc.Chosen)*2 < selectionObjective(s.cfg, pp.Chosen) {
			t.Errorf("budget %g: cost-aware objective collapsed", budget)
		}
	}
}

func TestPlannerNames(t *testing.T) {
	s := makeScenario(t, 32, 20, 4, 5)
	mk := []struct {
		name string
		p    func() (Planner, error)
	}{
		{"Greedy", func() (Planner, error) { return NewGreedy(s.cfg) }},
		{"LP-LF", func() (Planner, error) { return NewLPNoFilter(s.cfg) }},
		{"LP+LF", func() (Planner, error) { return NewLPFilter(s.cfg) }},
		{"Knapsack", func() (Planner, error) { return NewKnapsack(s.cfg) }},
	}
	for _, m := range mk {
		p, err := m.p()
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != m.name {
			t.Errorf("Name = %q, want %q", p.Name(), m.name)
		}
	}
	pp, err := NewProofPlanner(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Name() != "Proof" {
		t.Errorf("proof Name = %q", pp.Name())
	}
	ex, err := NewExact(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name() != "Exact" {
		t.Errorf("exact Name = %q", ex.Name())
	}
}

func TestExactRunConvenience(t *testing.T) {
	// Exact.Run (plan-and-run in one call) must agree with the
	// two-step path and report a sane per-phase breakdown.
	s := makeScenario(t, 33, 20, 4, 5)
	ex, err := NewExact(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := s.truth[0]
	res, err := ex.Run(s.env, truth, ex.MinPhase1Budget()*1.2)
	if err != nil {
		t.Fatal(err)
	}
	want := exec.TrueTopK(truth, s.cfg.K)
	for i := range want {
		if res.Answer[i].Node != want[i].Node {
			t.Fatalf("rank %d wrong", i)
		}
	}
	if res.Total() <= 0 {
		t.Error("no energy accounted")
	}
	if res.Total() != res.Phase1.Total()+res.Phase2.Total() {
		t.Error("Total != phase sum")
	}
}

func TestProofPlannerPaperC3Variant(t *testing.T) {
	// The paper-faithful variant (c.3 rows omitted) must still produce
	// valid proof plans; its LP may over-promise, but execution stays
	// sound (Lemma 1 holds regardless of planning).
	s := makeScenario(t, 34, 20, 4, 5)
	pp, err := NewProofPlannerPaperC3(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pp.Plan(pp.MinBudget() * 1.3)
	if err != nil {
		t.Fatal(err)
	}
	truth := s.truth[0]
	res, err := exec.Run(s.env, p, truth)
	if err != nil {
		t.Fatal(err)
	}
	top := exec.TrueTopK(truth, res.Proven)
	for i := 0; i < res.Proven; i++ {
		if res.Returned[i].Node != top[i].Node {
			t.Fatalf("proven rank %d wrong under paper-c3 plan", i)
		}
	}
}

func TestRunnerPlanAccessor(t *testing.T) {
	s := makeScenario(t, 35, 20, 4, 6)
	rng := rand.New(rand.NewSource(36))
	g, err := NewGreedy(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(s.cfg, g, 40, DefaultAdaptivePolicy(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan() == nil {
		t.Fatal("no initial plan")
	}
	if r.SamplingRate() <= 0 {
		t.Error("bad initial sampling rate")
	}
}
