package core

import (
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// Metric names exported by the planners when Config.Obs is set:
//
//	core.<planner>.plans               counter, plans produced
//	core.<planner>.plan_size           gauge, participants of the last plan
//	core.<planner>.bandwidth_total     gauge, total bandwidth of the last plan
//	core.<planner>.budget_utilization  gauge, collection cost / budget
//
// <planner> is the Planner's Name() (Greedy, LP-LF, LP+LF, Proof, ...).
// Config.Obs is additionally injected into the LP solve path, so the
// LP-based planners also emit the lp.* family (see internal/lp/obs.go),
// including lp.status.* outcome counters.

// finishPlan records planner-output metrics and passes the plan
// constructor's result through, so Plan methods can wrap their return
// expression in place: return finishPlan(cfg, name, budget)(plan.New...).
// Planning is off the hot path; registry lookups here are fine. With
// Config.Trace (or a parent Config.Span) set, each produced plan also
// emits one flat zero-length "core.plan" span — planning is untimed by
// design (deterministic, no wall clock) — carrying the planner name and
// plan shape.
func finishPlan(cfg Config, name string, budget float64) func(*plan.Plan, error) (*plan.Plan, error) {
	return func(p *plan.Plan, err error) (*plan.Plan, error) {
		if err != nil {
			return p, err
		}
		if r := cfg.Obs; r != nil {
			r.Counter("core." + name + ".plans").Inc()
			r.Gauge("core." + name + ".plan_size").Set(float64(p.Participants()))
			r.Gauge("core." + name + ".bandwidth_total").Set(float64(p.TotalBandwidth()))
			if budget > 0 {
				r.Gauge("core." + name + ".budget_utilization").Set(p.CollectionCost(cfg.Net, cfg.Costs) / budget)
			}
		}
		if cfg.Trace != nil || cfg.Span != nil {
			fields := []obs.Field{
				obs.F("planner", name),
				obs.F("kind", p.Kind.String()),
				obs.F("participants", p.Participants()),
				obs.F("bandwidth_total", p.TotalBandwidth()),
			}
			if cfg.Span != nil {
				cfg.Span.Span("core.plan", 0, 0, fields...)
			} else {
				cfg.Trace.Span("core.plan", 0, 0, fields...)
			}
		}
		return p, nil
	}
}
