package core

import (
	"sort"

	"prospector/internal/network"
	"prospector/internal/plan"
)

// Greedy is PROSPECTOR GREEDY: it repeatedly picks the unvisited node
// that contributes most to the top k across all samples (largest column
// sum of the Boolean sample matrix) and adds it to the plan, as long as
// the plan's collection cost stays within budget. It is
// topology-oblivious: priorities ignore how expensive a node is to
// reach, although cost accounting does share edges already opened by
// earlier picks.
type Greedy struct {
	cfg Config
	// costAware switches the priority from the plain column sum to the
	// column sum per marginal joule, an extension ablated in the
	// benchmarks (not part of the paper's GREEDY).
	costAware bool
}

// NewGreedy builds the paper's PROSPECTOR GREEDY.
func NewGreedy(cfg Config) (*Greedy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Greedy{cfg: cfg}, nil
}

// NewGreedyCostAware builds the cost-per-benefit variant.
func NewGreedyCostAware(cfg Config) (*Greedy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Greedy{cfg: cfg, costAware: true}, nil
}

// Name implements Planner.
func (g *Greedy) Name() string {
	if g.costAware {
		return "GreedyCostAware"
	}
	return "Greedy"
}

// Plan implements Planner.
func (g *Greedy) Plan(budget float64) (*plan.Plan, error) {
	cfg := g.cfg
	n := cfg.Net.Size()
	chosen := make([]bool, n)
	usedEdge := make([]bool, n)
	cost := 0.0

	// marginal returns the extra collection cost of adding node i to
	// the current plan: a message on every newly opened path edge plus
	// one value slot on every path edge.
	marginal := func(i network.NodeID) float64 {
		extra := 0.0
		cfg.Net.AncestorEdges(i, func(e network.NodeID) {
			if !usedEdge[e] {
				extra += cfg.Costs.Msg[e]
			}
			extra += cfg.Costs.ValueCost(e, 1)
		})
		return extra
	}

	if g.costAware {
		// Re-rank every round: marginal costs fall as edges open.
		remaining := candidateNodes(cfg)
		for len(remaining) > 0 {
			bestIdx := -1
			bestScore := 0.0
			for idx, i := range remaining {
				mc := marginal(i)
				if cost+mc > budget {
					continue
				}
				score := float64(cfg.Samples.ColumnSum(int(i))) / mc
				if bestIdx == -1 || score > bestScore {
					bestIdx, bestScore = idx, score
				}
			}
			if bestIdx == -1 {
				break
			}
			i := remaining[bestIdx]
			cost += marginal(i)
			commit(cfg.Net, i, chosen, usedEdge)
			remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		}
		return finishPlan(cfg, g.Name(), budget)(plan.NewSelection(cfg.Net, chosen))
	}

	// The paper's rule: fixed priority order by column sum; add each
	// node that still fits the budget.
	order := candidateNodes(cfg)
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := cfg.Samples.ColumnSum(int(order[a])), cfg.Samples.ColumnSum(int(order[b]))
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		mc := marginal(i)
		if cost+mc > budget {
			continue
		}
		cost += mc
		commit(cfg.Net, i, chosen, usedEdge)
	}
	return finishPlan(cfg, g.Name(), budget)(plan.NewSelection(cfg.Net, chosen))
}

// candidateNodes lists every non-root node that ever ranked in the top
// k of a sample; nodes that never did cannot improve the objective.
func candidateNodes(cfg Config) []network.NodeID {
	var out []network.NodeID
	for i := 1; i < cfg.Net.Size(); i++ {
		if cfg.Samples.ColumnSum(i) > 0 {
			out = append(out, network.NodeID(i))
		}
	}
	return out
}

func commit(net *network.Network, i network.NodeID, chosen, usedEdge []bool) {
	chosen[i] = true
	net.AncestorEdges(i, func(e network.NodeID) {
		usedEdge[e] = true
	})
}
