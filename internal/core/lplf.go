package core

import (
	"fmt"
	"sort"

	"prospector/internal/lp"
	"prospector/internal/network"
	"prospector/internal/plan"
)

// LPNoFilter is PROSPECTOR LP-LF (Section 4.1): a topology-aware
// linear program that selects which nodes' readings to pull to the
// root. Unlike GREEDY it can recognize that promising values clustered
// under one subtree share per-message costs; unlike LP+LF it cannot
// express local filtering — a chosen value always travels the whole
// way up.
//
// The program (one variable per node and per edge):
//
//	maximize   sum_i colsum(i) * x_i
//	subject to x_i <= y_{edge above i}                 (chosen => edge used)
//	           y_e <= y_{parent edge of e}             (edges form a rooted subtree)
//	           sum_e Cm_e*y_e + sum_i x_i*path value cost <= budget
//	           0 <= x_i, y_e <= 1
//
// The paper writes the first family as one row per (node, ancestor
// edge); the edge-monotonicity chain here is the standard equivalent
// reformulation with O(n) instead of O(n*height) rows — integer
// solutions coincide.
// LPNoFilter caches its LP across Plan calls (see paramLP) and is
// therefore not safe for concurrent use; build one per goroutine.
//
//confine:goroutine
type LPNoFilter struct {
	cfg   Config
	param paramLP
	prog  lplfProgram
}

// lplfProgram is the built LP-LF model plus what rounding needs.
type lplfProgram struct {
	model     *lp.Model
	budgetRow int
	xs        []lp.VarID
	cands     []network.NodeID
	empty     bool
}

// NewLPNoFilter builds the planner.
func NewLPNoFilter(cfg Config) (*LPNoFilter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &LPNoFilter{cfg: cfg}, nil
}

// Name implements Planner.
func (p *LPNoFilter) Name() string { return "LP-LF" }

// Plan implements Planner.
func (p *LPNoFilter) Plan(budget float64) (*plan.Plan, error) {
	cfg := p.cfg
	net := cfg.Net
	n := net.Size()

	var prog lplfProgram
	var sol *lp.Solution
	var err error
	if cfg.DisableWarm {
		prog = buildLPNoFilterProgram(cfg, budget)
		if !prog.empty {
			sol, err = cfg.solveLP(prog.model)
		}
	} else {
		if !p.param.fresh(cfg) {
			p.prog = buildLPNoFilterProgram(cfg, budget)
			if p.prog.empty {
				p.param.installEmpty(cfg)
			} else {
				p.param.install(cfg, p.prog.model, p.prog.budgetRow, 0)
			}
		}
		prog = p.prog
		if !prog.empty {
			sol, err = p.param.solve(cfg, budget)
		}
	}
	if err != nil {
		return nil, err
	}
	if sol == nil {
		// No candidate ever ranked in the top k; the empty plan is
		// optimal.
		return finishPlan(cfg, p.Name(), budget)(plan.NewSelection(net, make([]bool, n)))
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: LP-LF solve ended %v", sol.Status)
	}

	// Round at 1/2 (the paper's scheme), then repair the budget.
	chosen := make([]bool, n)
	for _, i := range prog.cands {
		if sol.X[prog.xs[i]] >= 0.5 {
			chosen[i] = true
		}
	}
	if !cfg.DisableRepair {
		repairSelection(cfg, chosen, budget)
		fillSelection(cfg, chosen, budget)
	}
	return finishPlan(cfg, p.Name(), budget)(plan.NewSelection(net, chosen))
}

// buildLPNoFilterProgram assembles the LP-LF model. Everything except
// the budget row's rhs depends only on (network, costs, samples, k),
// which is what makes the program parametric in the budget.
func buildLPNoFilterProgram(cfg Config, budget float64) lplfProgram {
	net := cfg.Net
	n := net.Size()

	m := lp.NewModel()
	m.Maximize()

	// x variables only for nodes that ever hit the top k.
	xs := make([]lp.VarID, n)
	for i := range xs {
		xs[i] = -1
	}
	cands := candidateNodes(cfg)
	// Edges that can carry a candidate's value.
	edgeNeeded := make([]bool, n)
	for _, i := range cands {
		// Tiny lower-index preference splits equal-column-sum candidate
		// ties the same way from every optimal pivot path (see tieEps);
		// it matches fillSelection's lower-id-first ordering.
		obj := float64(cfg.Samples.ColumnSum(int(i))) + tieEps*float64(n-int(i))/float64(n)
		xs[i] = m.MustVar(0, 1, obj, fmt.Sprintf("x%d", i))
		net.AncestorEdges(i, func(e network.NodeID) { edgeNeeded[e] = true })
	}
	ys := make([]lp.VarID, n)
	for i := range ys {
		ys[i] = -1
	}
	for v := 1; v < n; v++ {
		if edgeNeeded[v] {
			ys[v] = m.MustVar(0, 1, 0, fmt.Sprintf("y%d", v))
		}
	}

	var costTerms []lp.Term
	for _, i := range cands {
		// Choosing i pays the per-value cost along its whole path.
		pathVal := 0.0
		net.AncestorEdges(i, func(e network.NodeID) { pathVal += cfg.Costs.Val[e] })
		costTerms = append(costTerms, lp.Term{Var: xs[i], Coef: pathVal})
		// x_i <= y_{edge above i}.
		m.MustConstr([]lp.Term{{Var: xs[i], Coef: 1}, {Var: ys[i], Coef: -1}}, lp.LE, 0)
	}
	for v := 1; v < n; v++ {
		if ys[v] < 0 {
			continue
		}
		costTerms = append(costTerms, lp.Term{Var: ys[v], Coef: cfg.Costs.Msg[v]})
		if parent := net.Parent(network.NodeID(v)); parent != network.Root {
			m.MustConstr([]lp.Term{{Var: ys[v], Coef: 1}, {Var: ys[parent], Coef: -1}}, lp.LE, 0)
		}
	}
	if len(costTerms) == 0 {
		return lplfProgram{empty: true}
	}
	row := m.MustConstr(costTerms, lp.LE, budget)
	return lplfProgram{model: m, budgetRow: row, xs: xs, cands: cands}
}

// repairSelection drops chosen nodes — least column sum first, ties by
// higher node ID — until the plan's collection cost fits the budget.
func repairSelection(cfg Config, chosen []bool, budget float64) {
	for selectionCost(cfg, chosen) > budget {
		worst := -1
		for i := 1; i < len(chosen); i++ {
			if !chosen[i] {
				continue
			}
			if worst == -1 ||
				cfg.Samples.ColumnSum(i) < cfg.Samples.ColumnSum(worst) ||
				(cfg.Samples.ColumnSum(i) == cfg.Samples.ColumnSum(worst) && i > worst) {
				worst = i
			}
		}
		if worst == -1 {
			return
		}
		chosen[worst] = false
	}
}

// fillSelection greedily adds unchosen candidates (best column sum per
// marginal cost first) while budget slack remains.
func fillSelection(cfg Config, chosen []bool, budget float64) {
	type cand struct {
		id    network.NodeID
		score int
	}
	var cands []cand
	for _, i := range candidateNodes(cfg) {
		if !chosen[i] {
			cands = append(cands, cand{id: i, score: cfg.Samples.ColumnSum(int(i))})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].id < cands[b].id
	})
	for _, c := range cands {
		chosen[c.id] = true
		if selectionCost(cfg, chosen) > budget {
			chosen[c.id] = false
		}
	}
}
