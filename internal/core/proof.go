package core

import (
	"fmt"
	"math"
	"sort"

	"prospector/internal/exec"
	"prospector/internal/lp"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
)

// ProofPlanner is PROSPECTOR PROOF (Section 4.3): it allocates
// bandwidth to every edge (a proof-carrying plan must visit every node)
// so that, in expectation over the samples, the root can prove as many
// of the top k values as possible within the energy budget.
//
// Variables: one bandwidth b_e per edge, plus z_{i,a,j} in [0,1] for
// node i, ancestor a, sample j — "i's value is present and proven at a
// when the plan runs on sample j". Generated lazily: starting from the
// objective terms z_{i,root,j} for i in ones(j), each proof constraint
// pulls in the prover variables it references, which recursively pull
// in theirs. Constraints:
//
//	chain:     z_{i,a,j} <= z_{i,down(a,i),j}     (proven at a => proven below)
//	bandwidth: sum_{i in desc(v)} z_{i,parent(v),j} <= b_{e(v)}
//	proof:     z_{i,a,j} <= sum_{i' in desc(c), val_j(i') < val_j(i)} z_{i',c,j}
//	           for every off-path child c of a  (paper's condition c.2)
//	c.3:       |desc(c)| * z_{i,a,j} <= b_{e(c)} when desc(c) holds no
//	           smaller value (strict linearization of "c sends all";
//	           the paper instead omits the row — see StrictC3)
//
// ProofPlanner caches its LP across Plan calls (see paramLP) and is
// therefore not safe for concurrent use; build one per goroutine.
type ProofPlanner struct {
	cfg Config
	// strictC3 controls the c.3 linearization (default true). With it
	// off, the LP matches the paper's text exactly but can claim
	// provability the executed plan cannot deliver in the no-smaller-
	// value corner case.
	strictC3 bool
	param    paramLP
	prog     proofProgram
}

// proofProgram is the built PROOF model plus what rounding needs.
type proofProgram struct {
	model *lp.Model
	// budgetRow is the cost row's retained index; fixed is the mandatory
	// spend (every-edge messages + proof metadata) already subtracted
	// from its rhs.
	budgetRow int
	fixed     float64
	bs        []lp.VarID
}

// NewProofPlanner builds the planner with the strict c.3 linearization.
func NewProofPlanner(cfg Config) (*ProofPlanner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ProofPlanner{cfg: cfg, strictC3: true}, nil
}

// NewProofPlannerPaperC3 builds the variant that omits the c.3 rows,
// exactly as the paper's text prescribes. Used by the ablation bench.
func NewProofPlannerPaperC3(cfg Config) (*ProofPlanner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ProofPlanner{cfg: cfg, strictC3: false}, nil
}

// Name implements Planner.
func (p *ProofPlanner) Name() string { return "Proof" }

// MinBudget returns the smallest budget any proof-carrying plan can
// meet: one message with one value on every edge, plus the
// proven-count reserve.
func (p *ProofPlanner) MinBudget() float64 {
	cfg := p.cfg
	total := 0.0
	for v := 1; v < cfg.Net.Size(); v++ {
		total += cfg.Costs.Msg[v] + cfg.Costs.ValueCost(network.NodeID(v), 1)
		if len(cfg.Net.Children(network.NodeID(v))) > 0 {
			total += cfg.Costs.ProofMetaCost()
		}
	}
	return total
}

// Plan implements Planner.
func (p *ProofPlanner) Plan(budget float64) (*plan.Plan, error) {
	cfg := p.cfg
	net := cfg.Net
	n := net.Size()
	if min := p.MinBudget(); budget < min {
		return nil, fmt.Errorf("core: proof plans need at least %.2f mJ, budget is %.2f", min, budget)
	}

	var prog proofProgram
	var sol *lp.Solution
	var err error
	if cfg.DisableWarm {
		prog = buildProofProgram(cfg, p.strictC3, budget)
		sol, err = cfg.solveLP(prog.model)
	} else {
		if !p.param.fresh(cfg) {
			p.prog = buildProofProgram(cfg, p.strictC3, budget)
			p.param.install(cfg, p.prog.model, p.prog.budgetRow, p.prog.fixed)
		}
		prog = p.prog
		sol, err = p.param.solve(cfg, budget)
	}
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: PROOF solve ended %v", sol.Status)
	}

	bw := make([]int, n)
	for v := 1; v < n; v++ {
		bw[v] = int(math.Floor(sol.X[prog.bs[v]] + 0.5))
		if bw[v] < 1 {
			bw[v] = 1
		}
		if max := net.SubtreeSize(network.NodeID(v)); bw[v] > max {
			bw[v] = max
		}
	}
	if !cfg.DisableRepair {
		p.repair(bw, budget)
		p.fill(bw, budget)
	}
	return finishPlan(cfg, p.Name(), budget)(plan.NewProof(net, bw))
}

// buildProofProgram assembles the PROOF model via the lazy builder;
// only the cost row's rhs depends on the budget.
func buildProofProgram(cfg Config, strictC3 bool, budget float64) proofProgram {
	b := newProofBuilder(cfg, strictC3)
	for j := 0; j < cfg.Samples.Len(); j++ {
		for _, i := range cfg.Samples.Ones(j) {
			// Creating the root-level variable (objective weight 1)
			// recursively pulls in its whole support.
			b.ensureZ(network.NodeID(i), network.Root, j)
		}
	}
	b.addBandwidthRows()
	row, fixed := b.addCostRow(budget)
	return proofProgram{model: b.m, budgetRow: row, fixed: fixed, bs: b.bs}
}

// ExpectedProven simulates the proof-carrying execution of a bandwidth
// assignment on every sample and returns the mean number of top-k
// values proven at the root.
func (p *ProofPlanner) ExpectedProven(bw []int) float64 {
	return expectedProven(p.cfg, bw)
}

func expectedProven(cfg Config, bw []int) float64 {
	pl, err := plan.NewProof(cfg.Net, bw)
	if err != nil {
		return 0
	}
	env := exec.Env{Net: cfg.Net, Costs: cfg.Costs}
	total := 0
	for j := 0; j < cfg.Samples.Len(); j++ {
		res, err := exec.Run(env, pl, cfg.Samples.Values(j))
		if err != nil {
			return 0
		}
		pr := res.Proven
		if pr > cfg.K {
			pr = cfg.K
		}
		total += pr
	}
	return float64(total) / float64(cfg.Samples.Len())
}

// proofCost is the static collection cost of a proof bandwidth
// assignment including the proven-count reserve.
func proofCost(cfg Config, bw []int) float64 {
	total := 0.0
	for v := 1; v < cfg.Net.Size(); v++ {
		total += cfg.Costs.Msg[v] + cfg.Costs.ValueCost(network.NodeID(v), bw[v])
		if len(cfg.Net.Children(network.NodeID(v))) > 0 {
			total += cfg.Costs.ProofMetaCost()
		}
	}
	return total
}

// repair decrements bandwidths (never below 1) until the budget holds,
// dropping the increment that loses the least expected proven count.
func (p *ProofPlanner) repair(bw []int, budget float64) {
	cfg := p.cfg
	for proofCost(cfg, bw) > budget {
		base := expectedProven(cfg, bw)
		best := -1
		bestLoss := math.Inf(1)
		for v := 1; v < cfg.Net.Size(); v++ {
			if bw[v] <= 1 {
				continue
			}
			bw[v]--
			loss := base - expectedProven(cfg, bw)
			bw[v]++
			if loss < bestLoss {
				best, bestLoss = v, loss
			}
		}
		if best < 0 {
			return
		}
		bw[best]--
	}
}

// fill spends leftover budget on the increment gaining the most
// expected proven count per joule.
func (p *ProofPlanner) fill(bw []int, budget float64) {
	cfg := p.cfg
	for {
		cost := proofCost(cfg, bw)
		base := expectedProven(cfg, bw)
		best := -1
		bestScore := 0.0
		for v := 1; v < cfg.Net.Size(); v++ {
			if bw[v] >= cfg.Net.SubtreeSize(network.NodeID(v)) {
				continue
			}
			if cost+cfg.Costs.ValueCost(network.NodeID(v), 1) > budget {
				continue
			}
			bw[v]++
			gain := expectedProven(cfg, bw) - base
			bw[v]--
			if gain <= 0 {
				continue
			}
			if score := gain / cfg.Costs.Val[v]; score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			return
		}
		bw[best]++
	}
}

// proofBuilder assembles the PROOF linear program with lazy z-variable
// generation.
type proofBuilder struct {
	cfg      Config
	strictC3 bool
	m        *lp.Model
	bs       []lp.VarID // bandwidth var per edge (lower endpoint)
	// z[(i,a,j)] -> variable; generated on demand.
	z map[zKey]lp.VarID
	// perEdgeSample[(v,j)] collects z_{i,parent(v),j} terms for i in
	// desc(v): the flows crossing edge v in sample j.
	perEdgeSample map[zKey][]lp.Term
}

type zKey struct {
	i, a network.NodeID
	j    int
}

func newProofBuilder(cfg Config, strictC3 bool) *proofBuilder {
	n := cfg.Net.Size()
	b := &proofBuilder{
		cfg:           cfg,
		strictC3:      strictC3,
		m:             lp.NewModel(),
		bs:            make([]lp.VarID, n),
		z:             make(map[zKey]lp.VarID),
		perEdgeSample: make(map[zKey][]lp.Term),
	}
	b.m.Maximize()
	for v := 1; v < n; v++ {
		cap := float64(cfg.Net.SubtreeSize(network.NodeID(v)))
		// Tiny index-distinct bandwidth penalty: among equally-proving
		// allocations, pick the unique minimal one (see tieEps).
		obj := -tieEps * (1 + float64(v)/float64(n))
		b.bs[v] = b.m.MustVar(1, cap, obj, fmt.Sprintf("b%d", v))
	}
	return b
}

// ensureZ returns (creating if needed) the variable z_{i,a,j} together
// with its chain and proof constraints.
func (b *proofBuilder) ensureZ(i, a network.NodeID, j int) lp.VarID {
	key := zKey{i: i, a: a, j: j}
	if v, ok := b.z[key]; ok {
		return v
	}
	obj := 0.0
	if a == network.Root && b.cfg.Samples.IsOne(j, int(i)) {
		obj = 1
	}
	zv := b.m.MustVar(0, 1, obj, fmt.Sprintf("z_%d_%d_%d", i, a, j))
	b.z[key] = zv

	net := b.cfg.Net
	if a != i {
		// Chain: proven at a requires proven (and present) at the next
		// node down toward i; also register the edge crossing for the
		// bandwidth row.
		down := net.OnPathChild(a, i)
		below := b.ensureZ(i, down, j)
		b.m.MustConstr([]lp.Term{{Var: zv, Coef: 1}, {Var: below, Coef: -1}}, lp.LE, 0)
		b.perEdgeSample[zKey{i: down, j: j}] = append(
			b.perEdgeSample[zKey{i: down, j: j}], lp.Term{Var: zv, Coef: 1})
	}
	// Proof rows: every off-path child of a must prove a smaller value
	// (or pass up its whole subtree).
	vals := b.cfg.Samples.Values(j)
	for _, c := range net.Children(a) {
		if a != i && net.IsAncestor(c, i) {
			continue // the child i's value arrives through
		}
		var smaller []lp.Term
		for _, d := range net.Descendants(c) {
			if sample.Before(vals, int(i), int(d)) {
				smaller = append(smaller, lp.Term{Var: b.ensureZ(d, c, j), Coef: -1})
			}
		}
		if len(smaller) > 0 {
			row := append([]lp.Term{{Var: zv, Coef: 1}}, smaller...)
			b.m.MustConstr(row, lp.LE, 0)
		} else if b.strictC3 {
			// No smaller value below c: only "c sends everything"
			// (condition c.3) can support the proof.
			size := float64(net.SubtreeSize(c))
			b.m.MustConstr([]lp.Term{{Var: zv, Coef: size}, {Var: b.bs[c], Coef: -1}}, lp.LE, 0)
		}
	}
	return zv
}

// addBandwidthRows emits sum_{i in desc(v)} z_{i,parent(v),j} <= b_v
// for every edge and sample that has registered crossings. Keys are
// sorted before emission: constraint-row order shapes the simplex
// pivot sequence, so emitting in map order would make solves (and
// degenerate ties) vary run to run.
func (b *proofBuilder) addBandwidthRows() {
	keys := make([]zKey, 0, len(b.perEdgeSample))
	for key := range b.perEdgeSample {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(x, y int) bool {
		a, c := keys[x], keys[y]
		if a.i != c.i {
			return a.i < c.i
		}
		if a.a != c.a {
			return a.a < c.a
		}
		return a.j < c.j
	})
	for _, key := range keys {
		terms := b.perEdgeSample[key]
		row := append(append([]lp.Term(nil), terms...), lp.Term{Var: b.bs[key.i], Coef: -1})
		b.m.MustConstr(row, lp.LE, 0)
	}
}

// addCostRow bounds the total collection cost. It returns the row's
// retained index (or -1 for a trivially true row) and the fixed spend
// subtracted from the rhs, so parametric re-solves can update the row
// as budget' - fixed.
func (b *proofBuilder) addCostRow(budget float64) (int, float64) {
	cfg := b.cfg
	fixed := 0.0
	var terms []lp.Term
	for v := 1; v < cfg.Net.Size(); v++ {
		fixed += cfg.Costs.Msg[v]
		if len(cfg.Net.Children(network.NodeID(v))) > 0 {
			fixed += cfg.Costs.ProofMetaCost() // proven-count reserve
		}
		terms = append(terms, lp.Term{Var: b.bs[v], Coef: cfg.Costs.Val[v]})
	}
	return b.m.MustConstr(terms, lp.LE, budget-fixed), fixed
}
