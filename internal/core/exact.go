package core

import (
	"fmt"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/plan"
)

// Exact is PROSPECTOR EXACT (Section 4.3): a two-phase algorithm that
// always returns the exact top k. Phase 1 runs a PROSPECTOR PROOF plan
// built for a chosen budget; if the root cannot prove all k values,
// phase 2 runs the mop-up protocol, using the phase-1 state to restrict
// retrieval to the still-uncertain value range. Sample knowledge only
// tunes performance — correctness never depends on it, just as
// traditional optimizers use statistics.
type Exact struct {
	cfg     Config
	planner *ProofPlanner
}

// NewExact builds the two-phase exact algorithm.
func NewExact(cfg Config) (*Exact, error) {
	pp, err := NewProofPlanner(cfg)
	if err != nil {
		return nil, err
	}
	return &Exact{cfg: cfg, planner: pp}, nil
}

// Name identifies the algorithm in experiment output.
func (e *Exact) Name() string { return "Exact" }

// MinPhase1Budget returns the smallest legal phase-1 budget.
func (e *Exact) MinPhase1Budget() float64 { return e.planner.MinBudget() }

// Planner exposes the underlying PROOF planner, so callers can build
// one phase-1 plan and amortize it across epochs via RunWithPlan.
func (e *Exact) Planner() *ProofPlanner { return e.planner }

// ExactResult reports a two-phase run with its per-phase cost
// breakdown (the quantity Figure 8 plots).
type ExactResult struct {
	// Answer is the exact top k.
	Answer []exec.ValueAt
	// ProvenPhase1 is how many of the k the root proved in phase 1.
	ProvenPhase1 int
	// MoppedUp reports whether a second phase was needed.
	MoppedUp bool
	// Phase1 and Phase2 are the per-phase energy ledgers.
	Phase1, Phase2 energy.Ledger
}

// Total returns the combined energy of both phases.
func (r *ExactResult) Total() float64 { return r.Phase1.Total() + r.Phase2.Total() }

// Run plans phase 1 within phase1Budget, executes it on the
// ground-truth readings, and mops up if needed.
func (e *Exact) Run(env exec.Env, values []float64, phase1Budget float64) (*ExactResult, error) {
	p, err := e.planner.Plan(phase1Budget)
	if err != nil {
		return nil, err
	}
	return e.RunWithPlan(env, p, values)
}

// RunWithPlan executes a pre-built proof plan and mops up if needed;
// use it to amortize planning over many epochs.
func (e *Exact) RunWithPlan(env exec.Env, p *plan.Plan, values []float64) (*ExactResult, error) {
	if p.Kind != plan.Proof {
		return nil, fmt.Errorf("core: Exact needs a proof plan, got %v", p.Kind)
	}
	res1, err := exec.Run(env, p, values)
	if err != nil {
		return nil, err
	}
	out := &ExactResult{Phase1: res1.Ledger}
	k := e.cfg.K
	proven := res1.Proven
	if proven > k {
		proven = k
	}
	out.ProvenPhase1 = proven
	if proven >= k || len(res1.Returned) >= e.cfg.Net.Size() {
		ans := res1.Returned
		if len(ans) > k {
			ans = ans[:k]
		}
		out.Answer = ans
		return out, nil
	}
	mop, err := res1.State.MopUp(k)
	if err != nil {
		return nil, err
	}
	out.MoppedUp = mop.Queried
	out.Phase2 = mop.Ledger
	out.Answer = mop.Answer
	return out, nil
}
