package core

import (
	"fmt"
	"math"

	"prospector/internal/lp"
	"prospector/internal/network"
	"prospector/internal/plan"
)

// LPFilter is PROSPECTOR LP+LF (Section 4.2): the topology-aware
// linear program extended with per-edge bandwidth variables, so plans
// can examine many values inside a subtree but forward only the most
// promising ones (local filtering). Where LP-LF has one variable per
// node, LP+LF has one variable per 1-entry of the Boolean sample
// matrix, letting the plan make per-sample, run-time-like decisions.
//
// The program:
//
//	maximize   sum_{j, i in ones(j)} x_ij
//	subject to x_ij <= y_{edge above i}
//	           y_e  <= y_{parent edge}
//	           sum_{i in ones(j) ∩ desc(e)} x_ij <= b_e      (per edge, sample)
//	           b_e  <= cap_e * y_e
//	           sum_e (Cm_e*y_e + Cv_e*b_e) <= budget
//	           0 <= x_ij, y_e <= 1;  0 <= b_e <= cap_e
//
// with cap_e = min(k, subtree size): a top-k query never benefits from
// moving more than k values across one edge.
// LPFilter caches its LP across Plan calls (see paramLP) and is
// therefore not safe for concurrent use; build one per goroutine.
//
//confine:goroutine
type LPFilter struct {
	cfg   Config
	param paramLP
	prog  lpfilterProgram
}

// lpfilterProgram is the built LP+LF model plus what rounding needs.
type lpfilterProgram struct {
	model     *lp.Model
	budgetRow int
	bs        []lp.VarID
	caps      []float64
	empty     bool
}

// NewLPFilter builds the planner.
func NewLPFilter(cfg Config) (*LPFilter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &LPFilter{cfg: cfg}, nil
}

// Name implements Planner.
func (p *LPFilter) Name() string { return "LP+LF" }

// Plan implements Planner.
func (p *LPFilter) Plan(budget float64) (*plan.Plan, error) {
	cfg := p.cfg
	net := cfg.Net
	n := net.Size()

	var prog lpfilterProgram
	var sol *lp.Solution
	var err error
	if cfg.DisableWarm {
		prog = buildLPFilterProgram(cfg, budget)
		if !prog.empty {
			sol, err = cfg.solveLP(prog.model)
		}
	} else {
		if !p.param.fresh(cfg) {
			p.prog = buildLPFilterProgram(cfg, budget)
			if p.prog.empty {
				p.param.installEmpty(cfg)
			} else {
				p.param.install(cfg, p.prog.model, p.prog.budgetRow, 0)
			}
		}
		prog = p.prog
		if !prog.empty {
			sol, err = p.param.solve(cfg, budget)
		}
	}
	if err != nil {
		return nil, err
	}
	if sol == nil {
		return finishPlan(cfg, p.Name(), budget)(plan.NewFiltering(net, make([]int, n)))
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: LP+LF solve ended %v", sol.Status)
	}

	// Round bandwidths to integers, restore structural feasibility
	// (no used edge under an unused one), then repair the budget.
	bw := make([]int, n)
	for v := 1; v < n; v++ {
		if prog.bs[v] >= 0 {
			bw[v] = int(math.Floor(sol.X[prog.bs[v]] + 0.5))
			if bw[v] > int(prog.caps[v]) {
				bw[v] = int(prog.caps[v])
			}
		}
	}
	enforceMonotone(net, bw)
	if !cfg.DisableRepair {
		repairBandwidth(cfg, bw, budget)
		fillBandwidth(cfg, bw, budget, prog.caps)
	}
	return finishPlan(cfg, p.Name(), budget)(plan.NewFiltering(net, bw))
}

// buildLPFilterProgram assembles the LP+LF model; only the budget
// row's rhs depends on the budget, making the program parametric.
func buildLPFilterProgram(cfg Config, budget float64) lpfilterProgram {
	net := cfg.Net
	n := net.Size()
	S := cfg.Samples.Len()

	m := lp.NewModel()
	m.Maximize()

	// x_ij for every 1-entry with i != root (the root's reading is
	// already at the station and costs nothing).
	type entry struct {
		i network.NodeID
		v lp.VarID
	}
	xvars := make([][]entry, S)
	edgeNeeded := make([]bool, n)
	for j := 0; j < S; j++ {
		for _, i := range cfg.Samples.Ones(j) {
			if i == int(network.Root) {
				continue
			}
			id := m.MustVar(0, 1, 1, fmt.Sprintf("x_%d_%d", j, i))
			xvars[j] = append(xvars[j], entry{i: network.NodeID(i), v: id})
			net.AncestorEdges(network.NodeID(i), func(e network.NodeID) { edgeNeeded[e] = true })
		}
	}
	ys := make([]lp.VarID, n)
	bs := make([]lp.VarID, n)
	caps := make([]float64, n)
	for v := range ys {
		ys[v], bs[v] = -1, -1
	}
	// Create all edge variables first: parent IDs may exceed child IDs
	// in BFS-built trees, so constraints go in a second pass.
	var costTerms []lp.Term
	for v := 1; v < n; v++ {
		if !edgeNeeded[v] {
			continue
		}
		caps[v] = math.Min(float64(cfg.K), float64(net.SubtreeSize(network.NodeID(v))))
		ys[v] = m.MustVar(0, 1, 0, fmt.Sprintf("y%d", v))
		// Tiny index-distinct bandwidth penalty so the rounded plan is
		// the same from every optimal pivot path (see tieEps).
		obj := -tieEps * (1 + float64(v)/float64(n))
		bs[v] = m.MustVar(0, caps[v], obj, fmt.Sprintf("b%d", v))
		costTerms = append(costTerms,
			lp.Term{Var: ys[v], Coef: cfg.Costs.Msg[v]},
			lp.Term{Var: bs[v], Coef: cfg.Costs.Val[v]})
	}
	for v := 1; v < n; v++ {
		if ys[v] < 0 {
			continue
		}
		// b_e <= cap_e * y_e ties bandwidth to edge usage.
		m.MustConstr([]lp.Term{{Var: bs[v], Coef: 1}, {Var: ys[v], Coef: -caps[v]}}, lp.LE, 0)
		if parent := net.Parent(network.NodeID(v)); parent != network.Root {
			m.MustConstr([]lp.Term{{Var: ys[v], Coef: 1}, {Var: ys[parent], Coef: -1}}, lp.LE, 0)
		}
	}
	if len(costTerms) == 0 {
		return lpfilterProgram{empty: true}
	}
	budgetRow := m.MustConstr(costTerms, lp.LE, budget)

	for j := 0; j < S; j++ {
		for _, e := range xvars[j] {
			// x_ij <= y_{edge above i}; monotonicity covers ancestors.
			m.MustConstr([]lp.Term{{Var: e.v, Coef: 1}, {Var: ys[e.i], Coef: -1}}, lp.LE, 0)
		}
	}
	// Bandwidth rows: for each used edge and sample, the top-k values
	// of that sample under the edge cannot exceed its bandwidth.
	for v := 1; v < n; v++ {
		if bs[v] < 0 {
			continue
		}
		for j := 0; j < S; j++ {
			var terms []lp.Term
			for _, e := range xvars[j] {
				if net.IsAncestor(network.NodeID(v), e.i) {
					terms = append(terms, lp.Term{Var: e.v, Coef: 1})
				}
			}
			if len(terms) == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: bs[v], Coef: -1})
			m.MustConstr(terms, lp.LE, 0)
		}
	}

	return lpfilterProgram{model: m, budgetRow: budgetRow, bs: bs, caps: caps}
}

// enforceMonotone zeroes any bandwidth whose path to the root crosses
// an unused edge (such values could never arrive anyway).
func enforceMonotone(net *network.Network, bw []int) {
	for _, v := range net.Preorder() {
		if v == network.Root {
			continue
		}
		if parent := net.Parent(v); parent != network.Root && bw[parent] == 0 {
			bw[v] = 0
		}
	}
}

// repairBandwidth decrements bandwidths until the plan fits the
// budget, each time choosing the decrement that sacrifices the least
// sample coverage (ties: the most expensive edge).
func repairBandwidth(cfg Config, bw []int, budget float64) {
	net := cfg.Net
	for bandwidthCost(cfg, bw) > budget {
		base := bandwidthCoverage(cfg, bw)
		best := network.NodeID(-1)
		bestLoss, bestSave := 0, 0.0
		for v := 1; v < net.Size(); v++ {
			if bw[v] == 0 {
				continue
			}
			// Dropping an edge to zero also silences its subtree; only
			// consider leaf-of-the-used-subtree edges for full drops.
			if bw[v] == 1 && hasUsedChild(net, bw, network.NodeID(v)) {
				continue
			}
			bw[v]--
			loss := base - bandwidthCoverage(cfg, bw)
			save := cfg.Costs.ValueCost(network.NodeID(v), 1)
			if bw[v] == 0 {
				save += cfg.Costs.Msg[v]
			}
			bw[v]++
			if best < 0 || loss < bestLoss || (loss == bestLoss && save > bestSave) {
				best, bestLoss, bestSave = network.NodeID(v), loss, save
			}
		}
		if best < 0 {
			return // nothing left to trim
		}
		bw[best]--
	}
}

func hasUsedChild(net *network.Network, bw []int, v network.NodeID) bool {
	for _, c := range net.Children(v) {
		if bw[c] > 0 {
			return true
		}
	}
	return false
}

// fillBandwidth spends leftover budget on the bandwidth increment (or
// edge opening) that gains the most sample coverage per joule.
func fillBandwidth(cfg Config, bw []int, budget float64, caps []float64) {
	net := cfg.Net
	for {
		cost := bandwidthCost(cfg, bw)
		base := bandwidthCoverage(cfg, bw)
		best := network.NodeID(-1)
		bestScore := 0.0
		for v := 1; v < net.Size(); v++ {
			if caps[v] == 0 || bw[v] >= int(caps[v]) {
				continue
			}
			// Opening an edge below an unused edge is pointless.
			if parent := net.Parent(network.NodeID(v)); parent != network.Root && bw[parent] == 0 {
				continue
			}
			extra := cfg.Costs.ValueCost(network.NodeID(v), 1)
			if bw[v] == 0 {
				extra += cfg.Costs.Msg[v]
			}
			if cost+extra > budget {
				continue
			}
			bw[v]++
			gain := bandwidthCoverage(cfg, bw) - base
			bw[v]--
			if gain <= 0 {
				continue
			}
			score := float64(gain) / extra
			if best < 0 || score > bestScore {
				best, bestScore = network.NodeID(v), score
			}
		}
		if best < 0 {
			return
		}
		bw[best]++
	}
}
