package core

import (
	"math"

	"prospector/internal/network"
	"prospector/internal/plan"
)

// Knapsack is the dynamic-programming planner the paper's footnote
// hints at: "PROSPECTOR LP-LF with integrality constraints might be
// solvable to an arbitrarily good approximation factor by dynamic
// programming; our NP-hardness proof reduces from KNAPSACK."
//
// Each candidate node is an item with value = its sample column sum
// and weight = its standalone acquisition cost (a message on every
// path edge plus value transport) — an overestimate that ignores
// path sharing, so the DP's selection is always within budget. A
// classic budget-grid knapsack DP picks the selection, and the
// leftover budget created by shared paths is then spent greedily at
// true marginal costs. On star-like topologies (no sharing) this is
// the exact integral optimum up to grid resolution; on deep trees the
// LP planners see sharing during optimization and usually win.
type Knapsack struct {
	cfg Config
	// resolution is the number of budget grid steps; higher is more
	// precise and slower (the usual knapsack-FPTAS dial).
	resolution int
}

// NewKnapsack builds the planner with a 1000-step budget grid.
func NewKnapsack(cfg Config) (*Knapsack, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Knapsack{cfg: cfg, resolution: 1000}, nil
}

// Name implements Planner.
func (p *Knapsack) Name() string { return "Knapsack" }

// Plan implements Planner.
func (p *Knapsack) Plan(budget float64) (*plan.Plan, error) {
	cfg := p.cfg
	n := cfg.Net.Size()
	cands := candidateNodes(cfg)
	chosen := make([]bool, n)
	if len(cands) == 0 || budget <= 0 {
		return plan.NewSelection(cfg.Net, chosen)
	}
	// Item weights: standalone path cost (all messages paid alone).
	weights := make([]float64, len(cands))
	values := make([]int, len(cands))
	maxW := 0.0
	for idx, i := range cands {
		w := 0.0
		cfg.Net.AncestorEdges(i, func(e network.NodeID) {
			w += cfg.Costs.Msg[e] + cfg.Costs.ValueCost(e, 1)
		})
		weights[idx] = w
		values[idx] = cfg.Samples.ColumnSum(int(i))
		if w > maxW {
			maxW = w
		}
	}
	// Budget grid.
	steps := p.resolution
	unit := budget / float64(steps)
	if unit <= 0 {
		return plan.NewSelection(cfg.Net, chosen)
	}
	// dp[w] = best value using grid weight exactly <= w; track picks.
	dp := make([]int, steps+1)
	pick := make([][]bool, len(cands))
	for idx := range cands {
		pick[idx] = make([]bool, steps+1)
		// Ceil keeps the DP conservative: grid weight never understates
		// the true standalone cost.
		w := int(math.Ceil(weights[idx] / unit))
		if w > steps {
			continue
		}
		if w < 1 {
			w = 1
		}
		for b := steps; b >= w; b-- {
			if cand := dp[b-w] + values[idx]; cand > dp[b] {
				dp[b] = cand
				pick[idx][b] = true
			}
		}
	}
	// Trace back the selection.
	b := steps
	for idx := len(cands) - 1; idx >= 0; idx-- {
		if !pick[idx][b] {
			continue
		}
		chosen[cands[idx]] = true
		w := int(math.Ceil(weights[idx] / unit))
		if w < 1 {
			w = 1
		}
		b -= w
	}
	// The standalone weights overestimate shared-path plans; spend the
	// slack at true marginal costs.
	fillSelection(cfg, chosen, budget)
	return finishPlan(cfg, p.Name(), budget)(plan.NewSelection(cfg.Net, chosen))
}
