package core

import (
	"fmt"
)

// Snapshot kinds, matching the -planner CLI vocabulary for the
// planners that can be pool-served.
const (
	KindGreedy     = "greedy"
	KindLPNoFilter = "lp-lf"
	KindLPFilter   = "lp+lf"
	KindProof      = "proof"
)

// Snapshot is a frozen, shareable parametric-planning state: the
// sample window deep-copied at a fixed generation, plus the planner's
// parametric LP built once from it. It is the concurrency bridge
// between the single-goroutine planners (//confine:goroutine, warm
// basis chains keyed on sample generation) and a serving tier: the
// snapshot itself is immutable and safe for concurrent use, and
// NewPlanner stamps out independent planners — each with its own
// model clone, lp.Workspace, and warm chain — that workers own
// exclusively.
//
// Freezing matters twice over. First, the live sample window keeps
// sliding (Set.Add mutates in place, bumping Gen), which would
// invalidate every cached program mid-flight; the clone's generation
// never moves, so a pooled planner's chain stays warm for the
// snapshot's lifetime. Second, the paper's planners are only
// meaningful against one coherent sample matrix — two requests served
// from different windows are answers to different questions, so the
// pool keys requests by the generation captured here (Gen).
//
// Planners stamped from one snapshot share the frozen samples, the
// network, and the costs — all read-only — but never LP state: the
// model is cloned per planner (lp.Model.Clone; a Basis is
// pointer-keyed to its model, so chains cannot cross), and the
// workspace is fresh. Each planner pays one cold solve to open its
// chain, then serves every subsequent budget warm.
type Snapshot struct {
	cfg  Config // cfg.Samples is the frozen clone, never mutated again
	kind string
	gen  uint64 // live window generation at freeze time
	lplf lplfProgram
	lpf  lpfilterProgram
	prf  proofProgram
}

// NewSnapshot validates cfg, freezes its sample window, and builds the
// planner kind's parametric program once. The returned snapshot no
// longer references the live sample set; callers may keep mutating it.
// The program's budget row is built with a placeholder right-hand side
// — every planner solve re-points it at the request's budget first.
func NewSnapshot(cfg Config, kind string) (*Snapshot, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Snapshot{kind: kind, gen: cfg.Samples.Gen()}
	cfg.Samples = cfg.Samples.Clone()
	s.cfg = cfg
	switch kind {
	case KindGreedy:
		// Greedy recomputes from the (frozen) samples per call; there is
		// no parametric program to prebuild.
	case KindLPNoFilter:
		s.lplf = buildLPNoFilterProgram(cfg, 0)
	case KindLPFilter:
		s.lpf = buildLPFilterProgram(cfg, 0)
	case KindProof:
		s.prf = buildProofProgram(cfg, true, 0)
	default:
		return nil, fmt.Errorf("core: unknown snapshot kind %q (want %s, %s, %s, or %s)",
			kind, KindGreedy, KindLPNoFilter, KindLPFilter, KindProof)
	}
	return s, nil
}

// Kind returns the planner kind the snapshot serves.
func (s *Snapshot) Kind() string { return s.kind }

// Gen returns the live sample window's mutation generation at freeze
// time — the pool-key component that distinguishes snapshots of the
// same network as the window slides.
func (s *Snapshot) Gen() uint64 { return s.gen }

// K returns the rank bound the snapshot plans for.
func (s *Snapshot) K() int { return s.cfg.K }

// NewPlanner stamps out an independent planner over the frozen state:
// the prebuilt model is cloned and pre-installed into the planner's
// parametric cache, so its first Plan call skips the program build and
// goes straight to a chain-opening cold solve. Safe to call
// concurrently; the returned planner is //confine:goroutine like any
// other and must be owned by exactly one goroutine.
func (s *Snapshot) NewPlanner() (Planner, error) {
	cfg := s.cfg
	switch s.kind {
	case KindGreedy:
		return NewGreedy(cfg)
	case KindLPNoFilter:
		p, err := NewLPNoFilter(cfg)
		if err != nil {
			return nil, err
		}
		p.prog = s.lplf
		if s.lplf.empty {
			p.param.installEmpty(cfg)
		} else {
			p.prog.model = s.lplf.model.Clone()
			p.param.install(cfg, p.prog.model, p.prog.budgetRow, 0)
		}
		return p, nil
	case KindLPFilter:
		p, err := NewLPFilter(cfg)
		if err != nil {
			return nil, err
		}
		p.prog = s.lpf
		if s.lpf.empty {
			p.param.installEmpty(cfg)
		} else {
			p.prog.model = s.lpf.model.Clone()
			p.param.install(cfg, p.prog.model, p.prog.budgetRow, 0)
		}
		return p, nil
	case KindProof:
		p, err := NewProofPlanner(cfg)
		if err != nil {
			return nil, err
		}
		p.prog = s.prf
		p.prog.model = s.prf.model.Clone()
		p.param.install(cfg, p.prog.model, p.prog.budgetRow, p.prog.fixed)
		return p, nil
	}
	return nil, fmt.Errorf("core: unknown snapshot kind %q", s.kind)
}
