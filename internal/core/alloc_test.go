package core

import (
	"testing"
)

// TestParametricSolveAllocFree pins the runtime half of paramLP.solve's
// //alloc:none claim: once the program is built and the basis chain is
// established, serving a budget from the warm chain performs zero heap
// allocations. The static checker verifies the same path transitively
// through lp's annotated warm chain; the blessed call edges (first
// solve, chain-break fallback) never fire here because the chain stays
// intact.
func TestParametricSolveAllocFree(t *testing.T) {
	s := makeScenario(t, 5, 30, 6, 8)
	pl, err := NewLPNoFilter(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: the first Plan builds the model and cold-solves; the second
	// establishes the warm chain's steady state.
	for i := 0; i < 2; i++ {
		if _, err := pl.Plan(60); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		sol, err := pl.param.solve(s.cfg, 60)
		if err != nil {
			t.Fatal(err)
		}
		_ = sol
	})
	if allocs != 0 {
		t.Fatalf("warm parametric solve allocated %v times per call, want 0", allocs)
	}
}
