package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prospector/internal/obs"
	"prospector/internal/workload"
)

// snapshotKindFor maps a diffCase to its snapshot kind.
func snapshotKindFor(name string) string {
	switch name {
	case "LP-LF":
		return KindLPNoFilter
	case "LP+LF":
		return KindLPFilter
	case "Proof":
		return KindProof
	}
	panic("unknown diff case " + name)
}

// TestSnapshotPlannerMatchesCold: a planner stamped from a snapshot —
// pre-installed program, cloned model, own warm chain — must emit
// plans bitwise-identical to the cold reference (rebuild + cold solve
// every call), for every kind, over a shuffled budget axis. This is
// the snapshot-side analog of TestWarmDifferentialMatchesCold.
func TestSnapshotPlannerMatchesCold(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := makeScenario(t, 17, 25, 5, 6)
			snap, err := NewSnapshot(s.cfg, snapshotKindFor(tc.name))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := snap.NewPlanner()
			if err != nil {
				t.Fatal(err)
			}
			coldCfg := s.cfg
			coldCfg.DisableWarm = true
			coldCfg.DisablePresolve = true
			cold, err := tc.make(coldCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range tc.budgets(s.cfg) {
				wp, err := warm.Plan(budget)
				if err != nil {
					t.Fatalf("budget %.1f: snapshot planner: %v", budget, err)
				}
				cp, err := cold.Plan(budget)
				if err != nil {
					t.Fatalf("budget %.1f: cold reference: %v", budget, err)
				}
				if !plansEqual(wp, cp) {
					t.Fatalf("budget %.1f: snapshot plan %v != cold plan %v", budget, wp, cp)
				}
			}
		})
	}
}

// TestSnapshotFreezesSamples: mutating the live window after the
// snapshot must not change what snapshot planners produce — the
// snapshot answers against the window as it was at freeze time.
func TestSnapshotFreezesSamples(t *testing.T) {
	s := makeScenario(t, 23, 25, 5, 6)
	snap, err := NewSnapshot(s.cfg, KindLPFilter)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := snap.Gen()
	ref, err := snap.NewPlanner()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Plan(120)
	if err != nil {
		t.Fatal(err)
	}

	// Slide the live window hard: new samples shift column sums.
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(25), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cfg.Samples.AddAll(workload.Draw(src, 8)); err != nil {
		t.Fatal(err)
	}
	if snap.Gen() != genBefore {
		t.Fatalf("snapshot generation moved with the live window: %d -> %d", genBefore, snap.Gen())
	}
	p2, err := snap.NewPlanner()
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Plan(120)
	if err != nil {
		t.Fatal(err)
	}
	if !plansEqual(want, got) {
		t.Fatalf("snapshot plan changed after live-window mutation: %v vs %v", want, got)
	}
}

// TestSnapshotPlannersAreIndependent: many planners stamped from one
// snapshot, each driven concurrently through its own budget sweep,
// must all match the sequential single-planner answers — the clones
// share no LP state (run under -race to prove it).
func TestSnapshotPlannersAreIndependent(t *testing.T) {
	s := makeScenario(t, 31, 25, 5, 6)
	s.cfg.Obs = obs.NewRegistry() // shared registry: the lp.* metrics must be race-free too
	snap, err := NewSnapshot(s.cfg, KindLPFilter)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{30, 50, 80, 130, 210, 340}

	// Sequential reference from one snapshot planner.
	ref, err := snap.NewPlanner()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(budgets))
	for i, b := range budgets {
		p, err := ref.Plan(b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprint(p)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		pl, err := snap.NewPlanner()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		// Each planner is handed to exactly one goroutine, honoring the
		// //confine:goroutine contract.
		//confine:transfer each stamped planner is owned by the spawned worker alone; the spawning goroutine never touches it again
		go func(w int, pl Planner) {
			defer wg.Done()
			// Workers sweep in different rotations so chains diverge.
			for i := range budgets {
				b := budgets[(i+w)%len(budgets)]
				p, err := pl.Plan(b)
				if err != nil {
					errs[w] = err
					return
				}
				if got := fmt.Sprint(p); got != want[(i+w)%len(budgets)] {
					errs[w] = fmt.Errorf("worker %d budget %.1f: plan %s != reference %s", w, b, got, want[(i+w)%len(budgets)])
					return
				}
			}
		}(w, pl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
