// Package core implements the paper's primary contribution: the
// PROSPECTOR family of sampling-based top-k query planners (Greedy,
// LP-LF, LP+LF, PROOF, and the two-phase EXACT algorithm), plus the
// exact baselines they are evaluated against (NAIVE-k, NAIVE-1, ORACLE,
// ORACLE PROOF).
//
// All planners share the same inputs: a spanning-tree network, per-edge
// energy costs, a window of past full-network samples, the rank bound
// k, and an energy budget for one collection phase. They differ in how
// much plan structure they can express — and therefore in how much
// accuracy they extract per joule.
package core

import (
	"fmt"

	"prospector/internal/lp"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
	"prospector/internal/sample"
)

// Config carries the shared planner inputs.
type Config struct {
	Net     *network.Network
	Costs   *plan.Costs
	Samples *sample.Set
	K       int
	// LP tunes the simplex solver for the LP-based planners.
	LP lp.Options
	// DisableRepair turns off the post-rounding budget repair and
	// greedy refill, leaving the paper's plain round-at-1/2 scheme
	// (which may exceed the budget by the rounding slack). Exposed for
	// the rounding ablation.
	DisableRepair bool
	// DisablePresolve skips the LP presolve reductions before the
	// simplex. Exposed for the presolve ablation bench.
	DisablePresolve bool
	// DisableWarm turns off the parametric solve pipeline: every Plan
	// call rebuilds its LP from scratch and cold-solves it through the
	// legacy presolve path, instead of caching the model per
	// (network, samples) state and warm re-solving budget updates.
	// Exposed for the warm-start ablation and as the reference side of
	// the warm-vs-cold differential tests.
	DisableWarm bool
	// Obs, when non-nil, receives core.<planner>.* metrics (see obs.go)
	// and is forwarded to the LP solver for the lp.* family.
	Obs *obs.Registry
	// Trace, when non-nil, records one core.plan span per produced plan
	// and is forwarded to the LP solver for lp.solve spans.
	Trace *obs.Tracer
	// Span, when non-nil, parents the core.plan and lp.solve spans.
	Span *obs.Span
}

// lpOptions assembles solver options with the planner registry and
// trace context forwarded.
func (c Config) lpOptions() lp.Options {
	opts := c.LP
	if opts.Obs == nil {
		opts.Obs = c.Obs
	}
	if opts.Trace == nil {
		opts.Trace = c.Trace
	}
	if opts.Span == nil {
		opts.Span = c.Span
	}
	return opts
}

// solveLP runs the legacy one-shot solve path (presolve by default).
// The parametric planners use paramLP.solve instead and keep this as
// their fallback when a warm chain breaks down.
func (c Config) solveLP(m *lp.Model) (*lp.Solution, error) {
	opts := c.lpOptions()
	if c.DisablePresolve {
		return m.Solve(opts)
	}
	return lp.SolveWithPresolve(m, opts)
}

func (c Config) validate() error {
	if c.Net == nil || c.Costs == nil || c.Samples == nil {
		return fmt.Errorf("core: config needs a network, costs, and samples")
	}
	if c.Samples.Nodes() != c.Net.Size() {
		return fmt.Errorf("core: samples cover %d nodes, network has %d", c.Samples.Nodes(), c.Net.Size())
	}
	if c.K < 1 || c.K > c.Net.Size() {
		return fmt.Errorf("core: k must be in [1,%d], got %d", c.Net.Size(), c.K)
	}
	if c.Samples.Len() == 0 {
		return fmt.Errorf("core: sample window is empty")
	}
	// General (marker-based) sample sets report K() == 0 and are
	// accepted: the planners only consume column sums and ones-sets,
	// which the marker defines. K then serves as the expected answer
	// size (bandwidth caps, accuracy denominators).
	if c.Samples.K() != 0 && c.Samples.K() != c.K {
		return fmt.Errorf("core: samples track top-%d, planner wants top-%d", c.Samples.K(), c.K)
	}
	return nil
}

// Planner builds an approximate top-k query plan within an energy
// budget for one collection phase.
type Planner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Plan returns a plan whose collection-phase cost respects budget
	// (up to rounding slack when repair is disabled).
	Plan(budget float64) (*plan.Plan, error)
}

// selectionCost returns the collection cost of a Selection plan over
// the chosen node set, sharing per-message costs along common paths.
func selectionCost(cfg Config, chosen []bool) float64 {
	counts := make([]int, cfg.Net.Size())
	for i, c := range chosen {
		if !c || i == int(network.Root) {
			continue
		}
		cfg.Net.AncestorEdges(network.NodeID(i), func(e network.NodeID) {
			counts[e]++
		})
	}
	total := 0.0
	for v := 1; v < cfg.Net.Size(); v++ {
		if counts[v] > 0 {
			total += cfg.Costs.Msg[v] + cfg.Costs.Val[v]*float64(counts[v])
		}
	}
	return total
}

// selectionObjective returns the expected number of top-k hits of a
// chosen-node set over the sample window: the sum of column sums of
// the chosen nodes (plus the root, whose reading is always available).
func selectionObjective(cfg Config, chosen []bool) int {
	hits := cfg.Samples.ColumnSum(int(network.Root))
	for i, c := range chosen {
		if c && i != int(network.Root) {
			hits += cfg.Samples.ColumnSum(i)
		}
	}
	return hits
}

// bandwidthCoverage returns the total number of top-k sample values a
// Filtering plan's bandwidth assignment delivers to the root, summed
// over all samples. Computed bottom-up per sample: a node forwards the
// top of its pool, and within its own subtree the sample's top-k values
// outrank everything else, so the count reaching the parent is
// min(bandwidth, own-hit + children's counts).
func bandwidthCoverage(cfg Config, bandwidth []int) int {
	net := cfg.Net
	counts := make([]int, net.Size())
	total := 0
	for j := 0; j < cfg.Samples.Len(); j++ {
		net.PostorderWalk(func(v network.NodeID) {
			n := 0
			if cfg.Samples.IsOne(j, int(v)) {
				n = 1
			}
			for _, c := range net.Children(v) {
				n += counts[c]
			}
			if v != network.Root {
				if b := bandwidth[v]; n > b {
					n = b
				}
			}
			counts[v] = n
		})
		total += counts[network.Root]
	}
	return total
}

// bandwidthCost returns the collection cost of a Filtering bandwidth
// assignment.
func bandwidthCost(cfg Config, bandwidth []int) float64 {
	total := 0.0
	for v := 1; v < cfg.Net.Size(); v++ {
		if bandwidth[v] > 0 {
			total += cfg.Costs.Msg[v] + cfg.Costs.Val[v]*float64(bandwidth[v])
		}
	}
	return total
}
