package core

import (
	"fmt"

	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
)

// NaiveKPlan returns the NAIVE-k plan of Section 2: every node passes
// the top k values of its subtree to its parent. One pass, minimum
// message count, large messages; the result always contains the exact
// top k.
func NaiveKPlan(net *network.Network, k int) (*plan.Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: NaiveK needs k >= 1, got %d", k)
	}
	bw := make([]int, net.Size())
	for v := 1; v < net.Size(); v++ {
		bw[v] = k
		if s := net.SubtreeSize(network.NodeID(v)); s < k {
			bw[v] = s
		}
	}
	return plan.NewFiltering(net, bw)
}

// OraclePlan is the non-plausible ORACLE baseline: it knows exactly
// where the top k values are and builds the cheapest plan that
// retrieves precisely the top "want" of them (want <= k varies the
// accuracy axis in Figure 3). Its cost lower-bounds every approximate
// algorithm.
func OraclePlan(net *network.Network, truth []float64, want int) (*plan.Plan, error) {
	if want < 0 || want > net.Size() {
		return nil, fmt.Errorf("core: Oracle wants %d of %d nodes", want, net.Size())
	}
	chosen := make([]bool, net.Size())
	for _, v := range exec.TrueTopK(truth, want) {
		if v.Node != network.Root {
			chosen[v.Node] = true
		}
	}
	return plan.NewSelection(net, chosen)
}

// OracleProofPlan is ORACLE PROOF: it knows where the top k values are
// but must still visit every node to prove the answer. Each edge
// carries its subtree's top-k members plus one smaller witness value,
// which suffices for the root to prove all k (the per-node proof
// conditions are satisfiable level by level). It lower-bounds the
// cost of exact proof-carrying algorithms.
func OracleProofPlan(net *network.Network, truth []float64, k int) (*plan.Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: OracleProof needs k >= 1, got %d", k)
	}
	members := make([]bool, net.Size())
	for _, v := range exec.TrueTopK(truth, k) {
		members[v.Node] = true
	}
	bw := make([]int, net.Size())
	counts := make([]int, net.Size())
	net.PostorderWalk(func(v network.NodeID) {
		n := 0
		if members[v] {
			n = 1
		}
		for _, c := range net.Children(v) {
			n += counts[c]
		}
		counts[v] = n
		if v != network.Root {
			bw[v] = n + 1 // the +1 witness proves "nothing bigger hides here"
			if s := net.SubtreeSize(v); bw[v] > s {
				bw[v] = s
			}
		}
	})
	return plan.NewProof(net, bw)
}
