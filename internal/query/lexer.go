// Package query is a small declarative front end over the PROSPECTOR
// planners, in the spirit of the TAG/TinyDB query interfaces the paper
// builds on. Queries look like:
//
//	SELECT TOP 8 FROM sensors BUDGET 30% USING LP+LF
//	SELECT TOP 5 FROM sensors EXACT
//	SELECT TOP 10 FROM sensors WITH PROOF BUDGET 900mJ
//	SELECT * FROM sensors WHERE value > 55 BUDGET 25% USING LP-LF
//	SELECT TOP 8 FROM sensors BUDGET 30% SAMPLES 20
//
// Parse produces a Query; Engine binds it to a network plus a window
// of observed epochs and executes it.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokNumber
	tokPercent
	tokStar
	tokGT
	tokLT
	tokGE
	tokLE
	tokEQ
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokNumber:
		return fmt.Sprintf("number %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes a query string. Words are case-insensitive; "LP+LF"
// and "LP-LF" lex as single words.
func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, text: "*", pos: i})
			i++
		case c == '%':
			toks = append(toks, token{kind: tokPercent, text: "%", pos: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{kind: tokGE, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokGT, text: ">", pos: i})
				i++
			}
		case c == '<':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{kind: tokLE, text: "<=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokLT, text: "<", pos: i})
				i++
			}
		case c == '=':
			toks = append(toks, token{kind: tokEQ, text: "=", pos: i})
			i++
		case unicode.IsDigit(c) || c == '.' || (c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			start := i
			if c == '-' {
				i++
			}
			dots := 0
			for i < len(s) && (unicode.IsDigit(rune(s[i])) || s[i] == '.') {
				if s[i] == '.' {
					dots++
				}
				i++
			}
			text := s[start:i]
			if dots > 1 {
				return nil, fmt.Errorf("query: malformed number %q at offset %d", text, start)
			}
			var num float64
			if _, err := fmt.Sscanf(text, "%g", &num); err != nil {
				return nil, fmt.Errorf("query: malformed number %q at offset %d", text, start)
			}
			// A number may carry a unit suffix like "900mJ".
			toks = append(toks, token{kind: tokNumber, text: text, num: num, pos: start})
		case unicode.IsLetter(c):
			start := i
			for i < len(s) && (unicode.IsLetter(rune(s[i])) || unicode.IsDigit(rune(s[i])) ||
				s[i] == '+' || s[i] == '-' || s[i] == '_') {
				i++
			}
			toks = append(toks, token{kind: tokWord, text: strings.ToUpper(s[start:i]), pos: start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(s)})
	return toks, nil
}
