package query

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/plan"
	"prospector/internal/sample"
)

// Standing is a long-running top-k query driven by the adaptive
// controller of Section 4.4: the plan is re-optimized as the sample
// window drifts, proof-carrying spot checks tune the re-sampling rate,
// and every epoch's result streams back to the caller. Create one with
// Engine.Stand, then feed epochs through Step.
type Standing struct {
	engine *Engine
	query  *Query
	runner *core.Runner
	k      int
}

// Stand turns a parsed TOP-k query into a standing query. Only
// approximate planners can stand (GREEDY, LP-LF, LP+LF); proof/exact
// runs are one-shot by nature (use Run for those). The engine must
// already hold observations.
func (e *Engine) Stand(q *Query, policy core.AdaptivePolicy, rng *rand.Rand) (*Standing, error) {
	if q == nil {
		return nil, fmt.Errorf("query: nil query")
	}
	if q.Kind != TopK {
		return nil, fmt.Errorf("query: only TOP-k queries can stand")
	}
	switch q.Planner {
	case PlannerGreedy, PlannerLPNoLF, PlannerLPLF:
	default:
		return nil, fmt.Errorf("query: planner %s cannot stand; use Run for one-shot proof/exact queries", q.Planner)
	}
	if len(e.epochs) == 0 {
		return nil, fmt.Errorf("query: no observations yet; call Observe first")
	}
	set, k, err := e.buildSamples(q)
	if err != nil {
		return nil, err
	}
	// The runner owns a windowed copy of the samples so its collector
	// can keep feeding it.
	window := q.Samples
	if window <= 0 {
		window = e.window
	}
	live := sample.MustNewSet(e.net.Size(), k, window)
	for j := 0; j < set.Len(); j++ {
		if err := live.Add(set.Values(j)); err != nil {
			return nil, err
		}
	}
	cfg := core.Config{Net: e.net, Costs: e.costs, Samples: live, K: k, Obs: e.obs}
	planner, err := standingPlanner(q, cfg)
	if err != nil {
		return nil, err
	}
	budget, err := e.resolveBudget(q, k)
	if err != nil {
		return nil, err
	}
	runner, err := core.NewRunner(cfg, planner, budget, policy, rng)
	if err != nil {
		return nil, err
	}
	return &Standing{engine: e, query: q, runner: runner, k: k}, nil
}

func standingPlanner(q *Query, cfg core.Config) (core.Planner, error) {
	switch q.Planner {
	case PlannerGreedy:
		return core.NewGreedy(cfg)
	case PlannerLPNoLF:
		return core.NewLPNoFilter(cfg)
	default:
		return core.NewLPFilter(cfg)
	}
}

// Step runs the standing query on one epoch of ground-truth readings
// and returns that epoch's answer. The epoch also feeds the engine's
// observation window.
func (s *Standing) Step(truth []float64) (*Answer, error) {
	res, err := s.runner.Step(truth)
	if err != nil {
		return nil, err
	}
	if err := s.engine.Observe(truth); err != nil {
		return nil, err
	}
	vals := res.Returned
	if len(vals) > s.k {
		vals = vals[:s.k]
	}
	if r := s.engine.obs; r != nil {
		r.Counter("query.rounds").Inc()
		r.Histogram("query.round_energy_mj", roundEnergyBounds).Observe(res.Ledger.Total())
	}
	return &Answer{
		Values: vals,
		Ledger: res.Ledger,
		Plan:   s.runner.Plan().String(),
	}, nil
}

// Stats exposes the controller's accumulated statistics.
func (s *Standing) Stats() core.RunnerStats { return s.runner.Stats }

// Plan returns the currently installed plan.
func (s *Standing) Plan() *plan.Plan { return s.runner.Plan() }

// EnergyBudgetCheck reports the standing query's mean per-epoch energy
// against its budget (collection + trigger + amortized install +
// sampling + spot checks), for telemetry.
func (s *Standing) EnergyBudgetCheck() (meanPerEpoch float64, ok bool) {
	st := s.runner.Stats
	if st.Epochs == 0 {
		return 0, true
	}
	mean := st.Energy.Total() / float64(st.Epochs)
	// Allow generous headroom: adaptation overhead (sampling, checks,
	// dissemination) legitimately adds to the per-collection budget.
	return mean, mean < 5*budgetOf(s)
}

func budgetOf(s *Standing) float64 {
	b, err := s.engine.resolveBudget(s.query, s.k)
	if err != nil {
		return 0
	}
	return b
}
