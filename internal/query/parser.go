package query

import (
	"fmt"
	"strings"
)

// Kind classifies the query shape.
type Kind int

// Query kinds.
const (
	// TopK returns the k highest readings (approximate by default).
	TopK Kind = iota
	// Selection returns readings above a threshold.
	Selection
	// Aggregate computes MAX/MIN/SUM/COUNT/AVG/MEDIAN in-network
	// (TAG-style, one message per node).
	Aggregate
)

// PlannerName selects the optimization algorithm.
type PlannerName string

// Recognized planners.
const (
	PlannerGreedy PlannerName = "GREEDY"
	PlannerLPNoLF PlannerName = "LP-LF"
	PlannerLPLF   PlannerName = "LP+LF"
	PlannerProof  PlannerName = "PROOF"
	PlannerExact  PlannerName = "EXACT"
)

// Budget is an energy budget: either absolute millijoules or a
// fraction of the NAIVE-k baseline cost. Exactly one side is set.
type Budget struct {
	MJ   float64
	Frac float64
}

// IsZero reports whether no budget was given.
func (b Budget) IsZero() bool { return b.MJ == 0 && b.Frac == 0 }

// Query is a parsed query, ready for binding by an Engine.
type Query struct {
	Kind      Kind
	K         int     // TopK
	Threshold float64 // Selection: value > Threshold
	Agg       string  // Aggregate: MAX, MIN, SUM, COUNT, AVG, MEDIAN
	Planner   PlannerName
	Budget    Budget
	Samples   int // requested sample-window size; 0 = engine default
}

// String renders the query back in canonical form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch q.Kind {
	case TopK:
		fmt.Fprintf(&b, "TOP %d", q.K)
	case Aggregate:
		fmt.Fprintf(&b, "%s(value)", q.Agg)
	default:
		fmt.Fprintf(&b, "* WHERE value > %g", q.Threshold)
	}
	b.WriteString(" FROM sensors")
	if q.Kind == Aggregate {
		return b.String() // aggregates take no planner/budget clauses
	}
	if !q.Budget.IsZero() {
		if q.Budget.MJ > 0 {
			fmt.Fprintf(&b, " BUDGET %gmJ", q.Budget.MJ)
		} else {
			fmt.Fprintf(&b, " BUDGET %g%%", q.Budget.Frac*100)
		}
	}
	fmt.Fprintf(&b, " USING %s", q.Planner)
	if q.Samples > 0 {
		fmt.Fprintf(&b, " SAMPLES %d", q.Samples)
	}
	return b.String()
}

// Parse parses a query string. The grammar (keywords are
// case-insensitive):
//
//	query    := SELECT target FROM ident clause*
//	target   := TOP number
//	          | '*' [WHERE VALUE '>' number]
//	          | agg '(' VALUE ')'             (no clauses allowed after)
//	agg      := MAX | MIN | SUM | COUNT | AVG | MEDIAN
//	clause   := BUDGET number ('%' | MJ)?    (default: mJ)
//	          | USING planner
//	          | WITH PROOF                   (same as USING PROOF)
//	          | EXACT                        (same as USING EXACT)
//	          | SAMPLES number
//	          | WHERE VALUE '>' number
//	planner  := GREEDY | LP-LF | LP+LF | PROOF | EXACT
func Parse(s string) (*Query, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectWord(words ...string) (string, error) {
	t := p.next()
	if t.kind != tokWord {
		return "", fmt.Errorf("query: expected %s, got %v at offset %d", strings.Join(words, " or "), t, t.pos)
	}
	for _, w := range words {
		if t.text == w {
			return w, nil
		}
	}
	return "", fmt.Errorf("query: expected %s, got %v at offset %d", strings.Join(words, " or "), t, t.pos)
}

func (p *parser) expectNumber() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected a number, got %v at offset %d", t, t.pos)
	}
	return t.num, nil
}

func (p *parser) parse() (*Query, error) {
	if _, err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Planner: PlannerLPLF}
	switch t := p.next(); {
	case t.kind == tokWord && t.text == "TOP":
		k, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if k < 1 || k != float64(int(k)) {
			return nil, fmt.Errorf("query: TOP wants a positive integer, got %g", k)
		}
		q.Kind = TopK
		q.K = int(k)
	case t.kind == tokStar:
		q.Kind = Selection
	case t.kind == tokWord && isAggName(t.text):
		q.Kind = Aggregate
		q.Agg = t.text
		if tok := p.next(); tok.kind != tokLParen {
			return nil, fmt.Errorf("query: expected ( after %s, got %v", t.text, tok)
		}
		if _, err := p.expectWord("VALUE"); err != nil {
			return nil, err
		}
		if tok := p.next(); tok.kind != tokRParen {
			return nil, fmt.Errorf("query: expected ) closing %s, got %v", t.text, tok)
		}
	default:
		return nil, fmt.Errorf("query: expected TOP, *, or an aggregate, got %v at offset %d", t, t.pos)
	}
	if _, err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokWord {
		return nil, fmt.Errorf("query: expected a source name, got %v at offset %d", t, t.pos)
	}
	sawWhere := false
	for p.cur().kind != tokEOF {
		t := p.next()
		if t.kind != tokWord {
			return nil, fmt.Errorf("query: expected a clause keyword, got %v at offset %d", t, t.pos)
		}
		if q.Kind == Aggregate {
			return nil, fmt.Errorf("query: aggregates run in-network (TAG) and take no %s clause", t.text)
		}
		switch t.text {
		case "BUDGET":
			if !q.Budget.IsZero() {
				return nil, fmt.Errorf("query: duplicate BUDGET at offset %d", t.pos)
			}
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, fmt.Errorf("query: BUDGET must be positive, got %g", n)
			}
			switch nt := p.cur(); {
			case nt.kind == tokPercent:
				p.next()
				if n >= 1000 {
					return nil, fmt.Errorf("query: BUDGET %g%% is not a percentage", n)
				}
				q.Budget.Frac = n / 100
			case nt.kind == tokWord && nt.text == "MJ":
				p.next()
				q.Budget.MJ = n
			default:
				q.Budget.MJ = n
			}
		case "USING":
			name, err := p.expectWord(string(PlannerGreedy), string(PlannerLPNoLF),
				string(PlannerLPLF), string(PlannerProof), string(PlannerExact))
			if err != nil {
				return nil, err
			}
			q.Planner = PlannerName(name)
		case "WITH":
			if _, err := p.expectWord("PROOF"); err != nil {
				return nil, err
			}
			q.Planner = PlannerProof
		case "EXACT":
			q.Planner = PlannerExact
		case "SAMPLES":
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			if n < 1 || n != float64(int(n)) {
				return nil, fmt.Errorf("query: SAMPLES wants a positive integer, got %g", n)
			}
			q.Samples = int(n)
		case "WHERE":
			if sawWhere {
				return nil, fmt.Errorf("query: duplicate WHERE at offset %d", t.pos)
			}
			sawWhere = true
			if _, err := p.expectWord("VALUE"); err != nil {
				return nil, err
			}
			if op := p.next(); op.kind != tokGT {
				return nil, fmt.Errorf("query: only 'value > t' predicates are supported, got %v", op)
			}
			tau, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			q.Threshold = tau
			if q.Kind != Selection {
				return nil, fmt.Errorf("query: WHERE applies to 'SELECT *' selection queries")
			}
		default:
			return nil, fmt.Errorf("query: unknown clause %q at offset %d", t.text, t.pos)
		}
	}
	if q.Kind == Selection && !sawWhere {
		return nil, fmt.Errorf("query: 'SELECT *' needs a WHERE value > t predicate")
	}
	if q.Kind == Selection && (q.Planner == PlannerProof || q.Planner == PlannerExact) {
		return nil, fmt.Errorf("query: proof/exact execution applies to TOP-k queries")
	}
	return q, nil
}

// isAggName reports whether w is a supported aggregate function.
func isAggName(w string) bool {
	switch w {
	case "MAX", "MIN", "SUM", "COUNT", "AVG", "MEDIAN":
		return true
	}
	return false
}
