package query

import (
	"strings"
	"testing"
)

// TestParseErrorMessages pins the message of every distinct lexer and
// parser error path, so a refactor cannot silently collapse two
// failure modes into one vague error. TestParseErrors (query_test.go)
// covers the err != nil contract; this table covers what the user is
// told.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error message
	}{
		// Lexer errors.
		{"number with two dots", "SELECT TOP 1.2.3 FROM s", `malformed number "1.2.3"`},
		{"bare dot number", "SELECT TOP . FROM s", "malformed number"},
		{"unexpected character", "SELECT TOP 5 @ FROM s", "unexpected character '@'"},

		// SELECT target errors.
		{"missing SELECT", "TOP 5 FROM s", "expected SELECT"},
		{"bad target", "SELECT DOWN 5 FROM s", "expected TOP, *, or an aggregate"},
		{"TOP without k", "SELECT TOP FROM s", "expected a number"},
		{"TOP zero", "SELECT TOP 0 FROM s", "TOP wants a positive integer"},
		{"TOP fractional", "SELECT TOP 2.5 FROM s", "TOP wants a positive integer"},

		// Aggregate shape errors.
		{"aggregate missing paren", "SELECT MAX value) FROM s", "expected ( after MAX"},
		{"aggregate wrong column", "SELECT MAX(reading) FROM s", "expected VALUE"},
		{"aggregate unclosed", "SELECT MAX(value FROM s", "expected ) closing MAX"},
		{"aggregate with clause", "SELECT MAX(value) FROM s BUDGET 10%", "take no BUDGET clause"},

		// FROM errors.
		{"missing FROM", "SELECT TOP 5 sensors", "expected FROM"},
		{"missing source", "SELECT TOP 5 FROM", "expected a source name"},

		// Clause errors.
		{"clause not a word", "SELECT TOP 5 FROM s 42", "expected a clause keyword"},
		{"unknown clause", "SELECT TOP 5 FROM s FROBNICATE", `unknown clause "FROBNICATE"`},
		{"BUDGET without amount", "SELECT TOP 5 FROM s BUDGET", "expected a number"},
		{"BUDGET zero", "SELECT TOP 5 FROM s BUDGET 0", "BUDGET must be positive"},
		{"BUDGET negative", "SELECT TOP 5 FROM s BUDGET -3", "BUDGET must be positive"},
		{"BUDGET absurd percent", "SELECT TOP 5 FROM s BUDGET 2000%", "not a percentage"},
		{"duplicate BUDGET", "SELECT TOP 5 FROM s BUDGET 30% BUDGET 10%", "duplicate BUDGET"},
		{"unknown planner", "SELECT TOP 5 FROM s USING DIJKSTRA", "expected GREEDY or LP-LF or LP+LF or PROOF or EXACT"},
		{"WITH without PROOF", "SELECT TOP 5 FROM s WITH BUDGET 10%", "expected PROOF"},
		{"SAMPLES zero", "SELECT TOP 5 FROM s SAMPLES 0", "SAMPLES wants a positive integer"},
		{"SAMPLES fractional", "SELECT TOP 5 FROM s SAMPLES 2.5", "SAMPLES wants a positive integer"},

		// WHERE errors.
		{"duplicate WHERE", "SELECT * FROM s WHERE value > 5 WHERE value > 6", "duplicate WHERE"},
		{"WHERE wrong column", "SELECT * FROM s WHERE reading > 5", "expected VALUE"},
		{"WHERE wrong operator", "SELECT * FROM s WHERE value < 5", "only 'value > t' predicates"},
		{"WHERE without threshold", "SELECT * FROM s WHERE value >", "expected a number"},
		{"WHERE on TOP-k", "SELECT TOP 5 FROM s WHERE value > 5", "WHERE applies to 'SELECT *'"},

		// Cross-clause validation.
		{"selection without WHERE", "SELECT * FROM s", "needs a WHERE value > t predicate"},
		{"proof on selection", "SELECT * FROM s WHERE value > 5 WITH PROOF", "proof/exact execution applies to TOP-k"},
		{"exact on selection", "SELECT * FROM s WHERE value > 5 EXACT", "proof/exact execution applies to TOP-k"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.in)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.in, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse(%q) error = %q, want it to contain %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestParseBudgetUnits covers the three accepted BUDGET spellings,
// including the bare-number default-to-mJ path.
func TestParseBudgetUnits(t *testing.T) {
	for _, tc := range []struct {
		in       string
		mj, frac float64
	}{
		{"SELECT TOP 5 FROM s BUDGET 900mJ", 900, 0},
		{"SELECT TOP 5 FROM s BUDGET 900", 900, 0},
		{"SELECT TOP 5 FROM s BUDGET 25%", 0, 0.25},
	} {
		q, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if q.Budget.MJ != tc.mj || q.Budget.Frac != tc.frac {
			t.Errorf("Parse(%q) budget = %+v, want MJ=%g Frac=%g", tc.in, q.Budget, tc.mj, tc.frac)
		}
	}
}
