package query

import (
	"math/rand"
	"strings"
	"testing"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/workload"
)

func TestParseTopK(t *testing.T) {
	q, err := Parse("SELECT TOP 8 FROM sensors BUDGET 30% USING LP+LF")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != TopK || q.K != 8 {
		t.Errorf("kind/k = %v/%d", q.Kind, q.K)
	}
	if q.Budget.Frac != 0.3 || q.Budget.MJ != 0 {
		t.Errorf("budget = %+v", q.Budget)
	}
	if q.Planner != PlannerLPLF {
		t.Errorf("planner = %s", q.Planner)
	}
}

func TestParseVariants(t *testing.T) {
	cases := []struct {
		in      string
		planner PlannerName
		mj      float64
		frac    float64
		samples int
	}{
		{"select top 5 from sensors", PlannerLPLF, 0, 0, 0},
		{"SELECT TOP 5 FROM s EXACT", PlannerExact, 0, 0, 0},
		{"SELECT TOP 5 FROM s WITH PROOF BUDGET 900mJ", PlannerProof, 900, 0, 0},
		{"SELECT TOP 5 FROM s BUDGET 120 USING greedy", PlannerGreedy, 120, 0, 0},
		{"SELECT TOP 5 FROM s USING lp-lf SAMPLES 20", PlannerLPNoLF, 0, 0, 20},
		{"SELECT TOP 5 FROM s BUDGET 12.5% SAMPLES 7", PlannerLPLF, 0, 0.125, 7},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if q.Planner != c.planner || q.Budget.MJ != c.mj || q.Budget.Frac != c.frac || q.Samples != c.samples {
			t.Errorf("%q: got planner=%s mj=%g frac=%g samples=%d", c.in, q.Planner, q.Budget.MJ, q.Budget.Frac, q.Samples)
		}
	}
}

func TestParseSelection(t *testing.T) {
	q, err := Parse("SELECT * FROM sensors WHERE value > 55 BUDGET 25%")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != Selection || q.Threshold != 55 {
		t.Errorf("kind/threshold = %v/%g", q.Kind, q.Threshold)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"TOP 5 FROM s",                  // missing SELECT
		"SELECT TOP FROM s",             // missing k
		"SELECT TOP 0 FROM s",           // k < 1
		"SELECT TOP 2.5 FROM s",         // fractional k
		"SELECT TOP 5 FROM s BUDGET -3", // negative budget
		"SELECT TOP 5 FROM s BUDGET 30% BUDGET 10%", // duplicate
		"SELECT TOP 5 FROM s USING DIJKSTRA",        // unknown planner
		"SELECT * FROM s",                           // selection without WHERE
		"SELECT * FROM s WHERE value < 5",           // unsupported operator
		"SELECT * FROM s WHERE value > 5 EXACT",     // exact selection
		"SELECT TOP 5 FROM s FROBNICATE",            // unknown clause
		"SELECT TOP 5 FROM s SAMPLES 0",             // bad samples
		"SELECT TOP 5 @ FROM s",                     // lexer error
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestQueryString(t *testing.T) {
	q, err := Parse("SELECT TOP 8 FROM sensors BUDGET 30% USING GREEDY SAMPLES 10")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"TOP 8", "BUDGET 30%", "USING GREEDY", "SAMPLES 10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Canonical form must re-parse to the same query.
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if *q2 != *q {
		t.Errorf("round trip: %+v != %+v", q2, q)
	}
}

func testEngine(t *testing.T) (*Engine, *workload.GaussianField) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	net, err := network.Build(network.DefaultBuildConfig(22), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(22), rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net, energy.DefaultModel(), 15)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 12; e++ {
		if err := eng.Observe(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return eng, src
}

func TestEngineTopK(t *testing.T) {
	eng, src := testEngine(t)
	q, err := Parse("SELECT TOP 6 FROM sensors BUDGET 40% USING LP+LF")
	if err != nil {
		t.Fatal(err)
	}
	truth := src.Next()
	ans, err := eng.Run(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Values) == 0 || len(ans.Values) > 6 {
		t.Fatalf("%d values", len(ans.Values))
	}
	if ans.Ledger.Total() <= 0 {
		t.Error("no energy charged")
	}
	if acc := exec.Accuracy(ans.Values, truth, 6); acc < 0.3 {
		t.Errorf("accuracy %.2f", acc)
	}
}

func TestEngineExact(t *testing.T) {
	eng, src := testEngine(t)
	q, err := Parse("SELECT TOP 5 FROM sensors EXACT")
	if err != nil {
		t.Fatal(err)
	}
	truth := src.Next()
	ans, err := eng.Run(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Error("exact query not marked exact")
	}
	want := exec.TrueTopK(truth, 5)
	for i := range want {
		if ans.Values[i].Node != want[i].Node {
			t.Fatalf("rank %d: node %d, want %d", i, ans.Values[i].Node, want[i].Node)
		}
	}
}

func TestEngineProof(t *testing.T) {
	eng, src := testEngine(t)
	q, err := Parse("SELECT TOP 5 FROM sensors WITH PROOF BUDGET 95%")
	if err != nil {
		t.Fatal(err)
	}
	truth := src.Next()
	ans, err := eng.Run(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Proven < 0 || ans.Proven > 5 {
		t.Errorf("proven = %d", ans.Proven)
	}
	// Whatever is proven must be the true top prefix.
	want := exec.TrueTopK(truth, ans.Proven)
	for i := 0; i < ans.Proven; i++ {
		if ans.Values[i].Node != want[i].Node {
			t.Fatalf("proven rank %d wrong", i)
		}
	}
}

func TestEngineSelection(t *testing.T) {
	eng, src := testEngine(t)
	q, err := Parse("SELECT * FROM sensors WHERE value > 58 BUDGET 60% USING LP-LF")
	if err != nil {
		t.Fatal(err)
	}
	truth := src.Next()
	ans, err := eng.Run(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ans.Values {
		if v.Val <= 58 {
			t.Errorf("returned value %g below threshold", v.Val)
		}
		if v.Val != truth[v.Node] {
			t.Errorf("node %d value %g != truth %g", v.Node, v.Val, truth[v.Node])
		}
	}
}

func TestEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, err := network.Build(network.DefaultBuildConfig(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net, energy.DefaultModel(), 5)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT TOP 3 FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(q, make([]float64, 10)); err == nil {
		t.Error("Run succeeded with no observations")
	}
	if err := eng.Observe(make([]float64, 3)); err == nil {
		t.Error("Observe accepted wrong width")
	}
	if err := eng.Observe(make([]float64, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(q, make([]float64, 4)); err == nil {
		t.Error("Run accepted wrong truth width")
	}
	big, err := Parse("SELECT TOP 99 FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(big, make([]float64, 10)); err == nil {
		t.Error("Run accepted k > n")
	}
}

func TestEngineWindowTrimming(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, err := network.Build(network.DefaultBuildConfig(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net, energy.DefaultModel(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 9; e++ {
		if err := eng.Observe(make([]float64, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Observations() != 4 {
		t.Errorf("window holds %d, want 4", eng.Observations())
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Fuzz the parser with random byte soup and mutated valid queries:
	// it must return errors, never panic.
	rng := rand.New(rand.NewSource(12))
	alphabet := []byte("SELECT TOP FROM sensors BUDGET USING WHERE value >%*.0123456789 lp+lf-@#")
	valid := "SELECT TOP 8 FROM sensors BUDGET 30% USING LP+LF SAMPLES 20"
	for trial := 0; trial < 3000; trial++ {
		var input string
		if trial%2 == 0 {
			b := make([]byte, rng.Intn(60))
			for i := range b {
				b[i] = alphabet[rng.Intn(len(alphabet))]
			}
			input = string(b)
		} else {
			b := []byte(valid)
			for m := 0; m < 1+rng.Intn(5); m++ {
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
			input = string(b)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", input, r)
				}
			}()
			q, err := Parse(input)
			if err == nil && q == nil {
				t.Fatalf("Parse(%q) returned nil, nil", input)
			}
		}()
	}
}

func TestStandingQuery(t *testing.T) {
	eng, src := testEngine(t)
	q, err := Parse("SELECT TOP 5 FROM sensors BUDGET 40% USING LP+LF")
	if err != nil {
		t.Fatal(err)
	}
	policy := core.DefaultAdaptivePolicy()
	policy.ReplanEvery = 4
	policy.CheckEvery = 100 // no spot checks at this test scale
	st, err := eng.Stand(q, policy, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	accSum := 0.0
	const epochs = 12
	for e := 0; e < epochs; e++ {
		truth := src.Next()
		ans, err := st.Step(truth)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if len(ans.Values) == 0 || len(ans.Values) > 5 {
			t.Fatalf("epoch %d: %d values", e, len(ans.Values))
		}
		accSum += exec.Accuracy(ans.Values, truth, 5)
	}
	if accSum/epochs < 0.3 {
		t.Errorf("standing accuracy %.2f", accSum/epochs)
	}
	stats := st.Stats()
	if stats.Epochs != epochs {
		t.Errorf("stats epochs %d", stats.Epochs)
	}
	if stats.Replans < 3 {
		t.Errorf("replans %d", stats.Replans)
	}
	if _, ok := st.EnergyBudgetCheck(); !ok {
		t.Error("standing query blew its energy envelope")
	}
	if st.Plan() == nil {
		t.Error("no plan installed")
	}
}

func TestStandRejections(t *testing.T) {
	eng, _ := testEngine(t)
	rng := rand.New(rand.NewSource(14))
	sel, err := Parse("SELECT * FROM s WHERE value > 50")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Stand(sel, core.DefaultAdaptivePolicy(), rng); err == nil {
		t.Error("selection query stood")
	}
	ex, err := Parse("SELECT TOP 3 FROM s EXACT")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Stand(ex, core.DefaultAdaptivePolicy(), rng); err == nil {
		t.Error("exact query stood")
	}
}

func TestParseAggregates(t *testing.T) {
	for _, agg := range []string{"MAX", "MIN", "SUM", "COUNT", "AVG", "MEDIAN"} {
		q, err := Parse("SELECT " + agg + "(value) FROM sensors")
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if q.Kind != Aggregate || q.Agg != agg {
			t.Errorf("%s parsed as %+v", agg, q)
		}
		// Canonical form round-trips.
		if _, err := Parse(q.String()); err != nil {
			t.Errorf("%s: re-parse %q: %v", agg, q.String(), err)
		}
	}
	bad := []string{
		"SELECT MAX(value) FROM s BUDGET 30%",   // clauses forbidden
		"SELECT MAX(value) FROM s USING GREEDY", // even the default planner
		"SELECT MAX value FROM s",               // missing parens
		"SELECT MAX(temp) FROM s",               // unknown column
		"SELECT FROBNICATE(value) FROM s",       // unknown aggregate
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestEngineAggregates(t *testing.T) {
	eng, src := testEngine(t)
	truth := src.Next()
	maxWant := truth[0]
	sumWant := 0.0
	for _, v := range truth {
		if v > maxWant {
			maxWant = v
		}
		sumWant += v
	}
	check := func(text string, want float64, tol float64) {
		q, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eng.Run(q, truth)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Values) != 1 {
			t.Fatalf("%s: %d values", text, len(ans.Values))
		}
		if diff := ans.Values[0].Val - want; diff > tol || diff < -tol {
			t.Errorf("%s = %g, want %g", text, ans.Values[0].Val, want)
		}
		if ans.Ledger.Messages != eng.Root().Size()-1 {
			t.Errorf("%s: %d messages", text, ans.Ledger.Messages)
		}
	}
	check("SELECT MAX(value) FROM sensors", maxWant, 1e-9)
	check("SELECT SUM(value) FROM sensors", sumWant, 1e-9)
	check("SELECT COUNT(value) FROM sensors", float64(len(truth)), 1e-9)
	// Median is approximate; just confirm exactness flag and range.
	q, err := Parse("SELECT MEDIAN(value) FROM sensors")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Error("median marked exact")
	}
}

func TestStandingWithEveryPlanner(t *testing.T) {
	eng, src := testEngine(t)
	policy := core.DefaultAdaptivePolicy()
	policy.ReplanEvery = 100
	policy.CheckEvery = 100
	for i, text := range []string{
		"SELECT TOP 4 FROM s BUDGET 35% USING GREEDY",
		"SELECT TOP 4 FROM s BUDGET 35% USING LP-LF",
	} {
		q, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Stand(q, policy, rand.New(rand.NewSource(int64(20+i))))
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if _, err := st.Step(src.Next()); err != nil {
			t.Fatalf("%s: %v", text, err)
		}
	}
}
