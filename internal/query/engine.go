package query

import (
	"fmt"
	"math"

	"prospector/internal/aggregate"
	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
	"prospector/internal/sample"
)

// Engine binds parsed queries to a concrete network and a window of
// observed epochs, then plans and executes them. It retains raw epochs
// so that each query can derive its own Boolean matrix (top-k or
// threshold marking) from the same observations.
type Engine struct {
	net    *network.Network
	model  energy.Model
	costs  *plan.Costs
	window int
	epochs [][]float64
	obs    *obs.Registry
	trace  *obs.Tracer
}

// SetObs attaches a metrics registry and/or tracer; both are threaded
// into every subsequent plan and execution (query.* plus the core.*,
// lp.*, and exec.* families). Nil values detach.
func (e *Engine) SetObs(r *obs.Registry, tr *obs.Tracer) {
	e.obs = r
	e.trace = tr
}

// NewEngine creates an engine holding at most window raw epochs
// (window <= 0 means 25).
func NewEngine(net *network.Network, model energy.Model, window int) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("query: engine needs a network")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 25
	}
	return &Engine{
		net:    net,
		model:  model,
		costs:  plan.NewCosts(net, model),
		window: window,
	}, nil
}

// Observe feeds one epoch of full-network readings into the window.
func (e *Engine) Observe(values []float64) error {
	if len(values) != e.net.Size() {
		return fmt.Errorf("query: %d readings for %d nodes", len(values), e.net.Size())
	}
	e.epochs = append(e.epochs, append([]float64(nil), values...))
	if len(e.epochs) > e.window {
		e.epochs = e.epochs[len(e.epochs)-e.window:]
	}
	return nil
}

// Observations returns how many epochs the window currently holds.
func (e *Engine) Observations() int { return len(e.epochs) }

// Metric names exported by the engine when SetObs is called:
//
//	query.runs             counter, one-shot Run invocations
//	query.rounds           counter, standing-query Step rounds
//	query.exact_answers    counter, answers returned with Exact set
//	query.round_energy_mj  histogram, per-answer energy spend
//
// All plans and executions additionally emit the core.*, lp.*, and
// exec.* families through the same registry.

// roundEnergyBounds buckets per-round energy in millijoules.
var roundEnergyBounds = []float64{1, 5, 10, 50, 100, 500, 1000, 5000}

// recordAnswer tallies one answered query.
func (e *Engine) recordAnswer(a *Answer) *Answer {
	if e.obs == nil {
		return a
	}
	e.obs.Counter("query.runs").Inc()
	if a.Exact {
		e.obs.Counter("query.exact_answers").Inc()
	}
	e.obs.Histogram("query.round_energy_mj", roundEnergyBounds).Observe(a.Ledger.Total())
	return a
}

// Answer is the outcome of running a query on one epoch.
type Answer struct {
	// Values are the readings returned to the query station, ranked.
	Values []exec.ValueAt
	// Exact is true when the answer is guaranteed correct (EXACT
	// planner, or PROOF with everything proven).
	Exact bool
	// Proven counts the proven prefix for proof-carrying runs.
	Proven int
	// Ledger totals the energy spent answering.
	Ledger energy.Ledger
	// Plan describes the executed plan.
	Plan string
}

// Run plans the query against the observation window and executes it
// on the given epoch of ground-truth readings.
func (e *Engine) Run(q *Query, truth []float64) (*Answer, error) {
	if q == nil {
		return nil, fmt.Errorf("query: nil query")
	}
	if len(truth) != e.net.Size() {
		return nil, fmt.Errorf("query: %d readings for %d nodes", len(truth), e.net.Size())
	}
	if q.Kind == Aggregate {
		return e.runAggregate(q, truth)
	}
	if len(e.epochs) == 0 {
		return nil, fmt.Errorf("query: no observations yet; call Observe first")
	}
	set, k, err := e.buildSamples(q)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Net: e.net, Costs: e.costs, Samples: set, K: k, Obs: e.obs}
	budget, err := e.resolveBudget(q, k)
	if err != nil {
		return nil, err
	}
	env := exec.Env{Net: e.net, Costs: e.costs, Obs: e.obs, Trace: e.trace}

	switch q.Planner {
	case PlannerExact:
		ex, err := core.NewExact(cfg)
		if err != nil {
			return nil, err
		}
		if min := ex.MinPhase1Budget(); budget < min {
			budget = min * 1.1
		}
		res, err := ex.Run(env, truth, budget)
		if err != nil {
			return nil, err
		}
		led := res.Phase1
		led.Add(res.Phase2)
		return e.recordAnswer(&Answer{
			Values: res.Answer,
			Exact:  true,
			Proven: res.ProvenPhase1,
			Ledger: led,
			Plan:   fmt.Sprintf("exact two-phase, phase-1 budget %.1f mJ", budget),
		}), nil
	case PlannerProof:
		pp, err := core.NewProofPlanner(cfg)
		if err != nil {
			return nil, err
		}
		if min := pp.MinBudget(); budget < min {
			budget = min * 1.1
		}
		p, err := pp.Plan(budget)
		if err != nil {
			return nil, err
		}
		res, err := exec.Run(env, p, truth)
		if err != nil {
			return nil, err
		}
		vals := res.Returned
		if len(vals) > k {
			vals = vals[:k]
		}
		return e.recordAnswer(&Answer{
			Values: vals,
			Exact:  res.Proven >= k,
			Proven: res.Proven,
			Ledger: res.Ledger,
			Plan:   p.String(),
		}), nil
	default:
		pl, err := e.approxPlanner(q, cfg)
		if err != nil {
			return nil, err
		}
		p, err := pl.Plan(budget)
		if err != nil {
			return nil, err
		}
		res, err := exec.Run(env, p, truth)
		if err != nil {
			return nil, err
		}
		vals := res.Returned
		if q.Kind == TopK && len(vals) > k {
			vals = vals[:k]
		}
		if q.Kind == Selection {
			var kept []exec.ValueAt
			for _, v := range vals {
				if v.Val > q.Threshold {
					kept = append(kept, v)
				}
			}
			vals = kept
		}
		return e.recordAnswer(&Answer{Values: vals, Ledger: res.Ledger, Plan: p.String()}), nil
	}
}

// runAggregate executes an in-network aggregate (TAG-style, one
// message per node; no samples or budget involved). The scalar result
// arrives as a single root-attributed value.
func (e *Engine) runAggregate(q *Query, truth []float64) (*Answer, error) {
	var kind aggregate.Kind
	switch q.Agg {
	case "MAX":
		kind = aggregate.Max
	case "MIN":
		kind = aggregate.Min
	case "SUM":
		kind = aggregate.Sum
	case "COUNT":
		kind = aggregate.Count
	case "AVG":
		kind = aggregate.Avg
	case "MEDIAN":
		kind = aggregate.Median
	default:
		return nil, fmt.Errorf("query: unknown aggregate %q", q.Agg)
	}
	env := exec.Env{Net: e.net, Costs: e.costs, Obs: e.obs, Trace: e.trace}
	res, err := aggregate.Collect(env, kind, truth, aggregate.Options{})
	if err != nil {
		return nil, err
	}
	exact := kind != aggregate.Median
	plan := fmt.Sprintf("in-network %s, one message per node", q.Agg)
	if !exact {
		plan += fmt.Sprintf(" (q-digest, rank error <= %d)", res.RankErrorBound)
	}
	return e.recordAnswer(&Answer{
		Values: []exec.ValueAt{{Node: network.Root, Val: res.Value}},
		Exact:  exact,
		Ledger: res.Ledger,
		Plan:   plan,
	}), nil
}

func (e *Engine) approxPlanner(q *Query, cfg core.Config) (core.Planner, error) {
	switch q.Planner {
	case PlannerGreedy:
		return core.NewGreedy(cfg)
	case PlannerLPNoLF:
		return core.NewLPNoFilter(cfg)
	case PlannerLPLF:
		return core.NewLPFilter(cfg)
	}
	return nil, fmt.Errorf("query: unknown planner %q", q.Planner)
}

// buildSamples derives the query's Boolean matrix from the raw window
// and returns it with the effective answer-size bound k.
func (e *Engine) buildSamples(q *Query) (*sample.Set, int, error) {
	epochs := e.epochs
	if q.Samples > 0 && q.Samples < len(epochs) {
		epochs = epochs[len(epochs)-q.Samples:]
	}
	switch q.Kind {
	case TopK:
		if q.K > e.net.Size() {
			return nil, 0, fmt.Errorf("query: TOP %d exceeds the %d-node network", q.K, e.net.Size())
		}
		set, err := sample.NewSet(e.net.Size(), q.K, 0)
		if err != nil {
			return nil, 0, err
		}
		if err := set.AddAll(epochs); err != nil {
			return nil, 0, err
		}
		return set, q.K, nil
	case Selection:
		set, err := sample.NewGeneralSet(e.net.Size(), 0, sample.ThresholdMarker(q.Threshold))
		if err != nil {
			return nil, 0, err
		}
		if err := set.AddAll(epochs); err != nil {
			return nil, 0, err
		}
		// Effective answer size: the mean contributor count, at least 1.
		k := int(math.Ceil(float64(set.TotalOnes()) / float64(set.Len())))
		if k < 1 {
			k = 1
		}
		if k > e.net.Size() {
			k = e.net.Size()
		}
		return set, k, nil
	}
	return nil, 0, fmt.Errorf("query: unknown kind %v", q.Kind)
}

// resolveBudget converts the query's budget clause into millijoules,
// interpreting fractions against the NAIVE-k baseline.
func (e *Engine) resolveBudget(q *Query, k int) (float64, error) {
	naive, err := core.NaiveKPlan(e.net, k)
	if err != nil {
		return 0, err
	}
	base := naive.CollectionCost(e.net, e.costs)
	switch {
	case q.Budget.MJ > 0:
		return q.Budget.MJ, nil
	case q.Budget.Frac > 0:
		return q.Budget.Frac * base, nil
	default:
		// No budget clause: a generous default of half the baseline.
		return 0.5 * base, nil
	}
}

// Root returns the engine's network (handy for callers formatting
// answers).
func (e *Engine) Root() *network.Network { return e.net }
