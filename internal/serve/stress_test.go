package serve_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"prospector/internal/core"
	"prospector/internal/obs"
	"prospector/internal/obs/telemetry"
	"prospector/internal/serve"
)

// TestServeStress drives the pool the way production would under
// load, built to be run with -race: at least 8 client goroutines
// spread over two planner keys hammer Submit with mixed budgets while
// scraper goroutines concurrently pull /metrics, /snapshot.json,
// /debug/telemetry, and /readyz, and the collector ticks. Any data
// race between the workers, the admission path, the registry, and the
// HTTP surface surfaces here.
func TestServeStress(t *testing.T) {
	cfg := makeConfig(t, 11, 20, 4, 5)
	reg := obs.NewRegistry()
	obsCfg := cfg
	obsCfg.Obs = reg
	svc, err := serve.New(serve.Options{
		QueueDepth: 128, BatchMax: 8, Now: time.Now, Obs: reg,
	}, snapshotProvider(obsCfg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	base := serve.Key{Network: "n20", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K}
	collector := telemetry.NewCollector(reg, 64)
	collector.Sample(0) // tick once so /readyz can go ready
	srv := httptest.NewServer(obs.Handler(reg, serve.Endpoints(svc, base, collector)...))
	defer srv.Close()

	keys := []serve.Key{
		{Network: "n20", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K},
		{Network: "n20", Gen: cfg.Samples.Gen(), Planner: core.KindLPNoFilter, K: cfg.K},
	}
	budgets := []float64{40, 60, 90, 140, 220}

	const clients = 8
	const perClient = 12
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			key := keys[i%len(keys)]
			for j := 0; j < perClient; j++ {
				b := budgets[rng.Intn(len(budgets))]
				p, err := svc.Submit(key, b, time.Time{})
				if err != nil {
					errs[i] = fmt.Errorf("client %d req %d (key %s, budget %g): %w", i, j, key, b, err)
					return
				}
				if p == nil {
					errs[i] = fmt.Errorf("client %d req %d: nil plan", i, j)
					return
				}
			}
		}(i)
	}

	// Scrapers run until the clients finish.
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/metrics", "/snapshot.json", "/debug/telemetry", "/readyz"} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	// Keep the collector ticking alongside the scrapes.
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for i := 1; ; i++ {
			select {
			case <-done:
				return
			default:
				collector.Sample(float64(i))
				time.Sleep(time.Millisecond)
			}
		}
	}()

	wg.Wait()
	close(done)
	scrapeWG.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := reg.Counter("serve.requests").Value(); got != clients*perClient {
		t.Fatalf("serve.requests = %d, want %d", got, clients*perClient)
	}
	if got := reg.Gauge("serve.keys").Value(); got != float64(len(keys)) {
		t.Fatalf("serve.keys = %g, want %d", got, len(keys))
	}
}
