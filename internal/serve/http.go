package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"prospector/internal/obs"
	"prospector/internal/obs/telemetry"
	"prospector/internal/regress"
)

// HTTP surface. The service mounts on the existing -listen plumbing
// (obs.Handler / obs.CLI.Serve) next to /metrics and /snapshot.json:
//
//	/plan             answer one plan query (GET or POST)
//	/healthz          liveness: the process is up
//	/readyz           readiness: telemetry ticking AND the pool
//	                  accepting work without shedding (503 when the
//	                  queue is pinned at its cap or the service closed)
//	/debug/telemetry  the windowed series document
//
// /plan query parameters:
//
//	planner      planner kind (default the base key's); unknown kinds
//	             are rejected by the provider with 400
//	k            rank bound (default the base key's)
//	budget       energy budget in mJ, required, > 0
//	deadline_ms  per-request deadline; 0 or absent means none
//
// Status mapping: 200 a plan; 400 bad parameters or an unknown
// (planner, k); 429 the deadline passed before a worker dispatched
// the request; 503 the queue is full or the service is shutting down
// (with Retry-After: 1).

// planDoc is the /plan response document.
type planDoc struct {
	Planner   string  `json:"planner"`
	K         int     `json:"k"`
	Budget    float64 `json:"budget"`
	Kind      string  `json:"kind"`
	Bandwidth []int   `json:"bandwidth"`
	Chosen    []bool  `json:"chosen,omitempty"`
}

// Handler serves /plan against the pool. base supplies the network
// identity and generation every request inherits, plus the default
// planner kind and k; its Planner/K can be overridden per request.
func Handler(s *Service, base Key) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		key := base
		if p := q.Get("planner"); p != "" {
			key.Planner = p
		}
		if ks := q.Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				http.Error(w, "serve: bad k: "+err.Error(), http.StatusBadRequest)
				return
			}
			key.K = k
		}
		budget, err := strconv.ParseFloat(q.Get("budget"), 64)
		if err != nil || budget <= 0 {
			http.Error(w, "serve: budget must be a positive number", http.StatusBadRequest)
			return
		}
		var deadline time.Time
		if ds := q.Get("deadline_ms"); ds != "" {
			ms, err := strconv.ParseFloat(ds, 64)
			if err != nil || ms < 0 {
				http.Error(w, "serve: bad deadline_ms: must be a non-negative number", http.StatusBadRequest)
				return
			}
			if ms > 0 {
				deadline = s.opts.Now().Add(time.Duration(ms * float64(time.Millisecond)))
			}
		}

		p, err := s.Submit(key, budget, deadline)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, ErrDeadline):
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			default:
				// Provider rejections (unknown planner kind, wrong k) and
				// planner-level errors (e.g. a budget below PROOF's
				// minimum) are the client's to fix.
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(planDoc{
			Planner:   key.Planner,
			K:         key.K,
			Budget:    budget,
			Kind:      p.Kind.String(),
			Bandwidth: p.Bandwidth,
			Chosen:    p.Chosen,
		})
	})
}

// ReadyHandler answers readiness for a serving process: ready only
// when the telemetry collector has ticked (the plain telemetry
// contract) and the pool has admission headroom.
func ReadyHandler(s *Service, c *telemetry.Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if c.Ticks() == 0 {
			http.Error(w, "no samples yet", http.StatusServiceUnavailable)
			return
		}
		if err := s.Ready(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	})
}

// Endpoints assembles the full serving surface for obs.Handler /
// obs.CLI.Serve. It replaces telemetry.Endpoints in serve mode — the
// mux panics on duplicate patterns, so exactly one composition owns
// /healthz, /readyz, and /debug/telemetry.
func Endpoints(s *Service, base Key, c *telemetry.Collector) []obs.Endpoint {
	return []obs.Endpoint{
		{Path: "/plan", Handler: Handler(s, base)},
		{Path: "/healthz", Handler: telemetry.HealthHandler()},
		{Path: "/readyz", Handler: ReadyHandler(s, c)},
		{Path: "/debug/telemetry", Handler: c.Handler()},
	}
}

// DefaultFlightRules is the serving tier's stock flight-recorder rule
// set, judged against the live windowed series (regress grammar, see
// telemetry.Monitor): dump the flight ring when the queue pins at its
// admission cap, when any request sheds, or when dispatch latency p99
// leaves the interactive envelope.
func DefaultFlightRules(queueDepth int) []regress.Rule {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	return []regress.Rule{
		{Series: "serve.queue_depth", Kind: "abs<=", Value: 0, Tolerance: float64(queueDepth - 1),
			Note: "queue pinned at the admission cap: the pool is saturated and about to shed"},
		{Series: "serve.shed_total.delta", Kind: "exact", Value: 0,
			Note: "any shed (full queue, missed deadline, closed) dumps the flight ring"},
		{Series: "serve.plan_ms.p99", Kind: "abs<=", Value: 0, Tolerance: 250,
			Note: "p99 solve latency above 250ms: warm chains are breaking or requests stopped coalescing"},
	}
}
