package serve_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
	"prospector/internal/regress"
	"prospector/internal/sample"
	"prospector/internal/serve"
	"prospector/internal/workload"
)

// makeConfig builds one deterministic planning scenario.
func makeConfig(t testing.TB, seed int64, nodes, k, nSamples int) core.Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, nSamples)); err != nil {
		t.Fatal(err)
	}
	return core.Config{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel()), Samples: set, K: k}
}

// snapshotProvider serves real core snapshots for one scenario: any
// of the four planner kinds at the scenario's k; everything else is a
// provider error (the HTTP 400 path).
func snapshotProvider(cfg core.Config) serve.Provider {
	return func(key serve.Key) (serve.PlannerSource, error) {
		if key.K != cfg.K {
			return nil, fmt.Errorf("no snapshot for k=%d (serving k=%d)", key.K, cfg.K)
		}
		snap, err := core.NewSnapshot(cfg, key.Planner)
		if err != nil {
			return nil, err
		}
		return snap, nil
	}
}

// planKey compares plans structurally (Kind + Bandwidth + Chosen),
// like core's plansEqual.
func plansEqual(a, b *plan.Plan) bool {
	return a.Kind == b.Kind &&
		reflect.DeepEqual(a.Bandwidth, b.Bandwidth) &&
		reflect.DeepEqual(a.Chosen, b.Chosen)
}

// fakeClock is a race-safe monotonic test clock: every Now call
// advances it by step.
type fakeClock struct {
	ns   int64
	step int64
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{step: int64(step)}
}

func (c *fakeClock) Now() time.Time {
	return time.Unix(0, atomic.AddInt64(&c.ns, c.step))
}

// blockingSource is a controllable PlannerSource: every Plan call
// signals started and waits for one release, so tests can stall the
// worker with the queue in a known state.
type blockingSource struct {
	started chan struct{}
	release chan struct{}
	solves  atomic.Int64
	plan    *plan.Plan
}

func newBlockingSource(t *testing.T) *blockingSource {
	t.Helper()
	net, err := network.New([]network.NodeID{0, 0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.NewFiltering(net, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return &blockingSource{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		plan:    p,
	}
}

func (b *blockingSource) NewPlanner() (core.Planner, error) {
	return &blockingPlanner{src: b}, nil
}

type blockingPlanner struct{ src *blockingSource }

func (p *blockingPlanner) Name() string { return "blocking" }

func (p *blockingPlanner) Plan(budget float64) (*plan.Plan, error) {
	p.src.started <- struct{}{}
	<-p.src.release
	p.src.solves.Add(1)
	if budget < 0 {
		return nil, fmt.Errorf("blocking: negative budget %g", budget)
	}
	return p.src.plan, nil
}

func sourceProvider(src serve.PlannerSource) serve.Provider {
	return func(serve.Key) (serve.PlannerSource, error) { return src, nil }
}

// waitGauge polls a gauge until it reaches want (the queue settling).
func waitGauge(t *testing.T, g *obs.Gauge, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge stuck at %g, want %g", g.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeCoalescesEqualBudgets pins the coalescing contract
// deterministically: with the worker stalled and the queue loaded
// with 5 requests at budget X and 3 at budget Y, releasing the worker
// must produce exactly one solve per distinct budget, with every
// duplicate answered from the shared plan.
func TestServeCoalescesEqualBudgets(t *testing.T) {
	src := newBlockingSource(t)
	reg := obs.NewRegistry()
	svc, err := serve.New(serve.Options{
		QueueDepth: 64, BatchMax: 16, Now: newFakeClock(time.Microsecond).Now, Obs: reg,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		go drain(src)
		svc.Close()
	}()
	key := serve.Key{Network: "test", Planner: "blocking", K: 1}

	// Stall the worker on a sentinel request.
	stall := submitAsync(svc, key, 999)
	<-src.started

	// Load the queue while the worker is busy.
	const xDup, yDup = 5, 3
	var resps []chan submitResult
	for i := 0; i < xDup; i++ {
		resps = append(resps, submitAsync(svc, key, 10))
	}
	for i := 0; i < yDup; i++ {
		resps = append(resps, submitAsync(svc, key, 20))
	}
	waitGauge(t, reg.Gauge("serve.queue_depth"), float64(xDup+yDup))

	// Release the stall, then the two batched solves (X once, Y once).
	src.release <- struct{}{} // sentinel completes
	<-src.started             // batch dispatch: solve for X
	src.release <- struct{}{}
	<-src.started // solve for Y
	src.release <- struct{}{}

	if r := <-stall; r.err != nil {
		t.Fatalf("sentinel: %v", r.err)
	}
	for i, ch := range resps {
		r := <-ch
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if !plansEqual(r.plan, src.plan) {
			t.Fatalf("request %d: wrong plan %v", i, r.plan)
		}
	}
	if got := src.solves.Load(); got != 3 {
		t.Fatalf("solves = %d, want 3 (sentinel + one per distinct budget)", got)
	}
	if got := reg.Counter("serve.coalesced").Value(); got != xDup+yDup-2 {
		t.Fatalf("serve.coalesced = %d, want %d", got, xDup+yDup-2)
	}
}

type submitResult struct {
	plan *plan.Plan
	err  error
}

func submitAsync(svc *serve.Service, key serve.Key, budget float64) chan submitResult {
	ch := make(chan submitResult, 1)
	go func() {
		p, err := svc.Submit(key, budget, time.Time{})
		ch <- submitResult{plan: p, err: err}
	}()
	return ch
}

// drain releases a blockingSource forever (teardown helper).
func drain(src *blockingSource) {
	for {
		select {
		case src.release <- struct{}{}:
		case <-time.After(2 * time.Second):
			return
		}
	}
}

// TestServeShedsWhenQueueFull: with the worker stalled and the queue
// at its depth bound, the next submission sheds immediately with
// ErrQueueFull, Ready reports the saturation, and the shed counters
// advance.
func TestServeShedsWhenQueueFull(t *testing.T) {
	src := newBlockingSource(t)
	reg := obs.NewRegistry()
	svc, err := serve.New(serve.Options{
		QueueDepth: 3, BatchMax: 16, Now: newFakeClock(time.Microsecond).Now, Obs: reg,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		go drain(src)
		svc.Close()
	}()
	key := serve.Key{Network: "test", Planner: "blocking", K: 1}

	stall := submitAsync(svc, key, 1)
	<-src.started // worker busy; queue empty
	var queued []chan submitResult
	for i := 0; i < 3; i++ {
		queued = append(queued, submitAsync(svc, key, float64(10+i)))
	}
	waitGauge(t, reg.Gauge("serve.queue_depth"), 3)

	if _, err := svc.Submit(key, 50, time.Time{}); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("submit over capacity: err = %v, want ErrQueueFull", err)
	}
	if err := svc.Ready(); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("Ready at capacity: %v, want ErrQueueFull", err)
	}
	if got := reg.Counter("serve.shed.full").Value(); got != 1 {
		t.Fatalf("serve.shed.full = %d, want 1", got)
	}
	if got := reg.Counter("serve.shed_total").Value(); got != 1 {
		t.Fatalf("serve.shed_total = %d, want 1", got)
	}

	// Unblock everything; the queued requests must all be served.
	go drain(src)
	if r := <-stall; r.err != nil {
		t.Fatal(r.err)
	}
	for i, ch := range queued {
		if r := <-ch; r.err != nil {
			t.Fatalf("queued %d: %v", i, r.err)
		}
	}
	if err := svc.Ready(); err != nil {
		t.Fatalf("Ready after drain: %v", err)
	}
}

// TestServeCloseDrainsThenRejects: Close lets queued requests finish,
// joins the workers, and rejects later submissions with ErrClosed.
func TestServeCloseDrainsThenRejects(t *testing.T) {
	src := newBlockingSource(t)
	reg := obs.NewRegistry()
	svc, err := serve.New(serve.Options{
		QueueDepth: 16, BatchMax: 4, Now: newFakeClock(time.Microsecond).Now, Obs: reg,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	key := serve.Key{Network: "test", Planner: "blocking", K: 1}

	stall := submitAsync(svc, key, 1)
	<-src.started
	var queued []chan submitResult
	for i := 0; i < 4; i++ {
		queued = append(queued, submitAsync(svc, key, float64(10+i)))
	}
	waitGauge(t, reg.Gauge("serve.queue_depth"), 4)

	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	go drain(src)

	if r := <-stall; r.err != nil {
		t.Fatal(r.err)
	}
	for i, ch := range queued {
		if r := <-ch; r.err != nil {
			t.Fatalf("queued %d after Close: %v (Close must drain, not drop)", i, r.err)
		}
	}
	<-closed
	if got := reg.Gauge("serve.workers").Value(); got != 0 {
		t.Fatalf("serve.workers = %g after Close, want 0", got)
	}
	if _, err := svc.Submit(key, 5, time.Time{}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
	if got := reg.Counter("serve.shed.closed").Value(); got != 1 {
		t.Fatalf("serve.shed.closed = %d, want 1", got)
	}
}

// TestServeDeadlineShed: a request whose deadline has passed by
// dispatch time is shed with ErrDeadline, not solved.
func TestServeDeadlineShed(t *testing.T) {
	src := newBlockingSource(t)
	reg := obs.NewRegistry()
	// Every clock read advances 10ms: any deadline under that is
	// guaranteed stale at dispatch.
	clock := newFakeClock(10 * time.Millisecond)
	svc, err := serve.New(serve.Options{
		QueueDepth: 16, BatchMax: 4, Now: clock.Now, Obs: reg,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		go drain(src)
		svc.Close()
	}()
	key := serve.Key{Network: "test", Planner: "blocking", K: 1}

	stall := submitAsync(svc, key, 1)
	<-src.started
	expired := submitAsync2(svc, key, 10, clock.Now().Add(time.Millisecond))
	waitGauge(t, reg.Gauge("serve.queue_depth"), 1)
	src.release <- struct{}{} // sentinel completes; next dispatch judges the deadline

	if r := <-expired; !errors.Is(r.err, serve.ErrDeadline) {
		t.Fatalf("expired request: %v, want ErrDeadline", r.err)
	}
	if r := <-stall; r.err != nil {
		t.Fatal(r.err)
	}
	if got := src.solves.Load(); got != 1 {
		t.Fatalf("solves = %d, want 1 (the expired request must not solve)", got)
	}
	if got := reg.Counter("serve.shed.deadline").Value(); got != 1 {
		t.Fatalf("serve.shed.deadline = %d, want 1", got)
	}
}

func submitAsync2(svc *serve.Service, key serve.Key, budget float64, deadline time.Time) chan submitResult {
	ch := make(chan submitResult, 1)
	go func() {
		p, err := svc.Submit(key, budget, deadline)
		ch <- submitResult{plan: p, err: err}
	}()
	return ch
}

// TestServePlannerErrorIsIsolated: a failing budget answers only its
// own request; neighbors in the same batch still get plans.
func TestServePlannerErrorIsIsolated(t *testing.T) {
	src := newBlockingSource(t)
	svc, err := serve.New(serve.Options{
		QueueDepth: 16, BatchMax: 8, Now: newFakeClock(time.Microsecond).Now,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	key := serve.Key{Network: "test", Planner: "blocking", K: 1}
	go drain(src)

	bad := submitAsync(svc, key, -5) // blockingPlanner fails on negative budgets
	good := submitAsync(svc, key, 7)
	if r := <-bad; r.err == nil {
		t.Fatal("negative budget: expected a planner error")
	}
	if r := <-good; r.err != nil || !plansEqual(r.plan, src.plan) {
		t.Fatalf("good neighbor: plan %v err %v", r.plan, r.err)
	}
}

// TestServeCoalescedShuffledMatchesCold is the serving-tier
// determinism gate (the pool analog of TestWarmDifferentialMatchesCold):
// a shuffled, duplicate-heavy budget axis submitted concurrently
// through the pool — batched, budget-sorted, coalesced, warm-solved —
// must return plans bitwise-identical to serving each budget on a
// fresh cold planner (DisableWarm + DisablePresolve).
func TestServeCoalescedShuffledMatchesCold(t *testing.T) {
	cfg := makeConfig(t, 7, 25, 5, 6)
	reg := obs.NewRegistry()
	obsCfg := cfg
	obsCfg.Obs = reg
	svc, err := serve.New(serve.Options{
		QueueDepth: 256, BatchMax: 16, Now: time.Now, Obs: reg,
	}, snapshotProvider(obsCfg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	axis := []float64{30, 50, 80, 130, 210, 340}
	// Duplicate-heavy shuffled request stream.
	rng := rand.New(rand.NewSource(41))
	var budgets []float64
	for i := 0; i < 48; i++ {
		budgets = append(budgets, axis[rng.Intn(len(axis))])
	}

	// Cold reference: a fresh planner per budget, warm path and
	// presolve both off (the warm-vs-cold differential convention).
	coldCfg := cfg
	coldCfg.DisableWarm = true
	coldCfg.DisablePresolve = true
	want := make(map[float64]*plan.Plan)
	for _, b := range axis {
		pl, err := core.NewLPFilter(coldCfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pl.Plan(b)
		if err != nil {
			t.Fatal(err)
		}
		want[b] = p
	}

	key := serve.Key{Network: "n25", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K}
	var wg sync.WaitGroup
	errs := make([]error, len(budgets))
	for i, b := range budgets {
		wg.Add(1)
		go func(i int, b float64) {
			defer wg.Done()
			p, err := svc.Submit(key, b, time.Time{})
			if err != nil {
				errs[i] = err
				return
			}
			if !plansEqual(p, want[b]) {
				errs[i] = fmt.Errorf("budget %.1f: pool plan %v != cold plan %v", b, p, want[b])
			}
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The pool's chains must actually be warm: one cold solve per
	// worker, everything else warm.
	if colds := reg.Counter("lp.cold_solves").Value(); colds < 1 {
		t.Fatal("no cold solve recorded; the pool never opened a chain")
	}
	if warms := reg.Counter("lp.warm_resolves").Value(); warms == 0 {
		t.Fatal("no warm resolves recorded; the pool is not serving from warm chains")
	}
}

// TestServeDefaultFlightRules: the stock serving rules must pass the
// regress grammar validation telemetry.LoadRules applies.
func TestServeDefaultFlightRules(t *testing.T) {
	rules := serve.DefaultFlightRules(8)
	b := regress.Baseline{Name: "serve-defaults", Rules: rules}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Series] = true
	}
	for _, want := range []string{"serve.queue_depth", "serve.shed_total.delta", "serve.plan_ms.p99"} {
		if !names[want] {
			t.Fatalf("default rules missing series %s", want)
		}
	}
}
