package serve_test

import (
	"sync"
	"testing"
	"time"

	"prospector/internal/core"
	"prospector/internal/obs"
	"prospector/internal/serve"
)

// The serving benchmarks answer the PR's headline question: at 8
// concurrent clients pacing over a shared budget axis, how many
// plans/sec does the pool serve versus (a) one warm planner behind a
// mutex and (b) one cold planner behind a mutex? The pool's edge is
// coalescing — equal in-flight budgets cost one warm resolve — so the
// win is architectural, not parallelism (these run on any core count).
//
// Measured with:
//
//	go test ./internal/serve/ -run - -bench BenchmarkServe -benchtime 2s -benchmem

const benchClients = 8

// benchAxis is the shared budget axis the clients walk in lockstep:
// 32 budgets at a fine stride, the resolution a dashboard sweeping an
// energy budget actually queries at. Ascending, so a worker batch is
// one warm sweep of short dual-simplex recoveries.
func benchAxis() []float64 {
	axis := make([]float64, 32)
	for i := range axis {
		axis[i] = 60 + 5*float64(i)
	}
	return axis
}

func benchScenario(b *testing.B, reg *obs.Registry) core.Config {
	cfg := makeConfig(b, 3, 60, 10, 15)
	cfg.Obs = reg
	return cfg
}

// runClients splits b.N plan requests across benchClients goroutines,
// each walking benchAxis round-robin, and reports plans/sec.
func runClients(b *testing.B, plan func(budget float64) error) {
	axis := benchAxis()
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	b.ResetTimer()
	for c := 0; c < benchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := b.N / benchClients
			if c < b.N%benchClients {
				n++
			}
			for i := 0; i < n; i++ {
				if err := plan(axis[i%len(axis)]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// reportWarmHitRate publishes the chain health of a benchmark run and
// enforces the serving-tier floor (hit rate >= 0.9) once enough solves
// accumulated to make the ratio meaningful (short -benchtime smoke
// runs are exempt).
func reportWarmHitRate(b *testing.B, reg *obs.Registry) {
	warm := float64(reg.Counter("lp.warm_resolves").Value())
	cold := float64(reg.Counter("lp.cold_solves").Value())
	fall := float64(reg.Counter("lp.warm_fallbacks").Value())
	total := warm + cold + fall
	if total == 0 {
		return
	}
	rate := warm / total
	b.ReportMetric(rate, "warm_hit_rate")
	if total >= 20 && rate < 0.9 {
		b.Fatalf("lp.warm_hit_rate = %.3f (warm %g cold %g fallback %g), want >= 0.9", rate, warm, cold, fall)
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	b.Run("pool8", func(b *testing.B) {
		reg := obs.NewRegistry()
		cfg := benchScenario(b, reg)
		svc, err := serve.New(serve.Options{
			QueueDepth: 256, BatchMax: 32, Now: time.Now, Obs: reg,
		}, snapshotProvider(cfg))
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		key := serve.Key{Network: "n60", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K}
		runClients(b, func(budget float64) error {
			_, err := svc.Submit(key, budget, time.Time{})
			return err
		})
		reportWarmHitRate(b, reg)
	})

	// The baseline the acceptance bar is measured against: the same 8
	// clients serialized onto ONE warm parametric planner by a mutex.
	// Warm chains but no coalescing — every request pays a solve.
	b.Run("mutex8", func(b *testing.B) {
		reg := obs.NewRegistry()
		cfg := benchScenario(b, reg)
		snap, err := core.NewSnapshot(cfg, core.KindLPFilter)
		if err != nil {
			b.Fatal(err)
		}
		pl, err := snap.NewPlanner()
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		runClients(b, func(budget float64) error {
			mu.Lock()
			defer mu.Unlock()
			_, err := pl.Plan(budget)
			return err
		})
		reportWarmHitRate(b, reg)
	})

	// Floor reference: one cold planner (warm path and presolve off)
	// behind a mutex — what serving costs without the parametric tier.
	b.Run("cold8", func(b *testing.B) {
		reg := obs.NewRegistry()
		cfg := benchScenario(b, reg)
		cfg.DisableWarm = true
		cfg.DisablePresolve = true
		pl, err := core.NewLPFilter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		runClients(b, func(budget float64) error {
			mu.Lock()
			defer mu.Unlock()
			_, err := pl.Plan(budget)
			return err
		})
	})
}

// BenchmarkServeCoalesced isolates the coalescing win itself: bursts
// of 64 concurrent submissions spanning 8 distinct budgets, served
// with batching on (one sweep, 8 solves, 56 coalesced) versus
// BatchMax=1 (every request its own dispatch).
func BenchmarkServeCoalesced(b *testing.B) {
	run := func(b *testing.B, batchMax int) {
		reg := obs.NewRegistry()
		cfg := benchScenario(b, reg)
		svc, err := serve.New(serve.Options{
			QueueDepth: 256, BatchMax: batchMax, Now: time.Now, Obs: reg,
		}, snapshotProvider(cfg))
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		key := serve.Key{Network: "n60", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K}
		axis := benchAxis()[:8]
		const burst = 64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, burst)
			for j := 0; j < burst; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					_, errs[j] = svc.Submit(key, axis[j%len(axis)], time.Time{})
				}(j)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*burst)/b.Elapsed().Seconds(), "plans/s")
		reportWarmHitRate(b, reg)
	}
	b.Run("burst", func(b *testing.B) { run(b, 64) })
	b.Run("serial", func(b *testing.B) { run(b, 1) })
}
