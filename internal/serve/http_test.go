package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"prospector/internal/core"
	"prospector/internal/obs"
	"prospector/internal/obs/telemetry"
	"prospector/internal/serve"
)

// newHTTPFixture stands up a full serving surface over a real
// snapshot provider: service, collector (pre-ticked), and test server.
func newHTTPFixture(t *testing.T, opts serve.Options) (*serve.Service, *httptest.Server, serve.Key) {
	t.Helper()
	cfg := makeConfig(t, 13, 20, 4, 5)
	reg := obs.NewRegistry()
	obsCfg := cfg
	obsCfg.Obs = reg
	if opts.Now == nil {
		opts.Now = time.Now
	}
	opts.Obs = reg
	svc, err := serve.New(opts, snapshotProvider(obsCfg))
	if err != nil {
		t.Fatal(err)
	}
	base := serve.Key{Network: "n20", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K}
	collector := telemetry.NewCollector(reg, 64)
	collector.Sample(0)
	srv := httptest.NewServer(obs.Handler(reg, serve.Endpoints(svc, base, collector)...))
	t.Cleanup(srv.Close)
	return svc, srv, base
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHTTPPlanOK(t *testing.T) {
	svc, srv, base := newHTTPFixture(t, serve.Options{QueueDepth: 32, BatchMax: 8})
	defer svc.Close()

	status, body, _ := get(t, srv.URL+"/plan?budget=120")
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var doc struct {
		Planner   string  `json:"planner"`
		K         int     `json:"k"`
		Budget    float64 `json:"budget"`
		Kind      string  `json:"kind"`
		Bandwidth []int   `json:"bandwidth"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if doc.Planner != base.Planner || doc.K != base.K || doc.Budget != 120 {
		t.Fatalf("echo fields wrong: %+v (base %+v)", doc, base)
	}
	if len(doc.Bandwidth) == 0 {
		t.Fatal("empty bandwidth vector in plan document")
	}

	// Planner override hits the other pool key.
	status, body, _ = get(t, srv.URL+"/plan?budget=120&planner="+core.KindLPNoFilter)
	if status != http.StatusOK {
		t.Fatalf("planner override: status %d, body %s", status, body)
	}
}

func TestHTTPPlanBadRequests(t *testing.T) {
	svc, srv, _ := newHTTPFixture(t, serve.Options{QueueDepth: 32, BatchMax: 8})
	defer svc.Close()

	for _, tc := range []struct{ name, query string }{
		{"missing budget", ""},
		{"zero budget", "budget=0"},
		{"negative budget", "budget=-5"},
		{"garbage budget", "budget=abc"},
		{"bad k", "budget=50&k=two"},
		{"unknown planner kind", "budget=50&planner=oracle"},
		{"wrong k for snapshot", "budget=50&k=9"},
		{"bad deadline", "budget=50&deadline_ms=-1"},
	} {
		status, body, _ := get(t, srv.URL+"/plan?"+tc.query)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, status, body)
		}
	}
}

func TestHTTPShedStatuses(t *testing.T) {
	src := newBlockingSource(t)
	reg := obs.NewRegistry()
	clock := newFakeClock(time.Microsecond)
	svc, err := serve.New(serve.Options{
		QueueDepth: 1, BatchMax: 4, Now: clock.Now, Obs: reg,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	base := serve.Key{Network: "test", Planner: "blocking", K: 1}
	collector := telemetry.NewCollector(reg, 64)
	collector.Sample(0)
	srv := httptest.NewServer(obs.Handler(reg, serve.Endpoints(svc, base, collector)...))
	defer srv.Close()

	// Pin the worker and fill the 1-deep queue.
	stall := submitAsync(svc, base, 1)
	<-src.started
	queued := submitAsync(svc, base, 2)
	waitGauge(t, reg.Gauge("serve.queue_depth"), 1)

	// Queue full -> 503 with Retry-After.
	status, body, hdr := get(t, srv.URL+"/plan?budget=3")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d, body %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("full queue: missing Retry-After header")
	}
	// Readiness mirrors the saturation.
	if status, _, _ := get(t, srv.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz at capacity: status %d, want 503", status)
	}

	go drain(src)
	if r := <-stall; r.err != nil {
		t.Fatal(r.err)
	}
	if r := <-queued; r.err != nil {
		t.Fatal(r.err)
	}
	if status, _, _ := get(t, srv.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after drain: status %d, want 200", status)
	}
	if status, _, _ := get(t, srv.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", status)
	}

	// Stale deadline -> 429. The fake clock advances 1µs per read, so
	// a 0.001ms deadline computed at admission is already past by
	// dispatch.
	status, body, _ = get(t, srv.URL+"/plan?budget=5&deadline_ms=0.001")
	if status != http.StatusTooManyRequests {
		t.Fatalf("stale deadline: status %d, body %s", status, body)
	}

	// Closed -> 503, and readyz goes unready for good.
	svc.Close()
	status, _, hdr = get(t, srv.URL+"/plan?budget=7")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("closed: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("closed: missing Retry-After header")
	}
	if status, _, _ := get(t, srv.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close: status %d, want 503", status)
	}
}

func TestHTTPReadyzRequiresTick(t *testing.T) {
	src := newBlockingSource(t)
	reg := obs.NewRegistry()
	svc, err := serve.New(serve.Options{
		QueueDepth: 4, Now: newFakeClock(time.Microsecond).Now, Obs: reg,
	}, sourceProvider(src))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		go drain(src)
		svc.Close()
	}()
	base := serve.Key{Network: "test", Planner: "blocking", K: 1}
	collector := telemetry.NewCollector(reg, 64)
	srv := httptest.NewServer(obs.Handler(reg, serve.Endpoints(svc, base, collector)...))
	defer srv.Close()

	if status, _, _ := get(t, srv.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz before first tick: status %d, want 503", status)
	}
	collector.Sample(0)
	if status, _, _ := get(t, srv.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after tick: status %d, want 200", status)
	}
}
