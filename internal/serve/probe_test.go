package serve_test

import (
	"sync"
	"testing"
	"time"

	"prospector/internal/core"
	"prospector/internal/obs"
	"prospector/internal/serve"
)

// TestServeWaveProbe is a diagnostic, not a gate: it mirrors the
// pool8 benchmark shape and logs the coalescing metrics so wave
// cohesion can be inspected. Run with -v.
func TestServeWaveProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	reg := obs.NewRegistry()
	cfg := makeConfig(t, 3, 60, 10, 15)
	cfg.Obs = reg
	svc, err := serve.New(serve.Options{
		QueueDepth: 256, BatchMax: 32, Now: time.Now, Obs: reg,
	}, snapshotProvider(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	key := serve.Key{Network: "n60", Gen: cfg.Samples.Gen(), Planner: core.KindLPFilter, K: cfg.K}

	axis := benchAxis()
	const clients = 8
	const perClient = 250
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := svc.Submit(key, axis[i%len(axis)], time.Time{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	req := reg.Counter("serve.requests").Value()
	coal := reg.Counter("serve.coalesced").Value()
	warm := reg.Counter("lp.warm_resolves").Value()
	cold := reg.Counter("lp.cold_solves").Value()
	t.Logf("requests=%d coalesced=%d (%.1f%%) warm=%d cold=%d plans/s=%.0f",
		req, coal, 100*float64(coal)/float64(req), warm, cold,
		float64(req)/elapsed.Seconds())
	h := reg.Histogram("serve.batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	t.Logf("batch_size: count=%d sum=%.0f bounds=%v buckets=%v",
		h.Count(), h.Sum(), h.Bounds(), h.BucketCounts())
	pm := reg.Histogram("serve.plan_ms", nil)
	bw := reg.Histogram("serve.batch_wait_ms", nil)
	t.Logf("plan_ms: count=%d sum=%.1fms; batch_wait_ms: count=%d sum=%.1fms; wall=%.1fms",
		pm.Count(), pm.Sum(), bw.Count(), bw.Sum(), float64(elapsed.Milliseconds()))
}
