// Package serve is the concurrent plan-serving tier: a long-running
// service that turns the single-goroutine parametric planners
// (internal/core, //confine:goroutine) into a pool that serves many
// concurrent clients.
//
// Requests are keyed by (network, sample generation, planner kind, k)
// — the identity of one frozen planning state (core.Snapshot). Per
// key, the service keeps a budget-sorted pending queue and a fixed
// pool of warm-chain workers, each owning a planner stamped from the
// shared snapshot (own model clone, own lp.Workspace, own basis
// chain). A worker dispatch takes the lowest-budget prefix of the
// queue as one batch: ascending budgets keep the dual-simplex
// recovery short, and requests for bitwise-identical budgets coalesce
// into a single solve whose plan (immutable, see internal/plan) is
// shared across all their responses. Admission control is a bounded
// total queue depth — submissions beyond it shed immediately with
// ErrQueueFull — plus a per-request deadline judged at dispatch time.
//
// The service never reads the wall clock itself (this package is in
// the determinism lint scope): the owner injects one via Options.Now,
// exactly like lp.Options.Now.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"prospector/internal/core"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// Key identifies one frozen planning state: requests with equal keys
// are answers from the same snapshot and may share workers, warm
// chains, and coalesced solves. Gen is the sample window's mutation
// generation at freeze time (core.Snapshot.Gen) — the same network
// re-snapshotted after the window slides is a different key.
type Key struct {
	Network string
	Gen     uint64
	Planner string
	K       int
}

func (k Key) String() string {
	return fmt.Sprintf("%s/gen%d/%s/k%d", k.Network, k.Gen, k.Planner, k.K)
}

// PlannerSource stamps out independent planners over one frozen
// planning state. *core.Snapshot is the production implementation.
type PlannerSource interface {
	NewPlanner() (core.Planner, error)
}

// Provider resolves a key to its planner source, typically building a
// core.Snapshot on first use. Called outside the service lock (it may
// build a whole parametric program); an error rejects the request —
// and is reported again for every retry, so providers should be cheap
// on the failure path.
type Provider func(key Key) (PlannerSource, error)

// Options tunes the service.
type Options struct {
	// QueueDepth bounds the total pending requests across all keys;
	// submissions beyond it shed with ErrQueueFull. Default 64.
	QueueDepth int
	// WorkersPerKey is the pool size per key: each worker owns one
	// planner (one warm chain) stamped from the key's source. Default 1
	// — on a single core more workers only add scheduling overhead; the
	// concurrency win comes from batching and coalescing.
	WorkersPerKey int
	// BatchMax caps how many queued requests one dispatch takes.
	// Default 16.
	BatchMax int
	// Now supplies the clock for deadlines and latency metrics.
	// Required: this package never reads the wall clock itself.
	Now func() time.Time
	// Obs receives the serve.* metrics; the planners and LP solver
	// publish their own families (core.*, lp.*) through the same
	// registry when the provider's snapshots carry it. Optional.
	Obs *obs.Registry
}

// Sentinel errors, mapped to HTTP statuses by the handler (http.go).
var (
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("serve: service closed")
	// ErrQueueFull sheds submissions over the queue-depth bound.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDeadline sheds requests whose deadline passed before dispatch.
	ErrDeadline = errors.New("serve: deadline exceeded before dispatch")
)

// request is one pending plan query.
type request struct {
	budget   float64
	deadline time.Time // zero: no deadline
	enqueued time.Time
	done     chan response // buffered; the worker never blocks on delivery
}

// response is the worker's answer.
type response struct {
	plan *plan.Plan
	err  error
}

// keyState is one key's queue and pool. Every field is guarded by the
// owning Service's mu; the cond shares that mutex.
type keyState struct {
	cond *sync.Cond
	// queue is kept sorted by ascending budget (FIFO within equal
	// budgets), so a dispatch prefix is already one warm sweep.
	queue []*request
}

// Service is the plan-serving pool. Construct with New, retire with
// Close; safe for concurrent use.
type Service struct {
	opts     Options
	provider Provider
	m        *metrics

	mu sync.Mutex
	//guarded-by:mu
	keys map[Key]*keyState
	// states mirrors keys in insertion order, so shutdown walks the
	// pools deterministically instead of in map order.
	//guarded-by:mu
	states []*keyState
	//guarded-by:mu
	pending int
	//guarded-by:mu
	closed bool
	// wg joins the worker goroutines; Close waits on it.
	wg sync.WaitGroup
}

// New builds a service over the provider. Options.Now is required;
// zero or negative sizing fields take the documented defaults.
func New(opts Options, provider Provider) (*Service, error) {
	if provider == nil {
		return nil, errors.New("serve: nil provider")
	}
	if opts.Now == nil {
		return nil, errors.New("serve: Options.Now is required (inject a clock)")
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.WorkersPerKey <= 0 {
		opts.WorkersPerKey = 1
	}
	if opts.BatchMax <= 0 {
		opts.BatchMax = 16
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	return &Service{
		opts:     opts,
		provider: provider,
		m:        newMetrics(opts.Obs),
		keys:     make(map[Key]*keyState),
	}, nil
}

// Submit enqueues one plan request and blocks until a pool worker
// answers it. A zero deadline means none. Shedding outcomes are the
// sentinel errors above; any other error came from the provider or
// the planner itself.
func (s *Service) Submit(key Key, budget float64, deadline time.Time) (*plan.Plan, error) {
	s.m.requests.Inc()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.m.shed(s.m.shedClosed)
		return nil, ErrClosed
	}
	ks := s.keys[key]
	s.mu.Unlock()
	if ks == nil {
		var err error
		if ks, err = s.openKey(key); err != nil {
			return nil, err
		}
	}

	req := &request{budget: budget, deadline: deadline, enqueued: s.opts.Now(), done: make(chan response, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.m.shed(s.m.shedClosed)
		return nil, ErrClosed
	}
	if s.pending >= s.opts.QueueDepth {
		s.mu.Unlock()
		s.m.shed(s.m.shedFull)
		return nil, ErrQueueFull
	}
	// Insert after the run of equal budgets: the queue stays sorted
	// ascending and equal budgets stay FIFO.
	i := sort.Search(len(ks.queue), func(i int) bool { return ks.queue[i].budget > budget })
	ks.queue = append(ks.queue, nil)
	copy(ks.queue[i+1:], ks.queue[i:])
	ks.queue[i] = req
	s.pending++
	s.m.queueDepth.Set(float64(s.pending))
	ks.cond.Signal()
	s.mu.Unlock()

	resp := <-req.done
	return resp.plan, resp.err
}

// openKey resolves the provider and publishes the key's state,
// spawning its worker pool. The provider call and the planner
// stamping run outside the lock — both may build or clone a whole LP
// — so a racing submitter can win publication; the loser's planners
// are discarded.
func (s *Service) openKey(key Key) (*keyState, error) {
	src, err := s.provider(key)
	if err != nil {
		s.m.keyErrors.Inc()
		return nil, fmt.Errorf("serve: open %v: %w", key, err)
	}
	planners := make([]core.Planner, 0, s.opts.WorkersPerKey)
	for i := 0; i < s.opts.WorkersPerKey; i++ {
		pl, err := src.NewPlanner()
		if err != nil {
			s.m.keyErrors.Inc()
			return nil, fmt.Errorf("serve: open %v: %w", key, err)
		}
		planners = append(planners, pl)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if ks := s.keys[key]; ks != nil {
		s.mu.Unlock()
		return ks, nil
	}
	ks := &keyState{cond: sync.NewCond(&s.mu)}
	s.keys[key] = ks
	s.states = append(s.states, ks)
	s.m.keys.Set(float64(len(s.keys)))
	for _, pl := range planners {
		s.wg.Add(1)
		s.m.workers.Add(1)
		// The planner was stamped on this goroutine and is handed to the
		// worker whole; nothing here touches it again. The `go` statement
		// is the happens-before edge.
		//confine:transfer worker takes sole ownership of its freshly stamped planner; the spawning goroutine drops every reference
		go s.worker(ks, pl)
	}
	s.mu.Unlock()
	return ks, nil
}

// worker serves one key: wait for pending requests, take the sorted
// prefix as a batch, serve it outside the lock, repeat. On Close it
// drains the remaining queue, then exits; Close joins via wg.
func (s *Service) worker(ks *keyState, pl core.Planner) {
	defer s.wg.Done()
	defer s.m.workers.Add(-1)
	batch := make([]*request, 0, s.opts.BatchMax)
	var memo sweepMemo
	for {
		s.mu.Lock()
		for len(ks.queue) == 0 && !s.closed {
			ks.cond.Wait()
		}
		if len(ks.queue) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		// Group-commit gather: a freshly woken worker usually sees only
		// the first request of a concurrent wave — especially on few
		// cores, where the scheduler alternates one submitter with the
		// worker and every batch would degenerate to size 1, solving
		// per-request with nothing to coalesce. Yield a bounded number
		// of times so the rest of the wave can enqueue; stop as soon as
		// a yield adds nothing, the batch is full, or we're closing.
		for y := 0; y < gatherYields && len(ks.queue) < s.opts.BatchMax && !s.closed; y++ {
			s.mu.Unlock()
			runtime.Gosched()
			s.mu.Lock()
		}
		if len(ks.queue) == 0 {
			s.mu.Unlock()
			continue // another worker on this key drained the wave
		}
		n := len(ks.queue)
		if n > s.opts.BatchMax {
			n = s.opts.BatchMax
		}
		batch = append(batch[:0], ks.queue[:n]...)
		rest := copy(ks.queue, ks.queue[n:])
		for j := rest; j < len(ks.queue); j++ {
			ks.queue[j] = nil // release served requests to the GC
		}
		ks.queue = ks.queue[:rest]
		s.pending -= n
		s.m.queueDepth.Set(float64(s.pending))
		s.mu.Unlock()
		s.serveBatch(pl, batch, &memo)
	}
}

// gatherYields bounds the group-commit gather loop: at most this many
// scheduler yields per dispatch, and only while each yield is still
// growing the batch.
const gatherYields = 4

// sweepMemo is the tail of a worker's last coalescing run: the most
// recent (budget, plan) it solved. It outlives the batch because a
// key's planning state is frozen (core.Snapshot) — Plan is a pure
// function of the budget for the key's whole lifetime — so a
// duplicate budget arriving in the NEXT dispatch still shares the
// solve. That matters on few-core hosts, where lockstep clients
// trickle in one at a time and same-budget requests rarely sit in one
// batch together.
type sweepMemo struct {
	plan   *plan.Plan
	budget float64
	have   bool
}

// serveBatch answers one ascending-budget batch on this worker's warm
// chain. Equal budgets coalesce — one solve, one immutable plan,
// shared across every waiting response — and the run carries across
// batch boundaries through memo. A planner error answers only the
// request that caused it and invalidates the memo, so a bad budget
// never poisons its neighbors.
func (s *Service) serveBatch(pl core.Planner, batch []*request, memo *sweepMemo) {
	now := s.opts.Now()
	s.m.batchSize.Observe(float64(len(batch)))
	for _, r := range batch {
		s.m.batchWaitMS.Observe(float64(now.Sub(r.enqueued).Microseconds()) / 1000)
		if !r.deadline.IsZero() && now.After(r.deadline) {
			s.m.shed(s.m.shedDeadline)
			r.done <- response{err: ErrDeadline}
			continue
		}
		if memo.have && sameBudget(r.budget, memo.budget) {
			s.m.coalesced.Inc()
			r.done <- response{plan: memo.plan}
			continue
		}
		t0 := s.opts.Now()
		p, err := pl.Plan(r.budget)
		s.m.planMS.Observe(float64(s.opts.Now().Sub(t0).Microseconds()) / 1000)
		if err != nil {
			memo.have = false
			r.done <- response{err: err}
			continue
		}
		memo.plan, memo.budget, memo.have = p, r.budget, true
		r.done <- response{plan: p}
	}
}

// Ready reports whether the service is accepting work without
// shedding: nil when open with queue headroom, the shedding error
// otherwise. Wired into /readyz so load balancers stop routing to a
// saturated instance before it starts returning 503s.
func (s *Service) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.pending >= s.opts.QueueDepth {
		return ErrQueueFull
	}
	return nil
}

// Close stops admission, lets the workers drain every queued request,
// and joins them. Idempotent; concurrent Submits either complete or
// fail with ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	for _, ks := range s.states {
		ks.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// sameBudget is the coalescing rule: bitwise equality, because
// coalescing must never change an answer — nearby budgets are
// distinct requests. Approved float comparison (floatcmp).
func sameBudget(a, b float64) bool { return a == b }
