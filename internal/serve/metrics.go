package serve

import (
	"prospector/internal/obs"
)

// The serve.* metric family, published through the service registry
// alongside the planners' core.* and the solver's lp.* families (the
// acceptance signal lp.warm_hit_rate stays ≥0.9 while the pool serves
// warm chains):
//
//	serve.requests        counter, submissions (before admission)
//	serve.coalesced       counter, requests answered by another
//	                      request's solve (equal budget, same batch)
//	serve.shed.full       counter, sheds over the queue-depth bound
//	serve.shed.deadline   counter, sheds at dispatch past the deadline
//	serve.shed.closed     counter, rejections after Close
//	serve.shed_total      counter, all sheds (the flight-rule series)
//	serve.key_errors      counter, provider/stamping failures
//	serve.queue_depth     gauge, pending requests across all keys
//	serve.keys            gauge, open pool keys
//	serve.workers         gauge, live pool workers
//	serve.batch_size      histogram, requests per worker dispatch
//	serve.batch_wait_ms   histogram, enqueue-to-dispatch wait
//	serve.plan_ms         histogram, per-solve planner latency
type metrics struct {
	requests  *obs.Counter
	coalesced *obs.Counter
	keyErrors *obs.Counter

	shedFull     *obs.Counter
	shedDeadline *obs.Counter
	shedClosed   *obs.Counter
	shedTotal    *obs.Counter

	queueDepth *obs.Gauge
	keys       *obs.Gauge
	workers    *obs.Gauge

	batchSize   *obs.Histogram
	batchWaitMS *obs.Histogram
	planMS      *obs.Histogram
}

// batchBounds buckets requests-per-dispatch; latencyMSBounds buckets
// the wait and solve latencies in milliseconds.
var (
	batchBounds     = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	latencyMSBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}
)

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		requests:     reg.Counter("serve.requests"),
		coalesced:    reg.Counter("serve.coalesced"),
		keyErrors:    reg.Counter("serve.key_errors"),
		shedFull:     reg.Counter("serve.shed.full"),
		shedDeadline: reg.Counter("serve.shed.deadline"),
		shedClosed:   reg.Counter("serve.shed.closed"),
		shedTotal:    reg.Counter("serve.shed_total"),
		queueDepth:   reg.Gauge("serve.queue_depth"),
		keys:         reg.Gauge("serve.keys"),
		workers:      reg.Gauge("serve.workers"),
		batchSize:    reg.Histogram("serve.batch_size", batchBounds),
		batchWaitMS:  reg.Histogram("serve.batch_wait_ms", latencyMSBounds),
		planMS:       reg.Histogram("serve.plan_ms", latencyMSBounds),
	}
}

// shed records one shed on its cause counter and the total. Runs on
// the admission and dispatch hot paths; counter bumps are atomic adds.
//
//alloc:none
func (m *metrics) shed(cause *obs.Counter) {
	cause.Inc()
	m.shedTotal.Inc()
}
