// Package sample maintains the windows of past full-network readings
// that drive sampling-based query planning (Section 3 of the paper).
// Each sample is one assignment of a value to every node; the set also
// materializes the Boolean top-k matrix M (M[j][i] = 1 iff node i's
// value ranks in the top k of sample j), its column sums, and the
// per-sample ones(j) sets the linear programs consume.
package sample

import (
	"fmt"
	"sort"
)

// TopKIndices returns the indices of the k largest values, ordered by
// decreasing value with ties broken by increasing index. If k exceeds
// len(values), all indices are returned.
func TopKIndices(values []float64, k int) []int {
	if k > len(values) {
		k = len(values)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// Before reports whether node a's reading outranks node b's under the
// deterministic ordering used everywhere in this module: larger value
// first, smaller index first on ties.
func Before(values []float64, a, b int) bool {
	if values[a] != values[b] {
		return values[a] > values[b]
	}
	return a < b
}

// Set is a window of samples over an n-node network, with the derived
// top-k structures kept up to date incrementally. The zero value is not
// usable; construct with NewSet. Set is not safe for concurrent
// mutation.
type Set struct {
	n, k, window int
	mark         Marker // nil => top-k marking
	samples      [][]float64
	ones         [][]int // ones[j]: node indices contributing to sample j's answer
	isOne        [][]bool
	colSums      []int
	// gen counts content mutations. A sliding window keeps Len constant
	// while the samples change, so consumers caching derived state (the
	// parametric LP planners) key on Gen, not Len.
	gen uint64
}

// NewSet creates an empty sample set for an n-node network, tracking
// the top k, holding at most window samples (oldest evicted first).
// window <= 0 means unbounded.
func NewSet(n, k, window int) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("sample: need at least 1 node, got %d", n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("sample: k must be in [1,%d], got %d", n, k)
	}
	return &Set{n: n, k: k, window: window, colSums: make([]int, n)}, nil
}

// MustNewSet is NewSet for callers with statically valid arguments.
func MustNewSet(n, k, window int) *Set {
	s, err := NewSet(n, k, window)
	if err != nil {
		panic(err)
	}
	return s
}

// Nodes returns the network size n.
func (s *Set) Nodes() int { return s.n }

// K returns the rank bound the set tracks, or 0 for a general
// marker-based set (see NewGeneralSet).
func (s *Set) K() int { return s.k }

// Len returns the number of samples currently held.
func (s *Set) Len() int { return len(s.samples) }

// Add appends one sample (a full assignment of readings) to the window,
// evicting the oldest sample if the window is full. The slice is copied.
func (s *Set) Add(values []float64) error {
	if len(values) != s.n {
		return fmt.Errorf("sample: got %d values for %d nodes", len(values), s.n)
	}
	if s.window > 0 && len(s.samples) == s.window {
		s.evictOldest()
	}
	v := append([]float64(nil), values...)
	var top []int
	if s.mark != nil {
		top = s.mark(v)
	} else {
		top = TopKIndices(v, s.k)
	}
	mask := make([]bool, s.n)
	for _, i := range top {
		mask[i] = true
		s.colSums[i]++
	}
	s.samples = append(s.samples, v)
	s.ones = append(s.ones, top)
	s.isOne = append(s.isOne, mask)
	s.gen++
	return nil
}

// Gen returns the mutation generation: it changes whenever the window
// content changes (Add, including evictions). Cache derived state
// against Gen — Len alone misses sliding-window turnover.
func (s *Set) Gen() uint64 { return s.gen }

// AddAll adds every epoch in order.
func (s *Set) AddAll(epochs [][]float64) error {
	for _, e := range epochs {
		if err := s.Add(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *Set) evictOldest() {
	for _, i := range s.ones[0] {
		s.colSums[i]--
	}
	s.samples = s.samples[1:]
	s.ones = s.ones[1:]
	s.isOne = s.isOne[1:]
}

// Value returns node i's reading in sample j.
func (s *Set) Value(j, i int) float64 { return s.samples[j][i] }

// Values returns sample j's full reading vector. The caller must not
// modify the result.
func (s *Set) Values(j int) []float64 { return s.samples[j] }

// Ones returns the node indices holding sample j's top-k values, in
// rank order. The caller must not modify the result.
func (s *Set) Ones(j int) []int { return s.ones[j] }

// IsOne reports whether node i ranks in sample j's top k.
func (s *Set) IsOne(j, i int) bool { return s.isOne[j][i] }

// ColumnSum returns how many samples have node i in their top k: the
// column sum of the Boolean matrix M, the priority PROSPECTOR GREEDY
// uses.
func (s *Set) ColumnSum(i int) int { return s.colSums[i] }

// ColumnSums returns a copy of all column sums.
func (s *Set) ColumnSums() []int { return append([]int(nil), s.colSums...) }

// TotalOnes returns the number of 1-entries in M across all samples.
func (s *Set) TotalOnes() int {
	t := 0
	for j := range s.ones {
		t += len(s.ones[j])
	}
	return t
}

// SmallerInSubtree returns, for sample j, the node indices among
// subtree whose readings rank strictly below node i's reading (the
// paper's smaller(i, j) restricted to a subtree). subtree must not
// contain duplicates.
func (s *Set) SmallerInSubtree(j, i int, subtree []int) []int {
	var out []int
	for _, u := range subtree {
		if u != i && Before(s.samples[j], i, u) {
			out = append(out, u)
		}
	}
	return out
}

// Project rebuilds the set over a surviving subset of nodes after a
// topology repair: mapping[old] gives each old node's new index, or -1
// for removed nodes. Contributor sets are recomputed over the projected
// readings (a dead node's values no longer compete for the top k). The
// window limit carries over; k is capped at the survivor count.
func (s *Set) Project(mapping []int) (*Set, error) {
	if len(mapping) != s.n {
		return nil, fmt.Errorf("sample: mapping covers %d of %d nodes", len(mapping), s.n)
	}
	survivors := 0
	for _, m := range mapping {
		if m >= 0 {
			survivors++
		}
	}
	if survivors == 0 {
		return nil, fmt.Errorf("sample: projection removes every node")
	}
	out := &Set{n: survivors, k: s.k, window: s.window, mark: s.mark, colSums: make([]int, survivors)}
	if out.k > survivors {
		out.k = survivors
	}
	for j := range s.samples {
		v := make([]float64, survivors)
		for old, m := range mapping {
			if m >= 0 {
				if m >= survivors {
					return nil, fmt.Errorf("sample: mapping value %d out of range", m)
				}
				v[m] = s.samples[j][old]
			}
		}
		if err := out.Add(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Clone returns a deep copy of the set; useful for what-if planning.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, k: s.k, window: s.window, mark: s.mark, colSums: append([]int(nil), s.colSums...)}
	c.samples = make([][]float64, len(s.samples))
	c.ones = make([][]int, len(s.ones))
	c.isOne = make([][]bool, len(s.isOne))
	for j := range s.samples {
		c.samples[j] = append([]float64(nil), s.samples[j]...)
		c.ones[j] = append([]int(nil), s.ones[j]...)
		c.isOne[j] = append([]bool(nil), s.isOne[j]...)
	}
	return c
}
