package sample

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestThresholdMarker(t *testing.T) {
	m := ThresholdMarker(5)
	got := m([]float64{3, 7, 5, 9})
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("ThresholdMarker = %v", got)
	}
	if got := m([]float64{1, 2}); got != nil {
		t.Errorf("no contributors expected, got %v", got)
	}
}

func TestQuantileBandMarker(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	// Top decile of 10 values: the largest only.
	got := QuantileBandMarker(0.95, 1)(vals)
	if !reflect.DeepEqual(got, []int{9}) {
		t.Errorf("top-decile = %v", got)
	}
	// Full band covers everyone.
	if got := QuantileBandMarker(0, 1)(vals); len(got) != 10 {
		t.Errorf("full band has %d", len(got))
	}
	// Median band around 0.5.
	got = QuantileBandMarker(0.5, 0.5)(vals)
	if len(got) < 1 || len(got) > 2 {
		t.Errorf("median band = %v", got)
	}
}

func TestQuantileBandProperties(t *testing.T) {
	f := func(raw []float64, loRaw, hiRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		lo := float64(loRaw%100) / 100
		hi := lo + float64(hiRaw%uint8(100-int(loRaw%100)+1))/100
		if hi > 1 {
			hi = 1
		}
		got := QuantileBandMarker(lo, hi)(raw)
		// No duplicates; all valid indices.
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= len(raw) || seen[i] {
				return false
			}
			seen[i] = true
		}
		// The band [0,1] must return everything.
		return len(QuantileBandMarker(0, 1)(raw)) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeneralSetThreshold(t *testing.T) {
	s, err := NewGeneralSet(4, 0, ThresholdMarker(10))
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 0 {
		t.Errorf("general set K = %d", s.K())
	}
	if err := s.Add([]float64{5, 15, 25, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]float64{20, 5, 25, 5}); err != nil {
		t.Fatal(err)
	}
	if got := s.ColumnSums(); !reflect.DeepEqual(got, []int{1, 1, 2, 0}) {
		t.Errorf("ColumnSums = %v", got)
	}
	if !s.IsOne(1, 0) || s.IsOne(1, 1) {
		t.Error("IsOne wrong for general set")
	}
}

func TestGeneralSetWindowEviction(t *testing.T) {
	s, err := NewGeneralSet(3, 2, ThresholdMarker(0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for e := 0; e < 9; e++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
		recount := make([]int, 3)
		for j := 0; j < s.Len(); j++ {
			for _, i := range s.Ones(j) {
				recount[i]++
			}
		}
		if got := s.ColumnSums(); !reflect.DeepEqual(got, recount) {
			t.Fatalf("epoch %d: %v != %v", e, got, recount)
		}
	}
	if s.Len() != 2 {
		t.Errorf("window holds %d", s.Len())
	}
}

func TestGeneralSetValidation(t *testing.T) {
	if _, err := NewGeneralSet(0, 0, ThresholdMarker(0)); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewGeneralSet(3, 0, nil); err == nil {
		t.Error("accepted nil marker")
	}
}
