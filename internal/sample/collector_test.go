package sample

import (
	"math"
	"math/rand"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/network"
)

func TestCollectionCostFormula(t *testing.T) {
	// A chain of 4: node 3 sends 1 value, node 2 sends 2, node 1 sends
	// 3; internal nodes 0, 1, 2 rebroadcast the trigger.
	net := network.Line(4)
	m := energy.DefaultModel()
	want := m.Unicast(1, 0) + m.Unicast(2, 0) + m.Unicast(3, 0) + 3*m.Trigger()
	if got := CollectionCost(net, m); math.Abs(got-want) > 1e-12 {
		t.Errorf("CollectionCost = %g, want %g", got, want)
	}
}

func TestCollectorObserveRate(t *testing.T) {
	net := network.Star(10)
	m := energy.DefaultModel()
	set := MustNewSet(10, 2, 5)
	rng := rand.New(rand.NewSource(1))
	col, err := NewCollector(set, net, m, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sampled := 0
	const epochs = 2000
	v := make([]float64, 10)
	for e := 0; e < epochs; e++ {
		ok, err := col.Observe(v)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sampled++
		}
	}
	frac := float64(sampled) / epochs
	if math.Abs(frac-0.3) > 0.04 {
		t.Errorf("sampling fraction %.3f, want ~0.3", frac)
	}
	if col.EpochsSeen() != epochs {
		t.Errorf("EpochsSeen = %d", col.EpochsSeen())
	}
	wantEnergy := float64(sampled) * CollectionCost(net, m)
	if math.Abs(col.EnergySpent()-wantEnergy) > 1e-9 {
		t.Errorf("EnergySpent = %g, want %g", col.EnergySpent(), wantEnergy)
	}
	if set.Len() != 5 {
		t.Errorf("window holds %d, want 5", set.Len())
	}
}

func TestCollectorValidation(t *testing.T) {
	net := network.Star(4)
	m := energy.DefaultModel()
	set := MustNewSet(4, 1, 0)
	rng := rand.New(rand.NewSource(2))
	if _, err := NewCollector(nil, net, m, 0.5, rng); err == nil {
		t.Error("accepted nil set")
	}
	if _, err := NewCollector(MustNewSet(3, 1, 0), net, m, 0.5, rng); err == nil {
		t.Error("accepted size mismatch")
	}
	if _, err := NewCollector(set, net, m, 0, rng); err == nil {
		t.Error("accepted rate 0")
	}
	col, err := NewCollector(set, net, m, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.SetRate(2); err == nil {
		t.Error("accepted rate > 1")
	}
	if err := col.SetRate(0.25); err != nil {
		t.Fatal(err)
	}
	if col.Rate() != 0.25 {
		t.Errorf("Rate = %g", col.Rate())
	}
	if _, err := col.Observe([]float64{1}); err == nil {
		// Observe with wrong width fails only when the draw samples;
		// force it by trying often.
		for i := 0; i < 100; i++ {
			if _, err := col.Observe([]float64{1}); err != nil {
				return
			}
		}
		t.Error("Observe never rejected a short epoch")
	}
}

func TestTopKMarkerMatchesIndices(t *testing.T) {
	vals := []float64{3, 9, 1, 7}
	got := TopKMarker(2)(vals)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("TopKMarker = %v", got)
	}
}

func TestSetAccessors(t *testing.T) {
	s := MustNewSet(3, 1, 0)
	if err := s.AddAll([][]float64{{1, 2, 3}, {4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	if s.Value(1, 2) != 6 {
		t.Errorf("Value(1,2) = %g", s.Value(1, 2))
	}
	if vs := s.Values(0); len(vs) != 3 || vs[0] != 1 {
		t.Errorf("Values(0) = %v", vs)
	}
	if err := s.AddAll([][]float64{{1}}); err == nil {
		t.Error("AddAll accepted a short epoch")
	}
}
