package sample

import (
	"fmt"
	"math/rand"

	"prospector/internal/energy"
	"prospector/internal/network"
)

// CollectionCost returns the energy spent gathering one full-network
// sample: every node unicasts its entire subtree's readings to its
// parent (plus the trigger broadcast that starts the collection). This
// is the "spend more energy to collect all values" step of the
// exploration/exploitation sampler in Section 3.
func CollectionCost(net *network.Network, m energy.Model) float64 {
	cost := 0.0
	for i := 1; i < net.Size(); i++ {
		cost += m.Unicast(net.SubtreeSize(network.NodeID(i)), 0)
	}
	// Trigger broadcast reaches every internal node.
	for _, v := range net.Preorder() {
		if len(net.Children(v)) > 0 {
			cost += m.Trigger()
		}
	}
	return cost
}

// Collector implements the exploration/exploitation sampling schedule:
// at randomly chosen timesteps (probability Rate per epoch) the whole
// network is sampled and the reading vector enters the window. It also
// tracks the cumulative energy spent on sampling so experiments can
// account for it.
type Collector struct {
	set   *Set
	net   *network.Network
	model energy.Model
	rate  float64
	rng   *rand.Rand
	spent float64
	seen  int
}

// NewCollector wires a sampling schedule to a sample window. rate is
// the per-epoch probability of collecting a sample and must be in
// (0, 1].
func NewCollector(set *Set, net *network.Network, m energy.Model, rate float64, rng *rand.Rand) (*Collector, error) {
	if set == nil || net == nil {
		return nil, fmt.Errorf("sample: collector needs a set and a network")
	}
	if set.Nodes() != net.Size() {
		return nil, fmt.Errorf("sample: set over %d nodes, network has %d", set.Nodes(), net.Size())
	}
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sample: rate must be in (0,1], got %g", rate)
	}
	return &Collector{set: set, net: net, model: m, rate: rate, rng: rng}, nil
}

// Observe passes one epoch of ground-truth readings through the
// schedule; with probability rate the epoch is collected as a sample
// and its collection energy charged. It reports whether the epoch was
// sampled.
func (c *Collector) Observe(values []float64) (sampled bool, err error) {
	c.seen++
	if c.rng.Float64() >= c.rate {
		return false, nil
	}
	if err := c.set.Add(values); err != nil {
		return false, err
	}
	c.spent += CollectionCost(c.net, c.model)
	return true, nil
}

// SetRate adjusts the sampling rate; the re-sampling policy of Section
// 4.4 raises it when proof-carrying runs report poor accuracy.
func (c *Collector) SetRate(rate float64) error {
	if rate <= 0 || rate > 1 {
		return fmt.Errorf("sample: rate must be in (0,1], got %g", rate)
	}
	c.rate = rate
	return nil
}

// Rate returns the current per-epoch sampling probability.
func (c *Collector) Rate() float64 { return c.rate }

// EnergySpent returns the cumulative energy charged to sampling.
func (c *Collector) EnergySpent() float64 { return c.spent }

// EpochsSeen returns how many epochs have been observed.
func (c *Collector) EpochsSeen() int { return c.seen }
