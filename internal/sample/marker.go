package sample

import (
	"fmt"
	"math"
	"sort"
)

// Marker identifies, for one sample of readings, which nodes contribute
// to a query's answer — the generalization of Section 3: the Boolean
// matrix M works for any query returning a subset of sensor values
// (top-k, selection, quantile bands), with M[j][i] = 1 iff node i
// contributes to the answer on sample j. Markers return contributing
// node indices; order is preserved in Ones.
type Marker func(values []float64) []int

// TopKMarker marks the k highest readings (the paper's headline query).
func TopKMarker(k int) Marker {
	return func(values []float64) []int { return TopKIndices(values, k) }
}

// ThresholdMarker marks every reading strictly above tau (the paper's
// selection-query example, "return all readings greater than tau").
func ThresholdMarker(tau float64) Marker {
	return func(values []float64) []int {
		var out []int
		for i, v := range values {
			if v > tau {
				out = append(out, i)
			}
		}
		return out
	}
}

// QuantileBandMarker marks readings within the [lo, hi] quantile band
// of each sample, e.g. (0.9, 1.0] for the hottest decile.
func QuantileBandMarker(lo, hi float64) Marker {
	return func(values []float64) []int {
		n := len(values)
		if n == 0 {
			return nil
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return Before(values, idx[b], idx[a]) })
		// idx is now ascending by rank; quantile q corresponds to
		// position q*(n-1). The band keeps positions whose quantile
		// lies within [lo, hi].
		start := int(math.Ceil(lo * float64(n-1)))
		end := int(hi * float64(n-1))
		if end < start && hi >= lo {
			// Narrow band between two order statistics: keep the
			// nearest position so the band is never empty.
			end = start
		}
		if start < 0 {
			start = 0
		}
		if end >= n {
			end = n - 1
		}
		var out []int
		for p := start; p <= end; p++ {
			out = append(out, idx[p])
		}
		return out
	}
}

// NewGeneralSet creates a sample window whose contributor sets come
// from an arbitrary Marker instead of the built-in top-k rule. General
// sets report K() == 0; the planners that only need column sums and
// ones-sets (GREEDY, LP-LF) accept them directly.
func NewGeneralSet(n, window int, mark Marker) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("sample: need at least 1 node, got %d", n)
	}
	if mark == nil {
		return nil, fmt.Errorf("sample: nil marker")
	}
	return &Set{n: n, k: 0, window: window, mark: mark, colSums: make([]int, n)}, nil
}
