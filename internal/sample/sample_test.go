package sample

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTopKIndices(t *testing.T) {
	vals := []float64{5, 9, 1, 9, 7}
	got := TopKIndices(vals, 3)
	// Ties broken by lower index: 9@1 beats 9@3.
	want := []int{1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopKIndices = %v, want %v", got, want)
	}
	if got := TopKIndices(vals, 10); len(got) != 5 {
		t.Errorf("k > n returned %d indices", len(got))
	}
	if got := TopKIndices(vals, 0); got != nil {
		t.Errorf("k = 0 returned %v", got)
	}
}

func TestTopKProperties(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := 1 + int(kRaw)%len(raw)
		top := TopKIndices(raw, k)
		if len(top) != k {
			return false
		}
		// Every member outranks every non-member.
		inTop := make(map[int]bool, k)
		for _, i := range top {
			inTop[i] = true
		}
		for _, i := range top {
			for j := range raw {
				if !inTop[j] && Before(raw, j, i) {
					return false
				}
			}
		}
		// Members listed in rank order.
		for i := 1; i < len(top); i++ {
			if Before(raw, top[i], top[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetColumnSums(t *testing.T) {
	s := MustNewSet(4, 2, 0)
	if err := s.Add([]float64{1, 4, 3, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]float64{9, 0, 8, 7}); err != nil {
		t.Fatal(err)
	}
	wantSums := []int{1, 1, 2, 0}
	if got := s.ColumnSums(); !reflect.DeepEqual(got, wantSums) {
		t.Errorf("ColumnSums = %v, want %v", got, wantSums)
	}
	if got := s.TotalOnes(); got != 4 {
		t.Errorf("TotalOnes = %d, want 4", got)
	}
	if !s.IsOne(0, 1) || s.IsOne(0, 0) {
		t.Error("IsOne wrong for sample 0")
	}
	if got := s.Ones(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Ones(1) = %v", got)
	}
}

func TestSetWindowEviction(t *testing.T) {
	s := MustNewSet(3, 1, 2)
	for i := 0; i < 5; i++ {
		v := []float64{0, 0, 0}
		v[i%3] = 10 // the top-1 rotates across nodes
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("window holds %d, want 2", s.Len())
	}
	// Samples 3 and 4 remain: tops at node 0 and node 1.
	if got := s.ColumnSums(); !reflect.DeepEqual(got, []int{1, 1, 0}) {
		t.Errorf("ColumnSums after eviction = %v", got)
	}
}

func TestColumnSumsMatchMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := MustNewSet(20, 5, 7)
	for e := 0; e < 30; e++ {
		v := make([]float64, 20)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
		// Invariant: column sums equal the recount over the window.
		recount := make([]int, 20)
		for j := 0; j < s.Len(); j++ {
			for _, i := range s.Ones(j) {
				recount[i]++
			}
		}
		if got := s.ColumnSums(); !reflect.DeepEqual(got, recount) {
			t.Fatalf("epoch %d: sums %v != recount %v", e, got, recount)
		}
	}
}

func TestSmallerInSubtree(t *testing.T) {
	s := MustNewSet(5, 2, 0)
	if err := s.Add([]float64{5, 3, 8, 1, 8}); err != nil {
		t.Fatal(err)
	}
	// Node 2 has 8; node 4 also has 8 but higher index, so ranks below.
	got := s.SmallerInSubtree(0, 2, []int{0, 1, 2, 3, 4})
	want := []int{0, 1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SmallerInSubtree = %v, want %v", got, want)
	}
	// And node 4's smaller set excludes node 2.
	got = s.SmallerInSubtree(0, 4, []int{0, 1, 2, 3, 4})
	want = []int{0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SmallerInSubtree(4) = %v, want %v", got, want)
	}
}

func TestSetValidation(t *testing.T) {
	if _, err := NewSet(0, 1, 0); err == nil {
		t.Error("NewSet accepted 0 nodes")
	}
	if _, err := NewSet(5, 0, 0); err == nil {
		t.Error("NewSet accepted k = 0")
	}
	if _, err := NewSet(5, 6, 0); err == nil {
		t.Error("NewSet accepted k > n")
	}
	s := MustNewSet(3, 1, 0)
	if err := s.Add([]float64{1, 2}); err == nil {
		t.Error("Add accepted wrong width")
	}
}

func TestClone(t *testing.T) {
	s := MustNewSet(3, 1, 0)
	if err := s.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Add([]float64{9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: %d vs %d", s.Len(), c.Len())
	}
	if s.ColumnSum(0) != 0 || c.ColumnSum(0) != 1 {
		t.Error("clone shares column sums")
	}
}

func TestProject(t *testing.T) {
	s := MustNewSet(4, 2, 0)
	if err := s.Add([]float64{1, 9, 8, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]float64{7, 1, 2, 6}); err != nil {
		t.Fatal(err)
	}
	// Remove node 1 (the first sample's top value).
	mapping := []int{0, -1, 1, 2}
	p, err := s.Project(mapping)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 3 || p.Len() != 2 {
		t.Fatalf("projected set %d nodes, %d samples", p.Nodes(), p.Len())
	}
	// Sample 0 over survivors {1, 8, 2}: top-2 = old nodes 2 and 3,
	// new indices 1 and 2.
	if got := p.Ones(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("projected Ones(0) = %v", got)
	}
	// Sample 1 over {7, 2, 6}: top-2 = new indices 0 and 2.
	if got := p.Ones(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("projected Ones(1) = %v", got)
	}
}

func TestProjectValidation(t *testing.T) {
	s := MustNewSet(3, 1, 0)
	if err := s.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Project([]int{0, 1}); err == nil {
		t.Error("accepted short mapping")
	}
	if _, err := s.Project([]int{-1, -1, -1}); err == nil {
		t.Error("accepted empty projection")
	}
}

func TestProjectCapsK(t *testing.T) {
	s := MustNewSet(4, 3, 0)
	if err := s.Add([]float64{4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	p, err := s.Project([]int{0, 1, -1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 2 {
		t.Errorf("projected k = %d, want capped 2", p.K())
	}
}
