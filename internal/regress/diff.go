package regress

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"prospector/internal/ledger"
)

// SeriesDelta is one series' A/B comparison between two manifests.
type SeriesDelta struct {
	Series   string
	A, B     float64
	InA, InB bool
}

// Delta returns B-A.
func (d SeriesDelta) Delta() float64 { return d.B - d.A }

// Same reports whether the series is present on both sides with
// identical values (the exact-agreement notion `regress diff` gates
// on).
func (d SeriesDelta) Same() bool {
	return d.InA && d.InB && exactly(d.A, d.B)
}

// ManifestDiff is the series-by-series comparison `regress diff`
// prints, over the union of both manifests' counters, gauges, and
// histogram count/sum accessors.
type ManifestDiff struct {
	Deltas []SeriesDelta // sorted by series name
}

// HasDifferences reports whether any series is one-sided or differs.
func (d *ManifestDiff) HasDifferences() bool {
	for _, sd := range d.Deltas {
		if !sd.Same() {
			return true
		}
	}
	return false
}

// DiffManifests compares two manifests series by series. The A side is
// the baseline: positive deltas mean B measured more.
func DiffManifests(a, b *ledger.Manifest) *ManifestDiff {
	names := map[string]bool{}
	collect := func(m *ledger.Manifest) {
		if m.Metrics == nil {
			return
		}
		for k := range m.Metrics.Counters {
			names[k] = true
		}
		for k := range m.Metrics.Gauges {
			names[k] = true
		}
		for k := range m.Metrics.Histograms {
			names[k+".count"] = true
			names[k+".sum"] = true
		}
	}
	collect(a)
	collect(b)
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	d := &ManifestDiff{}
	for _, n := range ordered {
		sd := SeriesDelta{Series: n}
		sd.A, sd.InA = a.Series(n)
		sd.B, sd.InB = b.Series(n)
		d.Deltas = append(d.Deltas, sd)
	}
	return d
}

// Render formats the diff in the tracetool-diff style: only differing
// series print (a full metrics dump would bury the signal under
// per-node gauges), followed by an identical-series count.
func (d *ManifestDiff) Render() string {
	var b strings.Builder
	same := 0
	fmt.Fprintf(&b, "%-38s %14s %14s %14s %9s\n", "series", "A", "B", "delta", "delta %")
	for _, sd := range d.Deltas {
		if sd.Same() {
			same++
			continue
		}
		name := sd.Series
		if !sd.InA {
			name += " (B only)"
		} else if !sd.InB {
			name += " (A only)"
		}
		fmt.Fprintf(&b, "%-38s %14.6g %14.6g %+14.6g %s\n",
			name, sd.A, sd.B, sd.Delta(), pctString(sd.A, sd.Delta()))
	}
	fmt.Fprintf(&b, "%d series identical, %d differ\n", same, len(d.Deltas)-same)
	return b.String()
}

// pctString renders delta/base as a percentage, or "-" when the base
// is too small for the ratio to mean anything.
func pctString(base, delta float64) string {
	if math.Abs(base) < 1e-12 {
		return "        -"
	}
	return fmt.Sprintf("%+8.1f%%", 100*delta/base)
}
