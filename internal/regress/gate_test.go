package regress

import (
	"bytes"
	"testing"

	"prospector/internal/experiments"
	"prospector/internal/ledger"
	"prospector/internal/obs"
	"prospector/internal/traceanalysis"
)

const committedBaseline = "../../results/baselines/figure3.json"

// quickFigure3Manifest reproduces the cmd/experiments -fig 3 -quick
// -manifest pipeline in-process: same config, same metrics, same
// trace-derived aggregates.
func quickFigure3Manifest(t testing.TB) *ledger.Manifest {
	t.Helper()
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	experiments.SetObs(reg, tr)
	defer experiments.SetObs(nil, nil)
	span := tr.StartSpan(nil, "experiment", 0, obs.F("fig", "3"))
	experiments.SetSpan(span)
	_, err := experiments.Figure3(experiments.QuickFigure3Config())
	experiments.SetSpan(nil)
	span.End(1)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush trace: %v", err)
	}
	trace, err := traceanalysis.Parse(&buf)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	m := ledger.New("experiments", map[string]string{"fig": "3", "quick": "true"}, reg.Snapshot(), ledger.Environment{})
	m.Trace = ledger.SummarizeTrace(trace)
	return m
}

// TestGateAgainstCommittedBaseline is the acceptance gate demonstrated
// in-process: a fresh quick Figure 3 run passes the committed baseline,
// and the same run with a +20% per-message energy fault injected fails
// with a diff naming the violated series and rule.
func TestGateAgainstCommittedBaseline(t *testing.T) {
	base, err := ReadFile(committedBaseline)
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	m := quickFigure3Manifest(t)

	rep := Check(base, m)
	if !rep.OK() {
		t.Fatalf("fresh run violates the committed baseline:\n%s", rep.Render())
	}

	// Inject the fault: +20% on every energy account, as if the radio
	// cost model inflated per-message energy. Both the metric gauges and
	// the trace attribution would shift together in a real run.
	faulty := quickFigure3Manifest(t)
	for _, g := range []string{"exec.energy_mj.collection", "exec.energy_mj.trigger"} {
		faulty.Metrics.Gauges[g] *= 1.2
	}
	for i := range faulty.Trace.Phases {
		faulty.Trace.Phases[i].EnergyMJ *= 1.2
	}
	rep = Check(base, faulty)
	if rep.OK() {
		t.Fatalf("+20%% energy fault passed the gate")
	}
	wantViolated := map[string]string{
		"exec.energy_mj.collection":        "rel<=",
		"exec.energy_mj.trigger":           "rel<=",
		"trace.phase.exec.epoch.energy_mj": "rel<=",
	}
	got := map[string]string{}
	for _, v := range rep.Violations {
		got[v.Series] = v.Kind
	}
	for series, kind := range wantViolated {
		if got[series] != kind {
			t.Errorf("violation for %s: kind %q, want %q\nreport:\n%s", series, got[series], kind, rep.Render())
		}
	}
	// The untouched traffic series must not be dragged into the report.
	if _, hit := got["exec.messages"]; hit {
		t.Errorf("exec.messages violated without a fault:\n%s", rep.Render())
	}
}
