package regress

import (
	"math"
	"strings"
	"testing"

	"prospector/internal/ledger"
	"prospector/internal/obs"
)

// manifestWith builds a minimal manifest whose gauges carry the given
// series values.
func manifestWith(values map[string]float64) *ledger.Manifest {
	reg := obs.NewRegistry()
	snap := reg.Snapshot()
	for k, v := range values {
		snap.Gauges[k] = v
	}
	return ledger.New("test", nil, snap, ledger.Environment{})
}

func fp(v float64) *float64 { return &v }

// TestJudgeEveryKind is the comparator table: every rule kind with a
// passing and a failing observation, plus the NaN fail-closed path.
func TestJudgeEveryKind(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		got  float64
		bad  bool
	}{
		{"exact pass", Rule{Series: "s", Kind: "exact", Value: 16}, 16, false},
		{"exact fail", Rule{Series: "s", Kind: "exact", Value: 16}, 17, true},
		{"exact zero pass", Rule{Series: "s", Kind: "exact"}, 0, false},
		{"abs pass at bound", Rule{Series: "s", Kind: "abs<=", Value: 10, Tolerance: 2}, 12, false},
		{"abs fail", Rule{Series: "s", Kind: "abs<=", Value: 10, Tolerance: 2}, 12.5, true},
		{"abs fail below", Rule{Series: "s", Kind: "abs<=", Value: 10, Tolerance: 2}, 7.9, true},
		{"rel pass", Rule{Series: "s", Kind: "rel<=", Value: 100, Tolerance: 0.05}, 104, false},
		{"rel fail", Rule{Series: "s", Kind: "rel<=", Value: 100, Tolerance: 0.05}, 106, true},
		{"rel negative base pass", Rule{Series: "s", Kind: "rel<=", Value: -100, Tolerance: 0.05}, -96, false},
		{"rel zero base only exact", Rule{Series: "s", Kind: "rel<=", Value: 0, Tolerance: 0.05}, 0.001, true},
		{"band pass", Rule{Series: "s", Kind: "quantile-band", Min: fp(1), Max: fp(3)}, 2, false},
		{"band pass at edge", Rule{Series: "s", Kind: "quantile-band", Min: fp(1), Max: fp(3)}, 3, false},
		{"band fail high", Rule{Series: "s", Kind: "quantile-band", Min: fp(1), Max: fp(3)}, 3.1, true},
		{"band fail low", Rule{Series: "s", Kind: "quantile-band", Min: fp(1), Max: fp(3)}, 0.9, true},
		{"NaN fails exact", Rule{Series: "s", Kind: "exact", Value: 0}, math.NaN(), true},
		{"NaN fails abs", Rule{Series: "s", Kind: "abs<=", Value: 0, Tolerance: 100}, math.NaN(), true},
		{"NaN fails band", Rule{Series: "s", Kind: "quantile-band", Min: fp(-1e18), Max: fp(1e18)}, math.NaN(), true},
	}
	for _, c := range cases {
		v, bad := Judge(c.rule, c.got)
		if bad != c.bad {
			t.Errorf("%s: judge = %v, want %v", c.name, bad, c.bad)
			continue
		}
		if bad && (v.Series != "s" || v.Kind != c.rule.Kind) {
			t.Errorf("%s: violation = %+v, want series s kind %s", c.name, v, c.rule.Kind)
		}
	}
}

// TestCheckMissingSeries: a rule over a series the manifest lacks is a
// violation, not a silent skip.
func TestCheckMissingSeries(t *testing.T) {
	b := &Baseline{Name: "b", Rules: []Rule{{Series: "not.there", Kind: "exact", Value: 1}}}
	rep := Check(b, manifestWith(nil))
	if rep.OK() || len(rep.Violations) != 1 || !rep.Violations[0].Missing {
		t.Fatalf("report = %+v, want one missing violation", rep)
	}
	if !strings.Contains(rep.Render(), "(missing)") {
		t.Errorf("render does not mark the series missing:\n%s", rep.Render())
	}
}

// TestCheckReportNamesSeriesAndRule pins the diff-style render: a
// violated series appears with its rule kind and bound.
func TestCheckReportNamesSeriesAndRule(t *testing.T) {
	b := &Baseline{Name: "fig", Rules: []Rule{
		{Series: "energy", Kind: "rel<=", Value: 100, Tolerance: 0.05},
		{Series: "msgs", Kind: "exact", Value: 10},
	}}
	rep := Check(b, manifestWith(map[string]float64{"energy": 120, "msgs": 10}))
	if rep.OK() || len(rep.Violations) != 1 {
		t.Fatalf("violations = %+v, want exactly the energy rule", rep.Violations)
	}
	out := rep.Render()
	for _, want := range []string{"energy", "rel<=", "120", "1 of 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "msgs") {
		t.Errorf("render lists the passing series:\n%s", out)
	}
}

// TestValidateMalformed covers every structural error path of a
// baseline document.
func TestValidateMalformed(t *testing.T) {
	valid := func() *Baseline {
		return &Baseline{Name: "b", Rules: []Rule{{Series: "s", Kind: "exact", Value: 1}}}
	}
	cases := []struct {
		name  string
		mutil func(*Baseline)
		frag  string
	}{
		{"no name", func(b *Baseline) { b.Name = "" }, "no name"},
		{"no rules", func(b *Baseline) { b.Rules = nil }, "no rules"},
		{"empty series", func(b *Baseline) { b.Rules[0].Series = "" }, "empty series"},
		{"duplicate series", func(b *Baseline) { b.Rules = append(b.Rules, b.Rules[0]) }, "duplicate"},
		{"unknown kind", func(b *Baseline) { b.Rules[0].Kind = "fuzzy" }, "unknown kind"},
		{"negative tolerance", func(b *Baseline) { b.Rules[0].Tolerance = -1 }, "tolerance"},
		{"NaN tolerance", func(b *Baseline) { b.Rules[0].Tolerance = math.NaN() }, "tolerance"},
		{"infinite value", func(b *Baseline) { b.Rules[0].Value = math.Inf(1) }, "finite"},
		{"band without bounds", func(b *Baseline) { b.Rules[0].Kind = "quantile-band" }, "min and max"},
		{"band inverted", func(b *Baseline) {
			b.Rules[0].Kind = "quantile-band"
			b.Rules[0].Min, b.Rules[0].Max = fp(3), fp(1)
		}, "ordered"},
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("control baseline invalid: %v", err)
	}
	for _, c := range cases {
		b := valid()
		c.mutil(b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted it", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

// TestReadRejectsMalformedJSON: parse errors and validation errors both
// surface from Read.
func TestReadRejectsMalformedJSON(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Errorf("Read accepted syntactically invalid JSON")
	}
	if _, err := Read(strings.NewReader(`{"name":"b","rules":[{"series":"s","kind":"made-up"}]}`)); err == nil {
		t.Errorf("Read accepted a baseline with an unknown rule kind")
	}
}

// TestRecord: values refresh, bands re-center, kinds and tolerances
// survive, unresolvable series error out.
func TestRecord(t *testing.T) {
	b := &Baseline{Name: "b", Rules: []Rule{
		{Series: "a", Kind: "exact", Value: 1},
		{Series: "c", Kind: "rel<=", Value: 5, Tolerance: 0.1, Note: "keep me"},
		{Series: "q", Kind: "quantile-band", Tolerance: 2, Min: fp(0), Max: fp(0)},
	}}
	m := manifestWith(map[string]float64{"a": 42, "c": 7, "q": 10})
	if err := Record(b, m); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if b.Rules[0].Value != 42 || b.Rules[1].Value != 7 {
		t.Errorf("values not refreshed: %+v", b.Rules[:2])
	}
	if b.Rules[1].Tolerance != 0.1 || b.Rules[1].Note != "keep me" {
		t.Errorf("record touched reviewed fields: %+v", b.Rules[1])
	}
	if *b.Rules[2].Min != 8 || *b.Rules[2].Max != 12 {
		t.Errorf("band = [%g, %g], want [8, 12]", *b.Rules[2].Min, *b.Rules[2].Max)
	}
	if rep := Check(b, m); !rep.OK() {
		t.Errorf("freshly recorded baseline does not pass its own manifest: %+v", rep.Violations)
	}

	bad := &Baseline{Name: "b", Rules: []Rule{{Series: "ghost", Kind: "exact"}}}
	if err := Record(bad, m); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Record on a missing series: err = %v, want mention of ghost", err)
	}
}
