// Package regress defends the paper's quantitative claims: a baseline
// is a declarative set of per-series rules over run manifests
// (internal/ledger), committed next to the figures they guard
// (results/baselines/). cmd/regress records baselines from known-good
// runs, checks fresh runs against them with a nonzero exit on any
// violation, and explains manifest pairs — giving CI the same
// mechanical gate over plan quality (energy/epoch, messages, warm-hit
// rate) that it already has over correctness.
//
// Rule kinds, evaluated against ledger.Manifest.Series values:
//
//	exact           observed == value (use only for integer-valued
//	                series: call counts, message counts)
//	abs<=           |observed - value| <= tolerance
//	rel<=           |observed - value| <= tolerance * |value|
//	quantile-band   min <= observed <= max; Record refreshes the band
//	                to observed ± tolerance (absolute half-width) —
//	                meant for derived quantile gauges whose exact value
//	                is distribution-shaped, not a point
package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Baseline is one committed rule set.
type Baseline struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Rules       []Rule `json:"rules"`
}

// Rule guards one series of a manifest.
type Rule struct {
	Series string `json:"series"`
	Kind   string `json:"kind"`
	// Value is the recorded expectation for exact / abs<= / rel<=.
	Value float64 `json:"value,omitempty"`
	// Tolerance is the allowed deviation: absolute for abs<=, a
	// fraction of |value| for rel<=, and the recording half-width for
	// quantile-band.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Min/Max bound quantile-band rules.
	Min  *float64 `json:"min,omitempty"`
	Max  *float64 `json:"max,omitempty"`
	Note string   `json:"note,omitempty"`
}

// ruleKinds enumerates the valid Kind strings.
var ruleKinds = map[string]bool{
	"exact": true, "abs<=": true, "rel<=": true, "quantile-band": true,
}

// Validate reports the first structural problem: empty or duplicate
// series, unknown kinds, negative or non-finite tolerances, bands
// without finite ordered bounds.
func (b *Baseline) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("regress: baseline has no name")
	}
	if len(b.Rules) == 0 {
		return fmt.Errorf("regress: baseline %q has no rules", b.Name)
	}
	seen := map[string]bool{}
	for i, r := range b.Rules {
		where := fmt.Sprintf("regress: baseline %q rule %d (%s)", b.Name, i, r.Series)
		if r.Series == "" {
			return fmt.Errorf("regress: baseline %q rule %d: empty series", b.Name, i)
		}
		if seen[r.Series] {
			return fmt.Errorf("%s: duplicate series", where)
		}
		seen[r.Series] = true
		if !ruleKinds[r.Kind] {
			return fmt.Errorf("%s: unknown kind %q (want exact, abs<=, rel<=, or quantile-band)", where, r.Kind)
		}
		if r.Tolerance < 0 || math.IsNaN(r.Tolerance) || math.IsInf(r.Tolerance, 0) {
			return fmt.Errorf("%s: tolerance %g must be finite and >= 0", where, r.Tolerance)
		}
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
			return fmt.Errorf("%s: value %g must be finite", where, r.Value)
		}
		if r.Kind == "quantile-band" {
			if r.Min == nil || r.Max == nil {
				return fmt.Errorf("%s: quantile-band needs min and max (record the baseline to fill them)", where)
			}
			if math.IsNaN(*r.Min) || math.IsNaN(*r.Max) || *r.Min > *r.Max {
				return fmt.Errorf("%s: band [%g, %g] must be ordered and finite", where, *r.Min, *r.Max)
			}
		}
	}
	return nil
}

// Read parses and validates a baseline document.
func Read(r io.Reader) (*Baseline, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("regress: parse baseline: %w", err)
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &base, nil
}

// ReadFile loads a baseline from path.
func ReadFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no signal
	base, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// Write emits the baseline as indented JSON with a trailing newline.
func (b *Baseline) Write(w io.Writer) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// WriteFile writes the baseline to path.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = b.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
