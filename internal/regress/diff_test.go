package regress

import (
	"strings"
	"testing"
)

func TestDiffManifests(t *testing.T) {
	a := manifestWith(map[string]float64{"same": 5, "moved": 10, "a.only": 1})
	b := manifestWith(map[string]float64{"same": 5, "moved": 12, "b.only": 2})
	d := DiffManifests(a, b)
	if !d.HasDifferences() {
		t.Fatalf("HasDifferences = false for differing manifests")
	}
	out := d.Render()
	for _, want := range []string{"moved", "a.only (A only)", "b.only (B only)", "1 series identical, 3 differ"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "same ") {
		t.Errorf("render lists the identical series:\n%s", out)
	}

	if d := DiffManifests(a, a); d.HasDifferences() {
		t.Errorf("a manifest differs from itself")
	}
}

// TestDiffSeesHistogramsAndCounters: the union namespace covers more
// than gauges.
func TestDiffSeesHistogramsAndCounters(t *testing.T) {
	a := manifestWith(nil)
	b := manifestWith(nil)
	a.Metrics.Counters["msgs"] = 10
	b.Metrics.Counters["msgs"] = 11
	d := DiffManifests(a, b)
	if !d.HasDifferences() {
		t.Fatalf("counter delta not seen")
	}
	if !strings.Contains(d.Render(), "msgs") {
		t.Errorf("render missing the counter series:\n%s", d.Render())
	}
}
