package regress

import (
	"fmt"
	"math"
	"strings"

	"prospector/internal/ledger"
)

// Violation is one rule the manifest failed.
type Violation struct {
	Series  string  `json:"series"`
	Kind    string  `json:"kind"`
	Got     float64 `json:"got"`
	Want    string  `json:"want"` // human-readable bound description
	Missing bool    `json:"missing,omitempty"`
}

// Report is the outcome of checking one manifest against one baseline.
type Report struct {
	Baseline   string      `json:"baseline"`
	Checked    int         `json:"checked"`
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether every rule held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// exactly is the one approved float equality in this package: the
// "exact" rule kind is defined as bit-for-bit agreement and documented
// for integer-valued series only.
func exactly(a, b float64) bool { return a == b }

// Check evaluates every rule of the baseline against the manifest.
func Check(b *Baseline, m *ledger.Manifest) *Report {
	rep := &Report{Baseline: b.Name}
	for _, rule := range b.Rules {
		rep.Checked++
		got, ok := m.Series(rule.Series)
		if !ok {
			rep.Violations = append(rep.Violations, Violation{
				Series: rule.Series, Kind: rule.Kind, Missing: true,
				Want: describeRule(rule),
			})
			continue
		}
		if v, bad := Judge(rule, got); bad {
			rep.Violations = append(rep.Violations, v)
		}
	}
	return rep
}

// Judge applies one rule to an observed value, returning the violation
// and true when the value falls outside the rule's acceptance region.
// Exported for live evaluation: the telemetry flight recorder judges
// windowed series against the same rule grammar the CI gate uses on
// manifests.
func Judge(rule Rule, got float64) (Violation, bool) {
	bad := false
	switch rule.Kind {
	case "exact":
		bad = !exactly(got, rule.Value)
	case "abs<=":
		bad = math.Abs(got-rule.Value) > rule.Tolerance
	case "rel<=":
		bad = math.Abs(got-rule.Value) > rule.Tolerance*math.Abs(rule.Value)
	case "quantile-band":
		bad = got < *rule.Min || got > *rule.Max
	}
	// NaN compares false everywhere, which would let a poisoned series
	// slide through abs/rel/band rules; fail it explicitly.
	if math.IsNaN(got) {
		bad = true
	}
	if !bad {
		return Violation{}, false
	}
	return Violation{Series: rule.Series, Kind: rule.Kind, Got: got, Want: describeRule(rule)}, true
}

// describeRule renders a rule's acceptance region for diffs and
// violation messages.
func describeRule(r Rule) string {
	switch r.Kind {
	case "exact":
		return fmt.Sprintf("== %g", r.Value)
	case "abs<=":
		return fmt.Sprintf("within ±%g of %g", r.Tolerance, r.Value)
	case "rel<=":
		return fmt.Sprintf("within ±%g%% of %g", 100*r.Tolerance, r.Value)
	case "quantile-band":
		if r.Min == nil || r.Max == nil {
			return "in unrecorded band"
		}
		return fmt.Sprintf("in [%g, %g]", *r.Min, *r.Max)
	}
	return r.Kind
}

// Render formats the report in the tracetool-diff style: one line per
// violated series naming the rule that failed, or a single all-clear
// line.
func (r *Report) Render() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "regress: %s: %d rule(s) checked, all within tolerance\n", r.Baseline, r.Checked)
		return b.String()
	}
	fmt.Fprintf(&b, "regress: %s: %d of %d rule(s) violated\n", r.Baseline, len(r.Violations), r.Checked)
	fmt.Fprintf(&b, "%-36s %-14s %14s  %s\n", "series", "rule", "got", "want")
	for _, v := range r.Violations {
		got := fmt.Sprintf("%.6g", v.Got)
		if v.Missing {
			got = "(missing)"
		}
		fmt.Fprintf(&b, "%-36s %-14s %14s  %s\n", v.Series, v.Kind, got, v.Want)
	}
	return b.String()
}

// Record refreshes the baseline's expectations from a known-good
// manifest: exact/abs<=/rel<= rules take the observed value; a
// quantile-band rule re-centers its band to observed ± tolerance.
// Kinds, tolerances, and notes — the reviewed, intentional parts —
// are untouched. A series the manifest cannot resolve is an error:
// recording it would commit a rule that can never pass.
func Record(b *Baseline, m *ledger.Manifest) error {
	for i := range b.Rules {
		rule := &b.Rules[i]
		got, ok := m.Series(rule.Series)
		if !ok {
			return fmt.Errorf("regress: record %s: series %s not in manifest", b.Name, rule.Series)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			return fmt.Errorf("regress: record %s: series %s is %g", b.Name, rule.Series, got)
		}
		if rule.Kind == "quantile-band" {
			lo, hi := got-rule.Tolerance, got+rule.Tolerance
			rule.Min, rule.Max = &lo, &hi
			rule.Value = 0
		} else {
			rule.Value = got
		}
	}
	return nil
}
