package obs

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSeriesNameCanonical: label order must not matter, values must be
// escaped, and the unlabeled case must pass through.
func TestSeriesNameCanonical(t *testing.T) {
	a := SeriesName("m", L("b", "2"), L("a", "1"))
	b := SeriesName("m", L("a", "1"), L("b", "2"))
	if a != b || a != `m{a="1",b="2"}` {
		t.Fatalf("series names: %q vs %q", a, b)
	}
	if got := SeriesName("m"); got != "m" {
		t.Errorf("unlabeled series = %q", got)
	}
	if got := SeriesName("m", L("k", "a\"b\\c\nd")); got != `m{k="a\"b\\c\nd"}` {
		t.Errorf("escaping = %q", got)
	}
}

// TestLabeledHandleIdentity: the same name+labels resolve to one handle
// regardless of argument order, and distinct label sets to distinct
// handles. Nil registries stay inert.
func TestLabeledHandleIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.CounterL("hits", L("plan", "lp"), L("phase", "epoch"))
	c2 := r.CounterL("hits", L("phase", "epoch"), L("plan", "lp"))
	if c1 != c2 {
		t.Fatal("label order produced distinct counters")
	}
	if c3 := r.CounterL("hits", L("plan", "naive")); c3 == c1 {
		t.Fatal("distinct label sets shared a counter")
	}
	g1 := r.GaugeL("depth", L("node", "3"))
	g2 := r.GaugeL("depth", L("node", "3"))
	if g1 != g2 {
		t.Fatal("gauge handles differ")
	}
	h1 := r.HistogramL("lat", []float64{1, 2}, L("k", "v"))
	h2 := r.HistogramL("lat", nil, L("k", "v"))
	if h1 != h2 {
		t.Fatal("histogram handles differ")
	}
	var nr *Registry
	if nr.CounterL("x", L("a", "b")) != nil || nr.GaugeL("x") != nil || nr.HistogramL("x", nil) != nil {
		t.Fatal("nil registry returned live labeled handles")
	}
}

// TestHistogramBoundsSanitized: duplicate and unsorted edges are
// deduped and sorted; NaN and infinite edges are dropped.
func TestHistogramBoundsSanitized(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{2, 1, 2, math.NaN(), math.Inf(1), 1, math.Inf(-1)})
	got := h.Bounds()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("bounds = %v, want [1 2]", got)
	}
	if counts := h.BucketCounts(); len(counts) != 3 {
		t.Fatalf("%d buckets for 2 edges, want 3", len(counts))
	}
}

// TestHistogramNaNObservations: NaN observations land in a dedicated
// counter, never in buckets, count, or sum.
func TestHistogramNaNObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.NaN())
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Fatalf("NaN leaked into count/sum: %d %g", h.Count(), h.Sum())
	}
	if h.NaNCount() != 2 {
		t.Fatalf("NaNCount = %d, want 2", h.NaNCount())
	}
	snap := r.Snapshot()
	if snap.Histograms["h"].NaNCount != 2 {
		t.Errorf("snapshot NaNCount = %d", snap.Histograms["h"].NaNCount)
	}
	var nilH *Histogram
	if nilH.NaNCount() != 0 {
		t.Error("nil histogram NaNCount != 0")
	}
}

// TestWritePrometheus pins the exposition format: sanitized names, one
// TYPE line per family, labeled series merged with the le label, and
// cumulative buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.messages").Add(4)
	r.CounterL("plan.runs", L("planner", "lp+lf")).Add(2)
	r.CounterL("plan.runs", L("planner", "naive")).Add(1)
	r.Gauge("sim.latency_seconds").Set(0.25)
	h := r.HistogramL("solve_s", []float64{0.1, 1}, L("status", "optimal"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE plan_runs counter`,
		`plan_runs{planner="lp+lf"} 2`,
		`plan_runs{planner="naive"} 1`,
		`# TYPE sim_latency_seconds gauge`,
		`sim_latency_seconds 0.25`,
		`# TYPE sim_messages counter`,
		`sim_messages 4`,
		`# TYPE solve_s histogram`,
		`solve_s_bucket{status="optimal",le="0.1"} 1`,
		`solve_s_bucket{status="optimal",le="1"} 2`,
		`solve_s_bucket{status="optimal",le="+Inf"} 3`,
		`solve_s_sum{status="optimal"} 5.55`,
		`solve_s_count{status="optimal"} 3`,
		// Derived quantile gauges keep the histogram's label block.
		`# TYPE solve_s_p50 gauge`,
		`solve_s_p50{status="optimal"} 0.55`,
		`# TYPE solve_s_p95 gauge`,
		`solve_s_p95{status="optimal"} 1`,
		`# TYPE solve_s_p99 gauge`,
		`solve_s_p99{status="optimal"} 1`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("prometheus exposition:\n%swant:\n%s", buf.String(), want)
	}

	var nilSnap *Snapshot
	if err := nilSnap.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil snapshot exposition: %v", err)
	}
}

// TestHTTPHandler drives the live endpoints end to end, including the
// nil-registry case the CLIs hit when -listen is set without metrics.
func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.messages").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "sim_messages 7") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}
	body, ctype = get("/snapshot.json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("snapshot content type = %q", ctype)
	}
	if !strings.Contains(body, `"sim.messages": 7`) {
		t.Errorf("snapshot body missing counter:\n%s", body)
	}

	nilSrv := httptest.NewServer(Handler(nil))
	defer nilSrv.Close()
	resp, err := http.Get(nilSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("nil registry /metrics = %d", resp.StatusCode)
	}
}

// TestServeLifecycle covers the eager-listen contract: ":0" binds and
// reports a real address, stop shuts the listener down, and a bad
// address fails up front.
func TestServeLifecycle(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("serve bound %s but GET failed: %v", addr, err)
	}
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
	if _, _, err := Serve("256.256.256.256:0", nil); err == nil {
		t.Error("bad address did not fail eagerly")
	}
}
