package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCLICloseIdempotent pins the Close contract: the second and later
// calls are no-ops — no double-written exposition, no double-closed
// files, no panic — including on a zero CLI with nothing enabled.
func TestCLICloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	c, err := StartCLI(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	c.Registry().Counter("x").Add(1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+2, err)
		}
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(again) {
		t.Fatalf("repeated Close rewrote the exposition:\nfirst:\n%s\nafter:\n%s", first, again)
	}

	zero, err := StartCLI("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := zero.Close(); err != nil {
		t.Fatal(err)
	}
	if err := zero.Close(); err != nil {
		t.Fatal(err)
	}
	var nilCLI *CLI
	if err := nilCLI.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCLICloseJoinsPprofServer pins the pprof-server teardown: Close
// must stop the server goroutine and wait for it, so an immediate
// Close (even racing the goroutine's ListenAndServe) neither panics
// nor leaks. The done channel is the same goleak-style termination
// signal the analyzer requires of every goroutine.
func TestCLICloseJoinsPprofServer(t *testing.T) {
	c, err := StartCLI("", "", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if c.pprofDone == nil {
		t.Fatal("pprof server path did not arm its done channel")
	}
	// Close before the server goroutine has necessarily even started
	// serving: it must still join cleanly.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.pprofDone:
		// joined: the goroutine exited before Close returned
	case <-time.After(5 * time.Second):
		t.Fatal("pprof server goroutine still running after Close")
	}
	// And again: idempotent on the server path too.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
