package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionHeaders pins the response headers of both registry
// surfaces: a correct Content-Type and Cache-Control: no-store, so no
// intermediary ever serves a stale exposition of a live run.
func TestExpositionHeaders(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(1)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	cases := []struct {
		path     string
		wantType string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/snapshot.json", "application/json"},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != c.wantType {
			t.Errorf("%s Content-Type = %q, want %q", c.path, got, c.wantType)
		}
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s Cache-Control = %q, want %q", c.path, got, "no-store")
		}
	}
}

// TestHandlerExtraEndpoints checks injected endpoints (the telemetry
// surfaces) mount next to the registry exposition.
func TestHandlerExtraEndpoints(t *testing.T) {
	h := Handler(NewRegistry(), Endpoint{
		Path: "/healthz",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("ok\n"))
		}),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	// The registry surfaces must still be there alongside the extras.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics with extras = %d", resp.StatusCode)
	}
}
