package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHandlerConcurrentScrape hammers the live /metrics and
// /snapshot.json endpoints while writer goroutines update every metric
// kind and emit spans through a buffered tracer. The interesting
// assertions are the ones the race detector adds: any unsynchronized
// access between a scrape-time snapshot and a hot-path write fails the
// -race CI job.
func TestHandlerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	tracer := NewBufferedTracer(io.Discard)
	h := Handler(reg)

	// Register the series up front so every scrape below must see them;
	// the writers then share the handles, which is the hot-path shape.
	c := reg.Counter("stress.ops")
	g := reg.Gauge("stress.level")
	hist := reg.Histogram("stress.latency", []float64{1, 10, 100})

	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				hist.Observe(float64(i % 128))
				sp := tracer.StartSpan(nil, "stress", float64(i))
				sp.Event("tick", float64(i))
				sp.End(float64(i + 1))
			}
		}(w)
	}

	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/metrics status = %d", rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "stress_ops") {
			t.Fatalf("/metrics missing stress_ops:\n%s", rec.Body.String())
		}
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot.json", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/snapshot.json status = %d", rec.Code)
		}
		var snap map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("/snapshot.json not valid JSON under load: %v", err)
		}
	}

	close(stop)
	wg.Wait()
	if err := tracer.Flush(); err != nil {
		t.Fatalf("tracer saw an error under load: %v", err)
	}
}
