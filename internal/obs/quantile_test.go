package obs

import (
	"math"
	"testing"
)

func TestHistogramSnapshotQuantile(t *testing.T) {
	cases := []struct {
		name string
		h    HistogramSnapshot
		q    float64
		want float64
	}{
		{
			name: "interpolates within covering bucket",
			h:    HistogramSnapshot{Bounds: []float64{1, 10}, Counts: []int64{1, 1, 1}, Count: 3, Sum: 55.5},
			q:    0.5, want: 5.5, // rank 1.5, halfway through (1, 10]
		},
		{
			name: "first bucket interpolates from zero",
			h:    HistogramSnapshot{Bounds: []float64{4}, Counts: []int64{2, 0}, Count: 2},
			q:    0.5, want: 2, // rank 1, halfway through [0, 4]
		},
		{
			name: "overflow rank clamps to highest bound",
			h:    HistogramSnapshot{Bounds: []float64{1, 10}, Counts: []int64{0, 0, 5}, Count: 5},
			q:    0.99, want: 10,
		},
		{
			name: "leading empty bucket is skipped",
			h:    HistogramSnapshot{Bounds: []float64{1, 2, 3}, Counts: []int64{0, 2, 2, 0}, Count: 4},
			q:    0.25, want: 1.5, // rank 1, halfway through (1, 2]
		},
		{
			name: "no finite buckets falls back to the mean",
			h:    HistogramSnapshot{Counts: []int64{4}, Count: 4, Sum: 10},
			q:    0.5, want: 2.5,
		},
		{
			name: "non-positive first bound returns the bound",
			h:    HistogramSnapshot{Bounds: []float64{-1, 10}, Counts: []int64{3, 0, 0}, Count: 3},
			q:    0.5, want: -1,
		},
		{
			name: "q clamped above",
			h:    HistogramSnapshot{Bounds: []float64{8}, Counts: []int64{4, 0}, Count: 4},
			q:    1.5, want: 8,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.h.Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
			}
		})
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

// TestSnapshotDerivedQuantiles pins that Snapshot publishes the p50/
// p95/p99 gauges for non-empty histograms only, preserving label
// blocks.
func TestSnapshotDerivedQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty.hist", []float64{1})
	h := r.HistogramL("lat", []float64{1, 10}, L("op", "solve"))
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	s := r.Snapshot()
	for _, name := range []string{`lat.p50{op="solve"}`, `lat.p95{op="solve"}`, `lat.p99{op="solve"}`} {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("derived gauge %s missing; gauges: %v", name, s.Gauges)
		}
	}
	if got := s.Gauges[`lat.p50{op="solve"}`]; math.Abs(got-5.5) > 1e-12 {
		t.Errorf("lat.p50 = %g, want 5.5", got)
	}
	for name := range s.Gauges {
		if len(name) >= 10 && name[:10] == "empty.hist" {
			t.Errorf("empty histogram grew a derived gauge %s", name)
		}
	}
}
