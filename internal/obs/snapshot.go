package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// NaNCount tallies NaN observations rejected by Observe.
	NaNCount int64 `json:"nan_count,omitempty"`
}

// Snapshot is a frozen, serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state, including derived
// p50/p95/p99 quantile gauges for every non-empty histogram (see
// addDerivedQuantiles). On a nil registry it returns an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return emptySnapshot()
	}
	s := emptySnapshot()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = HistogramSnapshot{
			Bounds:   h.Bounds(),
			Counts:   h.BucketCounts(),
			Count:    h.Count(),
			Sum:      h.Sum(),
			NaNCount: h.NaNCount(),
		}
	}
	s.addDerivedQuantiles()
	return s
}

// quantileProbes are the derived quantiles published for every
// non-empty histogram at snapshot time.
var quantileProbes = []struct {
	suffix string
	q      float64
}{
	{"p50", 0.50},
	{"p95", 0.95},
	{"p99", 0.99},
}

// addDerivedQuantiles adds one gauge per probe and non-empty histogram,
// named `<hist>.p50{labels}` (p95, p99 likewise), so baseline rules and
// dashboards can reference latency quantiles without re-deriving them
// from raw buckets. The gauges flow into every exposition that consumes
// a snapshot: WriteText, WriteJSON (/snapshot.json), WritePrometheus.
func (s *Snapshot) addDerivedQuantiles() {
	for k, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		name, labels := splitSeries(k)
		for _, p := range quantileProbes {
			s.Gauges[name+"."+p.suffix+labels] = h.Quantile(p.q)
		}
	}
}

// Quantile estimates the q-quantile from the bucket counts, assuming
// observations spread uniformly inside each bucket (the same model
// Prometheus' histogram_quantile uses): the target rank is located in
// the cumulative counts and interpolated linearly between the covering
// bucket's edges. A rank landing in the overflow bucket clamps to the
// highest finite bound. Degenerate shapes fall back conservatively:
// an empty histogram reports 0, and one with no finite buckets reports
// the mean (the only location signal it has). q is clamped to [0, 1].
func (h HistogramSnapshot) Quantile(q float64) float64 {
	return BucketQuantile(h.Bounds, h.Counts, h.Count, h.Sum, q)
}

// BucketQuantile is the allocation-free core of HistogramSnapshot.
// Quantile, shared with the windowed-quantile path in
// internal/obs/telemetry (which feeds it per-tick bucket deltas
// instead of cumulative counts). counts has len(bounds)+1 entries, the
// last being the overflow bucket; count and sum are the matching
// totals.
//
//alloc:none
func BucketQuantile(bounds []float64, counts []int64, count int64, sum float64, q float64) float64 {
	if count == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	if len(bounds) == 0 {
		return sum / float64(count)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	cum := int64(0)
	for i, bc := range counts[:len(bounds)] {
		prev := cum
		cum += bc
		if bc == 0 || float64(cum) < rank {
			continue
		}
		hi := bounds[i]
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		} else if hi <= 0 {
			// No defensible lower edge below a non-positive first bound.
			return hi
		}
		pos := (rank - float64(prev)) / float64(bc)
		if pos < 0 {
			pos = 0
		}
		if pos > 1 {
			pos = 1
		}
		return lo + (hi-lo)*pos
	}
	return bounds[len(bounds)-1]
}

// WriteText emits the registry expvar-style: one sorted "name value"
// line per counter and gauge; histograms expand into cumulative
// name{le="edge"} lines plus .count and .sum.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteJSON emits the registry as one JSON document (sorted keys, via
// encoding/json's map ordering).
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

func emptySnapshot() *Snapshot {
	return &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
}

// WriteText formats the snapshot as sorted plain-text lines. A nil
// snapshot writes nothing.
func (s *Snapshot) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if v, ok := s.Counters[k]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", k, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := s.Gauges[k]; ok {
			if _, err := fmt.Fprintf(w, "%s %s\n", k, formatFloat(v)); err != nil {
				return err
			}
			continue
		}
		h := s.Histograms[k]
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", withLE(k, formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLE(k, "+Inf"), h.Count); err != nil {
			return err
		}
		name, labels := splitSeries(k)
		if _, err := fmt.Fprintf(w, "%s.sum%s %s\n", name, labels, formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s.count%s %d\n", name, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// withLE appends the cumulative-bucket le label to a series key,
// merging into an existing label block: `h{le="1"}` for plain names,
// `h{a="b",le="1"}` for labeled series.
func withLE(series, edge string) string {
	name, labels := splitSeries(series)
	if labels == "" {
		return name + `{le="` + edge + `"}`
	}
	return name + labels[:len(labels)-1] + `,le="` + edge + `"}`
}

// WriteJSON emits the snapshot as one indented JSON document. A nil
// snapshot encodes as an empty one, keeping the output well-formed.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	if s == nil {
		s = emptySnapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
