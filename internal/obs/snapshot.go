package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per bucket; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// NaNCount tallies NaN observations rejected by Observe.
	NaNCount int64 `json:"nan_count,omitempty"`
}

// Snapshot is a frozen, serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return emptySnapshot()
	}
	s := emptySnapshot()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = HistogramSnapshot{
			Bounds:   h.Bounds(),
			Counts:   h.BucketCounts(),
			Count:    h.Count(),
			Sum:      h.Sum(),
			NaNCount: h.NaNCount(),
		}
	}
	return s
}

// WriteText emits the registry expvar-style: one sorted "name value"
// line per counter and gauge; histograms expand into cumulative
// name{le="edge"} lines plus .count and .sum.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteJSON emits the registry as one JSON document (sorted keys, via
// encoding/json's map ordering).
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

func emptySnapshot() *Snapshot {
	return &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
}

// WriteText formats the snapshot as sorted plain-text lines. A nil
// snapshot writes nothing.
func (s *Snapshot) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if v, ok := s.Counters[k]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", k, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := s.Gauges[k]; ok {
			if _, err := fmt.Fprintf(w, "%s %s\n", k, formatFloat(v)); err != nil {
				return err
			}
			continue
		}
		h := s.Histograms[k]
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", withLE(k, formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", withLE(k, "+Inf"), h.Count); err != nil {
			return err
		}
		name, labels := splitSeries(k)
		if _, err := fmt.Fprintf(w, "%s.sum%s %s\n", name, labels, formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s.count%s %d\n", name, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// withLE appends the cumulative-bucket le label to a series key,
// merging into an existing label block: `h{le="1"}` for plain names,
// `h{a="b",le="1"}` for labeled series.
func withLE(series, edge string) string {
	name, labels := splitSeries(series)
	if labels == "" {
		return name + `{le="` + edge + `"}`
	}
	return name + labels[:len(labels)-1] + `,le="` + edge + `"}`
}

// WriteJSON emits the snapshot as one indented JSON document. A nil
// snapshot encodes as an empty one, keeping the output well-formed.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	if s == nil {
		s = emptySnapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
