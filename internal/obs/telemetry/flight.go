package telemetry

import (
	"io"
	"sync"
)

// Flight is the flight recorder: a bounded ring of the most recent
// trace records, kept in memory so a rule breach can dump the run's
// recent history (the last N epochs' spans and events) without paying
// for full tracing to disk. It implements io.Writer so it tees
// straight off a Tracer — each Write is exactly one JSON-lines record,
// which is how internal/obs emits them (one Write per record, ahead of
// any buffering; see Tracer.Tee).
//
// Append copies the record into a reused per-slot buffer, so steady-
// state recording allocates nothing (//alloc:none); each slot grows
// once to the record-size high-water mark.
type Flight struct {
	mu      sync.Mutex
	slots   [][]byte
	head    int   // index of the oldest record
	n       int   // live records
	total   int64 // records ever appended
	dropped int64 // records evicted by the ring bound
}

// NewFlight returns a recorder retaining the last capacity records.
func NewFlight(capacity int) *Flight {
	if capacity < 1 {
		capacity = 1
	}
	return &Flight{slots: make([][]byte, capacity)}
}

// Append records one trace record (a full JSON line), evicting the
// oldest when the ring is full. The bytes are copied; the caller may
// reuse rec. No-op on a nil recorder.
//
//alloc:none
func (f *Flight) Append(rec []byte) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var i int
	if f.n < len(f.slots) {
		i = (f.head + f.n) % len(f.slots)
		f.n++
	} else {
		i = f.head
		f.head = (f.head + 1) % len(f.slots)
		f.dropped++
	}
	f.total++
	//alloc:amortized each slot grows once to the record-size high-water mark, then is reused
	f.slots[i] = append(f.slots[i][:0], rec...)
}

// Write implements io.Writer over Append, for Tracer.Tee.
//
//alloc:none
func (f *Flight) Write(p []byte) (int, error) {
	f.Append(p)
	return len(p), nil
}

// Len returns the number of retained records.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Stats returns the lifetime record count and how many fell off the
// ring.
func (f *Flight) Stats() (total, dropped int64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total, f.dropped
}

// WriteTo dumps the retained records oldest-first and returns the
// bytes written. The output is a valid JSON-lines trace fragment: the
// records kept their exact emitted bytes, so a same-seed run dumps the
// same bytes (the double-run determinism test pins this).
func (f *Flight) WriteTo(w io.Writer) (int64, error) {
	if f == nil {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var written int64
	for i := 0; i < f.n; i++ {
		rec := f.slots[(f.head+i)%len(f.slots)]
		n, err := w.Write(rec)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
