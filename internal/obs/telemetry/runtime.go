package telemetry

import (
	"math"
	"runtime/metrics"

	"prospector/internal/obs"
)

// RuntimeBridge samples the Go runtime's own health (goroutines, heap,
// GC, scheduler latency) into ordinary registry gauges, so runtime
// state rides the same pipeline as application metrics: windowed by
// the collector, served at /metrics and /debug/telemetry, judgeable by
// flight rules. Stdlib-only, built on runtime/metrics.
//
// Every published gauge carries the go. prefix; internal/ledger
// quarantines that family into the manifest's environment block, so
// the bridge never perturbs manifest determinism.
type RuntimeBridge struct {
	samples []metrics.Sample
	gauges  []func(metrics.Value)
}

// runtime/metrics keys the bridge reads. Kept to stable, portable
// keys; a key the runtime no longer exports reads as KindBad and its
// gauge simply stops updating.
const (
	keyGoroutines = "/sched/goroutines:goroutines"
	keyHeapBytes  = "/memory/classes/heap/objects:bytes"
	keyGCCycles   = "/gc/cycles/total:gc-cycles"
	keyGCPause    = "/gc/pauses:seconds"
	keySchedLat   = "/sched/latencies:seconds"
)

// NewRuntimeBridge registers the go.* gauges on reg and returns the
// bridge. Call Sample before each collector tick (or let StartTicker
// do it) to refresh them.
func NewRuntimeBridge(reg *obs.Registry) *RuntimeBridge {
	b := &RuntimeBridge{}
	scalar := func(key string, g *obs.Gauge) {
		b.samples = append(b.samples, metrics.Sample{Name: key})
		b.gauges = append(b.gauges, func(v metrics.Value) {
			switch v.Kind() {
			case metrics.KindUint64:
				g.Set(float64(v.Uint64()))
			case metrics.KindFloat64:
				g.Set(v.Float64())
			}
		})
	}
	dist := func(key string, p50, p99 *obs.Gauge) {
		b.samples = append(b.samples, metrics.Sample{Name: key})
		b.gauges = append(b.gauges, func(v metrics.Value) {
			if v.Kind() != metrics.KindFloat64Histogram {
				return
			}
			h := v.Float64Histogram()
			p50.Set(histQuantile(h, 0.50))
			p99.Set(histQuantile(h, 0.99))
		})
	}
	scalar(keyGoroutines, reg.Gauge("go.goroutines"))
	scalar(keyHeapBytes, reg.Gauge("go.heap_bytes"))
	scalar(keyGCCycles, reg.Gauge("go.gc_cycles"))
	dist(keyGCPause, reg.Gauge("go.gc_pause_p50_seconds"), reg.Gauge("go.gc_pause_p99_seconds"))
	dist(keySchedLat, reg.Gauge("go.sched_latency_p50_seconds"), reg.Gauge("go.sched_latency_p99_seconds"))
	return b
}

// Sample reads the runtime metrics and refreshes the gauges. Nil-safe.
func (b *RuntimeBridge) Sample() {
	if b == nil {
		return
	}
	metrics.Read(b.samples)
	for i, s := range b.samples {
		b.gauges[i](s.Value)
	}
}

// histQuantile extracts quantile q from a runtime cumulative-count
// histogram. Buckets with a ±Inf boundary fall back to their finite
// neighbor, so the result is always a usable number.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum < target {
			continue
		}
		// Bucket i spans Buckets[i] .. Buckets[i+1]; prefer the upper
		// boundary, falling back to the lower when it is +Inf.
		hi := h.Buckets[i+1]
		if !math.IsInf(hi, 0) {
			return hi
		}
		lo := h.Buckets[i]
		if !math.IsInf(lo, 0) {
			return lo
		}
		return 0
	}
	return 0
}
