package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"prospector/internal/regress"
)

// FlightSchema identifies the flight-dump header line. Bump on any
// change that would make `tracetool flight` misread a dump.
const FlightSchema = "prospector/flight/v1"

// FlightHeader is the first line of a flight dump: which rule
// breached, with what observed value, at which tick, over how many
// retained records. Everything after it is a plain JSON-lines trace
// fragment (the flight ring, oldest record first).
type FlightHeader struct {
	Flight  string  `json:"flight"` // FlightSchema
	Series  string  `json:"series"`
	Kind    string  `json:"kind"`
	Got     float64 `json:"got"`
	Want    string  `json:"want"`
	Tick    int64   `json:"tick"`
	Now     float64 `json:"now"`
	Records int     `json:"records"`
	Dropped int64   `json:"dropped"`
	Note    string  `json:"note,omitempty"`
}

// LoadRules reads a JSON array of regress rules (the same grammar the
// CI baseline gate uses) from path and validates it. Live rules judge
// the collector's windowed series — counter deltas/rates, gauges, and
// windowed histogram quantiles like exec.epoch_ms.p99 — instead of
// manifest series.
func LoadRules(path string) ([]regress.Rule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rules []regress.Rule
	if err := json.Unmarshal(b, &rules); err != nil {
		return nil, fmt.Errorf("telemetry: parse rules %s: %w", path, err)
	}
	// Reuse the baseline validator: same kinds, same structural checks.
	base := regress.Baseline{Name: "flight", Rules: rules}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("telemetry: rules %s: %w", path, err)
	}
	return rules, nil
}

// Monitor drives the live-telemetry loop: sample the collector, judge
// the rules against the freshly windowed series, and on the first
// breach dump the flight ring to the configured path. The dump fires
// once per run (latched), so a persistently bad series produces one
// coherent artifact instead of rewriting it every tick. Safe for
// concurrent use: the interval ticker samples from its own goroutine.
type Monitor struct {
	mu        sync.Mutex
	collector *Collector
	flight    *Flight
	rules     []regress.Rule
	dumpPath  string
	dumped    bool
}

// NewMonitor bundles a collector with an optional flight recorder,
// breach rules, and the dump destination. flight, rules, and dumpPath
// may be zero when only live series are wanted.
func NewMonitor(c *Collector, f *Flight, rules []regress.Rule, dumpPath string) *Monitor {
	return &Monitor{collector: c, flight: f, rules: rules, dumpPath: dumpPath}
}

// Collector returns the monitor's collector (nil on a nil monitor).
func (m *Monitor) Collector() *Collector {
	if m == nil {
		return nil
	}
	return m.collector
}

// Flight returns the monitor's flight recorder (nil on a nil monitor).
func (m *Monitor) Flight() *Flight {
	if m == nil {
		return nil
	}
	return m.flight
}

// Dumped reports whether the flight recorder has fired.
func (m *Monitor) Dumped() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dumped
}

// Sample ticks the collector at now and evaluates the breach rules.
// A rule whose series does not exist yet is skipped — early in a run
// most series have no samples, and judging absence would trip every
// rule on the first tick (unlike the CI gate, where a missing series
// is a violation). No-op on a nil monitor, so disabled telemetry costs
// callers one nil check.
func (m *Monitor) Sample(now float64) error {
	if m == nil {
		return nil
	}
	m.collector.Sample(now)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dumped || m.flight == nil || m.dumpPath == "" || len(m.rules) == 0 {
		return nil
	}
	for _, rule := range m.rules {
		got, ok := m.collector.Latest(rule.Series)
		if !ok {
			continue
		}
		v, bad := regress.Judge(rule, got)
		if !bad {
			continue
		}
		// Latch before writing: a failing dump should not retry (and
		// re-fail) on every subsequent tick.
		m.dumped = true
		hdr := FlightHeader{
			Flight: FlightSchema,
			Series: rule.Series, Kind: rule.Kind, Got: got, Want: v.Want,
			Tick: m.collector.Ticks() - 1, Now: now,
			Records: m.flight.Len(), Note: rule.Note,
		}
		_, hdr.Dropped = m.flight.Stats()
		if err := writeDump(m.dumpPath, hdr, m.flight); err != nil {
			return fmt.Errorf("telemetry: flight dump: %w", err)
		}
		return nil
	}
	return nil
}

// writeDump emits the header line followed by the flight ring.
func writeDump(path string, hdr FlightHeader, f *Flight) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteDump(out, hdr, f)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteDump writes one flight dump document: the header as a single
// JSON line, then the retained trace records oldest-first.
func WriteDump(w io.Writer, hdr FlightHeader, f *Flight) error {
	b, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = f.WriteTo(w)
	return err
}
