package telemetry

import (
	"math"
	"sync"

	"prospector/internal/obs"
)

// Collector maintains fixed-capacity windowed time series over a
// registry's metrics. Each registered counter becomes three series
// (cumulative value, per-tick delta, delta/dt rate), each gauge one,
// and each histogram four (observations per tick plus windowed
// p50/p95/p99 derived from per-tick bucket deltas).
//
// Sampling is split in two so the hot half stays allocation-free:
// Sync discovers series the registry has grown since the last call
// (allocating probes and rings for them — cold, amortized over the
// run), and Tick samples every known probe (//alloc:none). Sample
// composes both and is the normal entry point; in steady state, when
// no new series appeared, it performs zero allocations end to end.
type Collector struct {
	mu     sync.Mutex
	reg    *obs.Registry
	window int

	ticks   int64
	lastNow float64
	times   *Ring

	probes []*probe
	series map[string]*Ring // every derived series, by full name
	known  map[string]bool  // metric names already probed
	// Registry sizes at the last Sync: when unchanged, Sync is a
	// three-int comparison and no iteration happens at all.
	nc, ng, nh int
}

// probeKind discriminates what a probe samples.
type probeKind uint8

const (
	counterProbe probeKind = iota
	gaugeProbe
	histProbe
)

// probe is one metric's sampling state: the pre-resolved handle, the
// previous observation (for deltas), and the derived rings.
type probe struct {
	kind probeKind
	c    *obs.Counter
	g    *obs.Gauge
	h    *obs.Histogram

	prev float64 // counter: previous cumulative value

	// Histogram state: immutable bounds, previous cumulative bucket
	// counts, and scratch for the current read and the per-tick deltas.
	bounds  []float64
	prevCts []int64
	curCts  []int64
	deltas  []int64
	prevSum float64

	value *Ring // counter cumulative / gauge value
	delta *Ring // counter per-tick delta / histogram observations per tick
	rate  *Ring // counter delta/dt

	q50, q95, q99 *Ring // histogram windowed quantiles
}

// NewCollector attaches a collector with the given window capacity
// (ticks retained per series) to reg. The registry may be empty:
// series that appear later (lp.warm_hit_rate shows up on the first
// solve) are picked up by the next Sample/Sync.
func NewCollector(reg *obs.Registry, window int) *Collector {
	if window < 1 {
		window = 1
	}
	return &Collector{
		reg:    reg,
		window: window,
		times:  newRing(window),
		series: map[string]*Ring{},
		known:  map[string]bool{},
	}
}

// Window returns the per-series window capacity in ticks.
func (c *Collector) Window() int {
	if c == nil {
		return 0
	}
	return c.window
}

// Ticks returns how many times the collector has sampled.
func (c *Collector) Ticks() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Sync mirrors registry growth into the probe set: any metric
// registered since the last Sync gains its probe and rings. Existing
// probes are untouched, so Sync never disturbs in-flight windows.
// No-op (after a three-int size check) when the registry is unchanged.
func (c *Collector) Sync() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nc, ng, nh := c.reg.Sizes()
	if nc == c.nc && ng == c.ng && nh == c.nh {
		return
	}
	c.nc, c.ng, c.nh = nc, ng, nh
	c.reg.EachCounter(func(name string, h *obs.Counter) {
		if c.known[name] {
			return
		}
		c.known[name] = true
		p := &probe{kind: counterProbe, c: h,
			value: newRing(c.window), delta: newRing(c.window), rate: newRing(c.window)}
		c.probes = append(c.probes, p)
		c.series[name] = p.value
		c.series[name+".delta"] = p.delta
		c.series[name+".rate"] = p.rate
	})
	c.reg.EachGauge(func(name string, g *obs.Gauge) {
		if c.known[name] {
			return
		}
		c.known[name] = true
		p := &probe{kind: gaugeProbe, g: g, value: newRing(c.window)}
		c.probes = append(c.probes, p)
		c.series[name] = p.value
	})
	c.reg.EachHistogram(func(name string, h *obs.Histogram) {
		if c.known[name] {
			return
		}
		c.known[name] = true
		nb := h.NumBuckets()
		p := &probe{kind: histProbe, h: h,
			bounds:  h.Bounds(),
			prevCts: make([]int64, nb), curCts: make([]int64, nb), deltas: make([]int64, nb),
			delta: newRing(c.window),
			q50:   newRing(c.window), q95: newRing(c.window), q99: newRing(c.window)}
		c.probes = append(c.probes, p)
		c.series[name+".delta"] = p.delta
		c.series[name+".p50"] = p.q50
		c.series[name+".p95"] = p.q95
		c.series[name+".p99"] = p.q99
	})
}

// Tick samples every known probe at time now, pushing one value per
// derived series. The clock is caller-supplied, never read: sim/exec
// drivers pass the epoch index (deterministic series), the -listen
// interval ticker passes wall seconds. dt <= 0 (first tick, clock
// reset, or interleaved clock domains) yields a rate of 0 rather than
// a division blow-up.
//
//alloc:none
func (c *Collector) Tick(now float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dt := 0.0
	if c.ticks > 0 {
		dt = now - c.lastNow
	}
	for _, p := range c.probes {
		p.sample(dt)
	}
	c.times.Push(now)
	c.lastNow = now
	c.ticks++
}

// Sample is Sync followed by Tick: the normal per-epoch (or
// per-interval) entry point.
func (c *Collector) Sample(now float64) {
	if c == nil {
		return
	}
	c.Sync()
	c.Tick(now)
}

// sample pushes one tick's worth of derived values for this probe.
//
//alloc:none
func (p *probe) sample(dt float64) {
	switch p.kind {
	case counterProbe:
		v := float64(p.c.Value())
		d := v - p.prev
		p.prev = v
		rate := 0.0
		if dt > 0 {
			rate = d / dt
		}
		p.value.Push(v)
		p.delta.Push(d)
		p.rate.Push(rate)
	case gaugeProbe:
		v := p.g.Value()
		// A NaN gauge samples as 0: the windowed series feed JSON
		// (/debug/telemetry) and rule evaluation, and NaN is valid in
		// neither. Histograms already reject NaN at Observe time.
		if math.IsNaN(v) {
			v = 0
		}
		p.value.Push(v)
	case histProbe:
		p.h.ReadBucketCounts(p.curCts)
		n := int64(0)
		for i := range p.curCts {
			p.deltas[i] = p.curCts[i] - p.prevCts[i]
			n += p.deltas[i]
		}
		sum := p.h.Sum()
		dsum := sum - p.prevSum
		p.delta.Push(float64(n))
		p.q50.Push(obs.BucketQuantile(p.bounds, p.deltas, n, dsum, 0.50))
		p.q95.Push(obs.BucketQuantile(p.bounds, p.deltas, n, dsum, 0.95))
		p.q99.Push(obs.BucketQuantile(p.bounds, p.deltas, n, dsum, 0.99))
		copy(p.prevCts, p.curCts)
		p.prevSum = sum
	}
}

// Latest returns the newest value of the named windowed series
// (counter, counter.delta, counter.rate, gauge, hist.delta,
// hist.p50/.p95/.p99) and whether the series exists with at least one
// sample.
func (c *Collector) Latest(name string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.series[name]
	if r == nil {
		return 0, false
	}
	return r.Last()
}

// Export is the JSON document served at /debug/telemetry: the window
// shape plus every windowed series, oldest value first. Values at the
// same index across series belong to the same tick.
type Export struct {
	Window int                  `json:"window"`
	Ticks  int64                `json:"ticks"`
	Times  []float64            `json:"times"`
	Series map[string][]float64 `json:"series"`
}

// Export deep-copies the current windows. Series with no samples yet
// export as empty arrays, so consumers see the full series catalog.
func (c *Collector) Export() *Export {
	e := &Export{Series: map[string][]float64{}}
	if c == nil {
		return e
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e.Window = c.window
	e.Ticks = c.ticks
	e.Times = c.times.AppendTo(make([]float64, 0, c.times.Len()))
	for name, r := range c.series {
		e.Series[name] = r.AppendTo(make([]float64, 0, r.Len()))
	}
	return e
}
