package telemetry

import "time"

// StartTicker drives the monitor on a wall-clock interval, for
// long-running -listen processes where no epoch loop supplies ticks.
// Each firing refreshes the runtime bridge (if any) and samples the
// monitor with now = seconds since start, so the windowed time axis is
// relative and rates come out per second. The returned stop function
// halts the loop and blocks until the goroutine has exited.
//
// Wall-clock sampling is reserved for serving mode: deterministic
// sim/exec drivers tick the monitor from their epoch loops instead.
func StartTicker(m *Monitor, b *RuntimeBridge, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	start := time.Now()
	t := time.NewTicker(interval)
	go func() {
		defer close(finished)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				b.Sample()
				_ = m.Sample(now.Sub(start).Seconds())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
