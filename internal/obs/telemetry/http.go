package telemetry

import (
	"encoding/json"
	"net/http"

	"prospector/internal/obs"
)

// Handler serves the collector's windowed series as JSON (the
// /debug/telemetry document: window shape, tick times, and every
// derived series oldest-first). Live data is never cacheable.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Export())
	})
}

// HealthHandler answers liveness probes: the process is up and serving.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyHandler answers readiness probes against the collector: 503
// until the first tick has populated the windows, 200 after. A process
// that is alive but has not yet sampled has nothing meaningful to
// serve from /debug/telemetry.
func ReadyHandler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if c.Ticks() == 0 {
			http.Error(w, "no samples yet", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	})
}

// Endpoints returns the live-telemetry HTTP surfaces, shaped for
// obs.Handler / obs.CLI.Serve to mount next to /metrics and
// /snapshot.json.
func Endpoints(c *Collector) []obs.Endpoint {
	return []obs.Endpoint{
		{Path: "/healthz", Handler: HealthHandler()},
		{Path: "/readyz", Handler: ReadyHandler(c)},
		{Path: "/debug/telemetry", Handler: c.Handler()},
	}
}
