package telemetry

import (
	"testing"

	"prospector/internal/obs"
)

// tickFixture builds a collector with one of each metric kind, synced
// and warmed so that steady-state Tick exercises every probe branch.
func tickFixture() (*Collector, *obs.Counter, *obs.Gauge, *obs.Histogram) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", []float64{1, 2, 4})
	c := NewCollector(reg, 32)
	ctr.Inc()
	g.Set(1)
	h.Observe(1.5)
	c.Sample(0)
	return c, ctr, g, h
}

// TestTelemetryTickAllocFree pins the //alloc:none contract on the hot
// sampling path: once Sync has built the probes, Tick allocates
// nothing regardless of metric mix. Pairs with the static alloccheck
// pass over the same functions.
func TestTelemetryTickAllocFree(t *testing.T) {
	c, ctr, g, h := tickFixture()
	now := 1.0
	allocs := testing.AllocsPerRun(100, func() {
		ctr.Add(3)
		g.Set(now)
		h.Observe(now)
		c.Tick(now)
		now++
	})
	if allocs != 0 {
		t.Fatalf("Collector.Tick allocated %.1f per run, want 0", allocs)
	}
}

// TestFlightAppendAllocFree pins the //alloc:none contract on the
// flight recorder: after each slot has grown to the record high-water
// mark, appends (including evicting ones) allocate nothing.
func TestFlightAppendAllocFree(t *testing.T) {
	f := NewFlight(8)
	rec := []byte(`{"seq":1,"kind":"span","name":"epoch","dur_ms":3.25}` + "\n")
	for i := 0; i < 16; i++ { // fill and wrap: every slot at high-water
		f.Append(rec)
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.Append(rec)
	})
	if allocs != 0 {
		t.Fatalf("Flight.Append allocated %.1f per run, want 0", allocs)
	}
}

func BenchmarkTelemetryTick(b *testing.B) {
	c, ctr, g, h := tickFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
		g.Set(float64(i))
		h.Observe(float64(i % 5))
		c.Tick(float64(i))
	}
}

func BenchmarkFlightAppend(b *testing.B) {
	f := NewFlight(256)
	rec := []byte(`{"seq":1,"kind":"span","name":"epoch","dur_ms":3.25}` + "\n")
	for i := 0; i < 512; i++ {
		f.Append(rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Append(rec)
	}
}
