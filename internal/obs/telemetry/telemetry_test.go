package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prospector/internal/obs"
	"prospector/internal/regress"
)

func TestRingEvictsOldest(t *testing.T) {
	r := newRing(3)
	if _, ok := r.Last(); ok {
		t.Fatal("empty ring reported a last value")
	}
	for i := 1; i <= 5; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d, want 3/3", r.Len(), r.Cap())
	}
	got := r.AppendTo(nil)
	want := []float64{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
	if last, _ := r.Last(); last != 5 {
		t.Fatalf("Last = %g, want 5", last)
	}
}

func TestCollectorCounterSeries(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("requests")
	c := NewCollector(reg, 8)

	ctr.Add(10)
	c.Sample(0) // first tick: dt undefined, rate 0
	ctr.Add(30)
	c.Sample(2) // dt=2, delta=30, rate=15

	if v, ok := c.Latest("requests"); !ok || v != 40 {
		t.Fatalf("requests = %g,%v, want 40,true", v, ok)
	}
	if v, ok := c.Latest("requests.delta"); !ok || v != 30 {
		t.Fatalf("requests.delta = %g,%v, want 30,true", v, ok)
	}
	if v, ok := c.Latest("requests.rate"); !ok || v != 15 {
		t.Fatalf("requests.rate = %g,%v, want 15,true", v, ok)
	}
	if c.Ticks() != 2 {
		t.Fatalf("Ticks = %d, want 2", c.Ticks())
	}
}

func TestCollectorGaugeNaNSanitized(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ratio")
	c := NewCollector(reg, 4)
	g.Set(math.NaN())
	c.Sample(0)
	v, ok := c.Latest("ratio")
	if !ok || v != 0 {
		t.Fatalf("NaN gauge sampled as %g,%v, want 0,true", v, ok)
	}
	// The export must stay marshalable: NaN would break json.Marshal.
	if _, err := json.Marshal(c.Export()); err != nil {
		t.Fatalf("export not marshalable: %v", err)
	}
}

func TestCollectorHistogramWindowedQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", []float64{1, 2, 4, 8})
	c := NewCollector(reg, 8)

	h.Observe(0.5)
	h.Observe(0.5)
	c.Sample(0)
	if v, ok := c.Latest("lat.delta"); !ok || v != 2 {
		t.Fatalf("lat.delta tick1 = %g,%v, want 2,true", v, ok)
	}

	// Second window holds only the new observations: all in (2,4].
	h.Observe(3)
	h.Observe(3)
	h.Observe(3)
	c.Sample(1)
	if v, _ := c.Latest("lat.delta"); v != 3 {
		t.Fatalf("lat.delta tick2 = %g, want 3", v)
	}
	p99, _ := c.Latest("lat.p99")
	if p99 <= 2 || p99 > 4 {
		t.Fatalf("lat.p99 = %g, want in (2,4] — windowed, not cumulative", p99)
	}
	p50, _ := c.Latest("lat.p50")
	if p50 <= 2 || p50 > 4 {
		t.Fatalf("lat.p50 = %g, want in (2,4]", p50)
	}
}

func TestCollectorDiscoversLateSeries(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg, 4)
	c.Sample(0)
	if _, ok := c.Latest("late"); ok {
		t.Fatal("series existed before registration")
	}
	reg.Counter("late").Add(7)
	c.Sample(1)
	if v, ok := c.Latest("late"); !ok || v != 7 {
		t.Fatalf("late = %g,%v, want 7,true", v, ok)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Sync()
	c.Tick(0)
	c.Sample(1)
	if _, ok := c.Latest("x"); ok {
		t.Fatal("nil collector returned a value")
	}
	if c.Ticks() != 0 || c.Window() != 0 {
		t.Fatal("nil collector reported nonzero state")
	}
	if e := c.Export(); e == nil || len(e.Series) != 0 {
		t.Fatal("nil collector export not empty")
	}
}

func TestFlightRingAndDump(t *testing.T) {
	f := NewFlight(3)
	for _, s := range []string{"a\n", "b\n", "c\n", "d\n"} {
		f.Append([]byte(s))
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	total, dropped := f.Stats()
	if total != 4 || dropped != 1 {
		t.Fatalf("Stats = %d,%d, want 4,1", total, dropped)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = %d,%v", n, err)
	}
	if buf.String() != "b\nc\nd\n" {
		t.Fatalf("dump = %q, want records oldest-first", buf.String())
	}
}

func TestFlightWriterCopiesBytes(t *testing.T) {
	f := NewFlight(2)
	rec := []byte("hello\n")
	if n, err := f.Write(rec); n != len(rec) || err != nil {
		t.Fatalf("Write = %d,%v", n, err)
	}
	copy(rec, "XXXXX") // caller reuses its buffer; the ring must not see it
	var buf bytes.Buffer
	_, _ = f.WriteTo(&buf)
	if buf.String() != "hello\n" {
		t.Fatalf("ring aliased caller bytes: %q", buf.String())
	}
}

func TestMonitorDumpsOnBreachOnce(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("errs")
	c := NewCollector(reg, 8)
	f := NewFlight(8)
	f.Append([]byte(`{"seq":1}` + "\n"))
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	m := NewMonitor(c, f, []regress.Rule{
		{Series: "errs.delta", Kind: "abs<=", Value: 0, Tolerance: 0, Note: "no errors allowed"},
	}, path)

	if err := m.Sample(0); err != nil {
		t.Fatal(err)
	}
	if m.Dumped() {
		t.Fatal("dumped with no breach")
	}
	ctr.Add(5)
	if err := m.Sample(1); err != nil {
		t.Fatal(err)
	}
	if !m.Dumped() {
		t.Fatal("breach did not dump")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want header + 1 record:\n%s", len(lines), b)
	}
	var hdr FlightHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header not JSON: %v", err)
	}
	if hdr.Flight != FlightSchema || hdr.Series != "errs.delta" || hdr.Got != 5 ||
		hdr.Tick != 1 || hdr.Records != 1 || hdr.Note != "no errors allowed" {
		t.Fatalf("header = %+v", hdr)
	}
	if lines[1] != `{"seq":1}` {
		t.Fatalf("record line = %q", lines[1])
	}

	// The latch: remove the dump, breach again, nothing is rewritten.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	ctr.Add(5)
	if err := m.Sample(2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("second breach rewrote the dump")
	}
}

func TestMonitorSkipsMissingSeries(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg, 4)
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	m := NewMonitor(c, NewFlight(4), []regress.Rule{
		{Series: "not.yet.there", Kind: "exact", Value: 1},
	}, path)
	if err := m.Sample(0); err != nil {
		t.Fatal(err)
	}
	if m.Dumped() {
		t.Fatal("missing series treated as breach")
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	if err := m.Sample(0); err != nil {
		t.Fatal(err)
	}
	if m.Dumped() || m.Collector() != nil || m.Flight() != nil {
		t.Fatal("nil monitor reported state")
	}
}

func TestLoadRules(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`[{"series":"a.rate","kind":"abs<=","value":1,"tolerance":0.5}]`), 0o644)
	rules, err := LoadRules(good)
	if err != nil || len(rules) != 1 {
		t.Fatalf("LoadRules = %v, %v", rules, err)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`[{"series":"a","kind":"nonsense"}]`), 0o644)
	if _, err := LoadRules(bad); err == nil {
		t.Fatal("invalid rule kind accepted")
	}
	if _, err := LoadRules(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHTTPSurfaces(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("hits").Add(3)
	c := NewCollector(reg, 4)

	// Readiness flips on the first tick.
	rec := httptest.NewRecorder()
	ReadyHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz before tick = %d, want 503", rec.Code)
	}
	c.Sample(0)
	rec = httptest.NewRecorder()
	ReadyHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz after tick = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/telemetry", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/telemetry = %d", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var e Export
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if got := e.Series["hits"]; len(got) != 1 || got[0] != 3 {
		t.Fatalf("hits series = %v, want [3]", got)
	}

	eps := Endpoints(c)
	if len(eps) != 3 {
		t.Fatalf("Endpoints = %d, want 3", len(eps))
	}
	paths := map[string]bool{}
	for _, ep := range eps {
		paths[ep.Path] = ep.Handler != nil
	}
	for _, p := range []string{"/healthz", "/readyz", "/debug/telemetry"} {
		if !paths[p] {
			t.Fatalf("endpoint %s missing or nil handler", p)
		}
	}
}

func TestRuntimeBridge(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewRuntimeBridge(reg)
	b.Sample()
	if g := reg.Gauge("go.goroutines").Value(); g < 1 {
		t.Fatalf("go.goroutines = %g, want >= 1", g)
	}
	if h := reg.Gauge("go.heap_bytes").Value(); h <= 0 {
		t.Fatalf("go.heap_bytes = %g, want > 0", h)
	}
	// Distribution gauges exist and carry finite values.
	for _, name := range []string{
		"go.gc_pause_p50_seconds", "go.gc_pause_p99_seconds",
		"go.sched_latency_p50_seconds", "go.sched_latency_p99_seconds",
	} {
		v := reg.Gauge(name).Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %g, want finite", name, v)
		}
	}
	var nb *RuntimeBridge
	nb.Sample() // nil-safe
}

func TestStartTickerStops(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg, 16)
	m := NewMonitor(c, nil, nil, "")
	stop := StartTicker(m, NewRuntimeBridge(reg), time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for c.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if c.Ticks() == 0 {
		t.Fatal("ticker never sampled")
	}
	after := c.Ticks()
	time.Sleep(10 * time.Millisecond)
	if c.Ticks() != after {
		t.Fatal("ticker kept sampling after stop")
	}
}
