// Package telemetry turns the end-of-run observability substrate into
// a live one. Everything internal/obs records is cumulative — final
// counters, one snapshot, a manifest — which is the wrong shape for
// long-running services (the concurrent plan-serving layer, standing
// top-k monitors): those need per-window rates, live health signals,
// and after-the-fact evidence when an epoch goes bad.
//
// Four pieces:
//
//   - Collector: fixed-capacity ring-buffer time series attached to the
//     registry's counters/gauges/histograms, sampled on an explicit
//     Tick(now). Ticks are epoch-driven in sim/exec runs (deterministic
//     "now" = epoch index) and interval-driven under -listen (wall
//     seconds). Each counter yields cumulative/delta/rate series, each
//     histogram windowed p50/p95/p99 from bucket deltas — so
//     lp.warm_hit_rate, plans/sec, and energy/epoch become live series
//     instead of end-of-run scalars.
//   - RuntimeBridge: samples runtime/metrics (heap, GC pause,
//     goroutines, sched latency) into ordinary go.* registry gauges,
//     stdlib-only. internal/ledger quarantines the go.* family into the
//     manifest's environment block, so the bridge never poisons
//     manifest determinism.
//   - Flight: a bounded ring of recent trace records (the flight
//     recorder). When a live rule — internal/regress rule syntax,
//     evaluated against the windowed series — breaches, Monitor dumps
//     the ring to a file readable by `tracetool flight`.
//   - HTTP surfaces: /healthz, /readyz, /debug/telemetry, mounted next
//     to the existing /metrics and /snapshot.json via obs.Endpoint.
//
// The sampling tick (Collector.Tick) and the flight-recorder append
// (Flight.Append) honor the //alloc:none discipline, so the layer is
// safe to leave on in the hot path.
package telemetry

// Ring is a fixed-capacity float64 time-series window: pushes past
// capacity evict the oldest value. The zero value is unusable; create
// with newRing. Not self-locking — the owning Collector serializes
// access.
type Ring struct {
	buf  []float64
	head int // index of the oldest value
	n    int
}

func newRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Push appends v, evicting the oldest value when full.
//
//alloc:none
func (r *Ring) Push(v float64) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// Len returns the number of stored values.
func (r *Ring) Len() int { return r.n }

// Cap returns the window capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Last returns the newest value and whether one exists.
//
//alloc:none
func (r *Ring) Last() (float64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[(r.head+r.n-1)%len(r.buf)], true
}

// At returns the i-th stored value, oldest first; i must be in
// [0, Len()).
func (r *Ring) At(i int) float64 {
	return r.buf[(r.head+i)%len(r.buf)]
}

// AppendTo appends the window oldest-to-newest onto dst and returns
// the extended slice.
func (r *Ring) AppendTo(dst []float64) []float64 {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}
