package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Tracer emits structured events and spans as JSON-lines. Output is
// deterministic: timestamps are caller-supplied (a simulated clock or a
// step counter, never the wall clock), field order is preserved, and
// floats are formatted with the shortest round-trip representation. A
// nil *Tracer discards everything at the cost of one nil check.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
	buf []byte
}

// NewTracer wraps a writer. The caller owns closing/flushing the
// underlying writer; check Err after the run for deferred I/O errors.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Field is one key/value pair of a trace record.
type Field struct {
	Key string
	Val interface{}
}

// F builds a Field.
func F(key string, val interface{}) Field { return Field{Key: key, Val: val} }

// Event emits one instantaneous record at time at.
func (t *Tracer) Event(name string, at float64, fields ...Field) {
	if t == nil {
		return
	}
	t.emit("ev", name, []Field{{Key: "t", Val: at}}, fields)
}

// Span emits one interval record covering [start, end].
func (t *Tracer) Span(name string, start, end float64, fields ...Field) {
	if t == nil {
		return
	}
	t.emit("span", name, []Field{{Key: "start", Val: start}, {Key: "end", Val: end}}, fields)
}

// Err returns the first write error encountered (nil on a nil tracer).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *Tracer) emit(kind, name string, head, fields []Field) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, '{')
	b = append(b, `"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, ',', '"')
	b = append(b, kind...)
	b = append(b, '"', ':')
	b = strconv.AppendQuote(b, name)
	for _, f := range head {
		b = appendField(b, f)
	}
	for _, f := range fields {
		b = appendField(b, f)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

func appendField(b []byte, f Field) []byte {
	b = append(b, ',')
	b = strconv.AppendQuote(b, f.Key)
	b = append(b, ':')
	switch v := f.Val.(type) {
	case int:
		b = strconv.AppendInt(b, int64(v), 10)
	case int64:
		b = strconv.AppendInt(b, v, 10)
	case float64:
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	case bool:
		b = strconv.AppendBool(b, v)
	case string:
		b = strconv.AppendQuote(b, v)
	default:
		b = strconv.AppendQuote(b, fmt.Sprintf("%v", v))
	}
	return b
}
