package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// Tracer emits structured events and spans as JSON-lines. Output is
// deterministic: timestamps are caller-supplied (a simulated clock or a
// step counter, never the wall clock), field order is preserved, and
// floats are formatted with the shortest round-trip representation. A
// nil *Tracer discards everything at the cost of one nil check.
//
// Individual Span handles are single-goroutine objects, but the tracer
// itself is safe for concurrent use: emission is serialized under one
// mutex, so seq numbers are strictly increasing across goroutines.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer     //guarded-by:mu
	bw  *bufio.Writer //guarded-by:mu — non-nil iff NewBufferedTracer; w aliases it
	seq int64         //guarded-by:mu
	err error         //guarded-by:mu
	buf []byte        //guarded-by:mu
}

// NewTracer wraps a writer. The caller owns closing/flushing the
// underlying writer; check Err after the run for deferred I/O errors.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// NewBufferedTracer wraps a writer in a buffer so hot-path emission
// costs a memory copy instead of a syscall per record. Callers must
// Flush (typically at Close time) or trailing records are lost; write
// errors surface through Err/Flush once the buffer drains.
func NewBufferedTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 64*1024)
	return &Tracer{w: bw, bw: bw}
}

// Tee routes a copy of every subsequent record to w in addition to the
// tracer's existing sink. The copy is written per record, ahead of any
// internal buffering, so a bounded capture (the telemetry flight
// recorder) sees each record as it is emitted even when the primary
// sink is a buffered file. No-op on a nil tracer.
func (t *Tracer) Tee(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w = io.MultiWriter(w, t.w)
}

// Flush drains the internal buffer (a no-op for unbuffered tracers and
// on a nil tracer) and returns the first error the tracer has seen,
// which a failed flush becomes part of.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// fieldKind discriminates Field's tagged union.
type fieldKind uint8

const (
	fieldInt fieldKind = iota
	fieldFloat
	fieldStr
	fieldBool
)

// Field is one key/value pair of a trace record. The value is a tagged
// union converted to its wire shape at construction time, so building
// and emitting fields never boxes through interface{} and the trace
// hot path stays allocation-free (enforced by alloccheck).
type Field struct {
	Key  string
	kind fieldKind
	num  uint64 // fieldInt: the int64 bits; fieldFloat: Float64bits; fieldBool: 0/1
	str  string
}

// FInt builds an integer field without boxing.
func FInt(key string, v int64) Field { return Field{Key: key, kind: fieldInt, num: uint64(v)} }

// FFloat builds a float field without boxing.
func FFloat(key string, v float64) Field {
	return Field{Key: key, kind: fieldFloat, num: math.Float64bits(v)}
}

// FStr builds a string field without boxing.
func FStr(key, v string) Field { return Field{Key: key, kind: fieldStr, str: v} }

// FBool builds a boolean field without boxing.
func FBool(key string, v bool) Field {
	f := Field{Key: key, kind: fieldBool}
	if v {
		f.num = 1
	}
	return f
}

// F builds a Field from an arbitrary value, converting to the wire
// shape here so record assembly never reflects. The interface{}
// signature boxes its argument; it is the cold convenience
// constructor — hot paths use FInt/FFloat/FStr/FBool.
func F(key string, val interface{}) Field {
	switch v := val.(type) {
	case int:
		return FInt(key, int64(v))
	case int64:
		return FInt(key, v)
	case float64:
		return FFloat(key, v)
	case bool:
		return FBool(key, v)
	case string:
		return FStr(key, v)
	default:
		return FStr(key, fmt.Sprint(v))
	}
}

// Event emits one instantaneous record at time at.
//
//alloc:none
func (t *Tracer) Event(name string, at float64, fields ...Field) {
	if t == nil {
		return
	}
	t.emit("ev", FStr("", name), []Field{FFloat("t", at)}, fields)
}

// Span emits one interval record covering [start, end].
//
//alloc:none
func (t *Tracer) Span(name string, start, end float64, fields ...Field) {
	if t == nil {
		return
	}
	t.emit("span", FStr("", name), []Field{FFloat("start", start), FFloat("end", end)}, fields)
}

// Err returns the first write error encountered (nil on a nil tracer).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// emit serializes one record. kindVal carries the value of the kind
// key (its Key is ignored): a name for ev/span/begin records, a span
// ID for end records.
//
//alloc:none
func (t *Tracer) emit(kind string, kindVal Field, head, fields []Field) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(kind, kindVal, head, fields)
}

// emitLocked is emit with t.mu already held (StartSpan needs the next
// seq and the record write to be one atomic step).
//
//alloc:none
func (t *Tracer) emitLocked(kind string, kindVal Field, head, fields []Field) {
	if t.err != nil {
		return
	}
	t.seq++
	t.buf = appendRecord(t.buf[:0], t.seq, kind, kindVal, head, fields)
	//alloc:amortized sink write: the sink is caller-chosen; NewBufferedTracer amortizes it to a memcpy
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
}

// appendRecord assembles one JSON-lines record into b — the caller's
// scratch, so growth amortizes to the record-size high-water mark —
// and returns the extended slice.
func appendRecord(b []byte, seq int64, kind string, kindVal Field, head, fields []Field) []byte {
	b = append(b, '{')
	b = append(b, `"seq":`...)
	b = strconv.AppendInt(b, seq, 10)
	b = append(b, ',', '"')
	b = append(b, kind...)
	b = append(b, '"', ':')
	b = appendFieldValue(b, kindVal)
	for _, f := range head {
		b = appendField(b, f)
	}
	for _, f := range fields {
		b = appendField(b, f)
	}
	b = append(b, '}', '\n')
	return b
}

// appendField appends ,"key":value to b.
func appendField(b []byte, f Field) []byte {
	b = append(b, ',')
	b = strconv.AppendQuote(b, f.Key)
	b = append(b, ':')
	return appendFieldValue(b, f)
}

// appendFieldValue appends f's value in its wire shape.
func appendFieldValue(b []byte, f Field) []byte {
	switch f.kind {
	case fieldInt:
		return strconv.AppendInt(b, int64(f.num), 10)
	case fieldFloat:
		return strconv.AppendFloat(b, math.Float64frombits(f.num), 'g', -1, 64)
	case fieldBool:
		return strconv.AppendBool(b, f.num != 0)
	default:
		return strconv.AppendQuote(b, f.str)
	}
}
