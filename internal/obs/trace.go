package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Tracer emits structured events and spans as JSON-lines. Output is
// deterministic: timestamps are caller-supplied (a simulated clock or a
// step counter, never the wall clock), field order is preserved, and
// floats are formatted with the shortest round-trip representation. A
// nil *Tracer discards everything at the cost of one nil check.
//
// Individual Span handles are single-goroutine objects, but the tracer
// itself is safe for concurrent use: emission is serialized under one
// mutex, so seq numbers are strictly increasing across goroutines.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer     //guarded-by:mu
	bw  *bufio.Writer //guarded-by:mu — non-nil iff NewBufferedTracer; w aliases it
	seq int64         //guarded-by:mu
	err error         //guarded-by:mu
	buf []byte        //guarded-by:mu
}

// NewTracer wraps a writer. The caller owns closing/flushing the
// underlying writer; check Err after the run for deferred I/O errors.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// NewBufferedTracer wraps a writer in a buffer so hot-path emission
// costs a memory copy instead of a syscall per record. Callers must
// Flush (typically at Close time) or trailing records are lost; write
// errors surface through Err/Flush once the buffer drains.
func NewBufferedTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 64*1024)
	return &Tracer{w: bw, bw: bw}
}

// Flush drains the internal buffer (a no-op for unbuffered tracers and
// on a nil tracer) and returns the first error the tracer has seen,
// which a failed flush becomes part of.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Field is one key/value pair of a trace record.
type Field struct {
	Key string
	Val interface{}
}

// F builds a Field.
func F(key string, val interface{}) Field { return Field{Key: key, Val: val} }

// Event emits one instantaneous record at time at.
func (t *Tracer) Event(name string, at float64, fields ...Field) {
	if t == nil {
		return
	}
	t.emit("ev", name, []Field{{Key: "t", Val: at}}, fields)
}

// Span emits one interval record covering [start, end].
func (t *Tracer) Span(name string, start, end float64, fields ...Field) {
	if t == nil {
		return
	}
	t.emit("span", name, []Field{{Key: "start", Val: start}, {Key: "end", Val: end}}, fields)
}

// Err returns the first write error encountered (nil on a nil tracer).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// emit serializes one record. kindVal is the value of the kind key: a
// name string for ev/span/begin records, a span ID int64 for end
// records.
func (t *Tracer) emit(kind string, kindVal interface{}, head, fields []Field) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(kind, kindVal, head, fields)
}

// emitLocked is emit with t.mu already held (StartSpan needs the next
// seq and the record write to be one atomic step).
func (t *Tracer) emitLocked(kind string, kindVal interface{}, head, fields []Field) {
	if t.err != nil {
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, '{')
	b = append(b, `"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, ',', '"')
	b = append(b, kind...)
	b = append(b, '"', ':')
	switch v := kindVal.(type) {
	case int64:
		b = strconv.AppendInt(b, v, 10)
	case string:
		b = strconv.AppendQuote(b, v)
	default:
		b = strconv.AppendQuote(b, fmt.Sprintf("%v", v))
	}
	for _, f := range head {
		b = appendField(b, f)
	}
	for _, f := range fields {
		b = appendField(b, f)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

func appendField(b []byte, f Field) []byte {
	b = append(b, ',')
	b = strconv.AppendQuote(b, f.Key)
	b = append(b, ':')
	switch v := f.Val.(type) {
	case int:
		b = strconv.AppendInt(b, int64(v), 10)
	case int64:
		b = strconv.AppendInt(b, v, 10)
	case float64:
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	case bool:
		b = strconv.AppendBool(b, v)
	case string:
		b = strconv.AppendQuote(b, v)
	default:
		b = strconv.AppendQuote(b, fmt.Sprintf("%v", v))
	}
	return b
}
