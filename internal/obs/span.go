package obs

// Causal spans. A Span is an open interval of work with a deterministic
// identity: its ID is the seq number of its "begin" record, so the same
// run always yields the same IDs and a trace file can be rebuilt into
// the identical tree (internal/traceanalysis does exactly that).
//
// Record shapes, all JSON-lines sharing the tracer's seq counter:
//
//	{"seq":N,"begin":NAME,"id":N,"parent":P,"t":START,...}   StartSpan
//	{"seq":M,"end":ID,"t":END,...}                           Span.End
//	{"seq":N,"span":NAME,"id":N,"parent":P,"start":S,"end":E,...}
//	                                           Span.Span (closed child)
//	{"seq":K,"ev":NAME,"parent":P,"t":AT,...}                Span.Event
//
// parent is 0 for root spans. The flat Tracer.Event/Tracer.Span methods
// keep emitting parentless records, so pre-span traces stay valid.
//
// Every method is nil-safe: a nil *Span (tracing disabled, or its
// tracer already failed) ignores End/Event/etc. and hands out nil
// children, so span plumbing costs instrumented code one nil check.

// SpanID identifies a span within one trace. IDs are the seq numbers
// of begin records: positive, strictly increasing in creation order.
// Zero means "no parent".
type SpanID int64

// Span is an in-progress traced interval. Create one with
// Tracer.StartSpan or Span.Child; finish it with End. A Span handle is
// a single-goroutine object (the tracer behind it is what's shared).
//
//confine:goroutine
type Span struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	ended  bool
}

// StartSpan opens a span under parent (nil parent makes a root span)
// and emits its begin record at time start. Returns nil on a nil
// tracer, and a span that will silently discard everything if the
// tracer has already failed.
func (t *Tracer) StartSpan(parent *Span, name string, start float64, fields ...Field) *Span {
	if t == nil {
		return nil
	}
	var pid SpanID
	if parent != nil {
		pid = parent.id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(t.seq + 1) // the begin record's seq is the span's ID
	t.emitLocked("begin", FStr("", name), []Field{
		FInt("id", int64(id)),
		FInt("parent", int64(pid)),
		FFloat("t", start),
	}, fields)
	return &Span{t: t, id: id, parent: pid, name: name}
}

// ID returns the span's deterministic identifier (0 on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span's name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span at time end, attaching the final fields (summary
// totals such as energy_mj or messages belong here). Multiple Ends
// emit once; a nil span ignores the call.
//
//alloc:none
func (s *Span) End(end float64, fields ...Field) {
	if s == nil {
		return
	}
	if s.ended {
		return
	}
	s.ended = true
	s.t.emit("end", FInt("", int64(s.id)), []Field{
		FFloat("t", end),
	}, fields)
}

// Event emits an instantaneous record parented to this span. A nil
// span ignores the call (matching Tracer.Event on a nil tracer).
//
//alloc:none
func (s *Span) Event(name string, at float64, fields ...Field) {
	if s == nil {
		return
	}
	s.t.emit("ev", FStr("", name), []Field{
		FInt("parent", int64(s.id)),
		FFloat("t", at),
	}, fields)
}

// Child opens a sub-span; equivalent to s.Tracer().StartSpan(s, ...).
// Returns nil on a nil span.
func (s *Span) Child(name string, start float64, fields ...Field) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartSpan(s, name, start, fields...)
}

// Span emits one already-closed child span as a single record covering
// [start, end]; its ID is the record's seq. Used for fine-grained
// leaves (one message transfer) where begin/end pairs would double the
// trace volume. A nil span ignores the call.
//
//alloc:none
func (s *Span) Span(name string, start, end float64, fields ...Field) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	id := s.t.seq + 1
	s.t.emitLocked("span", FStr("", name), []Field{
		FInt("id", id),
		FInt("parent", int64(s.id)),
		FFloat("start", start),
		FFloat("end", end),
	}, fields)
}
