package obs

import (
	"io"
	"testing"
)

// TestFastPathsAllocFree pins the runtime half of the //alloc:none
// claims in this package: counter/gauge/histogram updates and trace
// emission through a warmed tracer perform zero heap allocations. The
// field slices are built once and spread, matching how the annotated
// production emitters pass their scratch.
func TestFastPathsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2, 4})
	tr := NewTracer(io.Discard)
	sp := tr.StartSpan(nil, "root", 0, FStr("plan", "proof"))
	evFields := []Field{FInt("node", 3), FFloat("t", 0.5)}
	spFields := []Field{FBool("ok", true), FStr("kind", "warm")}
	// Warm: grow the tracer's record buffer to the widest record.
	tr.Event("ev", 1, evFields...)
	sp.Event("ev", 1, evFields...)
	sp.Span("child", 1, 2, spFields...)

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(2.5)
		tr.Event("ev", 1, evFields...)
		sp.Event("ev", 1, evFields...)
		sp.Span("child", 1, 2, spFields...)
	})
	if allocs != 0 {
		t.Fatalf("obs fast paths allocated %v times per round, want 0", allocs)
	}
	sp.End(3)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}
