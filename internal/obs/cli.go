package obs

import (
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// CLI bundles the observability endpoints a command-line flag set
// enables: a metrics registry, a JSON-lines tracer, and profiling.
// A zero CLI (all flags empty) hands out nil registry and tracer, so
// instrumented code runs at its no-op cost.
type CLI struct {
	reg    *Registry
	tracer *Tracer

	metricsPath string
	metricsFile *os.File
	traceFile   *os.File
	cpuFile     *os.File
	pprofDir    string
	stopServe   func() error
	stopPprof   func() error
	pprofDone   chan struct{} // closed when the pprof server goroutine exits
	closed      bool
}

// StartCLI interprets the three standard observability flags:
//
//	metrics: "" disables; "-" prints the text exposition to stdout at
//	         Close; any other value names a file to write it to.
//	trace:   "" disables; "-" streams JSON-lines to stdout; any other
//	         value names a file receiving them as the run progresses.
//	pprofArg: "" disables; a value containing ":" (e.g. ":6060" or
//	         "localhost:6060") serves net/http/pprof at that address
//	         until Close; any other value names a directory receiving
//	         cpu.prof (covering the run) and heap.prof (written at
//	         Close).
//
// Callers must Close the returned CLI (typically deferred) to flush
// metrics and profiles.
func StartCLI(metrics, trace, pprofArg string) (*CLI, error) {
	c := &CLI{metricsPath: metrics}
	if metrics != "" {
		c.reg = NewRegistry()
		if metrics != "-" {
			// Open eagerly so a bad path fails the run up front, not
			// after it has already completed.
			f, err := os.Create(metrics)
			if err != nil {
				return nil, fmt.Errorf("obs: metrics file: %w", err)
			}
			c.metricsFile = f
		}
	}
	if trace != "" {
		if trace == "-" {
			c.tracer = NewTracer(os.Stdout)
		} else {
			f, err := os.Create(trace)
			if err != nil {
				_ = c.Close() // the original error wins
				return nil, fmt.Errorf("obs: trace file: %w", err)
			}
			c.traceFile = f
			// Buffered: file traces are hot-path output; Close flushes.
			c.tracer = NewBufferedTracer(f)
		}
	}
	if pprofArg != "" {
		if strings.Contains(pprofArg, ":") {
			// A stoppable server rather than http.ListenAndServe: the
			// goroutine ends when Close shuts the endpoint down with the
			// rest of the CLI.
			srv := &http.Server{Addr: pprofArg}
			c.stopPprof = srv.Close
			done := make(chan struct{})
			c.pprofDone = done
			go func() {
				// An unusable address only costs the profiling endpoint.
				// Closing done lets Close join the goroutine, so a
				// Close-before-serve race cannot leak it.
				defer close(done)
				_ = srv.ListenAndServe()
			}()
		} else {
			if err := os.MkdirAll(pprofArg, 0o755); err != nil {
				_ = c.Close() // the original error wins
				return nil, fmt.Errorf("obs: pprof dir: %w", err)
			}
			f, err := os.Create(filepath.Join(pprofArg, "cpu.prof"))
			if err != nil {
				_ = c.Close() // the original error wins
				return nil, fmt.Errorf("obs: cpu profile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				_ = f.Close() // the original error wins
				_ = c.Close() // the original error wins
				return nil, fmt.Errorf("obs: cpu profile: %w", err)
			}
			c.cpuFile = f
			c.pprofDir = pprofArg
		}
	}
	return c, nil
}

// Serve exposes the CLI's registry at addr (/metrics in Prometheus
// text format, /snapshot.json, plus any injected extra endpoints such
// as the telemetry surfaces) for the lifetime of the process, creating
// a registry first if the flags alone didn't. It returns the bound
// address, so ":0" picks a free port. No-op on a nil CLI.
func (c *CLI) Serve(addr string, extra ...Endpoint) (string, error) {
	if c == nil {
		return "", nil
	}
	if c.reg == nil {
		c.reg = NewRegistry()
	}
	bound, stop, err := Serve(addr, c.reg, extra...)
	if err != nil {
		return "", err
	}
	c.stopServe = stop
	return bound, nil
}

// EnsureTracer returns the CLI's tracer, creating one that writes to
// sink when tracing was not enabled by flags, or teeing sink into the
// existing tracer when it was. This is how the flight recorder taps
// the record stream whether or not -trace is on: either way every
// subsequent record lands in sink. Returns nil on a nil CLI.
func (c *CLI) EnsureTracer(sink io.Writer) *Tracer {
	if c == nil {
		return nil
	}
	if c.tracer == nil {
		c.tracer = NewTracer(sink)
	} else {
		c.tracer.Tee(sink)
	}
	return c.tracer
}

// EnsureRegistry returns the CLI's registry, creating one when the
// flags alone didn't enable metrics. Callers that need a registry
// regardless of -metrics (manifests, live telemetry, -listen) use this
// so every surface observes the same registry. Returns nil on a nil
// CLI.
func (c *CLI) EnsureRegistry() *Registry {
	if c == nil {
		return nil
	}
	if c.reg == nil {
		c.reg = NewRegistry()
	}
	return c.reg
}

// Registry returns the metrics registry, nil when metrics are disabled
// (or on a nil CLI).
func (c *CLI) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Tracer returns the tracer, nil when tracing is disabled (or on a nil
// CLI).
func (c *CLI) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Close flushes everything the flags enabled: the metrics exposition,
// the trace file, the CPU profile, and a final heap profile. It
// returns the first error encountered but always attempts every step.
// Close is idempotent: the second and later calls are no-ops, so a
// "close early on error" path composing with a deferred Close cannot
// double-write the metrics exposition or double-close files.
func (c *CLI) Close() error {
	if c == nil {
		return nil
	}
	if c.closed {
		return nil
	}
	c.closed = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.reg != nil {
		if c.metricsPath == "-" {
			keep(c.reg.WriteText(os.Stdout))
		} else if c.metricsFile != nil {
			keep(c.reg.WriteText(c.metricsFile))
			keep(c.metricsFile.Close())
			c.metricsFile = nil
		}
	}
	if c.tracer != nil {
		// Flush drains the buffer (if any) and reports the first error
		// the tracer saw, so this covers Err too.
		keep(c.tracer.Flush())
	}
	if c.stopServe != nil {
		keep(c.stopServe())
		c.stopServe = nil
	}
	if c.stopPprof != nil {
		keep(c.stopPprof())
		c.stopPprof = nil
		// Join the server goroutine: after Close returns, nothing of the
		// CLI is still running (asserted by TestCLICloseJoinsPprofServer).
		<-c.pprofDone
	}
	if c.traceFile != nil {
		keep(c.traceFile.Close())
		c.traceFile = nil
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.pprofDir != "" {
		f, err := os.Create(filepath.Join(c.pprofDir, "heap.prof"))
		if err != nil {
			keep(fmt.Errorf("obs: heap profile: %w", err))
		} else {
			runtime.GC() // materialize up-to-date allocation stats
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		c.pprofDir = ""
	}
	return firstErr
}
