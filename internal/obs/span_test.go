package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestSpanGolden pins the byte-exact record shapes of the span API:
// deterministic IDs (the begin record's seq), parent links, flat child
// spans, parented events, and end records closing by ID.
func TestSpanGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.StartSpan(nil, "query", 0, F("planner", "lp+lf"))
	if root.ID() != 1 {
		t.Fatalf("root ID = %d, want 1", root.ID())
	}
	epoch := root.Child("sim.epoch", 0, F("nodes", 3))
	if epoch.ID() != 2 || epoch.Name() != "sim.epoch" {
		t.Fatalf("child span = %d %q", epoch.ID(), epoch.Name())
	}
	epoch.Event("sim.trigger", 0.5, F("node", 1))
	epoch.Span("sim.xfer", 0.5, 0.75, F("node", 2), F("dst", 0))
	epoch.End(1.5, F("energy_mj", 2.25), F("messages", 1))
	epoch.End(99) // second End must not emit
	root.End(2)

	want := strings.Join([]string{
		`{"seq":1,"begin":"query","id":1,"parent":0,"t":0,"planner":"lp+lf"}`,
		`{"seq":2,"begin":"sim.epoch","id":2,"parent":1,"t":0,"nodes":3}`,
		`{"seq":3,"ev":"sim.trigger","parent":2,"t":0.5,"node":1}`,
		`{"seq":4,"span":"sim.xfer","id":4,"parent":2,"start":0.5,"end":0.75,"node":2,"dst":0}`,
		`{"seq":5,"end":2,"t":1.5,"energy_mj":2.25,"messages":1}`,
		`{"seq":6,"end":1,"t":2}`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("span records:\n%swant:\n%s", buf.String(), want)
	}
}

// TestSpanNilSafety: nil tracers and nil spans must absorb the whole
// span API without emitting or panicking.
func TestSpanNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan(nil, "x", 0)
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	if s.ID() != 0 || s.Name() != "" {
		t.Error("nil span has identity")
	}
	s.End(1)
	s.Event("e", 0)
	s.Span("y", 0, 1)
	if c := s.Child("c", 0); c != nil {
		t.Error("nil span returned a live child")
	}
	if tr.Flush() != nil {
		t.Error("nil tracer Flush errored")
	}
}

// TestSpanConcurrency hammers one tracer with interleaved span/event
// emission while other goroutines hit labeled registry handles; run
// with -race. Afterwards the trace must hold every record with strictly
// increasing seq, and the registry totals must balance exactly.
func TestSpanConcurrency(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	reg := NewRegistry()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := L("worker", fmt.Sprintf("w%d", w))
			for i := 0; i < perWorker; i++ {
				s := tr.StartSpan(nil, "round", float64(i))
				s.Event("tick", float64(i), F("w", w))
				s.Span("leaf", float64(i), float64(i)+0.5)
				s.End(float64(i) + 1)
				reg.CounterL("rounds", lbl).Inc()
				reg.GaugeL("progress", lbl).Add(1)
				reg.HistogramL("lat", []float64{0.25, 0.5}, lbl).Observe(0.3)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantRecords := workers * perWorker * 4
	if len(lines) != wantRecords {
		t.Fatalf("trace holds %d records, want %d", len(lines), wantRecords)
	}
	lastSeq := int64(0)
	for _, line := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved emission corrupted a line: %q: %v", line, err)
		}
		seq := int64(rec["seq"].(float64))
		if seq != lastSeq+1 {
			t.Fatalf("seq %d follows %d", seq, lastSeq)
		}
		lastSeq = seq
	}
	snap := reg.Snapshot()
	for w := 0; w < workers; w++ {
		series := SeriesName("rounds", L("worker", fmt.Sprintf("w%d", w)))
		if got := snap.Counters[series]; got != perWorker {
			t.Errorf("%s = %d, want %d", series, got, perWorker)
		}
	}
	if len(snap.Counters) != workers {
		t.Errorf("%d counter series, want %d", len(snap.Counters), workers)
	}
}

// blockyWriter fails every write once armed, counting attempts.
type blockyWriter struct {
	bytes.Buffer
	fail   bool
	writes int
}

func (b *blockyWriter) Write(p []byte) (int, error) {
	b.writes++
	if b.fail {
		return 0, errors.New("disk full")
	}
	return b.Buffer.Write(p)
}

// TestBufferedTracerFlush: a buffered tracer must not touch the
// underlying writer per record, must deliver everything on Flush, and
// must surface a flush-time failure through both Flush and Err —
// sticky, first error wins.
func TestBufferedTracerFlush(t *testing.T) {
	var w blockyWriter
	tr := NewBufferedTracer(&w)
	for i := 0; i < 10; i++ {
		tr.Event("e", float64(i))
	}
	if w.writes != 0 {
		t.Fatalf("buffered tracer hit the writer %d times before Flush", w.writes)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(w.String(), "\n"); got != 10 {
		t.Fatalf("flushed %d records, want 10", got)
	}

	// Now arm the failure: records buffer fine, the flush reports.
	w.fail = true
	tr.Event("doomed", 11)
	if tr.Err() != nil {
		t.Fatal("buffered write should not fail before flush")
	}
	if err := tr.Flush(); err == nil || err.Error() != "disk full" {
		t.Fatalf("flush error = %v, want disk full", err)
	}
	if tr.Err() == nil {
		t.Fatal("flush failure must stick in Err")
	}
	// A later recovery of the writer must not clear the sticky error.
	w.fail = false
	if err := tr.Flush(); err == nil || err.Error() != "disk full" {
		t.Fatalf("sticky error lost: %v", err)
	}
}

// TestBufferedTracerMidRunOverflow: when the run outgrows the buffer,
// the overflow write surfaces mid-run like an unbuffered failure and
// emission stops (no partial junk after the error).
func TestBufferedTracerMidRunOverflow(t *testing.T) {
	var w blockyWriter
	w.fail = true
	tr := NewBufferedTracer(&w)
	big := strings.Repeat("x", 4096)
	for i := 0; i < 64 && tr.Err() == nil; i++ {
		tr.Event("fill", float64(i), F("pad", big))
	}
	if tr.Err() == nil {
		t.Fatal("overflowing a failing writer never surfaced the error")
	}
	seqBefore := tr.seq
	tr.Event("after", 0)
	if tr.seq != seqBefore {
		t.Error("tracer kept assigning seqs after the write error")
	}
}

// BenchmarkSpanEmit measures trace emission on the span hot paths the
// simulator and executor sit on (results tracked in BENCH_obs.json).
func BenchmarkSpanEmit(b *testing.B) {
	b.Run("event-nil", func(b *testing.B) {
		var s *Span
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Event("ev", float64(i), F("node", 3))
		}
	})
	b.Run("begin-end", func(b *testing.B) {
		tr := NewTracer(io.Discard)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := tr.StartSpan(nil, "sim.epoch", float64(i), F("nodes", 60))
			s.End(float64(i)+1, F("energy_mj", 12.5), F("messages", 60))
		}
	})
	b.Run("flat-child", func(b *testing.B) {
		tr := NewTracer(io.Discard)
		s := tr.StartSpan(nil, "sim.epoch", 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Span("sim.xfer", float64(i), float64(i)+0.5,
				F("node", 3), F("dst", 1), F("tx_mj", 1.5), F("rx_mj", 0.5))
		}
	})
	b.Run("event-parented", func(b *testing.B) {
		tr := NewTracer(io.Discard)
		s := tr.StartSpan(nil, "sim.epoch", 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Event("sim.trigger", float64(i), F("node", 3), F("energy_mj", 0.3))
		}
	})
	b.Run("buffered-flat-child", func(b *testing.B) {
		tr := NewBufferedTracer(io.Discard)
		s := tr.StartSpan(nil, "sim.epoch", 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Span("sim.xfer", float64(i), float64(i)+0.5,
				F("node", 3), F("dst", 1), F("tx_mj", 1.5), F("rx_mj", 0.5))
		}
	})
}

// BenchmarkLabeledHandles splits the labeled-metric cost into series-key
// resolution (per lookup) and the pre-resolved handle update the hot
// paths actually pay.
func BenchmarkLabeledHandles(b *testing.B) {
	b.Run("resolve", func(b *testing.B) {
		r := NewRegistry()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.CounterL("hits", L("plan", "lp"), L("phase", "epoch")).Inc()
		}
	})
	b.Run("preresolved", func(b *testing.B) {
		c := NewRegistry().CounterL("hits", L("plan", "lp"), L("phase", "epoch"))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}
