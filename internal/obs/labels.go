package obs

import (
	"sort"
	"strings"
)

// Labeled metrics. A labeled handle is an ordinary Counter/Gauge/
// Histogram registered under a canonical series key: the base name
// followed by the label set sorted by key, rendered key="value". The
// same name+labels therefore always resolves to the same handle no
// matter the argument order, and snapshots/expositions see one stable
// series per combination.

// Label is one key=value dimension of a metric series.
type Label struct {
	Key, Val string
}

// L builds a Label.
func L(key, val string) Label { return Label{Key: key, Val: val} }

// SeriesName returns the canonical series key for name plus labels:
// `name{k1="v1",k2="v2"}` with the labels sorted by key (ties by
// value); values are escaped like Prometheus label values. With no
// labels it returns name unchanged.
func SeriesName(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Val < ls[j].Val
	})
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelVal(l.Val))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelVal escapes a label value the way the Prometheus text
// format does: backslash, double quote, and newline.
func escapeLabelVal(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitSeries decomposes a series key back into base name and rendered
// label block ("" when unlabeled). The label block keeps its braces.
func splitSeries(series string) (name, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 && strings.HasSuffix(series, "}") {
		return series[:i], series[i:]
	}
	return series, ""
}

// CounterL returns (creating if needed) the counter for name with this
// label set. Returns nil on a nil registry.
func (r *Registry) CounterL(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(SeriesName(name, labels...))
}

// GaugeL returns (creating if needed) the gauge for name with this
// label set. Returns nil on a nil registry.
func (r *Registry) GaugeL(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(SeriesName(name, labels...))
}

// HistogramL returns (creating if needed) the histogram for name with
// this label set; bounds follow the Registry.Histogram rules. Returns
// nil on a nil registry.
func (r *Registry) HistogramL(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(SeriesName(name, labels...), bounds)
}
