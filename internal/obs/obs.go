// Package obs is a zero-dependency metrics and tracing subsystem for
// the planner/executor/simulator stack: a concurrency-safe registry of
// counters, gauges, and fixed-bucket histograms, plus a structured
// span/event tracer emitting deterministic JSON-lines (see trace.go).
//
// Every handle is nil-safe: methods on a nil *Registry, *Counter,
// *Gauge, *Histogram, or *Tracer are no-ops, so instrumented hot paths
// pay only a nil check when observability is disabled. Callers fetch
// handles once (Registry.Counter et al.) and update them lock-free via
// atomics; the registry mutex is touched only at handle-creation and
// snapshot time.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; create
// one with NewRegistry. A nil *Registry is a valid "disabled" registry:
// its lookup methods return nil handles whose updates are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   //guarded-by:mu
	gauges   map[string]*Gauge     //guarded-by:mu
	hists    map[string]*Histogram //guarded-by:mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with this name.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with this name. Returns
// nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with this name.
// bounds are the inclusive upper edges of the finite buckets; one
// overflow bucket (+Inf) is implicit. Bounds are sorted, and duplicate
// or non-finite edges are dropped (a duplicated edge would create a
// bucket no observation can ever land in). If the histogram already
// exists its original bounds win. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := sanitizeBounds(bounds)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Sizes returns the number of registered counters, gauges, and
// histograms (all zero on a nil registry). A cheap change detector for
// pollers that mirror the registry (internal/obs/telemetry resyncs its
// probe set only when a size moves).
func (r *Registry) Sizes() (counters, gauges, hists int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters), len(r.gauges), len(r.hists)
}

// EachCounter calls f for every registered counter. Iteration order is
// unspecified; f must not call registry methods (the registry mutex is
// held). No-op on a nil registry.
func (r *Registry) EachCounter(f func(name string, c *Counter)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		f(k, v)
	}
}

// EachGauge calls f for every registered gauge, under the same
// contract as EachCounter. No-op on a nil registry.
func (r *Registry) EachGauge(f func(name string, g *Gauge)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.gauges {
		f(k, v)
	}
}

// EachHistogram calls f for every registered histogram, under the same
// contract as EachCounter (methods on the histogram itself are fine —
// only the registry is locked). No-op on a nil registry.
func (r *Registry) EachHistogram(f func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.hists {
		f(k, v)
	}
}

// sanitizeBounds sorts the finite bucket edges and removes duplicates,
// NaNs, and infinities (the overflow bucket already covers +Inf).
func sanitizeBounds(bounds []float64) []float64 {
	b := make([]float64, 0, len(bounds))
	for _, e := range bounds {
		if !math.IsNaN(e) && !math.IsInf(e, 0) {
			b = append(b, e)
		}
	}
	sort.Float64s(b)
	out := b[:0]
	for i, e := range b {
		if i > 0 && e == b[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v int64 }

// Add increments the counter by d. No-op on a nil counter.
//
//alloc:none
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, d)
}

// Inc increments the counter by one. No-op on a nil counter.
//
//alloc:none
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is a float metric that can be set or accumulated.
type Gauge struct{ bits uint64 }

// Set stores v. No-op on a nil gauge.
//
//alloc:none
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add accumulates d into the gauge. No-op on a nil gauge.
//
//alloc:none
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(&g.bits, old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// Histogram is a fixed-bucket distribution metric. An observation v
// lands in the first bucket whose upper edge satisfies v <= edge; the
// final bucket is unbounded.
type Histogram struct {
	bounds  []float64
	counts  []int64 // len(bounds)+1; last is overflow
	sumBits uint64
	n       int64
	nan     int64 // NaN observations, kept out of counts/sum/n
}

// Observe records one value. A NaN observation is routed to a
// dedicated counter (see NaNCount) instead of a bucket: folding it
// into Sum would poison the total for the rest of the run. No-op on a
// nil histogram.
//
//alloc:none
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		atomic.AddInt64(&h.nan, 1)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper edge
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.n, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, nw) {
			return
		}
	}
}

// NaNCount returns how many NaN observations were rejected (0 on a nil
// histogram).
func (h *Histogram) NaNCount() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.nan)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.n)
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// Bounds returns the finite bucket upper edges (nil on a nil histogram).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns one count per bucket, the last being the
// overflow bucket (nil on a nil histogram).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	h.ReadBucketCounts(out)
	return out
}

// NumBuckets returns the bucket count including the overflow bucket
// (0 on a nil histogram), so pollers can size a reusable dst for
// ReadBucketCounts once: bounds are immutable after creation.
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// ReadBucketCounts fills dst with the current per-bucket counts (last
// is overflow) without allocating, reading at most len(dst) buckets.
// It returns the histogram's bucket count so a short dst is
// detectable; 0 on a nil histogram.
//
//alloc:none
func (h *Histogram) ReadBucketCounts(dst []int64) int {
	if h == nil {
		return 0
	}
	n := len(h.counts)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = atomic.LoadInt64(&h.counts[i])
	}
	return len(h.counts)
}
