package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceGolden pins the exact JSON-lines byte stream of a fixed
// event/span sequence: determinism is the tracer's contract (replays
// and diffs must be stable across runs and platforms).
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event("sim.trigger", 0, F("node", 0))
	tr.Event("sim.trigger", 0.0135, F("node", 3), F("depth", 1))
	tr.Span("sim.xfer", 0.0135, 0.028, F("node", 3), F("parent", 0), F("values", 2), F("bytes", 8))
	tr.Event("sim.loss", 0.031, F("node", 5), F("attempt", 1), F("lost", true))
	tr.Event("sim.drop", 0.5, F("node", 5), F("reason", "max-retries"))
	tr.Span("exec.round", 0, 1, F("messages", int64(12)), F("energy_mj", 84.25))
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.jsonl")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from %s:\ngot:\n%swant:\n%s", golden, buf.String(), want)
	}

	// Every line must be valid standalone JSON with monotonically
	// increasing seq.
	lastSeq := int64(0)
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		seq := int64(rec["seq"].(float64))
		if seq != lastSeq+1 {
			t.Errorf("seq %d follows %d", seq, lastSeq)
		}
		lastSeq = seq
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

// TestTracerErrSticky: after the first write error the tracer stops
// writing and reports the error.
func TestTracerErrSticky(t *testing.T) {
	tr := NewTracer(&failWriter{after: 1})
	tr.Event("ok", 0)
	if tr.Err() != nil {
		t.Fatal("first write should succeed")
	}
	tr.Event("fails", 1)
	if tr.Err() == nil {
		t.Fatal("second write should fail")
	}
	tr.Event("dropped", 2)
	if tr.Err() == nil || tr.Err().Error() != "disk full" {
		t.Errorf("error not sticky: %v", tr.Err())
	}
}
