package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp: a nil registry, and every handle it hands out,
// must be safe to use and observably inert.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned live handles: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(10)
	g.Set(3)
	g.Add(4)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles accumulated state")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil {
		t.Error("nil histogram returned buckets")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry text exposition: %q", buf.String())
	}
	var tr *Tracer
	tr.Event("x", 0, F("a", 1))
	tr.Span("y", 0, 1)
	if tr.Err() != nil {
		t.Error("nil tracer reported an error")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run with -race. Handles are fetched concurrently too, exercising the
// create-on-demand path.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", []float64{0.25, 0.5, 0.75}).Observe(float64(i%4) / 4)
				if i%100 == 0 {
					r.Snapshot() // snapshots race against writers
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if got := r.Counter("shared.counter").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("shared.gauge").Value(); got != float64(want) {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

// TestHistogramBucketEdges pins the bucket rule: an observation equal
// to an upper edge lands in that bucket (inclusive upper edges), and
// anything above the last edge lands in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.0000001, 2, 3, 4, 4.5, 100} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 2, 2, 2} // (-inf,1], (1,2], (2,4], (4,+inf)
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+1.0000001+2+3+4+4.5+100 {
		t.Errorf("sum = %g", h.Sum())
	}
}

// TestHistogramIdentity: a second Histogram call with different bounds
// returns the same underlying histogram (original bounds win).
func TestHistogramIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", []float64{1, 2})
	b := r.Histogram("h", []float64{5})
	if a != b {
		t.Fatal("same name returned distinct histograms")
	}
	if got := b.Bounds(); len(got) != 2 {
		t.Errorf("bounds = %v, want the original [1 2]", got)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.gauge").Set(2.5)
	h := r.Histogram("c.hist", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`a.gauge 2.5`,
		`b.count 3`,
		`c.hist{le="1"} 1`,
		`c.hist{le="10"} 2`,
		`c.hist{le="+Inf"} 3`,
		`c.hist.sum 55.5`,
		`c.hist.count 3`,
		// Derived quantile gauges: rank p50 = 1.5 interpolates halfway
		// through the (1, 10] bucket; p95/p99 land in the overflow
		// bucket and clamp to the highest finite bound.
		`c.hist.p50 5.5`,
		`c.hist.p95 10`,
		`c.hist.p99 10`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("text exposition:\n%s\nwant:\n%s", buf.String(), want)
	}

	var jbuf bytes.Buffer
	if err := r.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON exposition invalid: %v", err)
	}
	if snap.Counters["b.count"] != 3 || snap.Gauges["a.gauge"] != 2.5 {
		t.Errorf("round-tripped snapshot wrong: %+v", snap)
	}
	if hs := snap.Histograms["c.hist"]; hs.Count != 3 || hs.Sum != 55.5 {
		t.Errorf("round-tripped histogram wrong: %+v", snap.Histograms["c.hist"])
	}
}

// BenchmarkObsRegistry measures the raw handle-update costs backing the
// exec/lp overhead benchmarks.
func BenchmarkObsRegistry(b *testing.B) {
	b.Run("counter-nil", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-live", func(b *testing.B) {
		c := NewRegistry().Counter("c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-live", func(b *testing.B) {
		h := NewRegistry().Histogram("h", []float64{1e-5, 1e-4, 1e-3, 1e-2})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(1e-3)
		}
	})
}
