package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
)

// Live exposition. Handler serves a registry over HTTP so long sweeps
// can be watched while they run:
//
//	/metrics        Prometheus text exposition (format 0.0.4)
//	/snapshot.json  the registry snapshot as one JSON document
//
// Both endpoints take a fresh snapshot per request; the registry stays
// lock-free for writers in between. Every response carries
// Cache-Control: no-store — these are live documents, and a cached
// snapshot would silently report a stale run.

// Endpoint is one extra HTTP surface mounted next to the registry
// exposition, e.g. the telemetry endpoints (/healthz, /readyz,
// /debug/telemetry) from internal/obs/telemetry — which this package
// cannot name without an import cycle, so callers inject them.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// Handler returns an HTTP handler exposing the registry plus any extra
// endpoints. A nil registry serves empty (but well-formed) documents,
// so the endpoint can be wired up before deciding whether metrics are
// on.
func Handler(reg *Registry, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		// The snapshot is already in memory; an exposition write error
		// just means the scraper hung up.
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = reg.Snapshot().WriteJSON(w)
	})
	for _, e := range extra {
		mux.Handle(e.Path, e.Handler)
	}
	return mux
}

// Serve starts the exposition server on addr (e.g. ":9090"). It
// listens eagerly — a bad address fails the run up front — then serves
// in the background for the lifetime of the process. It returns the
// bound address (useful with ":0") and a stop function that shuts the
// server down and waits for the serve goroutine to exit, so callers
// (and leak-sensitive tests) observe a clean teardown.
func Serve(addr string, reg *Registry, extra ...Endpoint) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, extra...)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Serve returns ErrServerClosed on Close; anything else only
		// costs the exposition endpoint, never the run.
		_ = srv.Serve(ln)
	}()
	stop := func() error {
		err := srv.Close()
		<-done
		return err
	}
	return ln.Addr().String(), stop, nil
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format: metric names sanitized to [a-zA-Z0-9_:], one # TYPE line per
// family, histograms expanded into cumulative _bucket/_sum/_count
// series. Families are sorted, so the output is deterministic. A nil
// snapshot writes nothing.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	type series struct {
		labels string // rendered label block, "" when unlabeled
		key    string // original series key, for value lookup
	}
	type family struct {
		name string // sanitized family name
		kind string // counter | gauge | histogram
		ss   []series
	}
	fams := map[string]*family{}
	add := func(key, kind string) {
		name, labels := splitSeries(key)
		name = sanitizeMetricName(name)
		f := fams[name]
		if f == nil {
			f = &family{name: name, kind: kind}
			fams[name] = f
		}
		f.ss = append(f.ss, series{labels: labels, key: key})
	}
	for k := range s.Counters {
		add(k, "counter")
	}
	for k := range s.Gauges {
		add(k, "gauge")
	}
	for k := range s.Histograms {
		add(k, "histogram")
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.ss, func(i, j int) bool { return f.ss[i].key < f.ss[j].key })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sr := range f.ss {
			var err error
			switch f.kind {
			case "counter":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, sr.labels, s.Counters[sr.key])
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, sr.labels, formatFloat(s.Gauges[sr.key]))
			case "histogram":
				err = writePromHistogram(w, f.name, sr.labels, s.Histograms[sr.key])
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name, labels string, h HistogramSnapshot) error {
	bucket := func(edge string, cum int64) error {
		_, err := fmt.Fprintf(w, "%s %d\n", withLE(name+"_bucket"+labels, edge), cum)
		return err
	}
	cum := int64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if err := bucket(formatFloat(b), cum); err != nil {
			return err
		}
	}
	if err := bucket("+Inf", h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
	return err
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:], replacing everything else (dots,
// dashes) with underscores.
func sanitizeMetricName(name string) string {
	ok := func(r rune, first bool) bool {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' {
			return true
		}
		return !first && r >= '0' && r <= '9'
	}
	var b strings.Builder
	for i, r := range name {
		if ok(r, i == 0) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
