package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Trace is a Source replaying a recorded epoch matrix, e.g. real
// deployment data loaded with ReadTrace. It wraps around at the end.
type Trace struct {
	epochs [][]float64
	cursor int
}

// NewTrace wraps an epoch matrix (each row one full-network reading
// vector, all rows the same width).
func NewTrace(epochs [][]float64) (*Trace, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	width := len(epochs[0])
	if width == 0 {
		return nil, fmt.Errorf("workload: trace epochs are empty")
	}
	for i, e := range epochs {
		if len(e) != width {
			return nil, fmt.Errorf("workload: epoch %d has %d readings, epoch 0 has %d", i, len(e), width)
		}
	}
	return &Trace{epochs: epochs}, nil
}

// Size implements Source.
func (t *Trace) Size() int { return len(t.epochs[0]) }

// Epochs returns the trace length.
func (t *Trace) Epochs() int { return len(t.epochs) }

// Next implements Source, wrapping around after the last epoch.
func (t *Trace) Next() []float64 {
	e := t.epochs[t.cursor%len(t.epochs)]
	t.cursor++
	return append([]float64(nil), e...)
}

// Reset rewinds to the first epoch.
func (t *Trace) Reset() { t.cursor = 0 }

// Epoch returns a copy of epoch e.
func (t *Trace) Epoch(e int) []float64 {
	return append([]float64(nil), t.epochs[e]...)
}

// WriteTrace stores an epoch matrix as CSV: a header row "node0..N-1"
// followed by one row of readings per epoch. NaN readings are written
// as empty cells (missing).
func WriteTrace(w io.Writer, epochs [][]float64) error {
	if len(epochs) == 0 {
		return fmt.Errorf("workload: nothing to write")
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(epochs[0]))
	for i := range header {
		header[i] = fmt.Sprintf("node%d", i)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, e := range epochs {
		if len(e) != len(header) {
			return fmt.Errorf("workload: ragged epoch of width %d", len(e))
		}
		for i, v := range e {
			if math.IsNaN(v) {
				row[i] = ""
			} else {
				row[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV epoch matrix as written by WriteTrace (the
// header row is optional: a first row that fails numeric parsing is
// treated as a header). Empty cells are missing readings; they are
// filled with the average of the node's previous and next epoch,
// exactly as the paper handles the Intel Lab data's gaps. A reading
// missing in every epoch is an error.
func ReadTrace(r io.Reader) ([][]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	start := 0
	if !numericRow(records[0]) {
		start = 1
	}
	if start >= len(records) {
		return nil, fmt.Errorf("workload: trace has a header but no data")
	}
	width := len(records[start])
	epochs := make([][]float64, 0, len(records)-start)
	missing := make([][]bool, 0, len(records)-start)
	for rn, rec := range records[start:] {
		if len(rec) != width {
			return nil, fmt.Errorf("workload: row %d has %d fields, want %d", rn+start+1, len(rec), width)
		}
		e := make([]float64, width)
		m := make([]bool, width)
		for i, cell := range rec {
			if cell == "" {
				m[i] = true
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d field %d: %v", rn+start+1, i+1, err)
			}
			e[i] = v
		}
		epochs = append(epochs, e)
		missing = append(missing, m)
	}
	if err := FillMissing(epochs, missing); err != nil {
		return nil, err
	}
	return epochs, nil
}

func numericRow(rec []string) bool {
	for _, cell := range rec {
		if cell == "" {
			continue
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			return false
		}
	}
	return true
}

// FillMissing replaces marked readings with the average of the node's
// nearest non-missing previous and next epochs (the paper's rule for
// the Intel Lab gaps); runs at the edges copy the nearest available
// reading. A node missing in every epoch is an error.
func FillMissing(epochs [][]float64, missing [][]bool) error {
	if len(epochs) != len(missing) {
		return fmt.Errorf("workload: %d epochs but %d missing masks", len(epochs), len(missing))
	}
	if len(epochs) == 0 {
		return nil
	}
	width := len(epochs[0])
	for i := 0; i < width; i++ {
		for e := range epochs {
			if !missing[e][i] {
				continue
			}
			prev, prevOK := lastPresent(epochs, missing, i, e-1, -1)
			next, nextOK := lastPresent(epochs, missing, i, e+1, +1)
			switch {
			case prevOK && nextOK:
				epochs[e][i] = (prev + next) / 2
			case prevOK:
				epochs[e][i] = prev
			case nextOK:
				epochs[e][i] = next
			default:
				return fmt.Errorf("workload: node %d has no readings in any epoch", i)
			}
		}
	}
	return nil
}

func lastPresent(epochs [][]float64, missing [][]bool, node, from, step int) (float64, bool) {
	for e := from; e >= 0 && e < len(epochs); e += step {
		if !missing[e][node] {
			return epochs[e][node], true
		}
	}
	return 0, false
}
