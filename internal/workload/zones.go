package workload

import (
	"fmt"
	"math/rand"

	"prospector/internal/stats"
)

// ZoneConfig describes the contention-zone scenario of the paper's
// Figures 5-7: a background population of nodes with stable readings
// near Mu0, plus Zones clusters of PerZone nodes each whose readings
// have lower means but high enough variance that every zone node has an
// identical ExceedProb chance of exceeding Mu0. With ExceedProb =
// 1/Zones and PerZone = k, the expected number of zone nodes above Mu0
// is k and each zone is expected to supply k/Zones of the top k.
type ZoneConfig struct {
	Nodes   int // total nodes including root and background
	Zones   int
	PerZone int
	// ZoneOf maps node -> zone index or -1 for background nodes. Built
	// by network.ZonePlacement so values line up with the topology.
	ZoneOf []int
	// Mu0 is the background mean; background readings are
	// N(Mu0, BackgroundStd^2).
	Mu0           float64
	BackgroundStd float64
	// ExceedProb is each zone node's probability of exceeding Mu0.
	ExceedProb float64
	// ZoneMeanDrop is how far below Mu0 the zone means sit; the zone
	// standard deviation is derived from it and ExceedProb.
	ZoneMeanDrop float64
	// Territorial switches the zone draw from independent normals to
	// the "territorial birds" pattern of the paper's introduction:
	// each epoch exactly round(ExceedProb*PerZone) arbitrarily chosen
	// zone members read high while the rest read low. This produces
	// the strong negative correlation local filtering exploits.
	Territorial bool
}

// DefaultZoneConfig mirrors the paper's setup for k top values and the
// given zone count: each zone holds k nodes and a zone node exceeds the
// background mean with probability 1/zones. The probability is capped
// just below 1/2, where the derivation of the zone variance (zone means
// sit below Mu0) breaks down.
func DefaultZoneConfig(nodes, zones, k int, zoneOf []int) ZoneConfig {
	p := 1 / float64(zones)
	if p > 0.45 {
		p = 0.45
	}
	return ZoneConfig{
		Nodes:         nodes,
		Zones:         zones,
		PerZone:       k,
		ZoneOf:        zoneOf,
		Mu0:           50,
		BackgroundStd: 0.5,
		ExceedProb:    p,
		ZoneMeanDrop:  4,
	}
}

// ZoneField is the Source implementing ZoneConfig.
type ZoneField struct {
	cfg      ZoneConfig
	zoneStd  float64
	zoneMean float64
	rng      *rand.Rand
	byZone   [][]int // node IDs per zone
}

// NewZoneField validates cfg and builds the source.
func NewZoneField(cfg ZoneConfig, rng *rand.Rand) (*ZoneField, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("workload: need at least 1 node, got %d", cfg.Nodes)
	}
	if len(cfg.ZoneOf) != cfg.Nodes {
		return nil, fmt.Errorf("workload: ZoneOf has %d entries for %d nodes", len(cfg.ZoneOf), cfg.Nodes)
	}
	if cfg.ExceedProb <= 0 || cfg.ExceedProb >= 1 {
		return nil, fmt.Errorf("workload: ExceedProb must be in (0,1), got %g", cfg.ExceedProb)
	}
	if cfg.ZoneMeanDrop <= 0 {
		return nil, fmt.Errorf("workload: ZoneMeanDrop must be positive, got %g", cfg.ZoneMeanDrop)
	}
	f := &ZoneField{
		cfg:      cfg,
		zoneMean: cfg.Mu0 - cfg.ZoneMeanDrop,
		rng:      rng,
		byZone:   make([][]int, cfg.Zones),
	}
	// P(N(zoneMean, sd^2) > Mu0) = ExceedProb
	// => Mu0 = zoneMean + sd * NormInv(1 - ExceedProb).
	z := stats.NormInv(1 - cfg.ExceedProb)
	if z <= 0 {
		return nil, fmt.Errorf("workload: ExceedProb %g >= 0.5 puts zone means above Mu0; lower it", cfg.ExceedProb)
	}
	f.zoneStd = cfg.ZoneMeanDrop / z
	for i, zn := range cfg.ZoneOf {
		if zn >= cfg.Zones {
			return nil, fmt.Errorf("workload: node %d assigned zone %d of %d", i, zn, cfg.Zones)
		}
		if zn >= 0 {
			f.byZone[zn] = append(f.byZone[zn], i)
		}
	}
	return f, nil
}

// Size implements Source.
func (f *ZoneField) Size() int { return f.cfg.Nodes }

// ZoneStdDev returns the derived standard deviation of zone nodes.
func (f *ZoneField) ZoneStdDev() float64 { return f.zoneStd }

// Next implements Source.
func (f *ZoneField) Next() []float64 {
	v := make([]float64, f.cfg.Nodes)
	for i, zn := range f.cfg.ZoneOf {
		if zn < 0 {
			v[i] = f.cfg.Mu0 + f.cfg.BackgroundStd*f.rng.NormFloat64()
		} else if !f.cfg.Territorial {
			v[i] = f.zoneMean + f.zoneStd*f.rng.NormFloat64()
		}
	}
	if f.cfg.Territorial {
		for _, members := range f.byZone {
			f.drawTerritorial(members, v)
		}
	}
	// The root measures nothing interesting; pin it at the background
	// mean so it never competes for the top k.
	if len(v) > 0 && f.cfg.ZoneOf[0] < 0 {
		v[0] = f.cfg.Mu0 - 3*f.cfg.BackgroundStd
	}
	return v
}

// drawTerritorial assigns exactly round(ExceedProb*len(members)) high
// readers in a zone, chosen uniformly per epoch, and low readings to
// everyone else.
func (f *ZoneField) drawTerritorial(members []int, v []float64) {
	winners := int(f.cfg.ExceedProb*float64(len(members)) + 0.5)
	if winners < 1 {
		winners = 1
	}
	if winners > len(members) {
		winners = len(members)
	}
	perm := f.rng.Perm(len(members))
	for rank, pi := range perm {
		i := members[pi]
		if rank < winners {
			// Winners land clearly above the background mean.
			v[i] = f.cfg.Mu0 + f.cfg.ZoneMeanDrop/2 + f.zoneStd/4*absNorm(f.rng)
		} else {
			v[i] = f.zoneMean - f.zoneStd/4*absNorm(f.rng)
		}
	}
}

func absNorm(rng *rand.Rand) float64 {
	x := rng.NormFloat64()
	if x < 0 {
		return -x
	}
	return x
}
