package workload

import (
	"math"
	"math/rand"
	"testing"

	"prospector/internal/sample"
	"prospector/internal/stats"
)

func TestGaussianFieldMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultGaussianConfig(10)
	f, err := NewGaussianField(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10 {
		t.Fatalf("size = %d", f.Size())
	}
	for i := 0; i < 10; i++ {
		if m := f.Mean(i); m < cfg.MeanLow || m > cfg.MeanHigh {
			t.Errorf("mean(%d) = %g outside [%g,%g]", i, m, cfg.MeanLow, cfg.MeanHigh)
		}
		if s := f.StdDev(i); s < cfg.StdDevLow || s > cfg.StdDevHigh {
			t.Errorf("stddev(%d) = %g", i, s)
		}
	}
	// Empirical mean of node 3 over many epochs approaches its mean.
	var xs []float64
	for e := 0; e < 4000; e++ {
		xs = append(xs, f.Next()[3])
	}
	if got := stats.Mean(xs); math.Abs(got-f.Mean(3)) > 0.3 {
		t.Errorf("empirical mean %g vs %g", got, f.Mean(3))
	}
	if got := stats.StdDev(xs); math.Abs(got-f.StdDev(3)) > 0.3 {
		t.Errorf("empirical stddev %g vs %g", got, f.StdDev(3))
	}
}

func TestGaussianValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewGaussianField(GaussianConfig{Nodes: 0}, rng); err == nil {
		t.Error("accepted zero nodes")
	}
	bad := DefaultGaussianConfig(5)
	bad.MeanHigh = bad.MeanLow - 1
	if _, err := NewGaussianField(bad, rng); err == nil {
		t.Error("accepted inverted mean range")
	}
}

func TestSetStdDev(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, err := NewGaussianField(DefaultGaussianConfig(6), rng)
	if err != nil {
		t.Fatal(err)
	}
	f.SetStdDev(0)
	a, b := f.Next(), f.Next()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero variance but values differ at node %d", i)
		}
	}
}

func TestZoneFieldExceedProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const (
		nodes = 40
		zones = 4
		k     = 6
	)
	zoneOf := make([]int, nodes)
	for i := range zoneOf {
		zoneOf[i] = -1
	}
	// First 24 non-root nodes into 4 zones of 6.
	for i := 0; i < zones*k; i++ {
		zoneOf[i+1] = i / k
	}
	cfg := DefaultZoneConfig(nodes, zones, k, zoneOf)
	f, err := NewZoneField(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical exceed probability of a zone node over many epochs.
	exceed, total := 0, 0
	for e := 0; e < 3000; e++ {
		v := f.Next()
		for i := 1; i <= zones*k; i++ {
			total++
			if v[i] > cfg.Mu0 {
				exceed++
			}
		}
	}
	got := float64(exceed) / float64(total)
	want := cfg.ExceedProb
	if math.Abs(got-want) > 0.02 {
		t.Errorf("exceed probability %.4f, want %.4f", got, want)
	}
}

func TestZoneFieldExpectedTopKFromZones(t *testing.T) {
	// With per-zone k nodes and exceed prob 1/zones, the expected
	// number of zone nodes above mu0 is k, and they dominate the top k.
	rng := rand.New(rand.NewSource(5))
	const (
		nodes = 50
		zones = 5
		k     = 8
	)
	zoneOf := make([]int, nodes)
	for i := range zoneOf {
		zoneOf[i] = -1
	}
	for i := 0; i < zones*k; i++ {
		zoneOf[i+1] = i / k
	}
	f, err := NewZoneField(DefaultZoneConfig(nodes, zones, k, zoneOf), rng)
	if err != nil {
		t.Fatal(err)
	}
	above := 0.0
	const epochs = 2000
	for e := 0; e < epochs; e++ {
		v := f.Next()
		for i := 1; i <= zones*k; i++ {
			if v[i] > 50 {
				above++
			}
		}
	}
	if got := above / epochs; math.Abs(got-k) > 1 {
		t.Errorf("expected zone nodes above mu0 per epoch = %.2f, want ~%d", got, k)
	}
}

func TestZoneFieldTerritorial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const (
		nodes = 26
		zones = 5
		k     = 5
	)
	zoneOf := make([]int, nodes)
	for i := range zoneOf {
		zoneOf[i] = -1
	}
	for i := 0; i < zones*k; i++ {
		zoneOf[i+1] = i / k
	}
	cfg := DefaultZoneConfig(nodes, zones, k, zoneOf)
	cfg.Territorial = true
	f, err := NewZoneField(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly round(1/zones * k) = 1 winner per zone per epoch.
	for e := 0; e < 50; e++ {
		v := f.Next()
		for z := 0; z < zones; z++ {
			winners := 0
			for i := 1; i <= zones*k; i++ {
				if zoneOf[i] == z && v[i] > cfg.Mu0 {
					winners++
				}
			}
			if winners != 1 {
				t.Fatalf("epoch %d zone %d: %d winners", e, z, winners)
			}
		}
	}
}

func TestZoneValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	zoneOf := make([]int, 10)
	cfg := DefaultZoneConfig(10, 2, 3, zoneOf)
	cfg.ExceedProb = 0.7 // >= 0.5 puts zone mean above mu0
	if _, err := NewZoneField(cfg, rng); err == nil {
		t.Error("accepted ExceedProb >= 0.5")
	}
	cfg = DefaultZoneConfig(10, 2, 3, zoneOf[:5])
	if _, err := NewZoneField(cfg, rng); err == nil {
		t.Error("accepted short ZoneOf")
	}
}

func TestIntelLabShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultIntelLabConfig()
	lab, err := NewIntelLab(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Size() != 54 || lab.Epochs() != cfg.Epochs {
		t.Fatalf("size=%d epochs=%d", lab.Size(), lab.Epochs())
	}
	net, err := lab.Network()
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 54 {
		t.Fatalf("network size %d", net.Size())
	}
	// The shortened radio range must force real hierarchy, as in the
	// paper's 6 m trick.
	if net.Height() < 3 {
		t.Errorf("network height %d; want hierarchy", net.Height())
	}
	// Readings look like lab temperatures.
	v := lab.Epoch(10)
	s := stats.Summarize(v)
	if s.Mean < 10 || s.Mean > 35 {
		t.Errorf("epoch mean %.1f C implausible", s.Mean)
	}
}

func TestIntelLabTopKPredictable(t *testing.T) {
	// The property Figure 9 relies on: hot nodes keep the top-k
	// locations fairly stable across epochs.
	rng := rand.New(rand.NewSource(9))
	lab, err := NewIntelLab(DefaultIntelLabConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	counts := make(map[int]int)
	for e := 0; e < 100; e++ {
		for _, i := range sample.TopKIndices(lab.Epoch(e), k) {
			counts[i]++
		}
	}
	// The k most frequent nodes should own a large share of all slots.
	var freqs []float64
	for _, c := range counts {
		freqs = append(freqs, float64(c))
	}
	if len(freqs) > 3*k {
		t.Errorf("top-%d spread across %d nodes; too unpredictable", k, len(freqs))
	}
}

func TestIntelLabDeterministicAndResettable(t *testing.T) {
	cfg := DefaultIntelLabConfig()
	cfg.Epochs = 10
	a, err := NewIntelLab(cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIntelLab(cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		av, bv := a.Next(), b.Next()
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("same seed diverged at epoch %d node %d", e, i)
			}
		}
	}
	a.Reset()
	if got, want := a.Next()[5], a.Epoch(0)[5]; got != want {
		t.Errorf("Reset did not rewind: %g vs %g", got, want)
	}
}

func TestDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f, err := NewGaussianField(DefaultGaussianConfig(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	es := Draw(f, 7)
	if len(es) != 7 {
		t.Fatalf("drew %d epochs", len(es))
	}
	for _, e := range es {
		if len(e) != 4 {
			t.Fatalf("epoch width %d", len(e))
		}
	}
}
