package workload

import (
	"math"
	"math/rand"
	"testing"

	"prospector/internal/network"
	"prospector/internal/stats"
)

func TestCholeskyKnown(t *testing.T) {
	// A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
	l, err := stats.Cholesky([]float64{4, 2, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, math.Sqrt2}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Errorf("L[%d] = %g, want %g", i, l[i], want[i])
		}
	}
	if _, err := stats.Cholesky([]float64{1, 2, 2, 1}, 2); err == nil {
		t.Error("accepted an indefinite matrix")
	}
	if _, err := stats.Cholesky([]float64{1, 2, 3}, 2); err == nil {
		t.Error("accepted wrong shape")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n = 12
	// Random SPD matrix: B*Bt + n*I.
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			a[i*n+j] = s
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	l, err := stats.Cholesky(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += l[i*n+k] * l[j*n+k]
			}
			if math.Abs(s-a[i*n+j]) > 1e-8 {
				t.Fatalf("LLt[%d,%d] = %g, want %g", i, j, s, a[i*n+j])
			}
		}
	}
}

func TestSpatialFieldCorrelationDecays(t *testing.T) {
	// Two nearby nodes must correlate far more strongly than two
	// distant ones.
	pos := []network.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 100, Y: 100}}
	cfg := DefaultSpatialConfig(pos)
	cfg.LengthScale = 10
	f, err := NewSpatialField(cfg, rand.New(rand.NewSource(82)))
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 4000
	var a, b, c []float64
	for e := 0; e < epochs; e++ {
		v := f.Next()
		a = append(a, v[0])
		b = append(b, v[1])
		c = append(c, v[2])
	}
	near := correlation(a, b)
	far := correlation(a, c)
	if near < 0.8 {
		t.Errorf("nearby correlation %.3f, want > 0.8", near)
	}
	if math.Abs(far) > 0.15 {
		t.Errorf("distant correlation %.3f, want ~0", far)
	}
}

func correlation(x, y []float64) float64 {
	mx, my := stats.Mean(x), stats.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

func TestSpatialFieldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	if _, err := NewSpatialField(SpatialConfig{}, rng); err == nil {
		t.Error("accepted empty positions")
	}
	cfg := DefaultSpatialConfig([]network.Point{{X: 0, Y: 0}})
	cfg.Nugget = 0
	if _, err := NewSpatialField(cfg, rng); err == nil {
		t.Error("accepted zero nugget")
	}
	cfg = DefaultSpatialConfig([]network.Point{{X: 0, Y: 0}})
	cfg.LengthScale = -1
	if _, err := NewSpatialField(cfg, rng); err == nil {
		t.Error("accepted negative length scale")
	}
}

func TestSpatialFieldMoments(t *testing.T) {
	pos := make([]network.Point, 8)
	rng := rand.New(rand.NewSource(84))
	for i := range pos {
		pos[i] = network.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	cfg := DefaultSpatialConfig(pos)
	f, err := NewSpatialField(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var xs []float64
	for e := 0; e < 5000; e++ {
		xs = append(xs, f.Next()[3])
	}
	if got := stats.Mean(xs); math.Abs(got-f.Mean(3)) > 0.3 {
		t.Errorf("empirical mean %g vs %g", got, f.Mean(3))
	}
	wantSD := math.Sqrt(cfg.Sigma*cfg.Sigma + cfg.Nugget)
	if got := stats.StdDev(xs); math.Abs(got-wantSD) > 0.3 {
		t.Errorf("empirical sd %g vs %g", got, wantSD)
	}
}
