// Package workload generates sensor reading scenarios: joint value
// distributions over the nodes of a network. Each Source produces
// "epochs" — one full assignment of a reading to every node — which
// serve both as samples for the planners and as ground truth for
// evaluating executed plans.
package workload

import (
	"fmt"
	"math/rand"
)

// Source produces successive epochs of readings for an n-node network.
// Implementations are deterministic given their seed, so experiments
// are reproducible.
type Source interface {
	// Size returns the number of nodes the source generates values for.
	Size() int
	// Next returns the readings of the next epoch. The returned slice
	// is owned by the caller; implementations must not retain it.
	Next() []float64
}

// Draw collects the given number of epochs from a source.
func Draw(src Source, epochs int) [][]float64 {
	out := make([][]float64, epochs)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}

// GaussianField draws each node's reading from an independent normal
// distribution whose mean and variance were chosen once, at
// construction, from configurable ranges. This is the synthetic
// workload behind Figures 3 and 4 of the paper.
type GaussianField struct {
	means, stddevs []float64
	rng            *rand.Rand
}

// GaussianConfig bounds the per-node distribution parameters.
type GaussianConfig struct {
	Nodes                 int
	MeanLow, MeanHigh     float64
	StdDevLow, StdDevHigh float64
}

// DefaultGaussianConfig matches the paper's setup: means and variances
// chosen randomly from small ranges.
func DefaultGaussianConfig(nodes int) GaussianConfig {
	return GaussianConfig{
		Nodes:      nodes,
		MeanLow:    40,
		MeanHigh:   60,
		StdDevLow:  1,
		StdDevHigh: 5,
	}
}

// NewGaussianField builds a field; the per-node parameters and the
// reading stream both derive from rng.
func NewGaussianField(cfg GaussianConfig, rng *rand.Rand) (*GaussianField, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("workload: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.MeanHigh < cfg.MeanLow || cfg.StdDevHigh < cfg.StdDevLow || cfg.StdDevLow < 0 {
		return nil, fmt.Errorf("workload: invalid gaussian ranges %+v", cfg)
	}
	f := &GaussianField{
		means:   make([]float64, cfg.Nodes),
		stddevs: make([]float64, cfg.Nodes),
		rng:     rng,
	}
	for i := range f.means {
		f.means[i] = cfg.MeanLow + rng.Float64()*(cfg.MeanHigh-cfg.MeanLow)
		f.stddevs[i] = cfg.StdDevLow + rng.Float64()*(cfg.StdDevHigh-cfg.StdDevLow)
	}
	return f, nil
}

// Size implements Source.
func (f *GaussianField) Size() int { return len(f.means) }

// Next implements Source.
func (f *GaussianField) Next() []float64 {
	v := make([]float64, len(f.means))
	for i := range v {
		v[i] = f.means[i] + f.stddevs[i]*f.rng.NormFloat64()
	}
	return v
}

// Mean returns node i's distribution mean.
func (f *GaussianField) Mean(i int) float64 { return f.means[i] }

// StdDev returns node i's distribution standard deviation.
func (f *GaussianField) StdDev(i int) float64 { return f.stddevs[i] }

// SetStdDev overrides every node's standard deviation; used by the
// variance-sweep experiment (Figure 4).
func (f *GaussianField) SetStdDev(sd float64) {
	for i := range f.stddevs {
		f.stddevs[i] = sd
	}
}
