package workload

import (
	"fmt"
	"math"
	"math/rand"

	"prospector/internal/network"
)

// IntelLabConfig parameterizes the synthetic stand-in for the Intel
// Berkeley Research Lab temperature dataset used in the paper's
// Figure 9. The original download is unavailable offline, so the
// generator reproduces the properties the experiment depends on:
//
//   - 54 motes on a lab-like floor plan, with radio range shortened
//     until the spanning tree gains real hierarchy (the paper used 6 m);
//   - temperature = diurnal base + spatial gradient + slow per-node
//     AR(1) drift + small measurement noise;
//   - a few persistently warm locations, making the top-k locations
//     fairly predictable across epochs (the reason LP+LF and LP-LF are
//     nearly identical in Figure 9);
//   - occasional missing readings, filled with the average of the
//     node's previous and next epoch, exactly as the paper describes.
type IntelLabConfig struct {
	Motes        int
	Epochs       int
	Width        float64 // lab floor plan extent in meters
	Height       float64
	RadioRange   float64
	BaseTemp     float64 // mean lab temperature
	DiurnalAmp   float64 // amplitude of the shared diurnal cycle
	EpochsPerDay int
	GradientAmp  float64 // spatial temperature gradient across the room
	HotNodes     int     // count of persistently warm motes
	HotOffset    float64 // their temperature offset
	ARCoef       float64 // AR(1) coefficient of per-node drift
	DriftStd     float64 // innovation std of the drift
	NoiseStd     float64 // per-reading measurement noise
	MissingProb  float64 // probability a reading is missing
}

// DefaultIntelLabConfig matches the scale of the real deployment.
func DefaultIntelLabConfig() IntelLabConfig {
	return IntelLabConfig{
		Motes:        54,
		Epochs:       400,
		Width:        40,
		Height:       30,
		RadioRange:   6,
		BaseTemp:     21,
		DiurnalAmp:   2.5,
		EpochsPerDay: 96,
		GradientAmp:  1.5,
		HotNodes:     14,
		HotOffset:    3.5,
		ARCoef:       0.92,
		DriftStd:     0.15,
		NoiseStd:     0.08,
		MissingProb:  0.02,
	}
}

// IntelLab is a fully materialized epoch stream with matching node
// positions. It implements Source; Reset rewinds the stream.
type IntelLab struct {
	cfg    IntelLabConfig
	pos    []network.Point
	epochs [][]float64
	cursor int
}

// NewIntelLab generates the full dataset deterministically from rng.
// Node 0 is the query station placed at a corner desk; it reads the
// plain base temperature so it rarely ranks in the top k.
func NewIntelLab(cfg IntelLabConfig, rng *rand.Rand) (*IntelLab, error) {
	if cfg.Motes < 2 {
		return nil, fmt.Errorf("workload: IntelLab needs at least 2 motes, got %d", cfg.Motes)
	}
	if cfg.Epochs < 3 {
		return nil, fmt.Errorf("workload: IntelLab needs at least 3 epochs, got %d", cfg.Epochs)
	}
	if cfg.EpochsPerDay < 1 {
		return nil, fmt.Errorf("workload: EpochsPerDay must be positive, got %d", cfg.EpochsPerDay)
	}
	lab := &IntelLab{cfg: cfg}
	lab.placeMotes(rng)

	// Persistent warm spots: chosen once among non-root motes.
	hot := make(map[int]bool, cfg.HotNodes)
	for len(hot) < cfg.HotNodes && len(hot) < cfg.Motes-1 {
		hot[1+rng.Intn(cfg.Motes-1)] = true
	}

	drift := make([]float64, cfg.Motes)
	raw := make([][]float64, cfg.Epochs)
	missing := make([][]bool, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		raw[e] = make([]float64, cfg.Motes)
		missing[e] = make([]bool, cfg.Motes)
		day := 2 * math.Pi * float64(e) / float64(cfg.EpochsPerDay)
		base := cfg.BaseTemp + cfg.DiurnalAmp*math.Sin(day)
		for i := 0; i < cfg.Motes; i++ {
			drift[i] = cfg.ARCoef*drift[i] + cfg.DriftStd*rng.NormFloat64()
			t := base +
				cfg.GradientAmp*(lab.pos[i].X/cfg.Width-0.5) +
				drift[i] +
				cfg.NoiseStd*rng.NormFloat64()
			if hot[i] {
				t += cfg.HotOffset
			}
			if i == 0 {
				t = base - 1 // query station sits by the door, cooler
			}
			raw[e][i] = t
			if i != 0 && rng.Float64() < cfg.MissingProb {
				missing[e][i] = true
			}
		}
	}
	// Fill missing readings with the average of the prior and
	// subsequent epoch, per the paper. Edge epochs copy their
	// neighbor.
	for e := range raw {
		for i := range raw[e] {
			if !missing[e][i] {
				continue
			}
			switch {
			case e == 0:
				raw[e][i] = raw[e+1][i]
			case e == len(raw)-1:
				raw[e][i] = raw[e-1][i]
			default:
				raw[e][i] = (raw[e-1][i] + raw[e+1][i]) / 2
			}
		}
	}
	lab.epochs = raw
	return lab, nil
}

// placeMotes lays motes out in a perimeter-plus-rows pattern loosely
// shaped like the lab's published floor plan.
func (lab *IntelLab) placeMotes(rng *rand.Rand) {
	cfg := lab.cfg
	lab.pos = make([]network.Point, cfg.Motes)
	lab.pos[0] = network.Point{X: 1, Y: 1}
	for i := 1; i < cfg.Motes; i++ {
		// Three horizontal rows of desks plus jitter.
		row := i % 3
		frac := float64(i) / float64(cfg.Motes)
		lab.pos[i] = network.Point{
			X: 2 + frac*(cfg.Width-4) + rng.Float64()*1.5,
			Y: 4 + float64(row)*(cfg.Height-8)/2 + rng.Float64()*2,
		}
	}
}

// Positions returns the mote positions for spanning-tree construction.
func (lab *IntelLab) Positions() []network.Point { return lab.pos }

// Network builds the min-hop spanning tree over the motes at the
// configured (shortened) radio range, growing the range slightly if the
// random jitter left the graph disconnected.
func (lab *IntelLab) Network() (*network.Network, error) {
	r := lab.cfg.RadioRange
	for attempt := 0; attempt < 10; attempt++ {
		net, err := network.FromPositions(lab.pos, r)
		if err == nil {
			return net, nil
		}
		r *= 1.15
	}
	return network.FromPositions(lab.pos, r)
}

// Size implements Source.
func (lab *IntelLab) Size() int { return lab.cfg.Motes }

// Epochs returns the total number of generated epochs.
func (lab *IntelLab) Epochs() int { return len(lab.epochs) }

// Next implements Source; it wraps around after the final epoch.
func (lab *IntelLab) Next() []float64 {
	e := lab.epochs[lab.cursor%len(lab.epochs)]
	lab.cursor++
	return append([]float64(nil), e...)
}

// Reset rewinds the stream to the first epoch.
func (lab *IntelLab) Reset() { lab.cursor = 0 }

// Epoch returns a copy of epoch e.
func (lab *IntelLab) Epoch(e int) []float64 {
	return append([]float64(nil), lab.epochs[e]...)
}
