package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	epochs := [][]float64{
		{1.5, 2, 3},
		{4, 5.25, 6},
		{7, 8, 9.125},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, epochs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d epochs", len(got))
	}
	for e := range epochs {
		for i := range epochs[e] {
			if got[e][i] != epochs[e][i] {
				t.Errorf("epoch %d node %d: %g != %g", e, i, got[e][i], epochs[e][i])
			}
		}
	}
}

func TestTraceMissingFill(t *testing.T) {
	in := "node0,node1\n10,100\n,\n30,\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// node 0 epoch 1: avg(10, 30) = 20.
	if got[1][0] != 20 {
		t.Errorf("filled value %g, want 20", got[1][0])
	}
	// node 1 epochs 1, 2: only a previous value exists -> copy 100.
	if got[1][1] != 100 || got[2][1] != 100 {
		t.Errorf("edge fills %g, %g, want 100", got[1][1], got[2][1])
	}
}

func TestTraceMissingAtStart(t *testing.T) {
	in := ",5\n10,6\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 10 {
		t.Errorf("leading fill %g, want 10", got[0][0])
	}
}

func TestTraceErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"node0,node1\n", // header only
		"1,2\n3\n",      // ragged
		"1,abc\n",       // non-numeric (single row, read as header-only)
		"node0\n,\n",    // node missing everywhere
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTrace(%q) succeeded", in)
		}
	}
}

func TestTraceNaNWritesMissing(t *testing.T) {
	epochs := [][]float64{{1, 2}, {math.NaN(), 4}, {5, 6}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, epochs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[1][0] != 3 { // avg(1, 5)
		t.Errorf("NaN fill = %g, want 3", got[1][0])
	}
}

func TestTraceSource(t *testing.T) {
	tr, err := NewTrace([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 || tr.Epochs() != 2 {
		t.Fatalf("size/epochs = %d/%d", tr.Size(), tr.Epochs())
	}
	a := tr.Next()
	b := tr.Next()
	c := tr.Next() // wraps
	if a[0] != 1 || b[0] != 3 || c[0] != 1 {
		t.Errorf("sequence %v %v %v", a, b, c)
	}
	tr.Reset()
	if tr.Next()[1] != 2 {
		t.Error("Reset failed")
	}
	if _, err := NewTrace(nil); err == nil {
		t.Error("accepted empty trace")
	}
	if _, err := NewTrace([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("accepted ragged trace")
	}
}

func TestTraceInteropWithIntelLab(t *testing.T) {
	// Export the synthetic lab and reload it as a trace: the replay
	// must be identical, proving real lab data can be swapped in.
	rng := rand.New(rand.NewSource(12))
	cfg := DefaultIntelLabConfig()
	cfg.Epochs = 20
	lab, err := NewIntelLab(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var epochs [][]float64
	for e := 0; e < lab.Epochs(); e++ {
		epochs = append(epochs, lab.Epoch(e))
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, epochs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrace(back)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 20; e++ {
		want := lab.Epoch(e)
		got := tr.Next()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("epoch %d node %d: %g != %g", e, i, got[i], want[i])
			}
		}
	}
}
