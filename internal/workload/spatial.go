package workload

import (
	"fmt"
	"math"
	"math/rand"

	"prospector/internal/network"
	"prospector/internal/stats"
)

// SpatialConfig parameterizes a spatially correlated Gaussian field:
// readings are a multivariate normal whose covariance follows a
// squared-exponential kernel over node positions,
//
//	Cov(i, j) = Sigma^2 * exp(-d(i,j)^2 / (2 * LengthScale^2)) + Nugget*[i==j].
//
// This is the joint-distribution setting the model-driven line of work
// (Deshpande et al., which the paper builds on) assumes: nearby sensors
// read alike. Positive spatial correlation concentrates the top k in
// one region per epoch — which region varies — stressing planners the
// independent field cannot.
type SpatialConfig struct {
	// Positions give each node's location (index 0 is the root).
	Positions []network.Point
	// MeanLow/MeanHigh bound the per-node means, chosen uniformly.
	MeanLow, MeanHigh float64
	// Sigma scales the correlated fluctuation.
	Sigma float64
	// LengthScale is the kernel's correlation distance, in meters.
	LengthScale float64
	// Nugget is independent per-node noise variance added on the
	// diagonal (also keeps the covariance positive definite).
	Nugget float64
}

// DefaultSpatialConfig returns a strongly correlated field over the
// given placement.
func DefaultSpatialConfig(pos []network.Point) SpatialConfig {
	return SpatialConfig{
		Positions:   pos,
		MeanLow:     45,
		MeanHigh:    55,
		Sigma:       4,
		LengthScale: 25,
		Nugget:      0.25,
	}
}

// SpatialField draws epochs from the configured multivariate normal
// via a Cholesky factor of the kernel covariance.
type SpatialField struct {
	means []float64
	chol  []float64 // lower-triangular factor, row-major
	n     int
	rng   *rand.Rand
	z     []float64 // scratch
}

// NewSpatialField validates cfg, builds the covariance, and factors it.
func NewSpatialField(cfg SpatialConfig, rng *rand.Rand) (*SpatialField, error) {
	n := len(cfg.Positions)
	if n < 1 {
		return nil, fmt.Errorf("workload: spatial field needs positions")
	}
	if cfg.Sigma < 0 || cfg.LengthScale <= 0 || cfg.Nugget < 0 {
		return nil, fmt.Errorf("workload: invalid spatial parameters %+v", cfg)
	}
	if cfg.Nugget == 0 {
		return nil, fmt.Errorf("workload: a positive Nugget is required to keep the covariance positive definite")
	}
	if cfg.MeanHigh < cfg.MeanLow {
		return nil, fmt.Errorf("workload: mean range inverted")
	}
	cov := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := cfg.Positions[i].Dist(cfg.Positions[j])
			cov[i*n+j] = cfg.Sigma * cfg.Sigma * math.Exp(-d*d/(2*cfg.LengthScale*cfg.LengthScale))
			if i == j {
				cov[i*n+j] += cfg.Nugget
			}
		}
	}
	chol, err := stats.Cholesky(cov, n)
	if err != nil {
		return nil, fmt.Errorf("workload: factoring spatial covariance: %w", err)
	}
	f := &SpatialField{
		means: make([]float64, n),
		chol:  chol,
		n:     n,
		rng:   rng,
		z:     make([]float64, n),
	}
	for i := range f.means {
		f.means[i] = cfg.MeanLow + rng.Float64()*(cfg.MeanHigh-cfg.MeanLow)
	}
	return f, nil
}

// Size implements Source.
func (f *SpatialField) Size() int { return f.n }

// Next implements Source: mean + L*z with z standard normal.
func (f *SpatialField) Next() []float64 {
	for i := range f.z {
		f.z[i] = f.rng.NormFloat64()
	}
	out := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		s := f.means[i]
		row := f.chol[i*f.n : (i+1)*f.n]
		for k := 0; k <= i; k++ {
			s += row[k] * f.z[k]
		}
		out[i] = s
	}
	return out
}

// Mean returns node i's mean.
func (f *SpatialField) Mean(i int) float64 { return f.means[i] }
