package network

import (
	"fmt"
	"io"
)

// WriteDOT emits the spanning tree in Graphviz DOT format. When a plan
// overlay is supplied (per-edge bandwidths indexed by lower endpoint,
// may be nil), used edges are labeled with their bandwidth and drawn
// solid; unused edges are dashed. Node positions become pos attributes
// (inches) so `neato -n` reproduces the deployment geometry.
func (net *Network) WriteDOT(w io.Writer, name string, bandwidth []int) error {
	if bandwidth != nil && len(bandwidth) != net.Size() {
		return fmt.Errorf("network: overlay covers %d of %d nodes", len(bandwidth), net.Size())
	}
	if name == "" {
		name = "sensornet"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=BT;\n  node [shape=circle, fontsize=10];\n", name); err != nil {
		return err
	}
	for i := 0; i < net.Size(); i++ {
		v := NodeID(i)
		attrs := fmt.Sprintf("pos=\"%.2f,%.2f!\"", net.Pos(v).X/10, net.Pos(v).Y/10)
		if v == Root {
			attrs += ", shape=doublecircle, label=\"root\""
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", i, attrs); err != nil {
			return err
		}
	}
	for i := 1; i < net.Size(); i++ {
		v := NodeID(i)
		attrs := ""
		if bandwidth != nil {
			if bandwidth[i] > 0 {
				attrs = fmt.Sprintf(" [label=\"%d\"]", bandwidth[i])
			} else {
				attrs = " [style=dashed, color=gray]"
			}
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d%s;\n", i, net.Parent(v), attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
