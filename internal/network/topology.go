package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BuildConfig describes a random deployment: nodes placed uniformly in
// a Width x Height rectangle with the root at RootPos, connected by a
// min-hop spanning tree over links no longer than Range.
type BuildConfig struct {
	Nodes   int // total nodes including the root
	Width   float64
	Height  float64
	Range   float64 // radio range in meters
	RootPos Point
}

// DefaultBuildConfig returns a deployment comparable to the paper's
// synthetic experiments: a square field sized so the spanning tree has
// several levels of hierarchy.
func DefaultBuildConfig(nodes int) BuildConfig {
	return BuildConfig{
		Nodes:   nodes,
		Width:   100,
		Height:  100,
		Range:   22,
		RootPos: Point{X: 50, Y: 50},
	}
}

// Build places cfg.Nodes-1 sensors uniformly at random and constructs a
// min-hop spanning tree rooted at the query station. If the random
// placement is not fully connected under the radio range, unreachable
// nodes are re-placed (up to a bounded number of attempts) so the
// result always spans cfg.Nodes nodes.
func Build(cfg BuildConfig, rng *rand.Rand) (*Network, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("network: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Range <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("network: invalid geometry %+v", cfg)
	}
	pos := make([]Point, cfg.Nodes)
	pos[Root] = cfg.RootPos
	for i := 1; i < cfg.Nodes; i++ {
		pos[i] = Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
	}
	const maxAttempts = 200
	for attempt := 0; ; attempt++ {
		parent, unreached := minHopTree(pos, cfg.Range)
		if len(unreached) == 0 {
			return New(parent, pos)
		}
		if attempt == maxAttempts {
			return nil, fmt.Errorf("network: could not connect %d nodes after %d placements (range %.1f too small for %gx%g field?)",
				len(unreached), maxAttempts, cfg.Range, cfg.Width, cfg.Height)
		}
		// Re-place unreachable nodes near a random already-placed node
		// so they join the connected component.
		for _, v := range unreached {
			anchor := pos[rng.Intn(cfg.Nodes)]
			pos[v] = Point{
				X: clamp(anchor.X+(rng.Float64()*2-1)*cfg.Range*0.8, 0, cfg.Width),
				Y: clamp(anchor.Y+(rng.Float64()*2-1)*cfg.Range*0.8, 0, cfg.Height),
			}
		}
	}
}

// FromPositions builds the min-hop spanning tree for an explicit node
// placement; pos[0] is the root. It fails if any node is out of range
// of the connected component containing the root.
func FromPositions(pos []Point, radioRange float64) (*Network, error) {
	parent, unreached := minHopTree(pos, radioRange)
	if len(unreached) > 0 {
		return nil, fmt.Errorf("network: %d nodes unreachable at range %.2f", len(unreached), radioRange)
	}
	return New(parent, pos)
}

// minHopTree runs BFS from the root over the radio-range graph,
// assigning each node the parent that minimizes its hop count,
// breaking ties by choosing the nearest parent. Returns the parent
// vector and any unreached nodes.
func minHopTree(pos []Point, radioRange float64) (parent []NodeID, unreached []NodeID) {
	n := len(pos)
	parent = make([]NodeID, n)
	visited := make([]bool, n)
	visited[Root] = true
	frontier := []NodeID{Root}
	for len(frontier) > 0 {
		// Gather every unvisited node in range of the frontier; pick
		// the closest in-range frontier node as its parent.
		type cand struct {
			node, par NodeID
			d         float64
		}
		var next []cand
		for i := 0; i < n; i++ {
			if visited[i] {
				continue
			}
			best := cand{node: NodeID(i), par: -1}
			for _, f := range frontier {
				d := pos[i].Dist(pos[f])
				if d <= radioRange && (best.par == -1 || d < best.d) {
					best.par, best.d = f, d
				}
			}
			if best.par >= 0 {
				next = append(next, best)
			}
		}
		frontier = frontier[:0]
		sort.Slice(next, func(i, j int) bool { return next[i].node < next[j].node })
		for _, c := range next {
			visited[c.node] = true
			parent[c.node] = c.par
			frontier = append(frontier, c.node)
		}
	}
	for i := 0; i < n; i++ {
		if !visited[i] {
			unreached = append(unreached, NodeID(i))
		}
	}
	return parent, unreached
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Line builds a degenerate chain topology 0-1-2-...-(n-1), useful in
// tests where depth matters and randomness does not.
func Line(n int) *Network {
	parent := make([]NodeID, n)
	for i := 1; i < n; i++ {
		parent[i] = NodeID(i - 1)
	}
	net, err := New(parent, nil)
	if err != nil {
		panic(err) // unreachable: the chain is always a valid tree
	}
	return net
}

// Star builds a root with n-1 direct children.
func Star(n int) *Network {
	parent := make([]NodeID, n)
	net, err := New(parent, nil)
	if err != nil {
		panic(err) // unreachable
	}
	return net
}

// BalancedTree builds a complete tree with the given fanout and depth.
// The total node count is (fanout^(depth+1)-1)/(fanout-1) for fanout>1.
func BalancedTree(fanout, depth int) *Network {
	if fanout < 1 || depth < 0 {
		panic("network: BalancedTree needs fanout >= 1 and depth >= 0")
	}
	parent := []NodeID{Root}
	level := []NodeID{Root}
	for d := 0; d < depth; d++ {
		var next []NodeID
		for _, p := range level {
			for c := 0; c < fanout; c++ {
				id := NodeID(len(parent))
				parent = append(parent, 0)
				parent[id] = p
				next = append(next, id)
			}
		}
		level = next
	}
	net, err := New(parent, nil)
	if err != nil {
		panic(err) // unreachable
	}
	return net
}

// ZonePlacement places zone clusters evenly around the perimeter of the
// deployment rectangle with the root in the center, as in the paper's
// contention-zone experiments (Figure 6). It returns the positions and
// the zone index of every node (-1 for non-zone nodes, including the
// root). Non-zone nodes are scattered uniformly; they serve as relays
// and as the stable-mean background population.
func ZonePlacement(cfg BuildConfig, zones, perZone int, rng *rand.Rand) (pos []Point, zoneOf []int) {
	pos = make([]Point, cfg.Nodes)
	zoneOf = make([]int, cfg.Nodes)
	pos[Root] = Point{X: cfg.Width / 2, Y: cfg.Height / 2}
	zoneOf[Root] = -1
	next := 1
	// Zone centers on an inscribed ellipse near the perimeter.
	for z := 0; z < zones; z++ {
		theta := 2 * math.Pi * float64(z) / float64(zones)
		cx := cfg.Width/2 + 0.42*cfg.Width*math.Cos(theta)
		cy := cfg.Height/2 + 0.42*cfg.Height*math.Sin(theta)
		for i := 0; i < perZone && next < cfg.Nodes; i++ {
			pos[next] = Point{
				X: clamp(cx+(rng.Float64()*2-1)*cfg.Range*0.45, 0, cfg.Width),
				Y: clamp(cy+(rng.Float64()*2-1)*cfg.Range*0.45, 0, cfg.Height),
			}
			zoneOf[next] = z
			next++
		}
	}
	for ; next < cfg.Nodes; next++ {
		pos[next] = Point{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		zoneOf[next] = -1
	}
	return pos, zoneOf
}
