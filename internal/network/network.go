// Package network models a wireless sensor network organized as a
// spanning tree rooted at a query station, as in Section 2 of the
// paper. Nodes are placed in a rectangular space; links exist between
// nodes within radio range; the spanning tree keeps each node as few
// hops from the root as possible.
package network

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in a network. The root always has ID 0.
type NodeID int

// Root is the NodeID of the root (query station).
const Root NodeID = 0

// Point is a position in the deployment rectangle, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Network is an immutable spanning tree over a set of sensor nodes.
// Build one with New or one of the builders in topology.go, then share
// it freely: all methods are safe for concurrent use.
type Network struct {
	pos      []Point
	parent   []NodeID // parent[Root] == Root
	children [][]NodeID
	depth    []int      // hops from root; depth[Root] == 0
	desc     [][]NodeID // descendants including self, preorder
	subSize  []int      // len(desc[i])
	order    []NodeID   // preorder walk from the root
	height   int
}

// New assembles a Network from an explicit parent vector. parent[0]
// must be 0 (the root is its own parent) and the parent links must form
// a tree over nodes 0..len(parent)-1. pos may be nil, in which case all
// positions are the origin.
func New(parent []NodeID, pos []Point) (*Network, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("network: empty parent vector")
	}
	if parent[Root] != Root {
		return nil, fmt.Errorf("network: root must be its own parent, got parent[0]=%d", parent[Root])
	}
	if pos == nil {
		pos = make([]Point, n)
	}
	if len(pos) != n {
		return nil, fmt.Errorf("network: %d positions for %d nodes", len(pos), n)
	}
	net := &Network{
		pos:      append([]Point(nil), pos...),
		parent:   append([]NodeID(nil), parent...),
		children: make([][]NodeID, n),
		depth:    make([]int, n),
	}
	for i := 1; i < n; i++ {
		p := parent[i]
		if p < 0 || int(p) >= n || p == NodeID(i) {
			return nil, fmt.Errorf("network: node %d has invalid parent %d", i, p)
		}
		net.children[p] = append(net.children[p], NodeID(i))
	}
	// Depths via a walk from the root; also detects disconnected nodes
	// and cycles (they are never reached).
	net.order = make([]NodeID, 0, n)
	stack := []NodeID{Root}
	seen := make([]bool, n)
	seen[Root] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		net.order = append(net.order, v)
		for _, c := range net.children[v] {
			if seen[c] {
				return nil, fmt.Errorf("network: node %d reached twice; parent links are not a tree", c)
			}
			seen[c] = true
			net.depth[c] = net.depth[v] + 1
			if net.depth[c] > net.height {
				net.height = net.depth[c]
			}
			stack = append(stack, c)
		}
	}
	if len(net.order) != n {
		return nil, fmt.Errorf("network: %d of %d nodes unreachable from root", n-len(net.order), n)
	}
	net.buildDescendants()
	return net, nil
}

func (net *Network) buildDescendants() {
	n := net.Size()
	net.desc = make([][]NodeID, n)
	net.subSize = make([]int, n)
	// Children were appended in ID order; walk in reverse preorder so
	// every child is finished before its parent.
	for idx := len(net.order) - 1; idx >= 0; idx-- {
		v := net.order[idx]
		d := []NodeID{v}
		for _, c := range net.children[v] {
			d = append(d, net.desc[c]...)
		}
		net.desc[v] = d
		net.subSize[v] = len(d)
	}
}

// Size returns the number of nodes, including the root.
func (net *Network) Size() int { return len(net.parent) }

// Height returns the maximum depth of any node.
func (net *Network) Height() int { return net.height }

// Parent returns the parent of v. The root is its own parent.
func (net *Network) Parent(v NodeID) NodeID { return net.parent[v] }

// Children returns v's children. The caller must not modify the result.
func (net *Network) Children(v NodeID) []NodeID { return net.children[v] }

// Depth returns the number of hops between v and the root.
func (net *Network) Depth(v NodeID) int { return net.depth[v] }

// Pos returns v's position in the deployment rectangle.
func (net *Network) Pos(v NodeID) Point { return net.pos[v] }

// SubtreeSize returns the number of nodes in the subtree rooted at v,
// including v itself.
func (net *Network) SubtreeSize(v NodeID) int { return net.subSize[v] }

// Descendants returns the nodes of the subtree rooted at v, including v
// itself, in preorder. The caller must not modify the result.
func (net *Network) Descendants(v NodeID) []NodeID { return net.desc[v] }

// Preorder returns every node in preorder from the root. The caller
// must not modify the result.
func (net *Network) Preorder() []NodeID { return net.order }

// PostorderWalk calls f on every node, children before parents.
func (net *Network) PostorderWalk(f func(NodeID)) {
	for i := len(net.order) - 1; i >= 0; i-- {
		f(net.order[i])
	}
}

// Ancestors returns the chain from v up to and including the root,
// excluding v itself. Allocates; prefer AncestorEdges in hot paths.
func (net *Network) Ancestors(v NodeID) []NodeID {
	var out []NodeID
	for v != Root {
		v = net.parent[v]
		out = append(out, v)
	}
	return out
}

// AncestorEdges calls f with the lower endpoint of every edge on the
// path from v to the root: first v itself, then each ancestor below the
// root. (The edge above node u is identified by u; the root has no edge.)
func (net *Network) AncestorEdges(v NodeID, f func(NodeID)) {
	for v != Root {
		f(v)
		v = net.parent[v]
	}
}

// PathLen returns the number of edges between v and the root.
func (net *Network) PathLen(v NodeID) int { return net.depth[v] }

// IsAncestor reports whether a is an ancestor of v or v itself.
func (net *Network) IsAncestor(a, v NodeID) bool {
	for {
		if v == a {
			return true
		}
		if v == Root {
			return false
		}
		v = net.parent[v]
	}
}

// OnPathChild returns the child of ancestor a that lies on the path
// from a down to v. It panics if a is not a proper ancestor of v.
func (net *Network) OnPathChild(a, v NodeID) NodeID {
	if a == v {
		panic("network: OnPathChild called with a == v")
	}
	for net.parent[v] != a {
		if v == Root {
			panic(fmt.Sprintf("network: %d is not an ancestor of the argument", a))
		}
		v = net.parent[v]
	}
	return v
}

// Edges returns the lower endpoints of every tree edge (every node but
// the root), in increasing ID order.
func (net *Network) Edges() []NodeID {
	out := make([]NodeID, 0, net.Size()-1)
	for i := 1; i < net.Size(); i++ {
		out = append(out, NodeID(i))
	}
	return out
}

// Leaves returns all nodes without children in increasing ID order.
func (net *Network) Leaves() []NodeID {
	var out []NodeID
	for i := 0; i < net.Size(); i++ {
		if len(net.children[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// MaxFanout returns the largest number of children of any node.
func (net *Network) MaxFanout() int {
	m := 0
	for _, cs := range net.children {
		if len(cs) > m {
			m = len(cs)
		}
	}
	return m
}

// String summarizes the topology.
func (net *Network) String() string {
	return fmt.Sprintf("network{nodes=%d height=%d leaves=%d maxFanout=%d}",
		net.Size(), net.Height(), len(net.Leaves()), net.MaxFanout())
}

// SortedByDepth returns all node IDs ordered by increasing depth,
// breaking ties by ID. Useful for deterministic iteration.
func (net *Network) SortedByDepth() []NodeID {
	out := append([]NodeID(nil), net.order...)
	sort.Slice(out, func(i, j int) bool {
		if net.depth[out[i]] != net.depth[out[j]] {
			return net.depth[out[i]] < net.depth[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
