package network

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		parent []NodeID
	}{
		{"empty", nil},
		{"root not self-parent", []NodeID{1, 0}},
		{"parent out of range", []NodeID{0, 5}},
		{"self loop", []NodeID{0, 1}},
		{"cycle", []NodeID{0, 2, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.parent, nil); err == nil {
				t.Errorf("New(%v) accepted invalid input", c.parent)
			}
		})
	}
}

func TestLineTopology(t *testing.T) {
	net := Line(5)
	if net.Size() != 5 || net.Height() != 4 {
		t.Fatalf("line(5): size=%d height=%d", net.Size(), net.Height())
	}
	for i := 1; i < 5; i++ {
		if net.Parent(NodeID(i)) != NodeID(i-1) {
			t.Errorf("parent(%d) = %d", i, net.Parent(NodeID(i)))
		}
		if net.Depth(NodeID(i)) != i {
			t.Errorf("depth(%d) = %d", i, net.Depth(NodeID(i)))
		}
	}
	if got := net.SubtreeSize(2); got != 3 {
		t.Errorf("subtree(2) = %d, want 3", got)
	}
	if !net.IsAncestor(1, 4) || net.IsAncestor(4, 1) {
		t.Error("IsAncestor wrong on the chain")
	}
	if c := net.OnPathChild(0, 4); c != 1 {
		t.Errorf("OnPathChild(0,4) = %d, want 1", c)
	}
}

func TestStarTopology(t *testing.T) {
	net := Star(6)
	if net.Height() != 1 {
		t.Fatalf("star height = %d", net.Height())
	}
	if got := len(net.Children(Root)); got != 5 {
		t.Errorf("root has %d children, want 5", got)
	}
	if got := len(net.Leaves()); got != 5 {
		t.Errorf("%d leaves, want 5", got)
	}
	if net.MaxFanout() != 5 {
		t.Errorf("max fanout = %d", net.MaxFanout())
	}
}

func TestBalancedTree(t *testing.T) {
	net := BalancedTree(2, 3)
	if net.Size() != 15 {
		t.Fatalf("size = %d, want 15", net.Size())
	}
	if net.Height() != 3 {
		t.Errorf("height = %d, want 3", net.Height())
	}
	if got := net.SubtreeSize(Root); got != 15 {
		t.Errorf("root subtree = %d", got)
	}
	for _, v := range net.Preorder() {
		want := 1
		for _, c := range net.Children(v) {
			want += net.SubtreeSize(c)
		}
		if net.SubtreeSize(v) != want {
			t.Errorf("subtree(%d) = %d, want %d", v, net.SubtreeSize(v), want)
		}
	}
}

func TestBuildConnects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		net, err := Build(DefaultBuildConfig(80), rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if net.Size() != 80 {
			t.Fatalf("trial %d: size %d", trial, net.Size())
		}
		if net.Height() < 2 {
			t.Errorf("trial %d: degenerate height %d", trial, net.Height())
		}
		// Every non-root node within radio range of its parent (modulo
		// the re-placement fallback, which also respects range).
		cfg := DefaultBuildConfig(80)
		for i := 1; i < net.Size(); i++ {
			d := net.Pos(NodeID(i)).Dist(net.Pos(net.Parent(NodeID(i))))
			if d > cfg.Range+1e-9 {
				t.Errorf("trial %d: node %d is %.1f m from parent, range %.1f", trial, i, d, cfg.Range)
			}
		}
	}
}

func TestBuildMinHop(t *testing.T) {
	// BFS property: a node's depth is minimal over all in-range paths.
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultBuildConfig(60)
	net, err := Build(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute shortest hop counts by BFS over the full range graph.
	n := net.Size()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[Root] = 0
	queue := []NodeID{Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := 0; u < n; u++ {
			if dist[u] == -1 && net.Pos(NodeID(u)).Dist(net.Pos(v)) <= cfg.Range {
				dist[u] = dist[v] + 1
				queue = append(queue, NodeID(u))
			}
		}
	}
	for i := 0; i < n; i++ {
		if dist[i] >= 0 && net.Depth(NodeID(i)) != dist[i] {
			t.Errorf("node %d: depth %d, BFS distance %d", i, net.Depth(NodeID(i)), dist[i])
		}
	}
}

func TestAncestorEdgesMatchesAncestors(t *testing.T) {
	net := BalancedTree(3, 3)
	f := func(raw uint8) bool {
		v := NodeID(int(raw) % net.Size())
		var edges []NodeID
		net.AncestorEdges(v, func(e NodeID) { edges = append(edges, e) })
		if len(edges) != net.Depth(v) {
			return false
		}
		anc := net.Ancestors(v)
		if len(anc) != net.Depth(v) {
			return false
		}
		// edges[i] is the lower endpoint; its parent must be anc[i].
		for i, e := range edges {
			if net.Parent(e) != anc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZonePlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultBuildConfig(100)
	pos, zoneOf := ZonePlacement(cfg, 6, 10, rng)
	if len(pos) != 100 || len(zoneOf) != 100 {
		t.Fatalf("lengths %d/%d", len(pos), len(zoneOf))
	}
	if zoneOf[0] != -1 {
		t.Error("root assigned to a zone")
	}
	counts := make(map[int]int)
	for _, z := range zoneOf {
		counts[z]++
	}
	for z := 0; z < 6; z++ {
		if counts[z] != 10 {
			t.Errorf("zone %d has %d nodes, want 10", z, counts[z])
		}
	}
	if counts[-1] != 100-60 {
		t.Errorf("background count %d", counts[-1])
	}
}

func TestSortedByDepth(t *testing.T) {
	net := BalancedTree(2, 4)
	order := net.SortedByDepth()
	if len(order) != net.Size() {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if net.Depth(order[i-1]) > net.Depth(order[i]) {
			t.Fatalf("order not sorted by depth at %d", i)
		}
	}
}

func TestPostorderWalkChildrenFirst(t *testing.T) {
	net := BalancedTree(3, 2)
	seen := make(map[NodeID]bool)
	net.PostorderWalk(func(v NodeID) {
		for _, c := range net.Children(v) {
			if !seen[c] {
				t.Fatalf("node %d visited before child %d", v, c)
			}
		}
		seen[v] = true
	})
	if len(seen) != net.Size() {
		t.Errorf("visited %d of %d", len(seen), net.Size())
	}
}

func TestWriteDOT(t *testing.T) {
	net := BalancedTree(2, 2)
	var buf strings.Builder
	bw := []int{0, 2, 0, 1, 1, 0, 0}
	if err := net.WriteDOT(&buf, "demo", bw); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph \"demo\"", "doublecircle", "n1 -> n0 [label=\"2\"]", "style=dashed", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Without an overlay, edges are plain.
	buf.Reset()
	if err := net.WriteDOT(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "dashed") {
		t.Error("plain DOT has overlay styling")
	}
	if err := net.WriteDOT(&buf, "x", []int{1}); err == nil {
		t.Error("accepted short overlay")
	}
}

func TestAccessors(t *testing.T) {
	net := BalancedTree(2, 2)
	if got := net.Edges(); len(got) != 6 || got[0] != 1 {
		t.Errorf("Edges = %v", got)
	}
	if net.PathLen(3) != 2 {
		t.Errorf("PathLen(3) = %d", net.PathLen(3))
	}
	desc := net.Descendants(1)
	if len(desc) != 3 || desc[0] != 1 {
		t.Errorf("Descendants(1) = %v", desc)
	}
	s := net.String()
	for _, want := range []string{"nodes=7", "height=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q", s)
		}
	}
}
