package network

import (
	"math/rand"
	"testing"
)

func TestRepairRemovesDeadNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfg := DefaultBuildConfig(50)
	net, err := Build(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	dead := []NodeID{7, 13, 21}
	repaired, mapping, err := Repair(net, dead, cfg.Range*1.5)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Size() != 47 {
		t.Fatalf("repaired size %d", repaired.Size())
	}
	for _, d := range dead {
		if mapping[d] != -1 {
			t.Errorf("dead node %d mapped to %d", d, mapping[d])
		}
	}
	// Survivors map densely and keep their positions.
	seen := make(map[int]bool)
	for old, m := range mapping {
		if m == -1 {
			continue
		}
		if m < 0 || m >= 47 || seen[m] {
			t.Fatalf("bad mapping %d -> %d", old, m)
		}
		seen[m] = true
		if repaired.Pos(NodeID(m)) != net.Pos(NodeID(old)) {
			t.Errorf("node %d moved during repair", old)
		}
	}
	if mapping[Root] != int(Root) {
		t.Errorf("root renumbered to %d", mapping[Root])
	}
}

func TestRepairRejectsRootDeath(t *testing.T) {
	net := Line(4)
	if _, _, err := Repair(net, []NodeID{Root}, 10); err == nil {
		t.Error("accepted a dead root")
	}
	if _, _, err := Repair(net, []NodeID{9}, 10); err == nil {
		t.Error("accepted an out-of-range dead node")
	}
}

func TestRepairDetectsDisconnection(t *testing.T) {
	// A chain with a hole too wide to bridge.
	pos := []Point{{0, 0}, {10, 0}, {20, 0}, {30, 0}}
	net, err := FromPositions(pos, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Killing node 1 strands nodes 2 and 3 at range 11.
	if _, _, err := Repair(net, []NodeID{1}, 11); err == nil {
		t.Error("repair did not notice the partition")
	}
	// A longer range bridges the hole.
	repaired, _, err := Repair(net, []NodeID{1}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Size() != 3 {
		t.Errorf("size %d", repaired.Size())
	}
}
