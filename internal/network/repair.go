package network

import "fmt"

// Repair rebuilds the spanning tree after permanent node failures
// (Section 4.4: "if a node is non-functioning for an extended period,
// the tree adjusts to exclude it", after which plans are re-optimized).
// Survivors keep their relative order and are renumbered densely; the
// returned mapping gives each old ID's new ID, or -1 for dead nodes.
// The root cannot die.
//
// The new tree is the min-hop tree over the survivors at the given
// radio range; if failures disconnect the survivor graph, Repair
// reports an error and the caller may retry with a longer range.
func Repair(net *Network, dead []NodeID, radioRange float64) (*Network, []int, error) {
	isDead := make([]bool, net.Size())
	for _, d := range dead {
		if d < 0 || int(d) >= net.Size() {
			return nil, nil, fmt.Errorf("network: dead node %d out of range", d)
		}
		if d == Root {
			return nil, nil, fmt.Errorf("network: the root (query station) cannot fail")
		}
		isDead[d] = true
	}
	mapping := make([]int, net.Size())
	var pos []Point
	next := 0
	for i := 0; i < net.Size(); i++ {
		if isDead[i] {
			mapping[i] = -1
			continue
		}
		mapping[i] = next
		pos = append(pos, net.Pos(NodeID(i)))
		next++
	}
	if next < 1 {
		return nil, nil, fmt.Errorf("network: no survivors")
	}
	repaired, err := FromPositions(pos, radioRange)
	if err != nil {
		return nil, nil, fmt.Errorf("network: repair disconnected the tree: %w", err)
	}
	return repaired, mapping, nil
}
