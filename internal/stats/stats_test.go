package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormCDF(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
}

func TestNormInvRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		p := (float64(raw) + 1) / (float64(math.MaxUint32) + 2)
		x := NormInv(p)
		return math.Abs(NormCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormInvEdges(t *testing.T) {
	if !math.IsInf(NormInv(0), -1) || !math.IsInf(NormInv(1), 1) {
		t.Error("NormInv at {0,1} not infinite")
	}
	if !math.IsNaN(NormInv(-0.1)) || !math.IsNaN(NormInv(1.1)) {
		t.Error("NormInv outside [0,1] not NaN")
	}
	if got := NormInv(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("NormInv(0.5) = %g", got)
	}
	// Deep tails stay finite and monotone.
	if a, b := NormInv(1e-10), NormInv(1e-9); !(a < b && a < -6) {
		t.Errorf("tail quantiles %g, %g", a, b)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935299395) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton not 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile of empty slice did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	s := Summarize(xs)
	if s.N != 2000 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-3) > 0.2 {
		t.Errorf("Mean = %g, want ~3", s.Mean)
	}
	if math.Abs(s.Std-2) > 0.2 {
		t.Errorf("Std = %g, want ~2", s.Std)
	}
	if s.Min >= s.Mean || s.Max <= s.Mean {
		t.Errorf("min %g / max %g vs mean %g", s.Min, s.Max, s.Mean)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary = %+v", empty)
	}
}
